"""Quantized serving benchmark: int8 inference vs the float path.

The low-precision issue's acceptance criterion: the int8 runtime must
score sessions at >= 1.5x the throughput of the full-precision float
path (``precision=None``, the float64 archive default).  The mechanism
is compute-dtype + fused projection — the quantized runtime does every
GEMM in float32 against int8 weights cast once per projection (half the
memory traffic of the float64 forward, no autograd tape), and the int8
archive itself is ~4x smaller.  Measured ratios land around 2x on
CI-class hosts at the GEMM-bound model size below; the 1.5x assertion
is the regression floor, not the headline — ``results/latest.txt``
records what was measured.

The model is deliberately larger than the other serving benches
(hidden 96, embedding 64) so the comparison is GEMM-bound rather than
Python-overhead-bound, but trained for single epochs: throughput does
not care whether the weights converged.

Marked ``smoke``: the whole bench (train + quantize + three timed
paths) is a few seconds and uses only the ``report`` fixture.
"""

import threading
import time

import numpy as np
import pytest

from repro import CLFD, CLFDConfig
from repro.core import load_clfd, save_clfd
from repro.data import Word2VecConfig, apply_uniform_noise, make_dataset
from repro.serve import InferenceEngine, ServeConfig

SPEEDUP_FLOOR = 1.5
CONCURRENCY = 16
REQUESTS = 128


@pytest.fixture(scope="module")
def quant_setup(tmp_path_factory):
    rng = np.random.default_rng(23)
    train, test = make_dataset("cert", rng, scale=0.02)
    apply_uniform_noise(train, eta=0.2, rng=rng)
    config = CLFDConfig(
        embedding_dim=64, hidden_size=96, batch_size=64, aux_batch_size=8,
        ssl_epochs=1, supcon_epochs=1, classifier_epochs=1,
        word2vec=Word2VecConfig(dim=64, epochs=1),
    )
    model = CLFD(config).fit(train, rng=np.random.default_rng(0))
    archive = save_clfd(model,
                        tmp_path_factory.mktemp("quant-bench") / "model")
    payloads = [
        {"activities": [int(a)
                        for a in test.sessions[i % len(test)].activities],
         "session_id": f"req-{i}"}
        for i in range(REQUESTS)
    ]
    return archive, test, payloads


def _batch_throughput(model, batch, reps=6):
    """Sessions/second through the batched scoring path the engine and
    cluster workers run (``model.predict`` over a full dataset)."""
    model.predict(batch)  # warm-up: BLAS threads, dense caches
    start = time.perf_counter()
    for _ in range(reps):
        model.predict(batch)
    return reps * len(batch) / (time.perf_counter() - start)


def _engine_throughput(engine, payloads, concurrency):
    chunks = [payloads[i::concurrency] for i in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)

    def client(chunk):
        barrier.wait(timeout=30)
        for payload in chunk:
            engine.score(payload)

    threads = [threading.Thread(target=client, args=(chunk,))
               for chunk in chunks]
    for t in threads:
        t.start()
    barrier.wait(timeout=30)
    start = time.perf_counter()
    for t in threads:
        t.join(timeout=120)
    return len(payloads) / (time.perf_counter() - start)


@pytest.mark.smoke
def test_int8_scoring_throughput_floor(quant_setup, report):
    """The acceptance floor: int8 >= 1.5x the float path, batch scoring."""
    archive, test, _ = quant_setup
    batch = test[list(range(len(test)))]

    baseline = _batch_throughput(load_clfd(archive), batch)  # precision=None
    f32 = _batch_throughput(load_clfd(archive, precision="float32"), batch)
    f16 = _batch_throughput(load_clfd(archive, precision="float16"), batch)
    int8 = _batch_throughput(load_clfd(archive, precision="int8"), batch)
    speedup = int8 / baseline

    report()
    report(f"Quantized scoring throughput (batch={len(batch)}, "
           f"hidden=96, embed=64):")
    report(f"  full precision (float64) {baseline:8.0f} sessions/s")
    report(f"  float32                  {f32:8.0f} sessions/s  "
           f"({f32 / baseline:.2f}x)")
    report(f"  float16                  {f16:8.0f} sessions/s  "
           f"({f16 / baseline:.2f}x)")
    report(f"  int8                     {int8:8.0f} sessions/s  "
           f"({speedup:.2f}x)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"int8 scoring only {speedup:.2f}x the float path "
        f"(acceptance floor is {SPEEDUP_FLOOR}x)")


@pytest.mark.smoke
def test_int8_archive_is_smaller(quant_setup, report):
    import pathlib
    import tempfile

    archive, _, _ = quant_setup
    with tempfile.TemporaryDirectory() as tmp:
        from repro.quant import quantize_archive

        quantized = quantize_archive(archive, pathlib.Path(tmp) / "q")
        ratio = archive.stat().st_size / quantized.stat().st_size
        report()
        report(f"Archive size: full {archive.stat().st_size / 1024:.0f} KiB"
               f" -> int8 {quantized.stat().st_size / 1024:.0f} KiB "
               f"({ratio:.1f}x smaller)")
    assert ratio > 2.0  # float64 weights -> int8 payloads + f32 scales


@pytest.mark.smoke
def test_engine_throughput_and_p99_at_int8(quant_setup, report):
    """End-to-end engine numbers at both precisions: throughput + p99.

    Recorded, not floor-asserted — engine end-to-end includes queueing
    and GIL effects that make small ratios noisy on shared CI hosts;
    the kernel-level floor above is the enforced gate.
    """
    archive, _, payloads = quant_setup
    rows = {}
    for precision in (None, "int8"):
        config = ServeConfig(max_batch=CONCURRENCY, max_wait_ms=2.0,
                             precision=precision)
        with InferenceEngine.from_archive(archive, config) as engine:
            throughput = _engine_throughput(engine, payloads, CONCURRENCY)
            # Client-side single-request latencies (the engine itself
            # only times batches; the HTTP layer records per request).
            for payload in payloads[:32]:
                start = time.perf_counter()
                engine.score(payload)
                engine.metrics.record_request(time.perf_counter() - start)
            p99 = engine.metrics.latency_quantiles()["p99"]
            rows[engine.precision] = (throughput, p99)

    report()
    report(f"Engine end-to-end ({REQUESTS} requests, "
           f"concurrency={CONCURRENCY}):")
    for precision, (throughput, p99) in rows.items():
        report(f"  {precision:<8} {throughput:8.0f} req/s   "
               f"p99 {p99 * 1e3:7.2f} ms")
    (_, full_p99), (_, int8_p99) = rows.values()
    assert full_p99 > 0.0 and int8_p99 > 0.0
