"""Experiment runners for every table in the paper's evaluation.

Each ``run_table*`` function reproduces one artifact:

* Table I  — overall comparison under uniform noise;
* Table II — overall comparison under class-dependent noise;
* Table III — label-corrector TPR/TNR on the noisy training set;
* Tables IV/V — CLFD ablations under both noise models;
* §IV-B3 — training-latency comparison.

Runners return nested dicts of :class:`~repro.metrics.MetricSummary`
and can render themselves as text tables shaped like the paper's.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..baselines import BASELINES, Estimator
from ..core import CLFD, CLFDConfig
from ..data import (
    SessionDataset,
    apply_class_dependent_noise,
    apply_uniform_noise,
    cached_splits,
    make_dataset,
)
from ..metrics import MetricSummary, evaluate_detector, summarize_runs, true_rates
from ..train import seed_everything
from ..parallel import (
    GridExecutor,
    RunCache,
    SweepError,
    TaskSpec,
    format_timing_summary,
)
from .settings import CLASS_DEPENDENT_RATES, DATASETS, ExperimentSettings

__all__ = [
    "NoiseSpec",
    "uniform_noise",
    "class_dependent_noise",
    "estimator_registry",
    "run_single",
    "run_comparison",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_ablation",
    "run_table4",
    "run_table5",
    "run_latency",
    "ABLATIONS",
    "SweepError",
    "format_comparison_table",
    "format_ablation_table",
]

METRICS = ("f1", "fpr", "auc_roc")


class NoiseSpec:
    """A label-noise process to apply to a training set.

    ``kind``/``params`` are the serialisable description used by the
    parallel executor and the run cache; ``None`` kind marks a custom
    process (arbitrary callable) that can only run sequentially and
    uncached.
    """

    def __init__(self, label: str,
                 apply: Callable[[SessionDataset, np.random.Generator], None],
                 kind: str | None = None,
                 params: Sequence[float] = ()):
        self.label = label
        self._apply = apply
        self.kind = kind
        self.params = tuple(params)

    def __call__(self, dataset: SessionDataset,
                 rng: np.random.Generator) -> None:
        self._apply(dataset, rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NoiseSpec({self.label})"


def uniform_noise(eta: float) -> NoiseSpec:
    return NoiseSpec(f"eta={eta}",
                     lambda ds, rng: apply_uniform_noise(ds, eta, rng),
                     kind="uniform", params=(eta,))


def class_dependent_noise(eta_10: float = CLASS_DEPENDENT_RATES[0],
                          eta_01: float = CLASS_DEPENDENT_RATES[1],
                          ) -> NoiseSpec:
    return NoiseSpec(
        f"eta10={eta_10},eta01={eta_01}",
        lambda ds, rng: apply_class_dependent_noise(ds, eta_10, eta_01, rng),
        kind="class-dependent", params=(eta_10, eta_01),
    )


def estimator_registry(settings: ExperimentSettings
                       ) -> dict[str, Callable[[], Estimator]]:
    """Every model the harness can run, as Estimator factories.

    CLFD and the baselines enter one registry and are driven through
    the :class:`~repro.baselines.Estimator` protocol from here on —
    no per-model special cases downstream.
    """
    registry: dict[str, Callable[[], Estimator]] = {
        "CLFD": lambda: CLFD(settings.clfd_config()),
    }
    for name, cls in BASELINES.items():
        registry[name] = (lambda c=cls: c(settings.baseline_config()))
    return registry


def _model_factories(settings: ExperimentSettings,
                     models: Sequence[str]
                     ) -> dict[str, Callable[[], Estimator]]:
    registry = estimator_registry(settings)
    unknown = [name for name in models if name not in registry]
    if unknown:
        raise KeyError(f"unknown model(s) {unknown!r}; "
                       f"choose from {sorted(registry)}")
    return {name: registry[name] for name in models}


def _estimator_specs(settings: ExperimentSettings, models: Sequence[str]
                     ) -> dict[str, tuple[str, object]]:
    """Map model display names to picklable ``(estimator, config)`` pairs.

    These cross process boundaries and feed the run-cache key, unlike
    the closures of :func:`estimator_registry`.
    """
    known: dict[str, Callable[[], tuple[str, object]]] = {
        "CLFD": lambda: ("clfd", settings.clfd_config()),
    }
    for name in BASELINES:
        known[name] = (lambda n=name: (n, settings.baseline_config()))
    unknown = [name for name in models if name not in known]
    if unknown:
        raise KeyError(f"unknown model(s) {unknown!r}; "
                       f"choose from {sorted(known)}")
    return {name: known[name]() for name in models}


def run_single(model_factory: Callable[[], Estimator], dataset: str,
               noise: NoiseSpec, seed: int, scale: float) -> dict[str, float]:
    """Train one estimator on one noisy split; return test metrics.

    The split comes from the per-process memoized
    :func:`~repro.data.cached_splits` — the noise is applied to a
    private copy with the generator stream positioned exactly as if the
    split had just been generated, so results are bit-identical to the
    historical regenerate-every-cell path.
    """
    train, test, rng = cached_splits(dataset, seed, scale)
    noise(train, rng)
    model = model_factory()
    model.fit(train, rng=seed_everything(seed))
    labels, scores = model.predict(test)
    return evaluate_detector(test.labels(), labels, scores)


def _serializable(noises: Sequence[NoiseSpec]) -> bool:
    return all(n.kind is not None for n in noises)


def _execute_grid(specs: Sequence[TaskSpec], workers: int,
                  cache: RunCache | str | None, retries: int,
                  verbose: bool, coordinate: str | bool | None = None):
    """Run a spec grid through one shared executor; fail loudly at the end.

    The sweep itself is fault-isolated (every cell runs, successes are
    cached); only after it completes does a remaining failure raise
    :class:`SweepError`, so a re-run resumes from the cache and only
    recomputes the failed cells.  ``coordinate`` switches to the
    multi-host work-stealing tier: this process becomes the leader on
    that address and remote ``repro join`` workers can lease cells.
    """
    executor = GridExecutor(workers=workers, cache=cache, retries=retries,
                            progress=bool(verbose), coordinate=coordinate)
    cell_results = executor.run(specs)
    if verbose:  # pragma: no cover - console reporting
        print(format_timing_summary(cell_results, executor.last_wall_seconds),
              flush=True)
    failures = [r for r in cell_results if not r.ok]
    if failures:
        raise SweepError(failures)
    return cell_results


def run_comparison(settings: ExperimentSettings, noises: Sequence[NoiseSpec],
                   models: Sequence[str] | None = None,
                   datasets: Sequence[str] = DATASETS,
                   verbose: bool = False,
                   workers: int = 1,
                   cache: RunCache | str | None = None,
                   retries: int = 1,
                   coordinate: str | bool | None = None,
                   ) -> dict[str, dict[str, dict[str, dict[str, MetricSummary]]]]:
    """Grid of model x dataset x noise, aggregated over seeds.

    Executes through the shared :class:`~repro.parallel.GridExecutor`:
    ``workers`` fans the grid out over processes (1 = sequential, the
    default), ``cache`` (a directory path or :class:`RunCache`) skips
    cells already computed by a previous sweep, and a cell that still
    fails after ``retries`` extra attempts raises :class:`SweepError`
    once the rest of the sweep has completed.

    Returns ``results[model][dataset][noise.label][metric]``.
    """
    if models is None:
        models = ["CLFD"] + list(BASELINES)
    if not _serializable(noises):
        if workers > 1 or cache is not None or coordinate:
            raise ValueError(
                "custom NoiseSpec objects (kind=None) cannot cross process "
                "boundaries or be cache-keyed; run with workers=1 and "
                "cache=None")
        return _run_comparison_legacy(settings, noises, models, datasets,
                                      verbose)
    estimators = _estimator_specs(settings, models)
    specs, meta = [], []
    for model_name in models:
        estimator, config = estimators[model_name]
        for dataset in datasets:
            for noise in noises:
                for seed in range(settings.seeds):
                    specs.append(TaskSpec(
                        model=model_name, estimator=estimator, config=config,
                        dataset=dataset, noise_kind=noise.kind,
                        noise_params=noise.params, seed=seed,
                        scale=settings.scale))
                    meta.append((model_name, dataset, noise))
    cell_results = _execute_grid(specs, workers, cache, retries, verbose,
                                 coordinate=coordinate)

    grouped: dict[tuple, list[dict]] = {}
    for (model_name, dataset, noise), cell in zip(meta, cell_results):
        grouped.setdefault((model_name, dataset, noise.label),
                           []).append(cell.metrics)
    results: dict = {m: {d: {} for d in datasets} for m in models}
    for model_name in models:
        for dataset in datasets:
            for noise in noises:
                runs = grouped[(model_name, dataset, noise.label)]
                summary = {metric: summarize_runs([r[metric] for r in runs])
                           for metric in METRICS}
                results[model_name][dataset][noise.label] = summary
                if verbose:  # pragma: no cover - console reporting
                    print(f"{model_name:10s} {dataset:14s} {noise.label:22s} "
                          + " ".join(f"{k}={v!s}" for k, v in summary.items()),
                          flush=True)
    return results


def _run_comparison_legacy(settings: ExperimentSettings,
                           noises: Sequence[NoiseSpec],
                           models: Sequence[str],
                           datasets: Sequence[str],
                           verbose: bool) -> dict:
    """Sequential in-process grid for non-serialisable noise processes."""
    factories = _model_factories(settings, models)
    results: dict = {m: {d: {} for d in datasets} for m in models}
    for model_name, factory in factories.items():
        for dataset in datasets:
            for noise in noises:
                runs = [run_single(factory, dataset, noise, seed,
                                   settings.scale)
                        for seed in range(settings.seeds)]
                summary = {metric: summarize_runs([r[metric] for r in runs])
                           for metric in METRICS}
                results[model_name][dataset][noise.label] = summary
                if verbose:  # pragma: no cover - console reporting
                    print(f"{model_name:10s} {dataset:14s} {noise.label:22s} "
                          + " ".join(f"{k}={v!s}" for k, v in summary.items()),
                          flush=True)
    return results


def run_table1(settings: ExperimentSettings | None = None,
               models: Sequence[str] | None = None,
               verbose: bool = False, **executor_kwargs) -> dict:
    """Table I: uniform noise η sweep over all models and datasets."""
    settings = settings or ExperimentSettings.from_env()
    noises = [uniform_noise(eta) for eta in settings.etas]
    return run_comparison(settings, noises, models=models, verbose=verbose,
                          **executor_kwargs)


def run_table2(settings: ExperimentSettings | None = None,
               models: Sequence[str] | None = None,
               verbose: bool = False, **executor_kwargs) -> dict:
    """Table II: class-dependent noise (η₁₀=0.3, η₀₁=0.45)."""
    settings = settings or ExperimentSettings.from_env()
    return run_comparison(settings, [class_dependent_noise()], models=models,
                          verbose=verbose, **executor_kwargs)


def run_table3(settings: ExperimentSettings | None = None,
               verbose: bool = False,
               workers: int = 1,
               cache: RunCache | str | None = None,
               retries: int = 1,
               coordinate: str | bool | None = None,
               ) -> dict[str, dict[str, dict[str, MetricSummary]]]:
    """Table III: label-corrector TPR/TNR on the noisy training set.

    Returns ``results[dataset][noise.label]["tpr"/"tnr"]``.
    """
    settings = settings or ExperimentSettings.from_env()
    noises = [uniform_noise(0.45), class_dependent_noise()]
    config = settings.clfd_config()
    specs, meta = [], []
    for dataset in DATASETS:
        for noise in noises:
            for seed in range(settings.seeds):
                specs.append(TaskSpec(
                    model="CLFD", estimator="clfd", config=config,
                    dataset=dataset, noise_kind=noise.kind,
                    noise_params=noise.params, seed=seed,
                    scale=settings.scale, measure="correction_rates"))
                meta.append((dataset, noise))
    cell_results = _execute_grid(specs, workers, cache, retries, verbose,
                                 coordinate=coordinate)

    grouped: dict[tuple, dict[str, list[float]]] = {}
    for (dataset, noise), cell in zip(meta, cell_results):
        rates = grouped.setdefault((dataset, noise.label),
                                   {"tpr": [], "tnr": []})
        rates["tpr"].append(cell.metrics["tpr"])
        rates["tnr"].append(cell.metrics["tnr"])
    results: dict = {}
    for dataset in DATASETS:
        results[dataset] = {}
        for noise in noises:
            rates = grouped[(dataset, noise.label)]
            results[dataset][noise.label] = {
                "tpr": summarize_runs(rates["tpr"]),
                "tnr": summarize_runs(rates["tnr"]),
            }
            if verbose:  # pragma: no cover
                r = results[dataset][noise.label]
                print(f"{dataset:14s} {noise.label:22s} "
                      f"TPR={r['tpr']!s} TNR={r['tnr']!s}", flush=True)
    return results


# Table IV/V rows -> config overrides (see CLFDConfig docstring).
ABLATIONS: dict[str, dict] = {
    "CLFD": {},
    "w/o LC": {"use_label_corrector": False},
    "w/o mixup-GCE": {"classifier_loss": "gce"},
    "w/o GCE loss": {"classifier_loss": "cce"},
    "w/o FD": {"use_fraud_detector": False},
    "w/o L_Sup": {"supcon_variant": "unweighted"},
    "w/o classifier (FD)": {"inference": "centroid"},
}


def run_ablation(noise: NoiseSpec, settings: ExperimentSettings | None = None,
                 variants: Sequence[str] | None = None,
                 datasets: Sequence[str] = DATASETS,
                 verbose: bool = False,
                 workers: int = 1,
                 cache: RunCache | str | None = None,
                 retries: int = 1,
                 coordinate: str | bool | None = None) -> dict:
    """Shared engine for Tables IV and V.

    Returns ``results[variant][dataset][metric]``.
    """
    settings = settings or ExperimentSettings.from_env()
    variants = list(variants) if variants else list(ABLATIONS)
    base_config = settings.clfd_config()
    if not _serializable([noise]):
        if workers > 1 or cache is not None or coordinate:
            raise ValueError(
                "custom NoiseSpec (kind=None) cannot run with workers>1 "
                "or a run cache; use uniform_noise/class_dependent_noise")
        return _run_ablation_legacy(noise, settings, variants, datasets,
                                    base_config, verbose)

    specs, meta = [], []
    for variant in variants:
        overrides = ABLATIONS[variant]
        config = CLFDConfig(**{**base_config.__dict__, **overrides})
        for dataset in datasets:
            for seed in range(settings.seeds):
                specs.append(TaskSpec(
                    model=variant, estimator="clfd", config=config,
                    dataset=dataset, noise_kind=noise.kind,
                    noise_params=noise.params, seed=seed,
                    scale=settings.scale))
                meta.append((variant, dataset))
    cell_results = _execute_grid(specs, workers, cache, retries, verbose,
                                 coordinate=coordinate)

    grouped: dict[tuple, list[dict]] = {}
    for (variant, dataset), cell in zip(meta, cell_results):
        grouped.setdefault((variant, dataset), []).append(cell.metrics)
    results: dict = {}
    for variant in variants:
        results[variant] = {}
        for dataset in datasets:
            runs = grouped[(variant, dataset)]
            results[variant][dataset] = {
                metric: summarize_runs([r[metric] for r in runs])
                for metric in METRICS
            }
            if verbose:  # pragma: no cover
                r = results[variant][dataset]
                print(f"{variant:20s} {dataset:14s} "
                      + " ".join(f"{k}={v!s}" for k, v in r.items()),
                      flush=True)
    return results


def _run_ablation_legacy(noise, settings, variants, datasets, base_config,
                         verbose) -> dict:
    """Sequential ablation path for non-serialisable noise callables."""
    results: dict = {}
    for variant in variants:
        overrides = ABLATIONS[variant]
        results[variant] = {}
        for dataset in datasets:
            runs = []
            for seed in range(settings.seeds):
                config = CLFDConfig(**{**base_config.__dict__, **overrides})
                runs.append(run_single(lambda: CLFD(config), dataset, noise,
                                       seed, settings.scale))
            results[variant][dataset] = {
                metric: summarize_runs([r[metric] for r in runs])
                for metric in METRICS
            }
            if verbose:  # pragma: no cover
                r = results[variant][dataset]
                print(f"{variant:20s} {dataset:14s} "
                      + " ".join(f"{k}={v!s}" for k, v in r.items()),
                      flush=True)
    return results


def run_table4(settings: ExperimentSettings | None = None,
               **kwargs) -> dict:
    """Table IV: ablations under uniform noise η=0.45."""
    return run_ablation(uniform_noise(0.45), settings, **kwargs)


def run_table5(settings: ExperimentSettings | None = None,
               **kwargs) -> dict:
    """Table V: ablations under class-dependent noise."""
    return run_ablation(class_dependent_noise(), settings, **kwargs)


def run_latency(settings: ExperimentSettings | None = None,
                dataset: str = "cert", eta: float = 0.3,
                models: Sequence[str] | None = None,
                verbose: bool = False) -> dict[str, float]:
    """§IV-B3: wall-clock training time per model, in seconds.

    Absolute numbers are hardware-specific; the paper's claim is the
    *relative* cost — supervised-contrastive models (CLFD, Sel-CL, CTRR)
    cost a multiple of the rest.
    """
    settings = settings or ExperimentSettings.from_env()
    if models is None:
        models = ["CLFD"] + list(BASELINES)
    factories = _model_factories(settings, models)
    rng = seed_everything(0)
    train, _ = make_dataset(dataset, rng, scale=settings.scale)
    apply_uniform_noise(train, eta, rng)
    latencies: dict[str, float] = {}
    for name, factory in factories.items():
        model = factory()
        start = time.perf_counter()
        model.fit(train, rng=seed_everything(0))
        latencies[name] = time.perf_counter() - start
        if verbose:  # pragma: no cover
            print(f"{name:10s} {latencies[name]:8.2f}s", flush=True)
    return latencies


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_comparison_table(results: dict, title: str) -> str:
    """Render run_comparison output like the paper's Tables I/II."""
    lines = [title]
    datasets = list(next(iter(results.values())))
    header = f"{'Model':12s} {'Noise':22s}"
    for dataset in datasets:
        header += f" | {dataset:^26s}"
    lines.append(header)
    sub = f"{'':12s} {'':22s}"
    for _ in datasets:
        sub += f" | {'F1':>8s} {'FPR':>8s} {'AUC':>8s}"
    lines.append(sub)
    lines.append("-" * len(sub))
    for model, per_dataset in results.items():
        noise_labels = list(next(iter(per_dataset.values())))
        for noise_label in noise_labels:
            row = f"{model:12s} {noise_label:22s}"
            for dataset in datasets:
                cell = per_dataset[dataset][noise_label]
                row += (f" | {cell['f1']!s:>8s} {cell['fpr']!s:>8s} "
                        f"{cell['auc_roc']!s:>8s}")
            lines.append(row)
    return "\n".join(lines)


def format_ablation_table(results: dict, title: str) -> str:
    """Render run_ablation output like the paper's Tables IV/V."""
    lines = [title]
    datasets = list(next(iter(results.values())))
    header = f"{'Variant':22s}"
    for dataset in datasets:
        header += f" | {dataset:^26s}"
    lines.append(header)
    lines.append("-" * len(header))
    for variant, per_dataset in results.items():
        row = f"{variant:22s}"
        for dataset in datasets:
            cell = per_dataset[dataset]
            row += (f" | {cell['f1']!s:>8s} {cell['fpr']!s:>8s} "
                    f"{cell['auc_roc']!s:>8s}")
        lines.append(row)
    return "\n".join(lines)
