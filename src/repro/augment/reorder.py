"""Session-reordering augmentation (CLDet [3], used in §IV-A2).

For each session, a random sub-sequence of ``sub_len`` consecutive
activities is selected and its activities are shuffled.  This creates a
second "view" of the session for SimCLR pre-training without changing
its activity multiset.
"""

from __future__ import annotations

import numpy as np

from ..data.sessions import Session

__all__ = ["reorder_session", "reorder_ids"]


def reorder_session(session: Session, rng: np.random.Generator,
                    sub_len: int = 3) -> Session:
    """Return an augmented copy of ``session`` with one shuffled window."""
    augmented = Session(
        activities=reorder_ids(np.asarray(session.activities), rng, sub_len).tolist(),
        label=session.label,
        noisy_label=session.noisy_label,
        session_id=f"{session.session_id}+aug",
        user=session.user,
    )
    return augmented


def reorder_ids(ids: np.ndarray, rng: np.random.Generator,
                sub_len: int = 3, length: int | None = None) -> np.ndarray:
    """Shuffle a random window of ``sub_len`` entries in a 1-D id array.

    ``length`` restricts the eligible region (for padded rows).  If the
    effective sequence is shorter than ``sub_len``, the whole sequence is
    shuffled instead — every session gets *some* augmentation.
    """
    if sub_len < 2:
        raise ValueError("sub_len must be >= 2 to have any effect")
    ids = np.array(ids, copy=True)
    n = int(length) if length is not None else len(ids)
    n = min(n, len(ids))
    if n <= 1:
        return ids
    window = min(sub_len, n)
    start = int(rng.integers(0, n - window + 1))
    segment = ids[start:start + window]
    rng.shuffle(segment)
    ids[start:start + window] = segment
    return ids
