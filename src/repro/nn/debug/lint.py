"""Structural lint over a captured autograd graph (``repro lint-graph``).

The fuzzer (:mod:`repro.nn.debug.fuzz`) exercises ops in isolation; this
module checks the *composition* — the actual graph a training step
builds.  :func:`capture_graph` walks the parent links of a loss tensor
(before ``backward()`` frees them) and :func:`lint_graph` runs four
checks over the captured nodes:

* **detached-param** (error): a parameter that requires gradients but is
  not reachable from the loss — its gradient will silently stay ``None``
  and the optimizer will never move it.
* **dtype-mixing** (error): a node whose output dtype differs from one
  of its floating inputs without an explicit ``astype`` — the signature
  of a silent float32→float64 upcast (or a precision-losing downcast).
* **overlapping-views** (error) / **shared-buffer** (warning): sibling
  views of one buffer, as produced by ``split``/``chunk``/basic
  indexing.  Overlapping siblings double-route gradients through the
  same memory; non-overlapping fan-out is legal but flagged as a
  mutation hazard.
* **unfuzzed-op** (error): the graph contains an op whose backward
  closure is not covered by any registered fuzz spec — new ops must land
  with fuzz coverage (ISSUE 5 acceptance criterion).

``python -m repro lint-graph`` builds a representative CLFD training
step (fused-LSTM encoder → projection → supervised-contrastive loss +
GCE classifier head) and lints it, exiting 2 if any error-severity
issue is found.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from .. import tensor as _tensor
from ..profiler import _op_name
from ..tensor import Tensor

__all__ = ["LintIssue", "capture_graph", "lint_graph", "lint_demo_graph"]


@dataclasses.dataclass(frozen=True)
class LintIssue:
    """One finding from :func:`lint_graph`."""

    check: str     # detached-param | dtype-mixing | overlapping-views |
                   # shared-buffer | unfuzzed-op
    severity: str  # "error" | "warning"
    message: str
    op: str = ""

    def __str__(self) -> str:
        tag = f" ({self.op})" if self.op else ""
        return f"[{self.severity}] {self.check}{tag}: {self.message}"


def _node_op(node: Tensor) -> str:
    backward = node._backward
    if backward is None:
        return "leaf"
    if backward is _tensor._FREED_GRAPH:
        return "<freed>"
    return _op_name(backward)


def capture_graph(root) -> list[Tensor]:
    """Every node reachable from ``root`` (a tensor or sequence of
    tensors) through parent links, deduplicated, root-first.

    Must run *before* ``backward()`` (or after ``backward(retain_graph=
    True)``): the default backward frees parent links, leaving nothing
    to walk.
    """
    roots = list(root) if isinstance(root, (list, tuple)) else [root]
    for r in roots:
        if r._backward is _tensor._FREED_GRAPH:
            raise ValueError(
                "graph has been freed by backward(); capture it before "
                "backward() or pass retain_graph=True")
    seen: set[int] = set()
    order: list[Tensor] = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        order.append(node)
        stack.extend(node._prev)
    return order


def _ultimate_base(arr: np.ndarray) -> np.ndarray:
    while arr.base is not None:
        arr = arr.base
    return arr


def _check_detached_params(nodes: Sequence[Tensor],
                           parameters: Iterable[Tensor]
                           ) -> list[LintIssue]:
    reachable = {id(n) for n in nodes}
    issues = []
    for i, param in enumerate(parameters):
        label = param.name or f"parameter #{i} (shape {param.data.shape})"
        if not param.requires_grad:
            issues.append(LintIssue(
                "detached-param", "error",
                f"{label} has requires_grad=False — the optimizer will "
                f"never update it"))
        elif id(param) not in reachable:
            issues.append(LintIssue(
                "detached-param", "error",
                f"{label} requires gradients but is not reachable from "
                f"the loss — its .grad will stay None"))
    return issues


def _check_dtype_mixing(nodes: Sequence[Tensor]) -> list[LintIssue]:
    issues = []
    for node in nodes:
        if not node._prev:
            continue
        op = _node_op(node)
        if op == "astype":       # the one op whose job is dtype change
            continue
        out_dtype = node.data.dtype
        in_dtypes = {p.data.dtype for p in node._prev
                     if np.issubdtype(p.data.dtype, np.floating)}
        mixed = in_dtypes - {out_dtype}
        if mixed or len(in_dtypes) > 1:
            described = ", ".join(sorted(str(d) for d in in_dtypes))
            issues.append(LintIssue(
                "dtype-mixing", "error",
                f"inputs ({described}) vs output ({out_dtype}) — a "
                f"silent promotion; use astype() to make the cast "
                f"explicit", op=op))
    return issues


def _check_shared_buffers(nodes: Sequence[Tensor]) -> list[LintIssue]:
    # Sibling views: nodes whose data is a view into their single
    # parent's buffer (split/chunk pieces, basic-index slices).
    views_by_parent: dict[int, list[Tensor]] = {}
    for node in nodes:
        if len(node._prev) != 1 or node.data.base is None:
            continue
        parent = node._prev[0]
        if _ultimate_base(node.data) is _ultimate_base(parent.data):
            views_by_parent.setdefault(id(parent), []).append(node)

    issues = []
    for siblings in views_by_parent.values():
        if len(siblings) < 2:
            continue
        overlap = False
        for i, a in enumerate(siblings):
            for b in siblings[i + 1:]:
                if np.shares_memory(a.data, b.data):
                    overlap = True
                    issues.append(LintIssue(
                        "overlapping-views", "error",
                        f"two views of one buffer overlap "
                        f"(shapes {a.data.shape} and {b.data.shape}) — "
                        f"gradients route through shared memory twice",
                        op=_node_op(a)))
        if not overlap:
            issues.append(LintIssue(
                "shared-buffer", "warning",
                f"{len(siblings)} views share one parent buffer "
                f"(split/chunk fan-out) — in-place writes to any one "
                f"of them would corrupt the others",
                op=_node_op(siblings[0])))
    return issues


def _check_unfuzzed_ops(nodes: Sequence[Tensor]) -> list[LintIssue]:
    from .fuzz import covered_graph_ops

    covered = covered_graph_ops()
    seen: set[str] = set()
    issues = []
    for node in nodes:
        if not node._prev:
            continue
        op = _node_op(node)
        if op in covered or op in seen or op == "<freed>":
            continue
        seen.add(op)
        issues.append(LintIssue(
            "unfuzzed-op", "error",
            f"op {op!r} appears in the graph but no fuzz spec covers "
            f"it — register one in repro.nn.debug.fuzz", op=op))
    return issues


def lint_graph(root, parameters: Iterable[Tensor] = ()) -> list[LintIssue]:
    """Run all lint checks over the graph reachable from ``root``.

    ``parameters`` (optional) are the tensors the optimizer will update;
    they power the detached-param check.  Errors first, then warnings.
    """
    nodes = capture_graph(root)
    issues = (_check_detached_params(nodes, parameters)
              + _check_dtype_mixing(nodes)
              + _check_shared_buffers(nodes)
              + _check_unfuzzed_ops(nodes))
    return sorted(issues, key=lambda i: (i.severity != "error", i.check))


def _demo_training_step() -> tuple[Tensor, list[Tensor]]:
    """A miniature CLFD training step: fused-LSTM encoder over a synthetic
    session batch, L2-normalized projection into sup-con loss, plus a
    GCE-trained classifier head — the same op mix the real Trainer runs.
    """
    from ...losses.contrastive import sup_con_loss
    from ...losses.robust import gce_loss
    from ..functional import l2_normalize, one_hot, softmax
    from ..fused import fused_lstm_sequence

    rng = np.random.default_rng(0)
    n, t, d, h = 6, 4, 5, 4
    x = Tensor(rng.normal(size=(n, t, d)))
    h0 = Tensor(np.zeros((n, h)))
    c0 = Tensor(np.zeros((n, h)))
    w_x = Tensor(rng.normal(size=(d, 4 * h)) * 0.3, requires_grad=True,
                 name="enc.w_x")
    w_h = Tensor(rng.normal(size=(h, 4 * h)) * 0.3, requires_grad=True,
                 name="enc.w_h")
    bias = Tensor(np.zeros(4 * h), requires_grad=True, name="enc.bias")
    _, h_last, _ = fused_lstm_sequence(x, h0, c0, w_x, w_h, bias)

    w_proj = Tensor(rng.normal(size=(h, 3)) * 0.3, requires_grad=True,
                    name="proj.w")
    z = l2_normalize(h_last.matmul(w_proj))
    labels = rng.integers(0, 2, size=n)
    labels[:2] = (0, 1)
    con = sup_con_loss(z, labels, temperature=0.5,
                       confidences=rng.uniform(0.5, 1.0, size=n))

    w_clf = Tensor(rng.normal(size=(h, 2)) * 0.3, requires_grad=True,
                   name="clf.w")
    probs = softmax(h_last.matmul(w_clf))
    gce = gce_loss(probs, one_hot(labels, 2), q=0.7)

    loss = con + gce
    return loss, [w_x, w_h, bias, w_proj, w_clf]


def lint_demo_graph(verbose: bool = False) -> list[LintIssue]:
    """Build the demo CLFD training-step graph and lint it."""
    loss, params = _demo_training_step()
    issues = lint_graph(loss, params)
    if verbose:
        nodes = capture_graph(loss)
        ops = sorted({_node_op(n) for n in nodes if n._prev})
        print(f"lint-graph: {len(nodes)} nodes, "
              f"{len(ops)} distinct ops: {', '.join(ops)}")
        if issues:
            for issue in issues:
                print(f"  {issue}")
        else:
            print("  no issues found")
    return issues
