"""repro.serve: micro-batched inference serving for trained CLFD models.

The deployment story the paper gestures at ("the FCNN head is shipped
to an inference service") made concrete:

* :class:`ServeConfig` — the one frozen configuration object every
  serve entry point (engines, server, CLI) constructs through;
* :class:`InferenceEngine` — warm-loads a persisted archive and scores
  raw sessions with request micro-batching; rolling
  :meth:`~InferenceEngine.reload_model` without dropping requests;
* :class:`ClusterEngine` — shards sessions across N scoring worker
  processes (consistent hash on ``session_id``) that map one shared
  copy of the weights (:class:`SharedArchive`);
* :class:`MicroBatcher` — coalesces concurrent single-session requests
  into padded batches (bounded queue = backpressure);
* :class:`TenantRateLimiter` — per-tenant token buckets in front of the
  queue, so one noisy tenant cannot starve the rest;
* :class:`ServingServer` / :func:`run_server` — stdlib HTTP front end
  (versioned: ``/v1/score``, ``/v1/healthz``, ``/v1/metrics``,
  ``/v1/reload``; unversioned paths 307-redirect), started from the
  CLI with ``python -m repro serve --model model.npz [--workers N]``;
* :mod:`~repro.serve.schemas` — request validation with structured,
  client-visible errors, all serialised through one error envelope.
"""

from .batcher import MicroBatcher, QueueFullError
from .cluster import ClusterEngine, HashRing
from .config import ServeConfig, resolve_config
from .engine import InferenceEngine
from .metrics import ServingMetrics, merge_snapshots
from .ratelimit import TenantRateLimiter, TokenBucket
from .schemas import (
    RawSession,
    RequestError,
    ScoreResult,
    parse_score_request,
    parse_session,
)
from .server import API_PREFIX, ServingServer, run_server
from .shm import SharedArchive

__all__ = [
    "ServeConfig", "resolve_config",
    "InferenceEngine", "ClusterEngine", "HashRing", "SharedArchive",
    "MicroBatcher", "QueueFullError",
    "ServingMetrics", "merge_snapshots",
    "TenantRateLimiter", "TokenBucket",
    "ServingServer", "run_server", "API_PREFIX",
    "RawSession", "RequestError", "ScoreResult",
    "parse_session", "parse_score_request",
]
