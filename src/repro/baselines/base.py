"""Shared infrastructure for the eight baselines of §IV-A3.

Every baseline implements ``fit(train, rng)`` and
``predict(test) -> (labels, scores)``, mirroring :class:`repro.core.CLFD`,
so the experiment harness can treat all models uniformly.

The paper adapts each baseline to sessions by replacing its image
network with a two-hidden-layer LSTM session encoder (§IV-A3); the
:class:`EncoderClassifier` building block below is that adaptation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..core.encoder import SessionEncoder, SoftmaxClassifier
from ..data.pipeline import SessionVectorizer
from ..data.sessions import SessionDataset, iter_batches
from ..data.word2vec import Word2VecConfig

__all__ = ["BaselineConfig", "BaselineModel", "EncoderClassifier"]


@dataclasses.dataclass
class BaselineConfig:
    """Hyper-parameters shared across baselines (mirrors CLFDConfig)."""

    embedding_dim: int = 16
    hidden_size: int = 24
    lstm_layers: int = 2
    batch_size: int = 64
    lr: float = 0.005
    epochs: int = 10
    grad_clip: float = 5.0
    word2vec: Word2VecConfig | None = None

    def __post_init__(self):
        if self.word2vec is None:
            self.word2vec = Word2VecConfig(dim=self.embedding_dim, epochs=2)
        if self.word2vec.dim != self.embedding_dim:
            raise ValueError("word2vec.dim must equal embedding_dim")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


class BaselineModel:
    """Abstract baseline: fit on noisy labels, predict labels + scores."""

    name = "baseline"

    def __init__(self, config: BaselineConfig | None = None):
        self.config = config or BaselineConfig()
        self.vectorizer: SessionVectorizer | None = None
        self._fitted = False

    def fit(self, train: SessionDataset,
            rng: np.random.Generator | None = None) -> "BaselineModel":
        rng = rng or np.random.default_rng(0)
        self.vectorizer = SessionVectorizer.fit(
            train, config=self.config.word2vec, rng=rng
        )
        self._fit(train, rng)
        self._fitted = True
        return self

    def predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__}.fit must be called first")
        return self._predict(dataset)

    # Subclass hooks -----------------------------------------------------
    def _fit(self, train: SessionDataset, rng: np.random.Generator) -> None:
        raise NotImplementedError

    def _predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class EncoderClassifier(nn.Module):
    """LSTM session encoder + FCNN head trained end to end.

    The §IV-A3 adaptation applied to the image-domain baselines: their
    ResNets are replaced by this sequence model.
    """

    def __init__(self, config: BaselineConfig, rng: np.random.Generator):
        super().__init__()
        self.encoder = SessionEncoder(config.embedding_dim, config.hidden_size,
                                      rng, num_layers=config.lstm_layers)
        self.head = SoftmaxClassifier(config.hidden_size, rng)

    def forward(self, x, lengths=None) -> nn.Tensor:
        """Logits for a batch of embedded sessions."""
        return self.head(self.encoder(x, lengths))

    def probs(self, x, lengths=None) -> nn.Tensor:
        return nn.softmax(self.forward(x, lengths), axis=-1)

    def predict_dataset(self, dataset: SessionDataset,
                        vectorizer: SessionVectorizer,
                        batch_size: int = 256) -> tuple[np.ndarray, np.ndarray]:
        """Label + malicious-score inference over a whole dataset."""
        all_probs = []
        for batch in iter_batches(dataset, batch_size):
            x, lengths = vectorizer.transform(dataset, indices=batch)
            with nn.no_grad():
                all_probs.append(self.probs(x, lengths).data)
        probs = np.concatenate(all_probs, axis=0)
        return probs.argmax(axis=1), probs[:, 1]

    def probs_dataset(self, dataset: SessionDataset,
                      vectorizer: SessionVectorizer,
                      batch_size: int = 256) -> np.ndarray:
        """Softmax probabilities for every session (no grad)."""
        all_probs = []
        for batch in iter_batches(dataset, batch_size):
            x, lengths = vectorizer.transform(dataset, indices=batch)
            with nn.no_grad():
                all_probs.append(self.probs(x, lengths).data)
        return np.concatenate(all_probs, axis=0)
