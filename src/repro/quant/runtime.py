"""NumPy inference runtime for quantized (v3) archives.

:class:`QuantizedCLFD` is the low-precision counterpart of a fitted
:class:`~repro.core.CLFD`: it exposes the same inference surface the
serving tier consumes (``vectorizer`` / ``predict`` /
``predict_proba`` / ``config``) but keeps its weights in their storage
form — int8 payloads with per-channel float32 scales, row-scaled
float16 embedding tables — and runs the forward pass in plain float32
NumPy with no autograd graph.

Input projections (LSTM/GRU gates, the FCNN layers, the attention
projection) go through the fused dequantize-on-the-fly GEMM
:func:`repro.nn.quant.quant_matmul_np`, so the float expansion of an
int8 weight is never materialised on the hot path.  Recurrent matrices
are the exception: a reset-gated product does not commute with
per-column scales, so each :class:`QuantWeight` dequantizes its
recurrent matrix once (cached) and the timestep loop reuses it.

Every operation here is deterministic NumPy with fixed shapes (the
serving engine pads batches to ``max_batch`` rows), which is what makes
quantized scores bit-identical across cluster workers and across a
rolling reload at fixed precision.

The forward math mirrors :mod:`repro.core.encoder` /
:mod:`repro.nn.lstm` exactly — gate order ``[input, forget, cell,
output]``, GRU ``[reset, update]`` with a separate candidate
projection, BiLSTM's reversed-time backward pass, masked mean pooling
with a ``max(length, 1)`` denominator, additive attention with the
``-1e9`` padding bias and max-shifted softmax, LeakyReLU slope 0.01 —
only the parameter storage and compute dtype differ.
"""

from __future__ import annotations

import numpy as np

from ..core.config import CLFDConfig
from ..data.pipeline import SessionVectorizer
from ..data.sessions import SessionDataset, iter_batches
from ..data.vocab import Vocabulary
from ..data.word2vec import Word2VecConfig
from ..nn.quant import dequantize_np, fp16_embed_np, quant_matmul_np
from .quantize import SCALE_SUFFIX

__all__ = ["QuantWeight", "QuantizedSkipGram", "QuantizedCLFD",
           "build_quantized"]

_F32 = np.float32


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class QuantWeight:
    """One weight matrix in its storage form, with a fused projection.

    ``kind`` is the archive storage kind (``int8`` / ``fp16`` /
    ``raw``); ``payload`` the stored matrix; ``scales`` the per-column
    float32 scales for ``int8``.  :meth:`project` is the hot path;
    :meth:`dense` lazily caches the float32 expansion for recurrent
    use.
    """

    __slots__ = ("kind", "payload", "scales", "_dense")

    def __init__(self, kind: str, payload: np.ndarray,
                 scales: np.ndarray | None = None):
        if kind == "int8" and scales is None:
            raise ValueError("int8 weight requires scales")
        self.kind = kind
        self.payload = payload
        self.scales = scales
        self._dense: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.payload.shape

    def project(self, x: np.ndarray,
                bias: np.ndarray | None = None) -> np.ndarray:
        """``x @ W (+ bias)`` without materialising a float W for int8."""
        if self.kind == "int8":
            return quant_matmul_np(x, self.payload, self.scales, bias)
        out = x @ self.dense()
        if bias is not None:
            out += bias
        return out

    def dense(self) -> np.ndarray:
        """The float32 expansion (cached; recurrent matrices only)."""
        if self._dense is None:
            if self.kind == "int8":
                self._dense = dequantize_np(self.payload, self.scales)
            elif self.payload.dtype == _F32:
                self._dense = self.payload
            else:
                self._dense = self.payload.astype(_F32)
        return self._dense


class QuantizedSkipGram:
    """Row-scaled float16 embedding table behind the SkipGram interface.

    Drop-in for :class:`~repro.data.word2vec.SkipGramModel` inside a
    :class:`~repro.data.pipeline.SessionVectorizer`: lookups expand to
    float32 through :func:`repro.nn.quant.fp16_embed_np`.
    """

    def __init__(self, table: np.ndarray, scales: np.ndarray):
        if table.dtype != np.float16:
            raise TypeError(f"QuantizedSkipGram table must be float16, "
                            f"got {table.dtype}")
        self.table = table
        self.scales = scales

    @property
    def dim(self) -> int:
        return self.table.shape[1]

    @property
    def vocab_size(self) -> int:
        return self.table.shape[0]

    def embed_ids(self, ids: np.ndarray) -> np.ndarray:
        return fp16_embed_np(ids, self.table, self.scales)


# ----------------------------------------------------------------------
# Encoder stacks (forward math mirrors repro.nn.lstm / gru / bilstm)
# ----------------------------------------------------------------------
class _QuantLSTMStack:
    """N stacked LSTM layers; cells are dicts of QuantWeight/bias."""

    def __init__(self, cells: list[dict]):
        self.cells = cells

    def forward(self, x: np.ndarray) -> np.ndarray:
        for cell in self.cells:
            x = self._layer(x, cell)
        return x

    @staticmethod
    def _layer(x: np.ndarray, cell: dict) -> np.ndarray:
        batch, time, _ = x.shape
        hidden = cell["bias"].shape[0] // 4
        proj = cell["w_x"].project(x.reshape(batch * time, -1),
                                   cell["bias"])
        proj = proj.reshape(batch, time, 4 * hidden)
        w_h = cell["w_h"].dense()
        h = np.zeros((batch, hidden), dtype=_F32)
        c = np.zeros((batch, hidden), dtype=_F32)
        out = np.empty((batch, time, hidden), dtype=_F32)
        for t in range(time):
            gates = proj[:, t] + h @ w_h
            i = _sigmoid(gates[:, :hidden])
            f = _sigmoid(gates[:, hidden:2 * hidden])
            g = np.tanh(gates[:, 2 * hidden:3 * hidden])
            o = _sigmoid(gates[:, 3 * hidden:])
            c = f * c + i * g
            h = o * np.tanh(c)
            out[:, t] = h
        return out


class _QuantGRUStack:
    """N stacked GRU layers (reset/update gates + separate candidate)."""

    def __init__(self, cells: list[dict]):
        self.cells = cells

    def forward(self, x: np.ndarray) -> np.ndarray:
        for cell in self.cells:
            x = self._layer(x, cell)
        return x

    @staticmethod
    def _layer(x: np.ndarray, cell: dict) -> np.ndarray:
        batch, time, _ = x.shape
        hidden = cell["bias"].shape[0] // 2
        flat = x.reshape(batch * time, -1)
        proj_g = cell["w_x"].project(flat, cell["bias"])
        proj_g = proj_g.reshape(batch, time, 2 * hidden)
        proj_c = cell["w_xc"].project(flat, cell["bias_c"])
        proj_c = proj_c.reshape(batch, time, hidden)
        w_h = cell["w_h"].dense()
        w_hc = cell["w_hc"].dense()
        h = np.zeros((batch, hidden), dtype=_F32)
        out = np.empty((batch, time, hidden), dtype=_F32)
        for t in range(time):
            gates = proj_g[:, t] + h @ w_h
            r = _sigmoid(gates[:, :hidden])
            z = _sigmoid(gates[:, hidden:])
            candidate = np.tanh(proj_c[:, t] + (r * h) @ w_hc)
            h = z * h + (1.0 - z) * candidate
            out[:, t] = h
        return out


class _QuantBiLSTMStack:
    """Forward + reversed-time LSTM stacks, concatenated per step."""

    def __init__(self, forward_cells: list[dict],
                 backward_cells: list[dict]):
        self.forward_stack = _QuantLSTMStack(forward_cells)
        self.backward_stack = _QuantLSTMStack(backward_cells)

    def forward(self, x: np.ndarray) -> np.ndarray:
        fwd = self.forward_stack.forward(x)
        bwd = self.backward_stack.forward(
            np.ascontiguousarray(x[:, ::-1, :]))[:, ::-1, :]
        return np.concatenate([fwd, bwd], axis=2)


class _QuantEncoder:
    """Recurrent stack + pooling, mirroring SessionEncoder.forward."""

    def __init__(self, stack, pooling: str,
                 attention_proj: QuantWeight | None = None,
                 attention_query: np.ndarray | None = None):
        self.stack = stack
        self.pooling = pooling
        self.attention_proj = attention_proj
        self.attention_query = attention_query

    def encode(self, x: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        outputs = self.stack.forward(np.asarray(x, dtype=_F32))
        if self.pooling == "attention":
            return self._attention_pool(outputs, lengths)
        return self._mean_pool(outputs, lengths)

    @staticmethod
    def _mean_pool(outputs: np.ndarray,
                   lengths: np.ndarray) -> np.ndarray:
        _, time, _ = outputs.shape
        lengths = np.asarray(lengths, dtype=_F32)
        mask = (np.arange(time)[None, :] < lengths[:, None]).astype(_F32)
        masked = outputs * mask[:, :, None]
        return masked.sum(axis=1) / np.maximum(lengths, 1.0)[:, None]

    def _attention_pool(self, outputs: np.ndarray,
                        lengths: np.ndarray) -> np.ndarray:
        batch, time, dim = outputs.shape
        flat = outputs.reshape(batch * time, dim)
        scores = np.tanh(self.attention_proj.project(flat))
        scores = (scores @ self.attention_query).reshape(batch, time)
        lengths = np.asarray(lengths)
        scores = scores + np.where(
            np.arange(time)[None, :] < lengths[:, None], 0.0,
            -1e9).astype(_F32)
        shifted = scores - scores.max(axis=1, keepdims=True)
        weights = np.exp(shifted)
        weights = weights / weights.sum(axis=1, keepdims=True)
        return (outputs * weights[:, :, None]).sum(axis=1)


class _QuantClassifier:
    """Two-layer FCNN head: Linear + LeakyReLU(0.01) + Linear + softmax."""

    def __init__(self, fc1: QuantWeight, b1: np.ndarray,
                 fc2: QuantWeight, b2: np.ndarray):
        self.fc1 = fc1
        self.b1 = b1
        self.fc2 = fc2
        self.b2 = b2

    def probs(self, z: np.ndarray) -> np.ndarray:
        hidden = self.fc1.project(z, self.b1)
        hidden = np.where(hidden > 0, hidden, 0.01 * hidden)
        logits = self.fc2.project(hidden, self.b2)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)


# ----------------------------------------------------------------------
# Archive assembly
# ----------------------------------------------------------------------
def _weight(arrays: dict, kinds: dict, key: str) -> QuantWeight:
    return QuantWeight(kinds[key], arrays[key],
                       arrays.get(key + SCALE_SUFFIX))


def _bias(arrays: dict, key: str) -> np.ndarray:
    return np.asarray(arrays[key], dtype=_F32)


def _lstm_cells(arrays: dict, kinds: dict, prefix: str,
                num_layers: int) -> list[dict]:
    return [{
        "w_x": _weight(arrays, kinds, f"{prefix}.cells.{i}.w_x"),
        "w_h": _weight(arrays, kinds, f"{prefix}.cells.{i}.w_h"),
        "bias": _bias(arrays, f"{prefix}.cells.{i}.bias"),
    } for i in range(num_layers)]


def _gru_cells(arrays: dict, kinds: dict, prefix: str,
               num_layers: int) -> list[dict]:
    cells = _lstm_cells(arrays, kinds, prefix, num_layers)
    for i, cell in enumerate(cells):
        cell["w_xc"] = _weight(arrays, kinds, f"{prefix}.cells.{i}.w_xc")
        cell["w_hc"] = _weight(arrays, kinds, f"{prefix}.cells.{i}.w_hc")
        cell["bias_c"] = _bias(arrays, f"{prefix}.cells.{i}.bias_c")
    return cells


class QuantizedCLFD:
    """A quantized archive assembled for inference.

    Speaks the slice of the CLFD surface the serving tier uses:
    ``vectorizer`` (a real :class:`SessionVectorizer` over the
    compressed embedding table), ``predict`` / ``predict_proba`` with
    the same signatures and batching as
    :meth:`FraudDetector.predict <repro.core.fraud_detector.FraudDetector.predict>`,
    plus ``config`` and ``precision``.  Training methods do not exist
    here on purpose — a quantized archive is inference-only.
    """

    def __init__(self, meta: dict, arrays: dict[str, np.ndarray], *,
                 bind: bool = False):
        quant = meta.get("quant")
        if not quant:
            raise ValueError("not a quantized archive (no quant metadata)")
        self.precision: str = quant["precision"]
        kinds: dict[str, str] = quant["arrays"]

        config_dict = dict(meta["config"])
        config_dict["word2vec"] = Word2VecConfig(**config_dict["word2vec"])
        self.config = CLFDConfig(**config_dict)

        if not bind:
            arrays = {key: np.array(value) for key, value in arrays.items()}

        embedding = QuantizedSkipGram(
            arrays["word2vec/vectors"],
            arrays["word2vec/vectors" + SCALE_SUFFIX])
        tokens = meta.get("vocab")
        vocab = Vocabulary(tokens[1:]) if tokens else None
        self.vectorizer = SessionVectorizer(embedding,
                                            max_len=int(meta["max_len"]),
                                            vocab=vocab)

        enc = "detector/encoder/"
        layers = self.config.lstm_layers
        if self.config.encoder_cell == "lstm":
            stack = _QuantLSTMStack(
                _lstm_cells(arrays, kinds, enc + "rnn", layers))
        elif self.config.encoder_cell == "gru":
            stack = _QuantGRUStack(
                _gru_cells(arrays, kinds, enc + "rnn", layers))
        else:
            stack = _QuantBiLSTMStack(
                _lstm_cells(arrays, kinds, enc + "rnn.forward_lstm",
                            layers),
                _lstm_cells(arrays, kinds, enc + "rnn.backward_lstm",
                            layers))
        attention_proj = attention_query = None
        if self.config.pooling == "attention":
            attention_proj = _weight(arrays, kinds, enc + "attention.proj")
            attention_query = _bias(arrays, enc + "attention.query")
        self.encoder = _QuantEncoder(stack, self.config.pooling,
                                     attention_proj, attention_query)

        head = "detector/classifier/"
        self.classifier = _QuantClassifier(
            _weight(arrays, kinds, head + "fc1.weight"),
            _bias(arrays, head + "fc1.bias"),
            _weight(arrays, kinds, head + "fc2.weight"),
            _bias(arrays, head + "fc2.bias"))
        self.centroids = (np.asarray(arrays["detector/centroids"],
                                     dtype=_F32)
                          if "detector/centroids" in arrays else None)
        self._fitted = True

    # ------------------------------------------------------------------
    # Inference (signatures mirror CLFD / FraudDetector)
    # ------------------------------------------------------------------
    def predict(self, dataset: SessionDataset, *,
                return_embeddings: bool = False):
        features = self._encode_dataset(dataset)
        if self.config.inference == "centroid":
            labels, scores = self._predict_centroid(features)
        else:
            probs = self.classifier.probs(features)
            labels, scores = probs.argmax(axis=1), probs[:, 1]
        if return_embeddings:
            return labels, scores, features
        return labels, scores

    def predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        features = self._encode_dataset(dataset)
        if self.config.inference == "centroid":
            _, scores = self._predict_centroid(features)
            return np.stack([1.0 - scores, scores], axis=1)
        return self.classifier.probs(features)

    def _predict_centroid(self, features: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
        if self.centroids is None:
            raise RuntimeError("archive carries no centroids")
        dists = np.linalg.norm(
            features[:, None, :] - self.centroids[None, :, :], axis=2)
        labels = dists.argmin(axis=1)
        gap = dists[:, 0] - dists[:, 1]
        return labels, _sigmoid(gap)

    def _encode_dataset(self, dataset: SessionDataset) -> np.ndarray:
        # Same batching as FraudDetector._encode_dataset so the split
        # points (and therefore GEMM shapes) match the float path.
        outputs = []
        for batch in iter_batches(dataset, self.config.batch_size):
            x, lengths = self.vectorizer.transform(dataset, indices=batch)
            outputs.append(self.encoder.encode(x, lengths))
        return np.concatenate(outputs, axis=0)


def build_quantized(meta: dict, arrays: dict[str, np.ndarray], *,
                    bind: bool = False) -> QuantizedCLFD:
    """Assemble a :class:`QuantizedCLFD` from ``read_archive`` output.

    With ``bind=True`` the runtime's payload arrays *are* the provided
    arrays (the cluster's zero-copy shared-memory path) — callers must
    keep their backing memory alive for the model's lifetime.
    """
    return QuantizedCLFD(meta, arrays, bind=bind)
