"""Deterministic seeding and RNG-state capture for resumable training.

Two complementary facilities:

* :func:`seed_everything` — one call that seeds every RNG a training
  run can draw from (Python's ``random``, NumPy's legacy global state,
  and a fresh ``numpy.random.Generator`` returned for explicit use).
  The returned generator is ``np.random.default_rng(seed)``, so call
  sites that previously built one ad hoc are bit-identical after
  migrating.
* :func:`generator_state` / :func:`set_generator_state` and
  :func:`capture_rng_state` / :func:`restore_rng_state` — exact
  capture/restore of per-component and global RNG state.  Everything
  returned is JSON-serialisable (Python ints are arbitrary precision,
  which covers PCG64's 128-bit state), so RNG state rides along inside
  checkpoint metadata and a resumed run consumes the *identical* random
  stream an uninterrupted run would have.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = [
    "seed_everything",
    "generator_state",
    "set_generator_state",
    "capture_rng_state",
    "restore_rng_state",
]


def seed_everything(seed: int) -> np.random.Generator:
    """Seed all global RNGs and return a fresh seeded Generator.

    Seeds ``random`` and NumPy's legacy global state (anything still
    drawing from ``np.random.<fn>`` becomes deterministic too) and
    returns ``np.random.default_rng(seed)`` — the stream every training
    entry point in this repo derives its randomness from.
    """
    seed = int(seed)
    random.seed(seed)
    np.random.seed(seed % 2 ** 32)
    return np.random.default_rng(seed)


def generator_state(rng: np.random.Generator) -> dict:
    """JSON-serialisable snapshot of a ``Generator``'s exact position."""
    return rng.bit_generator.state


def set_generator_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a snapshot taken by :func:`generator_state` in place."""
    rng.bit_generator.state = state


def capture_rng_state(*generators: np.random.Generator) -> dict:
    """Snapshot global RNG state plus any per-component generators.

    Returns a JSON-serialisable dict covering Python's ``random``,
    NumPy's legacy global state, and each generator passed (in order).
    """
    legacy = np.random.get_state()
    return {
        "python": _encode_python_state(random.getstate()),
        "numpy_legacy": {
            "name": str(legacy[0]),
            "keys": [int(k) for k in np.asarray(legacy[1]).ravel()],
            "pos": int(legacy[2]),
            "has_gauss": int(legacy[3]),
            "cached_gaussian": float(legacy[4]),
        },
        "generators": [generator_state(rng) for rng in generators],
    }


def restore_rng_state(state: dict,
                      *generators: np.random.Generator) -> None:
    """Restore a snapshot taken by :func:`capture_rng_state`.

    Pass the same generators in the same order they were captured with;
    each is restored in place.
    """
    random.setstate(_decode_python_state(state["python"]))
    legacy = state["numpy_legacy"]
    np.random.set_state((
        legacy["name"],
        np.array(legacy["keys"], dtype=np.uint32),
        int(legacy["pos"]),
        int(legacy["has_gauss"]),
        float(legacy["cached_gaussian"]),
    ))
    captured = state.get("generators", [])
    if len(captured) != len(generators):
        raise ValueError(
            f"snapshot holds {len(captured)} generator states but "
            f"{len(generators)} generators were passed")
    for rng, gen_state in zip(generators, captured):
        set_generator_state(rng, gen_state)


def _encode_python_state(state) -> list:
    """``random.getstate()`` is nested tuples; JSON wants lists."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _decode_python_state(encoded) -> tuple:
    version, internal, gauss = encoded
    return (version, tuple(internal), gauss)
