"""Shared infrastructure for the eight baselines of §IV-A3.

:class:`Estimator` is the repo-wide model contract: everything the
experiment harness, the serving layer, and the analysis tools train or
score — :class:`repro.core.CLFD`, :class:`repro.core.CoTeachingCLFD`,
and each baseline here — satisfies ``fit(train, rng=...)``,
``predict(dataset) -> (labels, scores)`` and
``predict_proba(dataset) -> (n, 2) probabilities``.  The protocol is
structural (:class:`typing.Protocol`): conformance is by signature, not
inheritance, so callers never need ``isinstance`` checks.

The paper adapts each baseline to sessions by replacing its image
network with a two-hidden-layer LSTM session encoder (§IV-A3); the
:class:`EncoderClassifier` building block below is that adaptation.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol

import numpy as np

from .. import nn
from ..core.clfd import _restore_vectorizer, _vectorizer_phase_state
from ..core.encoder import SessionEncoder, SoftmaxClassifier
from ..data.pipeline import SessionVectorizer
from ..data.sessions import SessionDataset, iter_batches
from ..data.word2vec import Word2VecConfig
from ..train import TrainRun

__all__ = ["Estimator", "BaselineConfig", "BaselineModel",
           "EncoderClassifier"]


class Estimator(Protocol):
    """Structural contract shared by CLFD and every baseline.

    ``scores`` (the second element of :meth:`predict`) is a
    monotone-in-maliciousness number in ``[0, 1]`` usable for AUC and
    threshold calibration; :meth:`predict_proba` refines it into a
    two-column distribution ``[p(normal), p(malicious)]``.  For
    threshold detectors (DeepLog, LogBert) the distribution is derived
    from the anomaly score, so columns still sum to one.
    """

    def fit(self, train: SessionDataset,
            rng: np.random.Generator | None = None) -> "Estimator":
        """Train on the noisy labels of ``train``; returns ``self``."""
        ...  # pragma: no cover - protocol stub

    def predict(self, dataset: SessionDataset
                ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(labels, malicious scores)`` for every session."""
        ...  # pragma: no cover - protocol stub

    def predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        """Return an ``(n, 2)`` array of class probabilities."""
        ...  # pragma: no cover - protocol stub


@dataclasses.dataclass
class BaselineConfig:
    """Hyper-parameters shared across baselines (mirrors CLFDConfig)."""

    embedding_dim: int = 16
    hidden_size: int = 24
    lstm_layers: int = 2
    batch_size: int = 64
    lr: float = 0.005
    epochs: int = 10
    grad_clip: float = 5.0
    word2vec: Word2VecConfig | None = None

    def __post_init__(self):
        if self.word2vec is None:
            self.word2vec = Word2VecConfig(dim=self.embedding_dim, epochs=2)
        if self.word2vec.dim != self.embedding_dim:
            raise ValueError("word2vec.dim must equal embedding_dim")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


class BaselineModel:
    """Abstract baseline: fit on noisy labels, predict labels + scores."""

    name = "baseline"
    # fit() accepts ``run=`` — the word2vec stage is a phase checkpoint
    # for every baseline, and the sequence-LM baselines additionally
    # resume their epoch loops through :class:`~repro.train.Trainer`.
    supports_train_run = True

    def __init__(self, config: BaselineConfig | None = None):
        self.config = config or BaselineConfig()
        self.vectorizer: SessionVectorizer | None = None
        self._fitted = False

    def fit(self, train: SessionDataset,
            rng: np.random.Generator | None = None,
            run: TrainRun | None = None) -> "BaselineModel":
        rng = rng or np.random.default_rng(0)
        run = run or TrainRun()
        state = run.load_phase("vectorizer")
        if state is not None:
            self.vectorizer = _restore_vectorizer(state, rng)
        else:
            self.vectorizer = SessionVectorizer.fit(
                train, config=self.config.word2vec, rng=rng
            )
            run.save_phase("vectorizer",
                           _vectorizer_phase_state(self.vectorizer, rng))
        self._fit(train, rng, run)
        self._fitted = True
        return self

    def predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__}.fit must be called first")
        return self._predict(dataset)

    def predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        """Class probabilities ``[p(normal), p(malicious)]`` per session."""
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__}.fit must be called first")
        return self._predict_proba(dataset)

    # Subclass hooks -----------------------------------------------------
    def _fit(self, train: SessionDataset, rng: np.random.Generator,
             run: TrainRun) -> None:
        raise NotImplementedError

    def _predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        """Default: treat the malicious score as ``p(malicious)``.

        Correct as-is for models whose ``_predict`` already returns a
        probability; threshold detectors keep this derivation so the
        Estimator protocol holds uniformly.  Softmax-headed models
        override it with their actual distribution.
        """
        _, scores = self._predict(dataset)
        scores = np.clip(np.asarray(scores, dtype=np.float64), 0.0, 1.0)
        return np.stack([1.0 - scores, scores], axis=1)


class EncoderClassifier(nn.Module):
    """LSTM session encoder + FCNN head trained end to end.

    The §IV-A3 adaptation applied to the image-domain baselines: their
    ResNets are replaced by this sequence model.
    """

    def __init__(self, config: BaselineConfig, rng: np.random.Generator):
        super().__init__()
        self.encoder = SessionEncoder(config.embedding_dim, config.hidden_size,
                                      rng, num_layers=config.lstm_layers)
        self.head = SoftmaxClassifier(config.hidden_size, rng)

    def forward(self, x, lengths=None) -> nn.Tensor:
        """Logits for a batch of embedded sessions."""
        return self.head(self.encoder(x, lengths))

    def probs(self, x, lengths=None) -> nn.Tensor:
        return nn.softmax(self.forward(x, lengths), axis=-1)

    def predict_dataset(self, dataset: SessionDataset,
                        vectorizer: SessionVectorizer,
                        batch_size: int = 256) -> tuple[np.ndarray, np.ndarray]:
        """Label + malicious-score inference over a whole dataset."""
        all_probs = []
        for batch in iter_batches(dataset, batch_size):
            x, lengths = vectorizer.transform(dataset, indices=batch)
            with nn.no_grad():
                all_probs.append(self.probs(x, lengths).data)
        probs = np.concatenate(all_probs, axis=0)
        return probs.argmax(axis=1), probs[:, 1]

    def probs_dataset(self, dataset: SessionDataset,
                      vectorizer: SessionVectorizer,
                      batch_size: int = 256) -> np.ndarray:
        """Softmax probabilities for every session (no grad)."""
        all_probs = []
        for batch in iter_batches(dataset, batch_size):
            x, lengths = vectorizer.transform(dataset, indices=batch)
            with nn.no_grad():
                all_probs.append(self.probs(x, lengths).data)
        return np.concatenate(all_probs, axis=0)
