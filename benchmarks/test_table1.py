"""Benchmark: regenerate Table I (uniform-noise overall comparison).

Prints model x dataset x η rows (F1 / FPR / AUC-ROC) alongside the
paper's reported F1 means, and asserts the headline shape: CLFD wins on
average F1, with the margin present at the highest noise rate.
"""

import numpy as np

from repro.experiments import (
    format_comparison_table,
    paper_reference,
    run_comparison,
    uniform_noise,
)


def test_table1_uniform_noise(run_once, settings, report):
    etas = [eta for eta in settings.etas if eta in (0.1, 0.45)] or [0.1, 0.45]
    noises = [uniform_noise(eta) for eta in etas]

    results = run_once(lambda: run_comparison(settings, noises, verbose=True))

    report()
    report(format_comparison_table(results, "Table I (measured, reduced scale)"))
    report()
    report("Paper F1 means for reference (η=0.1 / η=0.45):")
    for model, per_ds in paper_reference.TABLE1_F1.items():
        row = "  ".join(
            f"{ds}={vals[0.1]:.1f}/{vals[0.45]:.1f}"
            for ds, vals in per_ds.items()
        )
        report(f"  {model:10s} {row}")

    # Shape assertion: averaged over datasets at the highest noise rate,
    # CLFD must beat every baseline on F1 (the paper's headline claim).
    high = f"eta={max(etas)}"
    datasets = list(results["CLFD"])

    def mean_f1(model):
        return np.mean([results[model][d][high]["f1"].mean for d in datasets])

    clfd = mean_f1("CLFD")
    beaten = [m for m in results if m != "CLFD" and mean_f1(m) < clfd]
    assert len(beaten) >= len(results) - 2, (
        f"CLFD (F1={clfd:.1f}) should beat nearly all baselines at {high}"
    )
