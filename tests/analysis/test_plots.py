"""Tests for ASCII plotting utilities."""

import numpy as np
import pytest

from repro.analysis import ascii_bars, ascii_curve, ascii_roc


def test_curve_contains_extremes_and_axes():
    xs = np.linspace(0, 1, 20)
    ys = xs ** 2
    plot = ascii_curve(xs, ys, title="parabola", y_label="y")
    assert "parabola" in plot
    assert "*" in plot
    assert "1.00" in plot and "0.00" in plot   # y-axis labels
    assert "(y)" in plot


def test_curve_flat_line_does_not_crash():
    plot = ascii_curve([0, 1, 2], [5.0, 5.0, 5.0])
    assert "*" in plot


def test_curve_dimensions():
    plot = ascii_curve(np.arange(5), np.arange(5), width=30, height=8)
    rows = plot.split("\n")
    data_rows = [r for r in rows if "|" in r]
    assert len(data_rows) == 8


def test_curve_validation():
    with pytest.raises(ValueError):
        ascii_curve([1], [1])
    with pytest.raises(ValueError):
        ascii_curve([1, 2], [1, 2, 3])
    with pytest.raises(ValueError):
        ascii_curve([1, 2], [1, 2], width=4)


def test_bars_rendering():
    plot = ascii_bars(["CLFD", "DeepLog"], [75.7, 56.0], title="F1")
    lines = plot.split("\n")
    assert lines[0] == "F1"
    assert "CLFD" in plot and "75.7" in plot
    clfd_line = next(l for l in lines if "CLFD" in l)
    deeplog_line = next(l for l in lines if "DeepLog" in l)
    assert clfd_line.count("#") > deeplog_line.count("#")


def test_bars_validation():
    with pytest.raises(ValueError):
        ascii_bars([], [])
    with pytest.raises(ValueError):
        ascii_bars(["a"], [-1.0])
    with pytest.raises(ValueError):
        ascii_bars(["a", "b"], [1.0])


def test_bars_all_zero():
    plot = ascii_bars(["a", "b"], [0.0, 0.0])
    assert "0.0" in plot


def test_roc_plot():
    rng = np.random.default_rng(0)
    y = np.r_[np.zeros(50, dtype=int), np.ones(50, dtype=int)]
    scores = np.r_[rng.normal(0, 1, 50), rng.normal(2, 1, 50)]
    plot = ascii_roc(y, scores)
    assert "ROC (AUC =" in plot
    assert "*" in plot
