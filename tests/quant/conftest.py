"""Quantization fixtures: one tiny fitted teacher and its archives.

Mirrors ``tests/serve/conftest.py`` (same tiny architecture, same
noisy benchmark split) so accuracy deltas measured here are directly
comparable to the serving tests' baselines.
"""

import numpy as np
import pytest

from repro import CLFD, CLFDConfig
from repro.core import load_clfd, save_clfd
from repro.data import Word2VecConfig, apply_uniform_noise, make_dataset
from repro.quant import quantize_archive

QUANT_CONFIG = dict(
    embedding_dim=12,
    hidden_size=16,
    batch_size=32,
    aux_batch_size=8,
    ssl_epochs=1,
    supcon_epochs=2,
    classifier_epochs=30,
    word2vec=Word2VecConfig(dim=12, epochs=1),
)


@pytest.fixture(scope="session")
def quant_split():
    rng = np.random.default_rng(7)
    train, test = make_dataset("cert", rng, scale=0.02)
    apply_uniform_noise(train, eta=0.2, rng=rng)
    return train, test


@pytest.fixture(scope="session")
def teacher_model(quant_split):
    train, _ = quant_split
    return CLFD(CLFDConfig(**QUANT_CONFIG)).fit(
        train, rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def teacher_archive(teacher_model, tmp_path_factory):
    return save_clfd(teacher_model,
                     tmp_path_factory.mktemp("quant") / "teacher")


@pytest.fixture(scope="session")
def int8_archive(teacher_archive, tmp_path_factory):
    return quantize_archive(
        teacher_archive, tmp_path_factory.mktemp("quant") / "teacher-int8",
        precision="int8")


@pytest.fixture(scope="session")
def reference_model(teacher_archive):
    """The full-precision model as a serving process sees it."""
    return load_clfd(teacher_archive)
