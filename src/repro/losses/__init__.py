"""Loss functions for the CLFD reproduction."""

from .contrastive import nt_xent_loss, sup_con_loss
from .extensions import LOSS_REGISTRY, make_mixup_loss, mixup_loss_value, sce_loss
from .robust import cce_loss, gce_loss, mae_loss

__all__ = [
    "gce_loss", "cce_loss", "mae_loss", "sce_loss",
    "nt_xent_loss", "sup_con_loss",
    "make_mixup_loss", "mixup_loss_value", "LOSS_REGISTRY",
]
