"""Save/load model parameters as ``.npz`` archives.

Besides the classic :func:`save_module`/:func:`load_module` pair, this
module can read archive arrays **into caller-provided buffers**
(:func:`load_arrays_into`): the serving cluster allocates one
shared-memory segment, points numpy views at it, and fills those views
straight from the archive — one warm load, after which every worker
process maps the same bytes.
"""

from __future__ import annotations

import io
import os
import pathlib
import zipfile

import numpy as np

from .module import LoadReport, Module

__all__ = ["save_module", "load_module", "load_arrays", "load_arrays_into",
           "save_arrays"]

#: Pinned zip member timestamp (the DOS epoch).  ``np.savez`` stamps the
#: wall clock into every member header, so two saves of identical arrays
#: differ byte-wise; :func:`save_arrays` pins this instead.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write the module's state dict to ``path`` (npz format)."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike,
                strict: bool = True, *, copy: bool = True) -> Module:
    """Restore a state dict previously written by :func:`save_module`.

    Strict by default: an archive whose keys do not exactly match the
    module's parameters raises :class:`KeyError` (and shape mismatches
    raise :class:`ValueError`) instead of partially loading.  Pass
    ``strict=False`` to load the intersection deliberately — e.g. when
    warm-starting a related architecture; the skipped keys are recorded
    on ``module.last_load_report``.  ``copy=False`` binds the archive
    arrays without copying (see :meth:`Module.load_state_dict`).
    """
    state = load_arrays(path)
    report: LoadReport = module.load_state_dict(state, strict=strict,
                                                copy=copy)
    module.last_load_report = report
    return module


def save_arrays(path: str | os.PathLike,
                arrays: dict[str, np.ndarray]) -> pathlib.Path:
    """Write ``arrays`` as an ``.npz`` with **deterministic bytes**.

    ``np.savez`` embeds the current wall clock in every zip member
    header, so saving the same arrays twice yields different files —
    which breaks content-addressed workflows (and the quantizer's
    "same archive → bit-identical quantized bytes" guarantee).  This
    writer produces the same ``np.load``-compatible uncompressed zip of
    ``.npy`` members, but sorts keys and pins every member's timestamp
    to the DOS epoch, so bytes are a pure function of the arrays.

    Atomic like :func:`repro.core.persistence.save_clfd`: written to a
    temp file in the target directory, then renamed into place.
    Returns the path written.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            with zipfile.ZipFile(fh, "w", zipfile.ZIP_STORED) as zf:
                for key in sorted(arrays):
                    buf = io.BytesIO()
                    np.lib.format.write_array(
                        buf, np.ascontiguousarray(arrays[key]),
                        allow_pickle=False)
                    info = zipfile.ZipInfo(f"{key}.npy",
                                           date_time=_ZIP_EPOCH)
                    zf.writestr(info, buf.getvalue())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_arrays(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read every array of an ``.npz`` archive into a plain dict."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def load_arrays_into(path: str | os.PathLike,
                     out: dict[str, np.ndarray]) -> list[str]:
    """Read archive arrays into caller-provided buffers, in place.

    Every key of ``out`` must exist in the archive with exactly the
    buffer's dtype and shape — a serving segment laid out for one model
    must never silently accept a different one.  Archive keys absent
    from ``out`` are ignored (callers choose what to map); the list of
    keys actually filled is returned.
    """
    filled: list[str] = []
    with np.load(path) as archive:
        available = set(archive.files)
        missing = sorted(set(out) - available)
        if missing:
            raise KeyError(f"archive {path} is missing array(s) {missing}")
        for key, buffer in out.items():
            value = archive[key]
            if value.dtype != buffer.dtype or value.shape != buffer.shape:
                raise ValueError(
                    f"buffer mismatch for {key!r}: archive has "
                    f"{value.dtype}{value.shape}, buffer is "
                    f"{buffer.dtype}{buffer.shape}")
            buffer[...] = value
            filled.append(key)
    return filled
