"""Fraud-detection metrics: F1, FPR, TPR/TNR, AUC-ROC (paper §IV-A2).

Conventions follow the paper: the malicious class (label 1) is the
positive class, and scores are reported as percentages in [0, 100] to
match the tables.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

__all__ = [
    "ConfusionMatrix",
    "confusion_matrix",
    "precision_recall_f1",
    "false_positive_rate",
    "true_rates",
    "roc_curve",
    "auc_roc",
    "evaluate_detector",
    "MetricSummary",
    "summarize_runs",
    "UndefinedMetricWarning",
]


class UndefinedMetricWarning(UserWarning):
    """A metric's denominator is empty — the value is reported as NaN.

    Historically these cases silently returned 0.0 (or clamped the
    denominator to 1), which is indistinguishable from a genuinely
    terrible detector.  NaN + this warning makes the degenerate input
    (no positive predictions, a single-class evaluation set, ...)
    visible instead of folding it into the score.
    """


def _undefined(metric: str, reason: str) -> float:
    warnings.warn(f"{metric} is undefined: {reason}; returning nan",
                  UndefinedMetricWarning, stacklevel=3)
    return float("nan")


@dataclasses.dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts with malicious (1) as positive."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn


def _validate(y_true, y_pred=None) -> tuple[np.ndarray, np.ndarray | None]:
    y_true = np.asarray(y_true, dtype=np.int64)
    if y_true.ndim != 1 or y_true.size == 0:
        raise ValueError("y_true must be a non-empty 1-D array")
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("labels must be binary (0/1)")
    if y_pred is None:
        return y_true, None
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_pred.shape != y_true.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if not np.isin(y_pred, (0, 1)).all():
        raise ValueError("predictions must be binary (0/1)")
    return y_true, y_pred


def confusion_matrix(y_true, y_pred) -> ConfusionMatrix:
    y_true, y_pred = _validate(y_true, y_pred)
    return ConfusionMatrix(
        tp=int(((y_true == 1) & (y_pred == 1)).sum()),
        fp=int(((y_true == 0) & (y_pred == 1)).sum()),
        tn=int(((y_true == 0) & (y_pred == 0)).sum()),
        fn=int(((y_true == 1) & (y_pred == 0)).sum()),
    )


def precision_recall_f1(y_true, y_pred) -> tuple[float, float, float]:
    """Return (precision, recall, F1) for the malicious class, in percent.

    Undefined components (no positive predictions, no positive truths)
    are NaN with an :class:`UndefinedMetricWarning`, never a silent 0.
    """
    cm = confusion_matrix(y_true, y_pred)
    precision = (cm.tp / (cm.tp + cm.fp) if cm.tp + cm.fp
                 else _undefined("precision", "no positive predictions"))
    recall = (cm.tp / (cm.tp + cm.fn) if cm.tp + cm.fn
              else _undefined("recall", "no positive ground-truth labels"))
    if np.isnan(precision) or np.isnan(recall):
        f1 = float("nan")
    else:
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
    return 100.0 * precision, 100.0 * recall, 100.0 * f1


def false_positive_rate(y_true, y_pred) -> float:
    """FPR = FP / (FP + TN), in percent (lower is better)."""
    cm = confusion_matrix(y_true, y_pred)
    negatives = cm.fp + cm.tn
    if not negatives:
        return 100.0 * _undefined("fpr", "no negative ground-truth labels")
    return 100.0 * cm.fp / negatives


def true_rates(y_true, y_pred) -> tuple[float, float]:
    """Return (TPR, TNR) in percent — Table III's label-corrector metrics."""
    cm = confusion_matrix(y_true, y_pred)
    tpr = (100.0 * cm.tp / (cm.tp + cm.fn) if cm.tp + cm.fn
           else 100.0 * _undefined("tpr", "no positive ground-truth labels"))
    tnr = (100.0 * cm.tn / (cm.tn + cm.fp) if cm.tn + cm.fp
           else 100.0 * _undefined("tnr", "no negative ground-truth labels"))
    return tpr, tnr


def roc_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray]:
    """ROC points (FPR, TPR) as fractions, sweeping all score thresholds."""
    y_true, _ = _validate(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != y_true.shape:
        raise ValueError("scores must match y_true's shape")
    order = np.argsort(-scores, kind="stable")
    sorted_truth = y_true[order]
    tp = np.cumsum(sorted_truth)
    fp = np.cumsum(1 - sorted_truth)
    # Single-class inputs leave one axis with an empty denominator; the
    # old code clamped it to 1, which quietly pinned that axis to 0 and
    # biased AUC to 0 (or 100).  NaN marks the axis as undefined.
    p = int(sorted_truth.sum())
    n = int((1 - sorted_truth).sum())
    p = p if p else _undefined("tpr axis of roc_curve",
                               "no positive ground-truth labels")
    n = n if n else _undefined("fpr axis of roc_curve",
                               "no negative ground-truth labels")
    # Collapse threshold ties: keep the last point of each distinct score.
    distinct = np.r_[np.diff(scores[order]) != 0, True]
    tpr = np.r_[0.0, tp[distinct] / p]
    fpr = np.r_[0.0, fp[distinct] / n]
    return fpr, tpr


def _finite_metrics(metrics: dict[str, float]) -> list[str]:
    """Names of metrics in ``metrics`` whose value is not finite."""
    return [name for name, value in metrics.items()
            if not np.isfinite(value)]


def auc_roc(y_true, scores) -> float:
    """Area under the ROC curve, in percent (Mann-Whitney equivalent)."""
    fpr, tpr = roc_curve(y_true, scores)
    return 100.0 * float(np.trapezoid(tpr, fpr))


def evaluate_detector(y_true, y_pred, scores=None) -> dict[str, float]:
    """All the paper's test metrics in one dict: F1, FPR, AUC-ROC."""
    _, _, f1 = precision_recall_f1(y_true, y_pred)
    out = {"f1": f1, "fpr": false_positive_rate(y_true, y_pred)}
    if scores is not None:
        out["auc_roc"] = auc_roc(y_true, scores)
    return out


@dataclasses.dataclass(frozen=True, eq=False)
class MetricSummary:
    """Mean ± std over repeated runs, as reported in the tables."""

    mean: float
    std: float

    def __eq__(self, other) -> bool:
        # Bitwise semantics: two summaries of identical runs must compare
        # equal even when the metric is NaN (undefined on that input).
        if not isinstance(other, MetricSummary):
            return NotImplemented
        return (np.array_equal(self.mean, other.mean, equal_nan=True)
                and np.array_equal(self.std, other.std, equal_nan=True))

    def __hash__(self) -> int:
        return hash((self.mean, self.std))

    def __format__(self, spec: str) -> str:
        spec = spec or ".2f"
        return f"{self.mean:{spec}}±{self.std:{spec}}"

    def __str__(self) -> str:
        return format(self, ".2f")


def summarize_runs(values) -> MetricSummary:
    """Aggregate one metric across runs (ddof=0, matching small-n reports)."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarize an empty run list")
    return MetricSummary(mean=float(values.mean()), std=float(values.std()))
