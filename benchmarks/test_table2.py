"""Benchmark: regenerate Table II (class-dependent noise comparison)."""

import numpy as np

from repro.experiments import (
    class_dependent_noise,
    format_comparison_table,
    paper_reference,
    run_comparison,
)


def test_table2_class_dependent_noise(run_once, settings, report):
    results = run_once(
        lambda: run_comparison(settings, [class_dependent_noise()],
                               verbose=True),
    )

    report()
    report(format_comparison_table(
        results, "Table II (measured, η10=0.3 η01=0.45, reduced scale)"))
    report()
    report("Paper F1 means for reference:")
    for model, per_ds in paper_reference.TABLE2_F1.items():
        row = "  ".join(f"{ds}={f1:.1f}" for ds, f1 in per_ds.items())
        report(f"  {model:10s} {row}")

    noise_label = next(iter(results["CLFD"]["cert"]))
    datasets = list(results["CLFD"])

    def mean_metric(model, metric):
        return np.mean([results[model][d][noise_label][metric].mean
                        for d in datasets])

    # Shape assertions.  On the synthetic benchmarks the baselines do not
    # collapse quite as hard as on the paper's real data (EXPERIMENTS.md
    # discusses this), so the asserted shape is: CLFD ranks best on mean
    # AUC-ROC and within the top 3 on mean F1.
    clfd_auc = mean_metric("CLFD", "auc_roc")
    assert all(mean_metric(m, "auc_roc") <= clfd_auc + 1e-9
               for m in results), "CLFD should have the best mean AUC-ROC"
    f1_rank = sorted(results, key=lambda m: -mean_metric(m, "f1"))
    assert f1_rank.index("CLFD") <= 2, (
        f"CLFD should rank top-3 on mean F1, got rank "
        f"{f1_rank.index('CLFD') + 1} in {f1_rank}"
    )
