"""Thread-safety and re-entrancy of the profiler hook installation.

Regression tests: the old ``profile()`` unconditionally cleared the
tensor hook on exit, so an inner context exiting silently disabled the
outer profiler, and two threads' contexts could strand or drop each
other's hooks.
"""

import threading

import numpy as np

from repro import nn
from repro.nn import tensor as _tensor


def _one_backward():
    x = nn.Tensor(np.ones((3, 3)), requires_grad=True)
    (x * 2.0).sum().backward()


def test_nested_profile_outer_keeps_recording():
    with nn.profile() as outer:
        with nn.profile() as inner:
            _one_backward()
        inner_nodes = inner.total_nodes
        assert inner_nodes > 0
        # The inner exit must not disable the outer profiler.
        _one_backward()
    assert outer.total_nodes > inner_nodes
    assert _tensor._PROFILE_HOOK is None


def test_nested_profilers_both_see_events():
    with nn.profile() as outer:
        with nn.profile() as inner:
            _one_backward()
    assert outer.total_nodes == inner.total_nodes > 0
    assert outer.total_backward_seconds > 0
    assert inner.total_backward_seconds > 0


def test_concurrent_profilers_from_threads():
    started = threading.Barrier(2)
    profilers = {}
    errors = []

    def worker(name):
        try:
            with nn.profile() as prof:
                started.wait(timeout=5)
                for _ in range(5):
                    _one_backward()
                profilers[name] = prof
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    # Both profilers recorded (each sees its own and the other thread's
    # events while both are live), and the hook is fully uninstalled.
    for prof in profilers.values():
        assert prof.total_nodes > 0
        assert prof.total_backward_seconds > 0
    assert _tensor._PROFILE_HOOK is None


def test_exception_inside_context_still_uninstalls():
    try:
        with nn.profile():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert _tensor._PROFILE_HOOK is None
