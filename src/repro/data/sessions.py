"""Session data model: activity sequences with labels and batching helpers.

Terminology follows the paper (§III): a *session* is a sequence of user
activities; label 0 is normal, label 1 is malicious; ``noisy_label`` holds
the heuristic annotation actually visible to the learner while ``label``
keeps the ground truth for evaluation only.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence

import numpy as np

from .vocab import Vocabulary

__all__ = ["NORMAL", "MALICIOUS", "Session", "SessionDataset", "iter_batches"]

NORMAL = 0
MALICIOUS = 1


@dataclasses.dataclass
class Session:
    """One user-activity session.

    Attributes
    ----------
    activities: activity ids (into a :class:`Vocabulary`), in time order.
    label: ground-truth class (0 normal / 1 malicious).
    noisy_label: the label visible to the learner; equals ``label`` until a
        noise process overwrites it.
    session_id: stable identifier (useful for debugging / joins).
    user: originating user id, carried through from the generator.
    """

    activities: list[int]
    label: int
    noisy_label: int = -1
    session_id: str = ""
    user: str = ""

    def __post_init__(self):
        if self.label not in (NORMAL, MALICIOUS):
            raise ValueError(f"label must be 0 or 1, got {self.label}")
        if self.noisy_label == -1:
            self.noisy_label = self.label
        if not self.activities:
            raise ValueError("a session must contain at least one activity")

    def __len__(self) -> int:
        return len(self.activities)

    def copy(self) -> "Session":
        """Independent copy; mutating one side never affects the other."""
        return Session(activities=list(self.activities), label=self.label,
                       noisy_label=self.noisy_label,
                       session_id=self.session_id, user=self.user)


class SessionDataset:
    """An ordered collection of sessions sharing one vocabulary."""

    def __init__(self, sessions: Sequence[Session], vocab: Vocabulary,
                 name: str = ""):
        self.sessions = list(sessions)
        self.vocab = vocab
        self.name = name

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sessions)

    def __getitem__(self, index):
        if isinstance(index, (slice, list, np.ndarray)):
            if isinstance(index, slice):
                chosen = self.sessions[index]
            else:
                chosen = [self.sessions[int(i)] for i in index]
            return SessionDataset(chosen, self.vocab, name=self.name)
        return self.sessions[index]

    def __iter__(self) -> Iterator[Session]:
        return iter(self.sessions)

    # ------------------------------------------------------------------
    # Label views
    # ------------------------------------------------------------------
    def labels(self) -> np.ndarray:
        """Ground-truth labels (evaluation only)."""
        return np.array([s.label for s in self.sessions], dtype=np.int64)

    def noisy_labels(self) -> np.ndarray:
        """Labels visible to the learner."""
        return np.array([s.noisy_label for s in self.sessions], dtype=np.int64)

    def set_noisy_labels(self, labels: Sequence[int]) -> None:
        if len(labels) != len(self.sessions):
            raise ValueError("label count does not match session count")
        for session, label in zip(self.sessions, labels):
            session.noisy_label = int(label)

    def class_counts(self, noisy: bool = False) -> tuple[int, int]:
        """Return (#normal, #malicious) by ground-truth or noisy labels."""
        labels = self.noisy_labels() if noisy else self.labels()
        return int((labels == NORMAL).sum()), int((labels == MALICIOUS).sum())

    def indices_with_noisy_label(self, label: int) -> np.ndarray:
        return np.flatnonzero(self.noisy_labels() == label)

    # ------------------------------------------------------------------
    # Tensor views
    # ------------------------------------------------------------------
    def max_length(self) -> int:
        return max(len(s) for s in self.sessions)

    def padded_ids(self, max_len: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Return (ids, lengths): ids is (n, max_len) padded with pad_id."""
        if max_len is None:
            max_len = self.max_length()
        n = len(self.sessions)
        ids = np.full((n, max_len), self.vocab.pad_id, dtype=np.int64)
        lengths = np.zeros(n, dtype=np.int64)
        for row, session in enumerate(self.sessions):
            seq = session.activities[:max_len]
            ids[row, :len(seq)] = seq
            lengths[row] = len(seq)
        return ids, lengths

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def subsample(self, n: int, rng: np.random.Generator,
                  label: int | None = None, noisy: bool = False) -> "SessionDataset":
        """Random subset of ``n`` sessions, optionally from one class."""
        if label is None:
            pool = np.arange(len(self.sessions))
        else:
            labels = self.noisy_labels() if noisy else self.labels()
            pool = np.flatnonzero(labels == label)
        if n > pool.size:
            raise ValueError(f"requested {n} sessions but only {pool.size} available")
        chosen = rng.choice(pool, size=n, replace=False)
        return self[np.sort(chosen)]

    def shuffled(self, rng: np.random.Generator) -> "SessionDataset":
        order = rng.permutation(len(self.sessions))
        return self[order]

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self) -> "SessionDataset":
        """Deep copy of the sessions (vocabulary is shared, it is immutable).

        Noise processes overwrite ``Session.noisy_label`` in place, so
        cached pristine splits must hand out copies — see
        :func:`repro.data.split_cache.cached_splits`.
        """
        return SessionDataset([s.copy() for s in self.sessions], self.vocab,
                              name=self.name)


def iter_batches(dataset: SessionDataset, batch_size: int,
                 rng: np.random.Generator | None = None,
                 drop_last: bool = False) -> Iterator[np.ndarray]:
    """Yield index arrays covering the dataset in (shuffled) batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = np.arange(len(dataset))
    if rng is not None:
        order = rng.permutation(order)
    for start in range(0, len(order), batch_size):
        batch = order[start:start + batch_size]
        if drop_last and batch.size < batch_size:
            return
        yield batch
