"""DriftMonitor: each statistic, the alarm policy, and state round-trips."""

import json

import numpy as np
import pytest

from repro.stream import DriftMonitor, ks_statistic

N = 64


def _monitor(**overrides):
    kwargs = dict(reference_windows=2, min_sessions=8)
    kwargs.update(overrides)
    return DriftMonitor(**kwargs)


def _ref_scores(rng):
    return rng.uniform(0.1, 0.4, size=N)


def _feed_reference(monitor, rng, *, embeddings=None, oov_rate=0.0,
                    noisy_rate=0.1):
    for i in range(monitor.reference_windows):
        reading = monitor.observe(i, _ref_scores(rng), embeddings,
                                  oov_rate, noisy_rate=noisy_rate)
        assert not reading.alarm
    assert monitor.frozen
    return monitor.reference_windows


def test_ks_statistic_bounds():
    rng = np.random.default_rng(0)
    same = rng.uniform(size=100)
    assert ks_statistic(same, same) == 0.0
    assert ks_statistic(np.zeros(10), np.ones(10)) == 1.0
    assert ks_statistic(np.array([]), same) == 0.0
    shifted = ks_statistic(rng.uniform(size=200),
                           rng.uniform(size=200) + 0.5)
    assert 0.4 < shifted <= 1.0


def test_reference_phase_never_alarms():
    monitor = _monitor(reference_windows=3)
    rng = np.random.default_rng(1)
    readings = [monitor.observe(i, _ref_scores(rng), noisy_rate=0.1)
                for i in range(3)]
    assert [r.reference_frozen for r in readings] == [False, False, True]
    assert all(r.drift_score == 0.0 for r in readings)
    assert monitor.alarms == 0


def test_stationary_windows_stay_silent():
    monitor = _monitor()
    rng = np.random.default_rng(2)
    window = _feed_reference(monitor, rng)
    for i in range(10):
        reading = monitor.observe(window + i, _ref_scores(rng),
                                  noisy_rate=0.1)
        assert not reading.alarm, reading
    assert monitor.alarms == 0


def test_score_distribution_shift_triggers_ks():
    monitor = _monitor()
    rng = np.random.default_rng(3)
    window = _feed_reference(monitor, rng)
    reading = monitor.observe(window, rng.uniform(0.7, 0.95, size=N),
                              noisy_rate=0.1)
    assert reading.alarm
    assert reading.trigger == "ks"
    assert monitor.alarms == 1


def test_slow_mean_creep_triggers_page_hinkley():
    # Each window's shift is too small for KS-at-threshold, but the
    # cumulative deviation accumulates past the PH level.
    monitor = _monitor(ks_threshold=2.0, label_z_threshold=1e9)
    rng = np.random.default_rng(4)
    window = _feed_reference(monitor, rng)
    reading = None
    for i in range(12):
        reading = monitor.observe(window + i,
                                  _ref_scores(rng) + 0.15,
                                  noisy_rate=0.1)
        if reading.alarm:
            break
    assert reading.alarm
    assert reading.trigger == "ph"


def test_embedding_centroid_shift_triggers_centroid():
    monitor = _monitor()
    rng = np.random.default_rng(5)
    ref_emb = rng.normal(loc=1.0, scale=0.01, size=(N, 4))
    window = _feed_reference(monitor, rng, embeddings=ref_emb)
    reading = monitor.observe(window, _ref_scores(rng),
                              ref_emb + 2.0, noisy_rate=0.1)
    assert reading.alarm
    assert reading.trigger == "centroid"


def test_oov_rate_jump_triggers_oov():
    monitor = _monitor()
    rng = np.random.default_rng(6)
    window = _feed_reference(monitor, rng, oov_rate=0.01)
    reading = monitor.observe(window, _ref_scores(rng),
                              oov_rate=0.5, noisy_rate=0.1)
    assert reading.alarm
    assert reading.trigger == "oov"


def test_label_prevalence_shift_triggers_label_z():
    # Label-noise drift is invisible to score/embedding statistics (the
    # model never sees labels); the binomial-z prevalence test is the
    # signal that covers it.
    monitor = _monitor()
    rng = np.random.default_rng(7)
    window = _feed_reference(monitor, rng, noisy_rate=0.1)
    reading = monitor.observe(window, _ref_scores(rng), noisy_rate=0.5)
    assert reading.alarm
    assert reading.trigger == "label"


def test_small_windows_never_alarm():
    monitor = _monitor(min_sessions=8)
    rng = np.random.default_rng(8)
    window = _feed_reference(monitor, rng)
    reading = monitor.observe(window, np.full(4, 0.95), noisy_rate=0.1)
    assert reading.drift_score >= 1.0
    assert not reading.alarm
    assert monitor.alarms == 0


def test_reset_rearms_but_keeps_counters():
    monitor = _monitor()
    rng = np.random.default_rng(9)
    window = _feed_reference(monitor, rng)
    assert monitor.observe(window, np.full(N, 0.95),
                           noisy_rate=0.1).alarm
    seen = monitor.windows_observed
    monitor.reset()
    assert not monitor.frozen
    assert monitor.alarms == 1
    assert monitor.windows_observed == seen
    # The same extreme window is now reference material, not an alarm.
    assert not monitor.observe(window + 1, np.full(N, 0.95),
                               noisy_rate=0.1).alarm


def test_state_round_trip_reproduces_readings():
    rng_a = np.random.default_rng(10)
    rng_b = np.random.default_rng(10)
    a = _monitor()
    b = _monitor()
    window = _feed_reference(a, rng_a)
    _feed_reference(b, rng_b)
    a.observe(window, _ref_scores(rng_a) + 0.08, noisy_rate=0.15)
    b.observe(window, _ref_scores(rng_b) + 0.08, noisy_rate=0.15)

    restored = _monitor()
    restored.load_state_dict(json.loads(json.dumps(a.state_dict())))
    probe = np.random.default_rng(11).uniform(0.2, 0.9, size=N)
    assert (restored.observe(window + 1, probe, noisy_rate=0.3)
            == b.observe(window + 1, probe, noisy_rate=0.3))
    assert restored.alarms == b.alarms


def test_reference_windows_validation():
    with pytest.raises(ValueError):
        DriftMonitor(reference_windows=0)
