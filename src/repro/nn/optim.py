"""Gradient-descent optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for logging / divergence checks).
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base optimizer: holds parameters, exposes step() and zero_grad()."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer the paper trains with."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.005,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
