"""Confidence-calibration diagnostics for the label corrector.

The weighted supervised contrastive loss (Eq. 5) assumes the corrector's
confidence cᵢ tracks the probability its corrected label is right —
Theorem 5's analysis partitions sessions by exactly that.  These tools
measure how well that assumption holds:

* **reliability curve** — empirical accuracy per confidence bin;
* **expected calibration error (ECE)**;
* **threshold sweep** — precision/recall of the corrections when only
  corrections above a confidence threshold are accepted (the τ analysis
  of §VII's filtered loss, measured rather than theorised).
"""

from __future__ import annotations

import numpy as np

__all__ = ["reliability_curve", "expected_calibration_error",
           "confidence_threshold_sweep"]


def _validate(confidences, correct) -> tuple[np.ndarray, np.ndarray]:
    confidences = np.asarray(confidences, dtype=np.float64)
    correct = np.asarray(correct, dtype=bool)
    if confidences.shape != correct.shape or confidences.ndim != 1:
        raise ValueError("confidences and correct must be equal-length 1-D")
    if confidences.size == 0:
        raise ValueError("empty inputs")
    if (confidences < 0).any() or (confidences > 1).any():
        raise ValueError("confidences must lie in [0, 1]")
    return confidences, correct


def reliability_curve(confidences, correct, bins: int = 10
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (bin_centers, bin_accuracy, bin_counts).

    Bins with no members get accuracy NaN.
    """
    confidences, correct = _validate(confidences, correct)
    edges = np.linspace(0.0, 1.0, bins + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    accuracy = np.full(bins, np.nan)
    counts = np.zeros(bins, dtype=np.int64)
    which = np.clip(np.digitize(confidences, edges[1:-1]), 0, bins - 1)
    for b in range(bins):
        members = which == b
        counts[b] = members.sum()
        if counts[b]:
            accuracy[b] = correct[members].mean()
    return centers, accuracy, counts


def expected_calibration_error(confidences, correct, bins: int = 10) -> float:
    """ECE: count-weighted mean |confidence - accuracy| over bins."""
    confidences, correct = _validate(confidences, correct)
    edges = np.linspace(0.0, 1.0, bins + 1)
    which = np.clip(np.digitize(confidences, edges[1:-1]), 0, bins - 1)
    total = 0.0
    for b in range(bins):
        members = which == b
        if members.any():
            gap = abs(confidences[members].mean() - correct[members].mean())
            total += members.mean() * gap
    return float(total)


def confidence_threshold_sweep(confidences, correct,
                               thresholds=None) -> list[dict[str, float]]:
    """Accuracy/coverage of corrections accepted above each threshold.

    Measures the trade-off §VII analyses for the filtered loss: high τ
    keeps only accurate corrections but covers few sessions.
    """
    confidences, correct = _validate(confidences, correct)
    if thresholds is None:
        thresholds = np.linspace(0.5, 0.95, 10)
    rows = []
    for tau in thresholds:
        kept = confidences >= tau
        rows.append({
            "threshold": float(tau),
            "coverage": float(kept.mean()),
            "accuracy": float(correct[kept].mean()) if kept.any() else float("nan"),
        })
    return rows
