"""Replay executor: compiled training steps with interpreted semantics.

A :class:`StepProgram` splits a training step into the two halves the
compiler needs:

* ``prepare(batch)`` — everything impure or data-dependent: RNG draws,
  augmentation, index building, masking, dtype pre-casting.  Returns a
  tuple of NumPy arrays (the step's inputs), or ``None`` to skip the
  batch.  Runs eagerly on every step, compiled or not.
* ``program(*arrays)`` — a pure tensor computation from those arrays to
  a scalar loss.  Array lifts (``Tensor(arr)``) must be no-copy, i.e.
  ``prepare`` pre-casts to the dtype the program consumes, so the traced
  graph reads the input buffers directly.

Calling the ``StepProgram`` itself runs prepare + program eagerly —
that *is* the interpreted path, so compiled and interpreted runs share
one numerical definition of the step.

:class:`CompiledStep` wraps a ``StepProgram`` with a tape cache keyed by
input shapes/dtypes.  A key miss (or a parameter buffer swapped out by
``load_state_dict`` — detected via leaf identity) re-traces; a
:class:`TraceError` anywhere disables compilation for this step and
falls back to the interpreted path, journaling the reason.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from .. import tensor as _tensor
from ..tensor import Tensor
from .passes import build_forward_program, prune_dead_nodes
from .tracer import (TraceError, Tracer, backward_topo, tracing,
                     validate_forward)

__all__ = ["StepProgram", "CompiledStep", "compile_step"]


class StepProgram:
    """A training step split into impure ``prepare`` + pure ``program``."""

    def __init__(self, prepare: Callable[[object], tuple | None],
                 program: Callable[..., Tensor]):
        self.prepare = prepare
        self.program = program

    def __call__(self, batch) -> Tensor | None:
        """Interpreted execution: prepare, then run the program eagerly."""
        arrays = self.prepare(batch)
        if arrays is None:
            return None
        return self.program(*arrays)


class _Tape:
    """One traced, optimized, replayable step for a fixed input signature."""

    def __init__(self, buffers: Sequence[np.ndarray], loss: Tensor,
                 kept, forward_ops, topo, profile_entries=()):
        self.buffers = tuple(buffers)
        self.loss = loss
        self.kept = kept
        self.forward_ops = tuple(forward_ops)
        self.topo = tuple(topo)
        self.rev_topo = tuple(reversed(topo))
        self._ones = np.ones_like(loss.data)
        # Grad arena, recorded after the trace-time backward: which nodes
        # received a gradient is a property of the graph alone, so the
        # pooled buffers are coalesced into one flat allocation per dtype
        # and replays reset them with a single ``fill(0.0)`` memset
        # instead of a ``zeros_like`` allocation per node per step.
        # Accumulation is in-place (``grad += g``), so a zero-filled
        # arena view holds exactly the values a fresh buffer would.
        self._grad_pool: tuple[tuple[Tensor, np.ndarray], ...] | None = None
        self._grad_arenas: tuple[np.ndarray, ...] = ()
        self._grad_none: tuple[Tensor, ...] = ()
        # Backward execution plan: the (node, closure) pairs that actually
        # ran, in order.  The ``grad is None`` skip pattern is as
        # deterministic as the pool, so replays walk the plan directly.
        self._plan: tuple[tuple[Tensor, Callable[[], None]], ...] | None = None
        # Entries the interpreted path would have reported to the
        # profiler: every requires-grad node it *created*, matching
        # ``Tensor._make`` — the full trace in creation order, not the
        # pruned program, because the interpreter records dead nodes
        # (an unused LSTM state, a detached view) at creation too.
        self.grad_entries = tuple(
            e for e in profile_entries if e.out.requires_grad)

    def snapshot_leaves(self, leaves: Sequence[Tensor]) -> None:
        self._leaf_data = tuple((leaf, leaf.data) for leaf in leaves)

    def leaves_intact(self) -> bool:
        """False when any leaf's payload was rebound (load_state_dict
        copies arrays in via ``param.data = ...``) — the tape's closures
        captured the old buffer, so it must be re-traced."""
        for leaf, data in self._leaf_data:
            if leaf.data is not data:
                return False
        return True

    # ------------------------------------------------------------------
    def bind_inputs(self, arrays: Sequence[np.ndarray]) -> None:
        for buffer, array in zip(self.buffers, arrays):
            if array is not buffer:
                np.copyto(buffer, array)

    def run_forward(self) -> None:
        for op in self.forward_ops:
            op()
        hook = _tensor._PROFILE_HOOK
        if hook is not None:
            for entry in self.grad_entries:
                hook.record_node(entry.backward)
        anomaly = _tensor._ANOMALY_HOOK
        if anomaly is not None:
            for entry in self.kept:
                anomaly.node_created(entry.out, entry.backward,
                                     entry.parents)

    def run_backward(self) -> None:
        """Exactly ``Tensor.backward()`` over the retained graph: reset
        interior grads, seed the loss, run the recorded closures in the
        recorded order with the same skip guards — but never free the
        graph, so the tape survives for the next replay."""
        hook = _tensor._PROFILE_HOOK
        anomaly = _tensor._ANOMALY_HOOK
        if self._grad_pool is None:
            self._first_backward(hook, anomaly)
            return
        for arena in self._grad_arenas:
            arena.fill(0.0)
        for node, buffer in self._grad_pool:
            node.grad = buffer
        for node in self._grad_none:
            node.grad = None
        self.loss._accumulate(self._ones)
        if hook is None and anomaly is None:
            for node, fn in self._plan:
                fn()
        else:
            for node, fn in self._plan:
                if hook is None:
                    fn()
                else:
                    start = time.perf_counter()
                    fn()
                    hook.record_backward(fn, time.perf_counter() - start)
                if anomaly is not None:
                    anomaly.grads_computed(node)

    def _first_backward(self, hook, anomaly) -> None:
        """Trace-time backward: run with the interpreted path's skip
        guards while capturing the grad/no-grad pattern and execution
        order, then coalesce the grad buffers into per-dtype arenas.
        Leaves with gradients are the optimizer's parameters — their
        buffers live in the arena too; the determinism of the pattern
        preserves the ``grad is None`` skip contract both here and
        inside the optimizer."""
        for node in self.topo:
            if node._backward is not None:
                node.grad = None
        self.loss._accumulate(self._ones)
        plan = []
        for node in self.rev_topo:
            fn = node._backward
            if fn is None or node.grad is None:
                continue
            plan.append((node, fn))
            if hook is None:
                fn()
            else:
                start = time.perf_counter()
                fn()
                hook.record_backward(fn, time.perf_counter() - start)
            if anomaly is not None:
                anomaly.grads_computed(node)
        self._plan = tuple(plan)
        by_dtype: dict[str, list[Tensor]] = {}
        for node in self.topo:
            if node.grad is not None:
                by_dtype.setdefault(node.grad.dtype.str, []).append(node)
        arenas, pool = [], []
        for group in by_dtype.values():
            arena = np.empty(sum(n.grad.size for n in group),
                             dtype=group[0].grad.dtype)
            offset = 0
            for node in group:
                view = arena[offset:offset + node.grad.size]
                view = view.reshape(node.grad.shape)
                # Preserve this pass's values: the optimizer reads these
                # grads right after the trace step returns.
                view[...] = node.grad
                node.grad = view
                pool.append((node, view))
                offset += view.size
            arenas.append(arena)
        self._grad_arenas = tuple(arenas)
        self._grad_pool = tuple(pool)
        self._grad_none = tuple(
            node for node in self.topo
            if node._backward is not None and node.grad is None)


class CompiledStep:
    """Trace-once/replay executor around a :class:`StepProgram`."""

    def __init__(self, step: StepProgram, *, max_tapes: int = 8,
                 journal=None, scope: str = ""):
        if not isinstance(step, StepProgram):
            raise TypeError(
                f"compile_step needs a StepProgram (got "
                f"{type(step).__name__}); wrap the step's impure setup "
                f"and pure tensor math separately")
        self.step = step
        self.max_tapes = max_tapes
        self.journal = journal
        self.scope = scope
        self.disabled = False
        self.traces = 0
        self.replays = 0
        self._tapes: OrderedDict[tuple, _Tape] = OrderedDict()

    # ------------------------------------------------------------------
    @staticmethod
    def _key(arrays: Sequence[np.ndarray]) -> tuple:
        return tuple((a.shape, a.dtype.str) for a in arrays)

    def _log(self, event: str, **extra) -> None:
        if self.journal is not None:
            self.journal.log_event(event, self.scope, **extra)

    def _trace(self, arrays: Sequence[np.ndarray]) -> _Tape:
        # The tape must own its input buffers: replays copy each step's
        # arrays into the trace-time ones, so tracing directly on views
        # into caller-owned storage (the dataset, an embedding cache —
        # e.g. ``np.ascontiguousarray`` of an already-contiguous slice
        # is a no-op view) would write every future batch back into it.
        # One defensive copy, paid once per trace.
        arrays = tuple(np.array(a) for a in arrays)
        tracer = Tracer()
        with tracing(tracer):
            loss = self.step.program(*arrays)
        if not isinstance(loss, Tensor):
            raise TraceError("program must return a Tensor loss")
        if not loss.requires_grad:
            raise TraceError("program loss does not require grad")
        kept = prune_dead_nodes(tracer, loss)
        forward_ops = build_forward_program(kept)
        validate_forward(kept, forward_ops)
        tape = _Tape(arrays, loss, kept, forward_ops, backward_topo(loss),
                     profile_entries=tuple(tracer.entries))
        tape.snapshot_leaves(tracer.leaves(kept))
        self.traces += 1
        self._log("compile-trace", nodes=len(kept),
                  forward_ops=len(tape.forward_ops), traces=self.traces)
        return tape

    # ------------------------------------------------------------------
    def step_and_backward(self, batch, optimizer) -> Tensor | None:
        """Forward + zero_grad + backward, in the interpreted path's
        order; returns the (persistent) loss tensor, or None to skip."""
        arrays = self.step.prepare(batch)
        if arrays is None:
            return None
        if self.disabled:
            return self._interpreted(arrays, optimizer)

        key = self._key(arrays)
        tape = self._tapes.get(key)
        if tape is not None and not tape.leaves_intact():
            del self._tapes[key]
            tape = None
        if tape is None:
            try:
                tape = self._trace(arrays)
            except TraceError as err:
                self.disabled = True
                self._log("compile-fallback", reason=str(err))
                return self._interpreted(arrays, optimizer)
            self._tapes[key] = tape
            while len(self._tapes) > self.max_tapes:
                self._tapes.popitem(last=False)
            # The trace ran the forward already; finish the step on the
            # freshly built graph.
            optimizer.zero_grad()
            tape.run_backward()
            return tape.loss

        self._tapes.move_to_end(key)
        tape.bind_inputs(arrays)
        tape.run_forward()
        optimizer.zero_grad()
        tape.run_backward()
        self.replays += 1
        return tape.loss

    def _interpreted(self, arrays, optimizer) -> Tensor:
        loss = self.step.program(*arrays)
        if loss is None:
            return None
        optimizer.zero_grad()
        loss.backward()
        return loss


def compile_step(step: StepProgram, *, max_tapes: int = 8, journal=None,
                 scope: str = "") -> CompiledStep:
    """Wrap a :class:`StepProgram` in a trace-once/replay executor."""
    if isinstance(step, CompiledStep):
        return step
    return CompiledStep(step, max_tapes=max_tapes, journal=journal,
                        scope=scope)
