"""Content-keyed on-disk cache of completed grid cells.

One JSON file per cell, named by the :func:`~repro.parallel.tasks.task_key`
content hash, so interrupted sweeps resume where they stopped and a
repeated table invocation (same configs, same seeds, same scale) skips
straight to aggregation.  Only *successful* runs are stored — failures
are always retried by the next sweep.

Writes are atomic (temp file + ``os.replace``), so a sweep killed
mid-write never leaves a truncated record; corrupt or unreadable files
are treated as misses and overwritten.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

__all__ = ["RunCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-cache"


class RunCache:
    """Directory of ``<key>.json`` run records."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the stored record, or None on miss/corruption."""
        try:
            with open(self.path(key)) as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def put(self, key: str, record: dict) -> None:
        """Atomically persist a record under ``key``."""
        payload = dict(record)
        payload.setdefault("key", key)
        payload.setdefault("created", time.time())
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunCache({str(self.root)!r}, {len(self)} records)"
