"""One conformance test drives every model through the Estimator protocol.

CLFD, all eight baselines and the co-teaching corrector are exercised
through the exact same ``fit`` / ``predict`` / ``predict_proba`` calls —
no ``isinstance`` checks, no per-model branches.  This is the contract
the experiment runner and the serving layer rely on.
"""

import numpy as np
import pytest

from repro.baselines import BaselineConfig, Estimator
from repro.core import CLFDConfig
from repro.core.co_teaching import CoTeachingCorrector
from repro.data import (
    SessionVectorizer,
    Word2VecConfig,
    apply_uniform_noise,
    make_dataset,
)
from repro.experiments import ExperimentSettings, estimator_registry


class _TinySettings(ExperimentSettings):
    """Experiment settings shrunk to seconds-per-model for this test."""

    def clfd_config(self) -> CLFDConfig:
        return CLFDConfig(
            embedding_dim=12, hidden_size=16, batch_size=32,
            aux_batch_size=8, ssl_epochs=1, supcon_epochs=2,
            classifier_epochs=20, word2vec=Word2VecConfig(dim=12, epochs=1),
        )

    def baseline_config(self) -> BaselineConfig:
        return BaselineConfig(
            embedding_dim=12, hidden_size=16, batch_size=32, epochs=2,
            word2vec=Word2VecConfig(dim=12, epochs=1),
        )


@pytest.fixture(scope="module")
def split():
    rng = np.random.default_rng(17)
    train, test = make_dataset("openstack", rng, scale=0.02)
    apply_uniform_noise(train, eta=0.2, rng=rng)
    return train, test


def _estimators(train):
    """Every estimator in the repo, keyed by name."""
    settings = _TinySettings()
    factories = dict(estimator_registry(settings))

    def co_teaching():
        vectorizer = SessionVectorizer.fit(
            train, settings.clfd_config().word2vec,
            rng=np.random.default_rng(5))
        return CoTeachingCorrector(settings.clfd_config(), vectorizer,
                                   np.random.default_rng(5))

    factories["CoTeaching"] = co_teaching
    return factories


def _names():
    settings = _TinySettings()
    return sorted(estimator_registry(settings)) + ["CoTeaching"]


@pytest.mark.parametrize("name", _names())
def test_estimator_protocol_conformance(name, split):
    """fit -> predict -> predict_proba, identically for every model."""
    train, test = split
    estimator = _estimators(train)[name]()

    # Structural conformance (typing.Protocol, runtime-checkable would
    # need isinstance — we assert the structure directly instead).
    for method in ("fit", "predict", "predict_proba"):
        assert callable(getattr(estimator, method)), (
            f"{name} lacks Estimator.{method}")

    fitted = estimator.fit(train, rng=np.random.default_rng(0))
    assert fitted is estimator, f"{name}.fit must return self"

    labels, scores = estimator.predict(test)
    labels = np.asarray(labels)
    scores = np.asarray(scores)
    assert labels.shape == (len(test),)
    assert scores.shape == (len(test),)
    assert set(np.unique(labels)) <= {0, 1}
    assert np.isfinite(scores).all()

    probs = estimator.predict_proba(test)
    assert isinstance(probs, np.ndarray)
    assert probs.shape == (len(test), 2)
    assert np.isfinite(probs).all()
    assert np.all(probs >= 0.0) and np.all(probs <= 1.0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


def test_registry_rejects_unknown_models():
    from repro.experiments.runner import _model_factories

    with pytest.raises(KeyError, match="NoSuchModel"):
        _model_factories(_TinySettings(), ["CLFD", "NoSuchModel"])


def test_registry_lists_paper_models():
    registry = estimator_registry(_TinySettings())
    assert set(registry) == {
        "CLFD", "DivMix", "ULC", "Sel-CL", "CTRR",
        "Few-Shot", "CLDet", "DeepLog", "LogBert",
    }


def test_protocol_is_structural():
    """Estimator is a typing.Protocol: conformance needs no inheritance."""
    for factory in estimator_registry(_TinySettings()).values():
        assert Estimator not in type(factory()).__mro__
