"""Tests for CLFDConfig validation and presets."""

import pytest

from repro.core import CLFDConfig
from repro.data import Word2VecConfig


def test_defaults_follow_paper():
    cfg = CLFDConfig()
    assert cfg.embedding_dim == 50
    assert cfg.hidden_size == 50
    assert cfg.batch_size == 100       # R
    assert cfg.aux_batch_size == 20    # M
    assert cfg.temperature == 1.0      # α
    assert cfg.q == 0.7
    assert cfg.lr == 0.005
    assert cfg.ssl_epochs == 10
    assert cfg.classifier_epochs == 500
    assert cfg.reorder_sub_len == 3


def test_word2vec_dim_synced():
    cfg = CLFDConfig()
    assert cfg.word2vec.dim == cfg.embedding_dim
    with pytest.raises(ValueError):
        CLFDConfig(embedding_dim=32, word2vec=Word2VecConfig(dim=16))


def test_fast_preset_is_small_but_valid():
    cfg = CLFDConfig.fast()
    assert cfg.embedding_dim < 50
    assert cfg.classifier_epochs < 500
    assert cfg.q == 0.7  # loss hyper-parameters preserved


def test_fast_preset_accepts_overrides():
    cfg = CLFDConfig.fast(classifier_loss="cce", supcon_variant="filtered")
    assert cfg.classifier_loss == "cce"
    assert cfg.supcon_variant == "filtered"


@pytest.mark.parametrize("kwargs", [
    dict(classifier_loss="hinge"),
    dict(supcon_variant="other"),
    dict(inference="knn"),
    dict(q=0.0),
    dict(q=1.5),
    dict(batch_size=1),
    dict(ssl_epochs=0),
    dict(classifier_epochs=0),
    dict(compute_dtype="float16"),
])
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        CLFDConfig(**kwargs)


def test_numerics_defaults_and_overrides():
    cfg = CLFDConfig()
    assert cfg.compute_dtype == "float64"
    assert cfg.fused_rnn is True
    cfg32 = CLFDConfig.fast(compute_dtype="float32", fused_rnn=False)
    assert cfg32.compute_dtype == "float32"
    assert cfg32.fused_rnn is False
