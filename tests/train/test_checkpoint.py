"""Tests for the atomic tagged checkpoint store."""

import numpy as np
import pytest

from repro.train import CheckpointManager


@pytest.fixture()
def manager(tmp_path):
    return CheckpointManager(tmp_path / "ckpt")


def test_nested_roundtrip_is_bitwise(manager):
    state = {
        "model": {"w": np.arange(12, dtype=np.float64).reshape(3, 4),
                  "b": np.zeros(4, dtype=np.float32)},
        "optimizer": {"t": 17, "moments": [np.ones(3), np.full(3, 0.5)]},
        "history": [1.5, 1.25, 1.125],
        "phase": "corrector/ssl",
        "done": False,
        "nothing": None,
    }
    manager.save("corrector/ssl", state)
    loaded = manager.load("corrector/ssl")
    assert loaded["phase"] == "corrector/ssl"
    assert loaded["done"] is False and loaded["nothing"] is None
    assert loaded["optimizer"]["t"] == 17
    assert loaded["history"] == [1.5, 1.25, 1.125]
    np.testing.assert_array_equal(loaded["model"]["w"], state["model"]["w"])
    assert loaded["model"]["b"].dtype == np.float32
    for got, want in zip(loaded["optimizer"]["moments"],
                         state["optimizer"]["moments"]):
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)


def test_dtypes_and_shapes_preserved(manager):
    state = {
        "i8": np.array([-1, 2], dtype=np.int8),
        "u32": np.array([[7]], dtype=np.uint32),
        "f16": np.array([0.5], dtype=np.float16),
        "bools": np.array([True, False]),
        "empty": np.zeros((0, 3)),
    }
    manager.save("dtypes", state)
    loaded = manager.load("dtypes")
    for key, want in state.items():
        assert loaded[key].dtype == want.dtype, key
        assert loaded[key].shape == want.shape, key
        np.testing.assert_array_equal(loaded[key], want)


def test_128bit_int_survives(manager):
    # PCG64 state is a 128-bit integer; JSON round-trip must keep it.
    big = (1 << 127) + 12345
    manager.save("rng", {"rng": {"state": {"state": big, "inc": 3}}})
    assert manager.load("rng")["rng"]["state"]["state"] == big


def test_load_missing_returns_none(manager):
    assert manager.load("nope") is None
    assert not manager.has("nope")


def test_overwrite_replaces_previous_snapshot(manager):
    manager.save("t", {"epoch": 1, "w": np.zeros(2)})
    manager.save("t", {"epoch": 2, "w": np.ones(2)})
    loaded = manager.load("t")
    assert loaded["epoch"] == 2
    np.testing.assert_array_equal(loaded["w"], np.ones(2))
    # No stray temp files left behind.
    leftovers = [p.name for p in manager.directory.iterdir()
                 if p.name.startswith(".")]
    assert leftovers == []


def test_tags_has_remove_clear(manager):
    manager.save("vectorizer", {"a": 1})
    manager.save("corrector/ssl", {"a": 2})
    manager.save("corrector/head", {"a": 3})
    assert manager.tags() == ["corrector/head", "corrector/ssl",
                              "vectorizer"]
    assert manager.has("corrector/ssl")
    manager.remove("corrector/ssl")
    assert not manager.has("corrector/ssl")
    manager.clear()
    assert manager.tags() == []


def test_invalid_tags_rejected(manager):
    with pytest.raises(ValueError):
        manager.save("", {"a": 1})
    with pytest.raises(ValueError):
        manager.save("..", {"a": 1})


def test_unsupported_values_raise_typeerror(manager):
    with pytest.raises(TypeError):
        manager.save("bad", {"fn": lambda x: x})
    with pytest.raises(TypeError):
        manager.save("bad", {1: "non-str key"})


def test_numpy_scalars_coerced(manager):
    manager.save("scalars", {"i": np.int64(5), "f": np.float32(0.25),
                             "b": np.bool_(True)})
    loaded = manager.load("scalars")
    assert loaded == {"i": 5, "f": 0.25, "b": True}
    assert isinstance(loaded["i"], int) and isinstance(loaded["b"], bool)


def test_save_fsyncs_payload_and_directory(manager, monkeypatch):
    """Durability: the temp file must be fsynced before os.replace (an
    unsynced rename can commit a zero-length snapshot across a power
    loss) and the parent directory after it (or the rename itself can
    be lost)."""
    import os as _os

    synced_fds = []
    real_fsync = _os.fsync

    def spy_fsync(fd):
        synced_fds.append(_os.fstat(fd).st_mode)
        return real_fsync(fd)

    monkeypatch.setattr("repro.train.checkpoint.os.fsync", spy_fsync)
    manager.save("durable", {"w": np.ones(3)})
    import stat
    kinds = [("dir" if stat.S_ISDIR(mode) else "file")
             for mode in synced_fds]
    assert "file" in kinds, "temp file never fsynced before os.replace"
    assert "dir" in kinds, "parent directory never fsynced after rename"
    assert kinds.index("file") < kinds.index("dir")


def test_save_error_path_does_not_mask_original_exception(manager,
                                                          monkeypatch):
    """Regression: the cleanup unlink used to run in a bare finally —
    if it raised (or the temp file check did), the original write error
    was replaced by the cleanup error."""

    def exploding_savez(fh, **payload):
        raise OSError("disk full")

    monkeypatch.setattr("repro.train.checkpoint.np.savez", exploding_savez)
    # Make the cleanup itself fail too: unlink raising must not shadow
    # the original error.
    monkeypatch.setattr("pathlib.Path.unlink",
                        lambda self, **kw: (_ for _ in ()).throw(
                            PermissionError("read-only")))
    with pytest.raises(OSError, match="disk full"):
        manager.save("broken", {"w": np.ones(2)})


def test_save_error_path_removes_temp_file(manager, monkeypatch):
    monkeypatch.setattr(
        "repro.train.checkpoint.np.savez",
        lambda fh, **payload: (_ for _ in ()).throw(OSError("disk full")))
    with pytest.raises(OSError, match="disk full"):
        manager.save("broken", {"w": np.ones(2)})
    leftovers = [p.name for p in manager.directory.iterdir()
                 if p.name.startswith(".")]
    assert leftovers == []
