"""Stream gauges on /v1/metrics and hot-swap behind a live HTTP server.

The processor shares its engine with a :class:`ServingServer`, so the
drift gauges ride the existing metrics surface with no new endpoints —
and a rolling reload mid-stream must never fail a concurrent request.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import ServeConfig, ServingServer
from repro.stream import StreamProcessor

from .conftest import STREAM_CONFIG, drifting_events


@pytest.fixture
def stream_server(stream_archive, tmp_path):
    proc = StreamProcessor(
        stream_archive, tmp_path / "w",
        config=STREAM_CONFIG.replace(max_recorrections=1),
        serve_config=ServeConfig(port=0, verbose=False))
    srv = ServingServer(proc.engine, model_name="stream-model")
    srv.start_background()
    yield proc, srv
    srv.shutdown()
    proc.close()


def _get_json(port, path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30) as resp:
        return json.load(resp)


def _score(port, activities):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/score",
        data=json.dumps({"activities": activities}).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.load(resp)


def test_hot_swap_serves_through_without_failures(stream_server):
    proc, srv = stream_server

    status, body = _score(srv.port, [1, 2, 3])
    assert status == 200
    assert body["generation"] == 0

    failures = []
    generations = set()
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            try:
                status, body = _score(srv.port, [1, 2, 3, 2])
            except urllib.error.URLError as exc:  # pragma: no cover
                failures.append(repr(exc))
                return
            if status != 200:  # pragma: no cover
                failures.append(status)
                return
            generations.add(body["generation"])

    client = threading.Thread(target=hammer)
    client.start()
    try:
        proc.process_events(drifting_events())
        proc.finish()
    finally:
        stop.set()
        client.join(timeout=60)

    assert not failures
    assert proc.model_generation == 1
    # The concurrent client saw the swap happen, not an outage.
    assert 0 in generations
    status, body = _score(srv.port, [1, 2, 3])
    assert status == 200
    assert body["generation"] == 1


def test_stream_gauges_on_metrics_endpoint(stream_server):
    proc, srv = stream_server
    proc.process_events(drifting_events(n_sessions=80, drift="none"))
    proc.finish()

    snap = _get_json(srv.port, "/v1/metrics?format=json")
    gauges = snap["gauges"]
    assert gauges["stream_windows_processed"] == proc.windows_processed
    assert gauges["stream_recorrect_generation"] == 0
    assert gauges["stream_alarms_total"] == 0
    assert "stream_drift_score" in gauges

    with urllib.request.urlopen(
            f"http://127.0.0.1:{srv.port}/v1/metrics",
            timeout=30) as resp:
        prom = resp.read().decode()
    assert "repro_serve_stream_windows_processed" in prom
    assert "repro_serve_stream_drift_score" in prom
