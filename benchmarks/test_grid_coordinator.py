"""Multi-host coordinator benchmark: work-stealing overhead + analysis.

Runs the same smoke-scale grid three ways — sequential, through the
coordinated work-stealing tier with local workers, and warm from the
shared cache — then pushes the cache through ``analyze_cache``.  The
assertions are the tentpole guarantees: coordinated execution is
bit-identical to sequential, the shared RunCache makes a coordinated
sweep resumable as a single-host one, and the analysis layer renders
mean±std plus Holm-corrected paired tests from the cache alone.

Marked ``smoke``: 12 tiny DeepLog/LogBert cells, seconds end to end.
"""

import math
import os

import pytest

from repro.analysis import analyze_cache
from repro.baselines import BaselineConfig
from repro.data import Word2VecConfig, clear_split_cache
from repro.parallel import GridExecutor, RunCache, TaskSpec

pytestmark = pytest.mark.smoke

WORKERS = 2


def _smoke_grid():
    config = BaselineConfig(embedding_dim=12, hidden_size=16, epochs=2,
                            batch_size=32,
                            word2vec=Word2VecConfig(dim=12, epochs=1))
    return [
        TaskSpec(model=model, estimator=model, config=config, dataset="cert",
                 noise_kind="uniform", noise_params=(eta,), seed=seed,
                 scale=0.02)
        for model in ("DeepLog", "LogBert")
        for eta in (0.2, 0.45)
        for seed in range(3)
    ]


def _same(a, b):
    return a == b or (isinstance(a, float) and isinstance(b, float)
                      and math.isnan(a) and math.isnan(b))


def test_coordinated_grid_bit_identical_and_analyzable(report, tmp_path):
    specs = _smoke_grid()
    cache = RunCache(tmp_path / "run-cache")

    clear_split_cache()
    sequential = GridExecutor(workers=1)
    seq_results = sequential.run(specs)
    seq_wall = sequential.last_wall_seconds

    clear_split_cache()
    coordinated = GridExecutor(workers=WORKERS, coordinate=True, cache=cache)
    coord_results = coordinated.run(specs)
    coord_wall = coordinated.last_wall_seconds

    warm = GridExecutor(workers=WORKERS, coordinate=True, cache=cache)
    warm_results = warm.run(specs)
    warm_wall = warm.last_wall_seconds

    report(f"grid coordinator: {len(specs)} cells, "
           f"cpu_count={os.cpu_count()}")
    report(f"  sequential (1 worker)        {seq_wall:8.2f}s")
    report(f"  coordinated ({WORKERS} local workers) {coord_wall:8.2f}s")
    report(f"  warm resume from shared cache{warm_wall:8.2f}s")

    assert all(r.ok for r in seq_results)
    for seq, coord, res in zip(seq_results, coord_results, warm_results):
        assert set(seq.metrics) == set(coord.metrics) == set(res.metrics)
        for name in seq.metrics:
            assert _same(coord.metrics[name], seq.metrics[name]), name
            assert _same(res.metrics[name], seq.metrics[name]), name
    assert all(r.cached for r in warm_results)

    tables = analyze_cache(cache, metric="f1", target="DeepLog", fmt="both")
    assert "p (t, Holm)" in tables
    assert "\\begin{tabular}" in tables
    report("  analyze: aggregation + Holm-corrected paired tests render ok")
