"""Benchmark: Figure 1 — the full CLFD architecture walked end to end.

Figure 1 is the framework diagram; this bench exercises every arrow in
it (word2vec → SimCLR pre-training → mixup-GCE corrector → corrected
labels + confidences → weighted sup-con pre-training → mixup-GCE FCNN →
inference) and reports the corrected-label quality and test metrics of
one pass.
"""

import numpy as np

from repro import CLFD
from repro.data import apply_uniform_noise, make_dataset
from repro.metrics import evaluate_detector


def test_figure1_full_pipeline(run_once, settings, report):
    def pipeline():
        rng = np.random.default_rng(0)
        train, test = make_dataset("cert", rng, scale=settings.scale)
        apply_uniform_noise(train, eta=0.3, rng=rng)
        model = CLFD(settings.clfd_config()).fit(
            train, rng=np.random.default_rng(0))
        labels, scores = model.predict(test)
        return {
            "correction": model.correction_quality(train),
            "metrics": evaluate_detector(test.labels(), labels, scores),
            "confidence_mean": float(model.confidences.mean()),
        }

    out = run_once(pipeline)
    report()
    report("Figure 1 pipeline walk (η=0.3, reduced scale):")
    report(f"  corrector TPR/TNR: {out['correction']['tpr']:.1f} / "
          f"{out['correction']['tnr']:.1f}")
    report(f"  mean correction confidence: {out['confidence_mean']:.3f}")
    report(f"  test metrics: " + ", ".join(
        f"{k}={v:.1f}" for k, v in out["metrics"].items()))

    assert out["metrics"]["auc_roc"] > 55.0
    assert 0.5 <= out["confidence_mean"] <= 1.0
