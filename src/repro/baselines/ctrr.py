"""CTRR baseline — contrastive regularization (Yi et al. [9]).

CTRR trains the encoder and classifier jointly: a cross-entropy term on
the noisy labels plus a *contrastive regularization* that pulls together
representations of sample pairs the model currently predicts into the
same class with high confidence.  The regularizer limits how much label
noise can dominate representation learning, but (as with Sel-CL) its
confident-pair selection relies on sample similarity, which session
diversity undermines on fraud data.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.sessions import SessionDataset, iter_batches
from ..losses import sup_con_loss
from ..train import TrainRun
from .base import BaselineConfig, BaselineModel, EncoderClassifier

__all__ = ["CTRRModel"]


class CTRRModel(BaselineModel):
    """Joint CE + confident-pair contrastive regularization."""

    name = "CTRR"

    def __init__(self, config: BaselineConfig | None = None,
                 reg_weight: float = 1.0, confidence: float = 0.8,
                 temperature: float = 1.0):
        super().__init__(config)
        self.reg_weight = reg_weight
        self.confidence = confidence
        self.temperature = temperature
        self.net: EncoderClassifier | None = None

    def _fit(self, train: SessionDataset, rng: np.random.Generator,
             run: TrainRun) -> None:
        # Multi-stage loop; only the word2vec phase checkpoints here.
        del run
        config = self.config
        self.net = EncoderClassifier(config, rng)
        optimizer = nn.Adam(self.net.parameters(), lr=config.lr)
        noisy = train.noisy_labels()
        for _ in range(config.epochs):
            for batch in iter_batches(train, config.batch_size, rng):
                if batch.size < 2:
                    continue
                x, lengths = self.vectorizer.transform(train, indices=batch)
                z = self.net.encoder(x, lengths)
                logits = self.net.head(z)
                loss = nn.cross_entropy(logits, noisy[batch])

                # Contrastive regularization over confident predictions:
                # pairs predicted into the same class with confidence
                # above the threshold are pulled together.
                with nn.no_grad():
                    probs = nn.softmax(logits, axis=-1).data
                pred = probs.argmax(axis=1)
                conf = probs.max(axis=1)
                confident = conf > self.confidence
                if confident.sum() >= 2 and len(np.unique(pred[confident])) >= 1:
                    reg = sup_con_loss(
                        z[np.flatnonzero(confident)], pred[confident],
                        temperature=self.temperature, variant="unweighted",
                    )
                    loss = loss + reg * self.reg_weight
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.net.parameters(), config.grad_clip)
                optimizer.step()

    def _predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        return self.net.predict_dataset(dataset, self.vectorizer)

    def _predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        return self.net.probs_dataset(dataset, self.vectorizer)
