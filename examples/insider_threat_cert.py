"""Insider-threat scenario: class-dependent annotation noise on CERT-like data.

Real security teams' heuristics rarely make symmetric mistakes: missing
a true insider (η₁₀) and falsely flagging a normal user (η₀₁) happen at
different rates.  This example reproduces the paper's class-dependent
setting (η₁₀=0.3, η₀₁=0.45), compares CLFD against CLDet (the framework
its label corrector is adapted from), and inspects *which corrections*
the label corrector makes.

Run:  python examples/insider_threat_cert.py
"""

import numpy as np

from repro import CLFD, CLFDConfig
from repro.baselines import BaselineConfig, CLDetModel
from repro.data import apply_class_dependent_noise, make_dataset
from repro.metrics import evaluate_detector


def main():
    rng = np.random.default_rng(0)
    train, test = make_dataset("cert", rng, scale=0.1)
    apply_class_dependent_noise(train, eta_10=0.3, eta_01=0.45, rng=rng)

    flipped = (train.labels() != train.noisy_labels()).sum()
    print(f"heuristic annotation flipped {flipped}/{len(train)} labels "
          f"(η10=0.3 missed insiders, η01=0.45 false alarms)\n")

    # --- CLFD -----------------------------------------------------------
    clfd = CLFD(CLFDConfig.fast()).fit(train, rng=np.random.default_rng(0))
    labels, scores = clfd.predict(test)
    clfd_metrics = evaluate_detector(test.labels(), labels, scores)

    # Which sessions did the corrector fix, and which did it break?
    truth = train.labels()
    noisy = train.noisy_labels()
    corrected = clfd.corrected_labels
    fixed = ((noisy != truth) & (corrected == truth)).sum()
    broken = ((noisy == truth) & (corrected != truth)).sum()
    print(f"label corrector: repaired {fixed} flipped labels, "
          f"corrupted {broken} clean ones")
    confidence = clfd.confidences
    wrong = corrected != truth
    print(f"mean confidence on correct corrections: "
          f"{confidence[~wrong].mean():.3f}")
    print(f"mean confidence on wrong corrections:   "
          f"{confidence[wrong].mean():.3f}"
          if wrong.any() else "no wrong corrections")
    print("(the weighted sup-con loss scales every pair's learning signal "
          "by these confidences)\n")

    # --- CLDet (no noise-robust machinery) -------------------------------
    cldet = CLDetModel(BaselineConfig(epochs=10))
    cldet.fit(train, rng=np.random.default_rng(0))
    labels, scores = cldet.predict(test)
    cldet_metrics = evaluate_detector(test.labels(), labels, scores)

    print(f"{'model':8s} {'F1':>7s} {'FPR':>7s} {'AUC-ROC':>8s}")
    for name, metrics in (("CLFD", clfd_metrics), ("CLDet", cldet_metrics)):
        print(f"{name:8s} {metrics['f1']:7.1f} {metrics['fpr']:7.1f} "
              f"{metrics['auc_roc']:8.1f}")


if __name__ == "__main__":
    main()
