"""Noise-robust classification losses (paper §III-A1).

All losses take the classifier's softmax *probabilities* (a Tensor of
shape ``(batch, classes)``) and a target distribution (a NumPy array of
the same shape: one-hot for plain labels, or a mixup interpolation
``m̃ᵢ = λẽᵢ + (1-λ)ẽⱼ``).  The mixup-GCE loss of Eq. 2 is therefore
:func:`gce_loss` evaluated on mixed probabilities/targets produced by
:mod:`repro.augment.mixup`.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, as_tensor

__all__ = ["gce_loss", "cce_loss", "mae_loss"]

_EPS = 1e-12

# Floor for probabilities that enter a *power* ``p^q``: the gradient
# ``q·p^(q-1)`` at the old floor of 1e-12 reaches ~1e9 as q→0, which
# swamps every other gradient in the batch (gradcheck showed deviations
# of ~3e6 at q=1e-3).  1e-4 matches the floor the symmetric-CE loss
# already applies to its reversed term, so the two paths now agree.
_PROB_FLOOR = 1e-4


def _check_inputs(probs: Tensor, targets: np.ndarray) -> np.ndarray:
    # Targets follow the probability dtype: a float64 target tensor
    # would silently promote a float32 graph.
    targets = np.asarray(targets, dtype=probs.data.dtype)
    if probs.shape != targets.shape:
        raise ValueError(
            f"probs {probs.shape} and targets {targets.shape} must match"
        )
    return targets


def _reduce(per_sample: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return per_sample.mean()
    if reduction == "sum":
        return per_sample.sum()
    if reduction == "none":
        return per_sample
    raise ValueError(f"unknown reduction {reduction!r}")


def gce_loss(probs: Tensor, targets, q: float = 0.7,
             reduction: str = "mean") -> Tensor:
    """Generalized cross-entropy (Eq. 1 / Eq. 2 with mixed targets).

    ``l = Σ_k (t_k / q) · (1 - p_k^q)`` with ``q ∈ (0, 1]``.
    ``q → 0`` recovers categorical cross-entropy (Theorem 1); ``q = 1``
    is the MAE/unhinged loss.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    targets = _check_inputs(probs, targets)
    probs = as_tensor(probs).clip(_PROB_FLOOR, 1.0)
    per_sample = (Tensor(targets) * (1.0 - probs ** q) * (1.0 / q)).sum(axis=-1)
    return _reduce(per_sample, reduction)


def cce_loss(probs: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Categorical cross-entropy over probabilities with soft targets.

    ``l = -Σ_k t_k log p_k`` — the noise-*sensitive* loss the paper uses
    as the "w/o GCE" ablation and as the q→0 limit of GCE.
    """
    targets = _check_inputs(probs, targets)
    probs = as_tensor(probs).clip(_EPS, 1.0)
    per_sample = -(Tensor(targets) * probs.log()).sum(axis=-1)
    return _reduce(per_sample, reduction)


def mae_loss(probs: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Unhinged / mean-absolute-error loss: ``Σ_k t_k (1 - p_k)``.

    Noise-robust but slow to optimise (§III-A1); equals GCE at q=1.
    """
    targets = _check_inputs(probs, targets)
    probs = as_tensor(probs)
    per_sample = (Tensor(targets) * (1.0 - probs)).sum(axis=-1)
    return _reduce(per_sample, reduction)
