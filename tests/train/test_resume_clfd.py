"""Kill-and-resume drills for the full models.

The acceptance criterion for the training runtime: interrupt a fit at
any phase boundary or epoch snapshot, resume in a fresh process, and
the final parameters, predictions and journal are **bit-identical** to
an uninterrupted run with the same seed.  ``stop_after`` raises
:class:`TrainingInterrupted` at exactly the point a SIGKILL drill would
die (right after the snapshot lands), so these tests cover the same
contract deterministically; the CI resume-smoke job adds a real
SIGKILL on top.
"""

import numpy as np
import pytest

from repro.baselines import BaselineConfig, DeepLogModel
from repro.core import CLFD, CoTeachingCLFD, model_fingerprint
from repro.data import Word2VecConfig
from repro.train import TrainingInterrupted, TrainRun, deterministic_entries


def _fit_clean(factory, tiny_data, seed=5):
    model = factory()
    model.fit(tiny_data[0], rng=np.random.default_rng(seed))
    return model


def _fit_interrupted_then_resume(factory, tiny_data, tmp_path, stop_after,
                                 seed=5):
    journal = tmp_path / "journal.jsonl"
    run = TrainRun(tmp_path / "ckpt", journal, stop_after=stop_after)
    with pytest.raises(TrainingInterrupted) as err:
        factory().fit(tiny_data[0], rng=np.random.default_rng(seed),
                      run=run)
    assert err.value.tag == stop_after.split("@")[0] or \
        err.value.tag == stop_after

    # Fresh model + fresh rng, exactly like a restarted process.
    resumed = TrainRun(tmp_path / "ckpt", journal, resume=True)
    model = factory()
    model.fit(tiny_data[0], rng=np.random.default_rng(seed), run=resumed)
    return model, journal


@pytest.fixture(scope="module")
def clean_clfd(tiny_config, tiny_data):
    model = _fit_clean(lambda: CLFD(tiny_config), tiny_data)
    return model, model_fingerprint(model)


# One stop point per phase family: a non-loop phase checkpoint, a
# mid-loop epoch snapshot, a completed composite phase, and the final
# phase boundary.
CLFD_STOPS = ["vectorizer", "corrector/ssl@1", "corrector",
              "detector/supcon@1", "detector"]


@pytest.mark.parametrize("stop_after", CLFD_STOPS)
def test_clfd_resume_bit_identical(tiny_config, tiny_data, tmp_path,
                                   clean_clfd, stop_after):
    clean_model, clean_print = clean_clfd
    model, _ = _fit_interrupted_then_resume(
        lambda: CLFD(tiny_config), tiny_data, tmp_path, stop_after)
    assert model_fingerprint(model) == clean_print
    np.testing.assert_array_equal(model.predict_proba(tiny_data[1]),
                                  clean_model.predict_proba(tiny_data[1]))


def test_clfd_resume_journal_matches_uninterrupted(tiny_config, tiny_data,
                                                   tmp_path):
    # Deterministic journal view (phase/epoch/loss/grad_norm/lr/batches)
    # must be identical between a straight-through run and an
    # interrupted-then-resumed run.
    straight = tmp_path / "straight"
    run = TrainRun(straight / "ckpt", straight / "journal.jsonl")
    CLFD(tiny_config).fit(tiny_data[0], rng=np.random.default_rng(5),
                          run=run)

    drilled = tmp_path / "drilled"
    _, journal = _fit_interrupted_then_resume(
        lambda: CLFD(tiny_config), tiny_data, drilled,
        "corrector/head@3")
    assert deterministic_entries(journal) == \
        deterministic_entries(straight / "journal.jsonl")


def test_clfd_second_resume_after_completion_is_stable(tiny_config,
                                                       tiny_data, tmp_path,
                                                       clean_clfd):
    _, clean_print = clean_clfd
    model, journal = _fit_interrupted_then_resume(
        lambda: CLFD(tiny_config), tiny_data, tmp_path, "corrector")
    # Resuming an already-finished run recomputes nothing new and lands
    # on the same fingerprint again.
    rerun = TrainRun(tmp_path / "ckpt", journal, resume=True)
    model2 = CLFD(tiny_config)
    model2.fit(tiny_data[0], rng=np.random.default_rng(5), run=rerun)
    assert model_fingerprint(model2) == model_fingerprint(model) == \
        clean_print


def test_co_teaching_resume_bit_identical(tiny_config, tiny_data,
                                          tmp_path):
    clean = _fit_clean(lambda: CoTeachingCLFD(tiny_config), tiny_data)
    model, _ = _fit_interrupted_then_resume(
        lambda: CoTeachingCLFD(tiny_config), tiny_data, tmp_path,
        "coteach")
    assert model_fingerprint(model) == model_fingerprint(clean)
    np.testing.assert_array_equal(model.predict_proba(tiny_data[1]),
                                  clean.predict_proba(tiny_data[1]))


def test_co_teaching_mid_corrector_resume(tiny_config, tiny_data,
                                          tmp_path):
    clean = _fit_clean(lambda: CoTeachingCLFD(tiny_config), tiny_data)
    model, _ = _fit_interrupted_then_resume(
        lambda: CoTeachingCLFD(tiny_config), tiny_data, tmp_path,
        "coteach/1/ssl@1")
    assert model_fingerprint(model) == model_fingerprint(clean)


def test_deeplog_baseline_resume_bit_identical(tiny_data, tmp_path):
    config = BaselineConfig(embedding_dim=8, hidden_size=12,
                            lstm_layers=1, epochs=3, batch_size=32,
                            word2vec=Word2VecConfig(dim=8, epochs=1))
    factory = lambda: DeepLogModel(config)
    clean = _fit_clean(factory, tiny_data)
    model, _ = _fit_interrupted_then_resume(
        factory, tiny_data, tmp_path, "lm@1")
    np.testing.assert_array_equal(model.predict_proba(tiny_data[1]),
                                  clean.predict_proba(tiny_data[1]))
    np.testing.assert_array_equal(model.predict(tiny_data[1]),
                                  clean.predict(tiny_data[1]))
