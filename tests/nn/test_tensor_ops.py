"""Unit tests for Tensor arithmetic, reductions and shape operations."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    chunk,
    concat,
    default_dtype,
    get_default_dtype,
    maximum,
    minimum,
    no_grad,
    split,
    stack,
    where,
)


def test_add_broadcast_values_and_grads():
    a = Tensor(np.ones((3, 4)), requires_grad=True)
    b = Tensor(np.arange(4.0), requires_grad=True)
    out = a + b
    assert out.shape == (3, 4)
    out.sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((3, 4)))
    np.testing.assert_allclose(b.grad, np.full(4, 3.0))


def test_mul_grad_is_other_operand():
    a = Tensor([2.0, 3.0], requires_grad=True)
    b = Tensor([5.0, 7.0], requires_grad=True)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, [5.0, 7.0])
    np.testing.assert_allclose(b.grad, [2.0, 3.0])


def test_sub_and_div():
    a = Tensor([6.0], requires_grad=True)
    b = Tensor([2.0], requires_grad=True)
    out = (a - b) / b
    assert out.item() == pytest.approx(2.0)
    out.backward()
    assert a.grad[0] == pytest.approx(0.5)
    assert b.grad[0] == pytest.approx(-6.0 / 4.0)  # d/db[(a-b)/b] = -a/b^2


def test_pow_gradient():
    x = Tensor([3.0], requires_grad=True)
    (x ** 3).backward()
    assert x.grad[0] == pytest.approx(27.0)


def test_scalar_right_ops():
    x = Tensor([2.0], requires_grad=True)
    out = 1.0 - x + 4.0 / x
    assert out.item() == pytest.approx(1.0)
    out.backward()
    assert x.grad[0] == pytest.approx(-1.0 - 4.0 / 4.0)


def test_exp_log_roundtrip_grad():
    x = Tensor([0.5, 1.5], requires_grad=True)
    out = x.exp().log().sum()
    out.backward()
    np.testing.assert_allclose(x.grad, np.ones(2), atol=1e-12)


def test_sum_axis_keepdims():
    x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    out = x.sum(axis=1, keepdims=True)
    assert out.shape == (2, 1)
    out.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((2, 3)))


def test_mean_gradient_scaling():
    x = Tensor(np.ones((2, 5)), requires_grad=True)
    x.mean().backward()
    np.testing.assert_allclose(x.grad, np.full((2, 5), 0.1))


def test_mean_axis_tuple():
    x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
    out = x.mean(axis=(0, 2))
    assert out.shape == (3,)
    out.sum().backward()
    np.testing.assert_allclose(x.grad, np.full((2, 3, 4), 1.0 / 8.0))


def test_max_reduction_splits_ties():
    x = Tensor([[1.0, 3.0, 3.0]], requires_grad=True)
    x.max(axis=1).sum().backward()
    np.testing.assert_allclose(x.grad, [[0.0, 0.5, 0.5]])


def test_reshape_transpose_roundtrip():
    x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    out = x.reshape(3, 2).transpose()
    assert out.shape == (2, 3)
    out.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((2, 3)))


def test_getitem_fancy_index_accumulates_duplicates():
    x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    idx = np.array([0, 0, 2])
    x[idx].sum().backward()
    np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])


def test_matmul_2d_grads():
    a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
    b = Tensor(np.random.default_rng(1).normal(size=(4, 2)), requires_grad=True)
    (a @ b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b.data.T)
    np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 2)))


def test_matmul_batched_weight_broadcast():
    rng = np.random.default_rng(2)
    x = Tensor(rng.normal(size=(5, 3, 4)), requires_grad=True)
    w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
    (x @ w).sum().backward()
    assert w.grad.shape == (4, 2)
    assert x.grad.shape == (5, 3, 4)


def test_concat_routes_gradients():
    a = Tensor(np.ones((2, 2)), requires_grad=True)
    b = Tensor(np.ones((3, 2)), requires_grad=True)
    out = concat([a, b], axis=0)
    assert out.shape == (5, 2)
    (out * Tensor(np.arange(10.0).reshape(5, 2))).sum().backward()
    np.testing.assert_allclose(a.grad, [[0, 1], [2, 3]])
    np.testing.assert_allclose(b.grad, [[4, 5], [6, 7], [8, 9]])


def test_stack_routes_gradients():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=True)
    out = stack([a, b], axis=0)
    assert out.shape == (2, 2)
    out[0].sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 1.0])
    np.testing.assert_allclose(b.grad, [0.0, 0.0])


def test_where_selects_branch_gradient():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=True)
    where([True, False], a, b).sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 0.0])
    np.testing.assert_allclose(b.grad, [0.0, 1.0])


def test_maximum_minimum_values():
    a = Tensor([1.0, 5.0])
    b = Tensor([4.0, 2.0])
    np.testing.assert_allclose(maximum(a, b).data, [4.0, 5.0])
    np.testing.assert_allclose(minimum(a, b).data, [1.0, 2.0])


def test_clip_gradient_masked_outside():
    x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
    x.clip(-1.0, 1.0).sum().backward()
    np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


def test_abs_gradient_is_sign():
    x = Tensor([-3.0, 4.0], requires_grad=True)
    x.abs().sum().backward()
    np.testing.assert_allclose(x.grad, [-1.0, 1.0])


def test_no_grad_blocks_graph():
    x = Tensor([1.0], requires_grad=True)
    with no_grad():
        out = x * 2.0
    assert not out.requires_grad
    with pytest.raises(RuntimeError):
        out.backward()


def test_detach_cuts_graph():
    x = Tensor([2.0], requires_grad=True)
    y = (x * 3.0).detach() * x
    y.backward()
    assert x.grad[0] == pytest.approx(6.0)  # only the second factor contributes


def test_backward_accumulates_over_calls():
    x = Tensor([1.0], requires_grad=True)
    (x * 2.0).backward()
    (x * 3.0).backward()
    assert x.grad[0] == pytest.approx(5.0)


def test_diamond_graph_accumulates_once_per_path():
    x = Tensor([2.0], requires_grad=True)
    y = x * 3.0
    z = y + y  # two paths through y
    z.backward()
    assert x.grad[0] == pytest.approx(6.0)


def test_int_input_promoted_to_float():
    x = Tensor([1, 2, 3])
    assert np.issubdtype(x.data.dtype, np.floating)


def test_backward_raises_without_grad():
    x = Tensor([1.0])
    with pytest.raises(RuntimeError):
        x.backward()


def test_split_even_chunks_values_and_grads():
    x = Tensor(np.arange(12.0).reshape(2, 6), requires_grad=True)
    a, b, c = split(x, 2, axis=1)
    np.testing.assert_allclose(a.data, [[0, 1], [6, 7]])
    np.testing.assert_allclose(c.data, [[4, 5], [10, 11]])
    (a * 1.0 + b * 2.0 + c * 3.0).sum().backward()
    np.testing.assert_allclose(
        x.grad, np.repeat([[1.0, 2.0, 3.0]], 2, axis=0).repeat(2, axis=1))


def test_split_explicit_sections():
    x = Tensor(np.arange(10.0), requires_grad=True)
    a, b = split(x, [3, 7], axis=0)
    assert a.shape == (3,) and b.shape == (7,)
    b.sum().backward()
    np.testing.assert_allclose(x.grad, [0] * 3 + [1] * 7)


def test_split_partial_use_leaves_zero_grad_elsewhere():
    """Unused pieces must not contribute gradient (the shared-buffer
    backward writes only the used slice)."""
    x = Tensor(np.ones((4, 4)), requires_grad=True)
    pieces = split(x, 1, axis=0)
    pieces[2].sum().backward()
    expected = np.zeros((4, 4))
    expected[2] = 1.0
    np.testing.assert_allclose(x.grad, expected)


def test_split_uneven_last_chunk_is_smaller():
    x = Tensor(np.ones(7))
    pieces = split(x, 2, axis=0)
    assert [p.shape[0] for p in pieces] == [2, 2, 2, 1]


def test_split_rejects_mismatched_sections():
    x = Tensor(np.ones(7))
    with pytest.raises(ValueError):
        split(x, [3, 3], axis=0)


def test_chunk_rejects_indivisible_length():
    x = Tensor(np.ones(7))
    with pytest.raises(ValueError):
        chunk(x, 2, axis=0)


def test_chunk_matches_numpy_array_split():
    x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
    parts = chunk(x, 2, axis=1)
    assert [p.shape for p in parts] == [(3, 2), (3, 2)]
    np.testing.assert_allclose(parts[1].data, x.data[:, 2:])


def test_default_dtype_context_and_cast():
    assert get_default_dtype() == np.float64
    with default_dtype(np.float32):
        assert get_default_dtype() == np.float32
        t = Tensor([1, 2, 3])           # non-floating input follows default
        assert t.data.dtype == np.float32
    assert get_default_dtype() == np.float64


def test_set_default_dtype_rejects_non_float():
    with pytest.raises(ValueError):
        with default_dtype(np.int32):
            pass


def test_explicit_dtype_casts_and_grad_matches():
    x = Tensor([1.0, 2.0], dtype=np.float32, requires_grad=True)
    assert x.data.dtype == np.float32
    (x * x).sum().backward()
    assert x.grad.dtype == np.float32
    np.testing.assert_allclose(x.grad, [2.0, 4.0])


def test_astype_roundtrips_gradient():
    x = Tensor([1.0, 2.0], requires_grad=True)
    y = x.astype(np.float32)
    assert y.data.dtype == np.float32
    (y * 3.0).sum().backward()
    assert x.grad.dtype == np.float64
    np.testing.assert_allclose(x.grad, [3.0, 3.0])
