"""Terminal plots: render curves and bars as ASCII.

The experiment harness targets headless/CI environments, so quick
visual checks (noise-decay curves, ROC curves, loss histories) are
rendered as text rather than through a plotting stack.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_curve", "ascii_bars", "ascii_roc"]


def ascii_curve(xs, ys, width: int = 60, height: int = 12,
                title: str = "", y_label: str = "") -> str:
    """Plot one curve: ``ys`` over ``xs`` on a character grid."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1 or xs.size < 2:
        raise ValueError("xs and ys must be equal-length 1-D with >= 2 points")
    if width < 8 or height < 3:
        raise ValueError("width must be >= 8 and height >= 3")

    lo, hi = float(ys.min()), float(ys.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(xs.min()), float(xs.max())
    for x, y in zip(xs, ys):
        col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = int(round((hi - y) / (hi - lo) * (height - 1)))
        grid[row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{hi:8.2f} "
        elif i == height - 1:
            label = f"{lo:8.2f} "
        else:
            label = " " * 9
        lines.append(label + "|" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_lo:<.3g}" + " " * (width - 12)
                 + f"{x_hi:>.3g}")
    if y_label:
        lines.append(f"({y_label})")
    return "\n".join(lines)


def ascii_bars(labels, values, width: int = 40, title: str = "") -> str:
    """Horizontal bar chart: one row per (label, value)."""
    values = np.asarray(list(values), dtype=np.float64)
    labels = [str(label) for label in labels]
    if len(labels) != values.size or values.size == 0:
        raise ValueError("labels and values must be equal-length, non-empty")
    if (values < 0).any():
        raise ValueError("bar values must be non-negative")
    peak = values.max() if values.max() > 0 else 1.0
    name_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{label:>{name_width}s} |{bar} {value:.1f}")
    return "\n".join(lines)


def ascii_roc(y_true, scores, width: int = 40, height: int = 12) -> str:
    """Render the ROC curve of a scored detector as ASCII."""
    from ..metrics import auc_roc, roc_curve

    fpr, tpr = roc_curve(y_true, scores)
    plot = ascii_curve(fpr, tpr, width=width, height=height,
                       title=f"ROC (AUC = {auc_roc(y_true, scores):.1f}%)",
                       y_label="TPR over FPR")
    return plot
