"""Distill a 1-layer student detector from a fitted CLFD teacher.

The teacher's mixup-GCE head produces calibrated soft scores (that is
the point of the noise-corrected training signal — see ChiMera/PLS in
PAPERS.md), so a much smaller student can be trained directly on
``teacher.predict_proba`` targets with plain soft-target cross-entropy:
no labels, no corrector, no contrastive pre-training.

The student is a :class:`~repro.core.fraud_detector.FraudDetector`
built from the teacher's config with ``lstm_layers=1`` (and no label
corrector), sharing the teacher's vectorizer — same vocabulary, same
embedding table — and trained **end-to-end** (encoder + head together)
through the existing :class:`~repro.train.TrainRun` trainer loop under
the ``distill`` scope, so checkpointing/journaling work exactly as for
any other phase.  Class centroids are fitted against the teacher's
hard labels so the ``inference="centroid"`` ablation keeps working.

The result is a normal fitted :class:`~repro.core.CLFD`: it persists
through :func:`~repro.core.persistence.save_clfd`, serves through the
engine, and quantizes through :mod:`repro.quant.quantize` — the
intended production stack is distill, then quantize the student.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..core.clfd import CLFD
from ..core.fraud_detector import FraudDetector
from ..data.sessions import SessionDataset, iter_batches
from ..losses import cce_loss
from ..train import TrainRun

__all__ = ["distill_student", "student_config"]


def student_config(teacher_config):
    """The student architecture: the teacher's config, one layer deep.

    ``use_label_corrector`` is switched off — the student never sees
    labels, so the corrector has nothing to correct.
    """
    return dataclasses.replace(teacher_config, lstm_layers=1,
                               use_label_corrector=False)


class _Student(nn.Module):
    """Encoder + head as one module, so the trainer sees every
    parameter (distillation trains the student end-to-end, unlike the
    two-stage teacher)."""

    def __init__(self, encoder, classifier):
        super().__init__()
        self.encoder = encoder
        self.classifier = classifier


def distill_student(teacher: CLFD, train: SessionDataset, *,
                    epochs: int | None = None, lr: float | None = None,
                    rng: np.random.Generator | None = None,
                    run: TrainRun | None = None) -> CLFD:
    """Train a 1-layer student on the teacher's soft scores.

    Returns a fitted CLFD (student detector, no corrector) ready for
    :func:`~repro.core.persistence.save_clfd`.  The per-epoch mean
    distillation loss is left on
    ``model.fraud_detector.classifier_loss_history``.
    """
    if teacher.vectorizer is None or teacher.fraud_detector is None:
        raise ValueError("distillation requires a fitted teacher with a "
                         "fraud detector")
    rng = rng if rng is not None else np.random.default_rng(0)
    config = student_config(teacher.config)
    epochs = epochs if epochs is not None else config.classifier_epochs
    lr = lr if lr is not None else config.lr

    targets = np.asarray(teacher.predict_proba(train), dtype=np.float64)

    model = CLFD(config)
    model.vectorizer = teacher.vectorizer
    detector = FraudDetector(config, model.vectorizer, rng)
    module = _Student(detector.encoder, detector.classifier)
    optimizer = nn.Adam(module.parameters(), lr=lr)
    dtype = detector.encoder.dtype

    def batches(batch_rng: np.random.Generator):
        return iter_batches(train, config.batch_size, batch_rng)

    def step(batch: np.ndarray):
        if batch.size < 2:
            return None
        x, lengths = model.vectorizer.transform(train, indices=batch)
        z = detector.encoder(x, lengths)
        probs = detector.classifier.probs(z)
        return cce_loss(probs, np.asarray(targets[batch], dtype=dtype))

    trainer = (run or TrainRun()).trainer("distill", module, optimizer,
                                          grad_clip=config.grad_clip)
    model.vectorizer.precompute(train)
    try:
        history = trainer.fit(batches, step, epochs=epochs, rng=rng)
        features = detector._encode_dataset(train)
    finally:
        model.vectorizer.evict(train)

    detector.classifier_loss_history = history
    detector._fit_centroids(features, targets.argmax(axis=1))
    detector._fitted = True
    model.fraud_detector = detector
    model.label_corrector = None
    model._fitted = True
    return model
