"""Composite neural-network functions built on the autograd Tensor."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, concat, detached

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "one_hot",
    "l2_normalize",
    "cosine_similarity_matrix",
    "dropout_mask",
]


def _row_max(x: Tensor, axis: int) -> Tensor:
    """Stop-gradient row maximum for the max-shift trick.

    ``detached`` (rather than a constant ``Tensor(x.data.max(...))``)
    keeps the shift fresh under a compiled tape — a frozen trace-time
    maximum would leave the forward mathematically shift-invariant but
    bitwise divergent from the interpreted path.
    """
    return detached(x, lambda data: data.max(axis=axis, keepdims=True))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - _row_max(x, axis)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - _row_max(x, axis)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels, num_classes: int) -> np.ndarray:
    """Return a ``(n, num_classes)`` one-hot float array for integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.size, num_classes), dtype=np.float64)
    out[np.arange(labels.size), labels.ravel()] = 1.0
    return out.reshape(*labels.shape, num_classes)


def nll_loss(log_probs: Tensor, labels) -> Tensor:
    """Negative log-likelihood given log-probabilities and integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def cross_entropy(logits: Tensor, labels) -> Tensor:
    """Mean categorical cross-entropy from raw logits and integer labels."""
    return nll_loss(log_softmax(logits, axis=-1), labels)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows of ``x`` onto the unit sphere.

    The stabilizer sits *inside* the square root: ``sqrt(sum(x²) + eps²)``.
    The historical form ``sqrt(sum(x²)) + eps`` is finite in the forward
    pass but its backward divides by ``sqrt(sum(x²))`` itself, so an
    all-zero row (padding, dead features) produced NaN gradients and a
    subnormal row produced inf — both flushed out by the op fuzzer.
    """
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps * eps) ** 0.5
    return x / norm


def cosine_similarity_matrix(a: Tensor, b: Tensor | None = None) -> Tensor:
    """Pairwise cosine similarities between rows of ``a`` and rows of ``b``.

    Contrastive losses in this repository all reduce to this primitive.
    """
    a_norm = l2_normalize(a)
    b_norm = a_norm if b is None else l2_normalize(b)
    return a_norm @ b_norm.T


def dropout_mask(shape: tuple[int, ...], p: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout mask: zeros with probability ``p``, else 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = rng.random(shape) >= p
    return keep.astype(np.float64) / (1.0 - p)
