"""Multi-host work-stealing coordination over idempotent grid cells.

The executor's cells are already distributed-systems primitives: a
:class:`~repro.parallel.tasks.TaskSpec` is self-describing, every cell
derives all randomness from its own spec, and completed records land in
a content-keyed :class:`~repro.parallel.cache.RunCache`.  This module
adds the missing tier — a tiny TCP leader that hands out content keys
to workers on any host:

* **Lease.**  A worker asks for work; the leader pops a cell off the
  queue and grants a *lease* (cell index + content key + attempt + a
  unique nonce) with a deadline ``lease_ttl`` seconds out.
* **Heartbeat.**  While executing, the worker heartbeats every
  ``lease_ttl / 3``; each beat extends the deadline.  A worker that is
  SIGKILLed, partitioned, or simply loses its host stops beating.
* **Re-queue.**  A reaper expires overdue leases and re-queues the cell
  (same attempt — worker loss is not the cell's fault, mirroring the
  process-pool quarantine's "don't charge the victim" rule).  A cell
  whose leases keep expiring is presumed to be crashing its workers and
  is quarantined as a structured failure after ``max_requeues``.
* **Idempotent completion.**  Cells are deterministic, so the first
  completion for an index wins regardless of which lease produced it;
  duplicates (two hosts racing the same re-queued key) are acknowledged
  and dropped.  An execution *exception* reported by the current lease
  holder charges an attempt and re-queues within the retry budget.

Transport is one JSON line per request over a fresh connection — no
connection state to lose, which is exactly right for workers that may
die at any instruction.  Specs travel as base64-pickled payloads inside
the JSON envelope (workers are trusted peers of the leader: the same
codebase, the same sweep).
"""

from __future__ import annotations

import base64
import collections
import json
import pickle
import queue
import socket
import socketserver
import threading
import time
import uuid

from .tasks import TaskSpec, task_key

__all__ = ["Coordinator", "CoordinatorClient", "parse_address",
           "DEFAULT_LEASE_TTL", "MAX_REQUEUES"]

DEFAULT_LEASE_TTL = 10.0
# A cell whose lease expires this many times is presumed to kill its
# workers (the multi-host analogue of the process-pool crash
# quarantine) and becomes a structured failure instead of cycling
# through hosts forever.
MAX_REQUEUES = 3


def parse_address(address: str | None) -> tuple[str, int]:
    """``"host:port"`` / ``":port"`` / ``None`` -> a bindable pair."""
    if not address:
        return "127.0.0.1", 0
    host, sep, port = str(address).rpartition(":")
    if not sep:
        host, port = "", address
    return host or "0.0.0.0", int(port)


def _encode_spec(spec: TaskSpec) -> str:
    return base64.b64encode(pickle.dumps(spec)).decode("ascii")


def _decode_spec(blob: str) -> TaskSpec:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


class _Lease:
    __slots__ = ("index", "key", "attempt", "worker", "nonce", "deadline")

    def __init__(self, index: int, key: str, attempt: int, worker: str,
                 ttl: float):
        self.index = index
        self.key = key
        self.attempt = attempt
        self.worker = worker
        self.nonce = uuid.uuid4().hex
        self.deadline = time.monotonic() + ttl

    def extend(self, ttl: float) -> None:
        self.deadline = time.monotonic() + ttl


class Coordinator:
    """Work-stealing leader for one sweep's remaining cells.

    Emits ``("complete", index, payload, attempts)`` and
    ``("failed", index, error_record)`` tuples on :attr:`events` —
    exactly one event per cell, which is what lets the executor fill
    its result slots in input order and stay bit-identical to the
    sequential path.
    """

    def __init__(self, cells: dict[int, TaskSpec], retries: int = 1,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_requeues: int = MAX_REQUEUES):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        self.cells = dict(cells)
        self.retries = retries
        self.lease_ttl = float(lease_ttl)
        self.max_requeues = max_requeues
        self.events: queue.Queue = queue.Queue()

        self._lock = threading.Lock()
        self._queue: collections.deque[tuple[int, int]] = collections.deque(
            (index, 0) for index in sorted(self.cells))
        self._leases: dict[int, _Lease] = {}
        self._resolved: set[int] = set()
        self.requeue_counts: collections.Counter = collections.Counter()
        self._server: socketserver.ThreadingTCPServer | None = None
        self._reaper: threading.Thread | None = None
        self._stopping = threading.Event()

    # -- lifecycle -----------------------------------------------------
    def start(self, address: str | None = None) -> tuple[str, int]:
        """Bind, serve in the background, return the bound address."""
        host, port = parse_address(address)
        coordinator = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):  # one JSON line in, one JSON line out
                try:
                    line = self.rfile.readline()
                    if not line.strip():
                        return
                    request = json.loads(line)
                    response = coordinator._dispatch(request)
                    self.wfile.write(
                        (json.dumps(response) + "\n").encode("utf-8"))
                except (OSError, json.JSONDecodeError,
                        UnicodeDecodeError):  # pragma: no cover - net noise
                    pass

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((host, port), Handler)
        threading.Thread(target=self._server.serve_forever,
                         kwargs={"poll_interval": 0.05},
                         daemon=True, name="grid-coordinator").start()
        self._reaper = threading.Thread(target=self._reap_loop, daemon=True,
                                        name="grid-lease-reaper")
        self._reaper.start()
        bound = self._server.server_address
        self.address = (bound[0], bound[1])
        return self.address

    def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None

    # -- introspection -------------------------------------------------
    def active_workers(self) -> int:
        """Distinct workers currently holding an unexpired lease."""
        now = time.monotonic()
        with self._lock:
            return len({lease.worker for lease in self._leases.values()
                        if lease.deadline > now})

    def outstanding(self) -> int:
        """Cells not yet resolved (queued or leased)."""
        with self._lock:
            return len(self.cells) - len(self._resolved)

    @property
    def done(self) -> bool:
        return self.outstanding() == 0

    def fail_queued(self, reason: str) -> int:
        """Resolve every *queued* cell as a structured failure.

        Leader-side safety valve: when the local spawn budget is gone
        and no remote worker holds a lease, queued cells would otherwise
        wait forever (only leased cells can expire).  Leased cells are
        left alone — their expiry path decides re-queue vs quarantine.
        """
        failed = 0
        with self._lock:
            while self._queue:
                index, attempt = self._queue.popleft()
                if index in self._resolved:
                    continue
                self._resolved.add(index)
                self.events.put(("failed", index, {
                    "type": "NoWorkersLeft", "message": reason,
                    "traceback": "", "attempts": attempt + 1}))
                failed += 1
        return failed

    # -- protocol ------------------------------------------------------
    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "hello":
            return {"op": "ok", "total": len(self.cells),
                    "outstanding": self.outstanding()}
        if op == "lease":
            return self._handle_lease(str(request.get("worker", "?")))
        if op == "heartbeat":
            return self._handle_heartbeat(request)
        if op == "complete":
            return self._handle_complete(request)
        if op == "fail":
            return self._handle_fail(request)
        return {"op": "error", "message": f"unknown op {op!r}"}

    def _handle_lease(self, worker: str) -> dict:
        self._reap_expired()
        with self._lock:
            while self._queue:
                index, attempt = self._queue.popleft()
                if index in self._resolved:
                    continue  # completed while re-queued
                spec = self.cells[index]
                lease = _Lease(index, task_key(spec), attempt, worker,
                               self.lease_ttl)
                self._leases[index] = lease
                return {"op": "task", "index": index, "key": lease.key,
                        "attempt": attempt, "nonce": lease.nonce,
                        "ttl": self.lease_ttl, "spec": _encode_spec(spec)}
            if len(self._resolved) == len(self.cells):
                return {"op": "done"}
            return {"op": "wait"}

    def _handle_heartbeat(self, request: dict) -> dict:
        with self._lock:
            lease = self._leases.get(request.get("index"))
            if lease is None or lease.nonce != request.get("nonce"):
                # Lease lost (expired and re-queued, or already
                # resolved).  The worker may finish and submit anyway —
                # completion is idempotent — but should stop renewing.
                return {"op": "abandon"}
            lease.extend(self.lease_ttl)
            return {"op": "ok"}

    def _handle_complete(self, request: dict) -> dict:
        index = request.get("index")
        payload = request.get("payload") or {}
        with self._lock:
            if index not in self.cells:
                return {"op": "error", "message": f"unknown cell {index!r}"}
            if index in self._resolved:
                # Duplicate completion: two hosts finished the same
                # key.  Cells are deterministic, so first-wins is
                # exactly as correct as any other choice — acknowledge
                # and drop.
                return {"op": "ok", "accepted": False}
            lease = self._leases.pop(index, None)
            attempts = (lease.attempt if lease is not None
                        else int(request.get("attempt", 0))) + 1
            self._resolved.add(index)
            self.events.put(("complete", index, payload, attempts))
            return {"op": "ok", "accepted": True}

    def _handle_fail(self, request: dict) -> dict:
        index = request.get("index")
        error = request.get("error") or {}
        with self._lock:
            if index not in self.cells or index in self._resolved:
                return {"op": "ok", "accepted": False}
            lease = self._leases.get(index)
            if lease is None or lease.nonce != request.get("nonce"):
                # A stale lease holder failing after its re-queue must
                # not double-charge the cell's retry budget.
                return {"op": "ok", "accepted": False}
            del self._leases[index]
            attempt = lease.attempt + 1
            if attempt > self.retries:
                error = dict(error)
                error.setdefault("attempts", attempt)
                self._resolved.add(index)
                self.events.put(("failed", index, error))
            else:
                self._queue.append((index, attempt))
            return {"op": "ok", "accepted": True}

    # -- lease expiry --------------------------------------------------
    def _reap_loop(self) -> None:
        while not self._stopping.wait(self.lease_ttl / 4.0):
            self._reap_expired()

    def _reap_expired(self) -> None:
        now = time.monotonic()
        with self._lock:
            for index in [i for i, lease in self._leases.items()
                          if lease.deadline <= now]:
                lease = self._leases.pop(index)
                self.requeue_counts[index] += 1
                if self.requeue_counts[index] > self.max_requeues:
                    # Crash quarantine: this cell keeps killing the
                    # workers that touch it.
                    self._resolved.add(index)
                    self.events.put(("failed", index, {
                        "type": "LeaseExpired",
                        "message": (f"lease expired "
                                    f"{self.requeue_counts[index]} times "
                                    f"(last worker {lease.worker!r}); cell "
                                    f"presumed to crash its workers"),
                        "traceback": "",
                        "attempts": lease.attempt + 1,
                    }))
                else:
                    # Worker loss is not the cell's fault: re-queue at
                    # the *same* attempt, like pool-breakage victims.
                    self._queue.append((index, lease.attempt))


class CoordinatorClient:
    """One worker's view of the leader: request/response over TCP."""

    def __init__(self, address: tuple[str, int] | str,
                 timeout: float = 10.0):
        if isinstance(address, str):
            host, port = parse_address(address)
        else:
            host, port = address
        self.address = (host or "127.0.0.1", int(port))
        self.timeout = timeout

    def call(self, request: dict) -> dict:
        with socket.create_connection(self.address,
                                      timeout=self.timeout) as conn:
            conn.sendall((json.dumps(request) + "\n").encode("utf-8"))
            with conn.makefile("r", encoding="utf-8") as fh:
                line = fh.readline()
        if not line.strip():
            raise ConnectionError("empty response from coordinator")
        return json.loads(line)

    # Convenience wrappers -------------------------------------------------
    def hello(self) -> dict:
        return self.call({"op": "hello"})

    def lease(self, worker: str) -> dict:
        response = self.call({"op": "lease", "worker": worker})
        if response.get("op") == "task":
            response["spec"] = _decode_spec(response["spec"])
        return response

    def heartbeat(self, worker: str, index: int, nonce: str) -> dict:
        return self.call({"op": "heartbeat", "worker": worker,
                          "index": index, "nonce": nonce})

    def complete(self, worker: str, index: int, key: str, nonce: str,
                 payload: dict) -> dict:
        return self.call({"op": "complete", "worker": worker, "index": index,
                          "key": key, "nonce": nonce, "payload": payload})

    def fail(self, worker: str, index: int, key: str, nonce: str,
             error: dict) -> dict:
        return self.call({"op": "fail", "worker": worker, "index": index,
                          "key": key, "nonce": nonce, "error": error})
