"""Activity vocabulary: maps activity names to integer ids.

Id 0 is reserved for padding in every vocabulary.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["PAD_TOKEN", "Vocabulary"]

PAD_TOKEN = "<pad>"


class Vocabulary:
    """Bidirectional token <-> id mapping with a reserved padding slot."""

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: dict[str, int] = {PAD_TOKEN: 0}
        self._id_to_token: list[str] = [PAD_TOKEN]
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Register ``token`` (idempotent) and return its id."""
        if token in self._token_to_id:
            return self._token_to_id[token]
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map tokens to ids; unknown tokens raise ``KeyError``."""
        return [self._token_to_id[t] for t in tokens]

    def encode_frozen(self, tokens: Iterable[str]) -> tuple[list[int], int]:
        """Frozen-vocabulary encoding: drop novel tokens, count them.

        Returns ``(ids, novel)`` where ``ids`` covers only the known
        tokens (in order) and ``novel`` counts the out-of-vocabulary
        ones.  This is the streaming/inference path: raising (like
        :meth:`encode`) would reject whole live sessions, and silently
        mapping novel tokens to the padding id would hide exactly the
        signal the drift monitor needs — so novelty is surfaced as an
        explicit count instead.
        """
        ids: list[int] = []
        novel = 0
        for token in tokens:
            idx = self._token_to_id.get(token)
            if idx is None:
                novel += 1
            else:
                ids.append(idx)
        return ids, novel

    def decode(self, ids: Iterable[int]) -> list[str]:
        return [self._id_to_token[i] for i in ids]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __getitem__(self, token: str) -> int:
        return self._token_to_id[token]

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return 0

    def tokens(self) -> list[str]:
        """All tokens including the pad token, in id order."""
        return list(self._id_to_token)
