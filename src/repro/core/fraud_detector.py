"""CLFD's fraud detector (§III-B, Algorithm 1).

Stage 1 — *supervised pre-training*: a fresh LSTM session encoder is
trained with the confidence-weighted supervised contrastive loss
(Eq. 5–6).  Every batch S of R sessions is joined by an auxiliary batch
S¹ of M corrected-malicious sessions so the minority class is always
represented among the contrast candidates.

Stage 2 — *mixup-based classifier training*: a two-layer FCNN is trained
with mixup-GCE over the frozen encoded representations, supervised by
the corrected labels.  The FCNN performs test-time inference; a
centroid-proximity alternative implements the "w/o classifier" ablation.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.pipeline import SessionVectorizer
from ..data.sessions import MALICIOUS, NORMAL, SessionDataset, iter_batches
from ..losses import sup_con_loss
from ..losses.contrastive import sup_con_from_weights, sup_con_pair_weights
from ..train import TrainRun
from .config import CLFDConfig
from .encoder import SessionEncoder, SoftmaxClassifier
from .training import train_classifier_head

__all__ = ["FraudDetector"]


class FraudDetector:
    """Weighted sup-con encoder + mixup-GCE FCNN (Algorithm 1)."""

    def __init__(self, config: CLFDConfig, vectorizer: SessionVectorizer,
                 rng: np.random.Generator):
        self.config = config
        self.vectorizer = vectorizer
        self._rng = rng
        with nn.default_dtype(config.compute_dtype):
            self.encoder = SessionEncoder(config.embedding_dim,
                                          config.hidden_size,
                                          rng, num_layers=config.lstm_layers,
                                          cell=config.encoder_cell,
                                          pooling=config.pooling,
                                          fused=config.fused_rnn)
            self.classifier = SoftmaxClassifier(self.encoder.output_dim, rng)
        self.supcon_loss_history: list[float] = []
        self.classifier_loss_history: list[float] = []
        self.centroids: np.ndarray | None = None
        self._fitted = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, train: SessionDataset, corrected_labels: np.ndarray,
            confidences: np.ndarray,
            run: TrainRun | None = None) -> "FraudDetector":
        """Run Algorithm 1 given the label corrector's outputs."""
        run = run or TrainRun()
        corrected_labels = np.asarray(corrected_labels, dtype=np.int64)
        confidences = np.asarray(confidences, dtype=np.float64)
        if corrected_labels.shape != (len(train),):
            raise ValueError("corrected_labels must cover the training set")
        if confidences.shape != (len(train),):
            raise ValueError("confidences must cover the training set")

        # Embed the whole training set once; every sup-con batch of
        # every epoch then slices the cached array.
        self.vectorizer.precompute(train)
        try:
            self._pretrain_supcon(train, corrected_labels, confidences, run)
            features = self._encode_dataset(train)
        finally:
            self.vectorizer.evict(train)
        self.classifier_loss_history = train_classifier_head(
            self.classifier, features, corrected_labels, self._rng,
            loss=self.config.classifier_loss, q=self.config.q,
            beta=self.config.mixup_beta,
            epochs=self.config.classifier_epochs,
            batch_size=self.config.batch_size, lr=self.config.lr,
            grad_clip=self.config.grad_clip, run=run,
        )
        self._fit_centroids(features, corrected_labels)
        self._fitted = True
        return self

    def _pretrain_supcon(self, train: SessionDataset,
                         labels: np.ndarray, confidences: np.ndarray,
                         run: TrainRun | None = None) -> None:
        run = run or TrainRun()
        config = self.config
        optimizer = nn.Adam(self.encoder.parameters(), lr=config.lr)
        malicious_pool = np.flatnonzero(labels == MALICIOUS)

        def batches(rng: np.random.Generator):
            return iter_batches(train, config.batch_size, rng)

        dtype = self.encoder.dtype

        def _draw_rows(batch: np.ndarray) -> np.ndarray:
            if not malicious_pool.size:
                return batch
            aux = self._rng.choice(
                malicious_pool,
                size=min(config.aux_batch_size, malicious_pool.size),
                replace=False,
            )
            return np.concatenate([batch, aux])

        def prepare(batch: np.ndarray):
            """Impure half: auxiliary-batch draw, embedding lookup, and
            the label/confidence-driven pair-weight matrix."""
            if batch.size < 2:
                return None
            rows = _draw_rows(batch)
            x, lengths = self.vectorizer.transform(train, indices=rows)
            mask, denom = self.encoder.pooling_arrays(lengths, x.shape[1])
            weights = sup_con_pair_weights(
                labels[rows], confidences[rows], num_anchors=batch.size,
                variant=config.supcon_variant,
                threshold=config.filter_threshold, dtype=dtype)
            inv_anchors = np.asarray(1.0 / batch.size, dtype=dtype)
            return (np.asarray(x, dtype=dtype), mask, denom, weights,
                    inv_anchors)

        def program(x, mask, denom, weights, inv_anchors):
            z = self.encoder.forward_pooled(x, mask, denom)
            return sup_con_from_weights(z, weights, inv_anchors,
                                        temperature=config.temperature)

        if self.encoder.attention is None:
            step = nn.StepProgram(prepare, program)
        else:
            def step(batch: np.ndarray):
                if batch.size < 2:
                    return None
                rows = _draw_rows(batch)
                x, lengths = self.vectorizer.transform(train, indices=rows)
                z = self.encoder(x, lengths)
                return sup_con_loss(
                    z, labels[rows], temperature=config.temperature,
                    confidences=confidences[rows],
                    num_anchors=batch.size,
                    variant=config.supcon_variant,
                    threshold=config.filter_threshold,
                )

        trainer = run.trainer("supcon", self.encoder, optimizer,
                              grad_clip=config.grad_clip)
        self.supcon_loss_history = trainer.fit(
            batches, step, epochs=config.supcon_epochs, rng=self._rng)

    def _fit_centroids(self, features: np.ndarray,
                       labels: np.ndarray) -> None:
        """Class centers in representation space ("w/o classifier" path)."""
        centroids = np.zeros((2, features.shape[1]))
        for cls in (NORMAL, MALICIOUS):
            members = features[labels == cls]
            if members.size:
                centroids[cls] = members.mean(axis=0)
        self.centroids = centroids

    def _encode_dataset(self, dataset: SessionDataset) -> np.ndarray:
        outputs = []
        for batch in iter_batches(dataset, self.config.batch_size):
            x, lengths = self.vectorizer.transform(dataset, indices=batch)
            outputs.append(self.encoder.encode_numpy(x, lengths))
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, dataset: SessionDataset, *,
                return_embeddings: bool = False):
        """Classify test sessions: returns (labels, malicious scores).

        ``return_embeddings=True`` appends the encoded representations
        (the same array classification ran on) as a third element.
        """
        self._require_fitted()
        features = self._encode_dataset(dataset)
        if self.config.inference == "centroid":
            labels, scores = self._predict_centroid(features)
        else:
            with nn.no_grad():
                probs = self.classifier.probs(features).data
            labels, scores = probs.argmax(axis=1), probs[:, 1]
        if return_embeddings:
            return labels, scores, features
        return labels, scores

    def predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        """Class probabilities per session.

        FCNN inference returns the head's softmax; centroid inference
        ("w/o classifier" ablation) turns its softmin proximity score
        into a two-column distribution.
        """
        self._require_fitted()
        features = self._encode_dataset(dataset)
        if self.config.inference == "centroid":
            _, scores = self._predict_centroid(features)
            return np.stack([1.0 - scores, scores], axis=1)
        with nn.no_grad():
            return self.classifier.probs(features).data

    def _predict_centroid(self, features: np.ndarray,
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-centroid inference ([4], "w/o classifier" ablation).

        The malicious score is the softmin over the two centroid
        distances, so it behaves like a probability for AUC purposes.
        """
        if self.centroids is None:
            raise RuntimeError("centroids unavailable; call fit first")
        dists = np.linalg.norm(
            features[:, None, :] - self.centroids[None, :, :], axis=2
        )
        labels = dists.argmin(axis=1)
        gap = dists[:, 0] - dists[:, 1]  # >0 when closer to malicious
        scores = 1.0 / (1.0 + np.exp(-gap))
        return labels, scores

    def encode(self, dataset: SessionDataset) -> np.ndarray:
        """Expose encoded representations (used by analyses/examples)."""
        self._require_fitted()
        return self._encode_dataset(dataset)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("FraudDetector.fit must be called first")
