"""Serving metrics: request counters, batch histogram, latency quantiles.

A single :class:`ServingMetrics` instance is shared by the HTTP handler
threads, the micro-batcher worker and the engine, so every method is
guarded by one lock (operations are all O(1) appends/increments).

Latency quantiles come from a bounded reservoir of the most recent
request latencies; forward-pass wall time is accounted separately
through the engine's :class:`repro.nn.profiler.Profiler` timer regions,
which lets ``/v1/metrics`` split queueing delay from model compute.

Cluster aggregation: each scoring worker process keeps its own
:class:`ServingMetrics`; the front-end fans out snapshot requests and
merges them with :func:`merge_snapshots` (counters and histograms sum;
latency quantiles are re-derived per worker, so the merged view reports
their per-worker extremes).  :func:`render_cluster_prometheus` emits the
front-end exposition plus cluster gauges (workers alive, shard queue
depths, reload generation) and per-worker counter series.
"""

from __future__ import annotations

import collections
import threading

import numpy as np

__all__ = ["ServingMetrics", "merge_snapshots", "render_snapshot",
           "render_cluster_prometheus"]

_RESERVOIR = 4096


class ServingMetrics:
    """Thread-safe counters + histograms behind ``/v1/metrics``."""

    def __init__(self, reservoir: int = _RESERVOIR):
        self._lock = threading.Lock()
        self.requests_total = 0
        self.sessions_total = 0
        self.errors_total: collections.Counter = collections.Counter()
        # batch size -> number of batches scored at that size
        self.batch_sizes: collections.Counter = collections.Counter()
        self.batch_seconds_total = 0.0
        self._latencies: collections.deque = collections.deque(
            maxlen=reservoir)
        # Named gauges set by co-located components (e.g. the stream
        # processor's windows/drift/alarm/generation counters) so they
        # surface on this engine's /v1/metrics without new plumbing.
        self.gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, latency_s: float, sessions: int = 1,
                       error: str | None = None) -> None:
        with self._lock:
            self.requests_total += 1
            if error is not None:
                self.errors_total[error] += 1
            else:
                self.sessions_total += sessions
            self._latencies.append(latency_s)

    def record_batch(self, size: int, seconds: float) -> None:
        with self._lock:
            self.batch_sizes[size] += 1
            self.batch_seconds_total += seconds

    def set_gauge(self, name: str, value: float) -> None:
        """Publish/overwrite a named gauge on this metrics endpoint."""
        with self._lock:
            self.gauges[name] = float(value)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def latency_quantiles(self) -> dict[str, float]:
        with self._lock:
            sample = np.array(self._latencies, dtype=np.float64)
        if sample.size == 0:
            return {"p50": 0.0, "p99": 0.0, "mean": 0.0}
        return {
            "p50": float(np.quantile(sample, 0.50)),
            "p99": float(np.quantile(sample, 0.99)),
            "mean": float(sample.mean()),
        }

    def snapshot(self, regions: dict[str, float] | None = None) -> dict:
        """One coherent dict of everything (the JSON view)."""
        quantiles = self.latency_quantiles()
        with self._lock:
            mean_batch = (
                sum(size * n for size, n in self.batch_sizes.items())
                / max(sum(self.batch_sizes.values()), 1)
            )
            snap = {
                "requests_total": self.requests_total,
                "sessions_total": self.sessions_total,
                "errors_total": dict(self.errors_total),
                "batch_size_histogram": {
                    str(size): n
                    for size, n in sorted(self.batch_sizes.items())
                },
                "batches_total": sum(self.batch_sizes.values()),
                "mean_batch_size": mean_batch,
                "batch_seconds_total": self.batch_seconds_total,
                "latency_seconds": quantiles,
            }
            if self.gauges:
                snap["gauges"] = dict(self.gauges)
        if regions:
            snap["profile_regions_seconds"] = dict(regions)
        return snap

    def render_prometheus(self, regions: dict[str, float] | None = None,
                          gauges: dict[str, float] | None = None,
                          precision: str | None = None) -> str:
        """Text exposition (Prometheus-style) for scraping."""
        snap = self.snapshot(regions)
        if precision is not None:
            snap["precision"] = precision
        return render_snapshot(snap, gauges=gauges)


# ----------------------------------------------------------------------
# Snapshot-level operations (plain dicts, usable across process borders)
# ----------------------------------------------------------------------
def merge_snapshots(snapshots: list[dict]) -> dict:
    """Sum worker snapshots into one combined view.

    Counters, error/batch histograms and batch seconds are additive.
    Latency quantiles are *not* (each worker keeps its own reservoir):
    the merged view reports the worst per-worker p50/p99 and the
    session-weighted mean, which is the conservative cluster-level
    answer for an SLO check.
    """
    merged: dict = {
        "requests_total": 0, "sessions_total": 0,
        "errors_total": collections.Counter(),
        "batch_size_histogram": collections.Counter(),
        "batches_total": 0, "batch_seconds_total": 0.0,
        "queue_depth": 0,
    }
    weighted_mean = 0.0
    weight = 0
    p50 = p99 = 0.0
    for snap in snapshots:
        merged["requests_total"] += snap.get("requests_total", 0)
        merged["sessions_total"] += snap.get("sessions_total", 0)
        merged["errors_total"].update(snap.get("errors_total", {}))
        merged["batch_size_histogram"].update(
            snap.get("batch_size_histogram", {}))
        merged["batches_total"] += snap.get("batches_total", 0)
        merged["batch_seconds_total"] += snap.get("batch_seconds_total", 0.0)
        merged["queue_depth"] += snap.get("queue_depth", 0)
        latency = snap.get("latency_seconds", {})
        p50 = max(p50, latency.get("p50", 0.0))
        p99 = max(p99, latency.get("p99", 0.0))
        n = snap.get("requests_total", 0)
        weighted_mean += latency.get("mean", 0.0) * n
        weight += n
    merged["errors_total"] = dict(merged["errors_total"])
    merged["batch_size_histogram"] = {
        str(k): v for k, v in sorted(
            merged["batch_size_histogram"].items(), key=lambda kv: int(kv[0]))
    }
    total_sessions = sum(
        int(size) * n for size, n in merged["batch_size_histogram"].items())
    merged["mean_batch_size"] = total_sessions / max(merged["batches_total"],
                                                     1)
    merged["latency_seconds"] = {
        "p50": p50, "p99": p99,
        "mean": weighted_mean / weight if weight else 0.0,
    }
    return merged


def render_snapshot(snap: dict, gauges: dict[str, float] | None = None) -> str:
    """Render one snapshot dict as Prometheus text exposition."""
    lines = [
        "# TYPE repro_serve_requests_total counter",
        f"repro_serve_requests_total {snap['requests_total']}",
        "# TYPE repro_serve_sessions_total counter",
        f"repro_serve_sessions_total {snap['sessions_total']}",
        "# TYPE repro_serve_errors_total counter",
    ]
    for code, n in sorted(snap["errors_total"].items()):
        lines.append(f'repro_serve_errors_total{{code="{code}"}} {n}')
    lines.append("# TYPE repro_serve_batch_size histogram")
    cumulative = 0
    for size, n in snap["batch_size_histogram"].items():
        cumulative += n
        lines.append(
            f'repro_serve_batch_size_bucket{{le="{size}"}} {cumulative}')
    lines.append(f"repro_serve_batch_size_count {snap['batches_total']}")
    lines.append("# TYPE repro_serve_batch_seconds_total counter")
    lines.append(
        f"repro_serve_batch_seconds_total {snap['batch_seconds_total']:.6f}")
    lines.append("# TYPE repro_serve_latency_seconds summary")
    for q, key in (("0.5", "p50"), ("0.99", "p99")):
        lines.append(
            f'repro_serve_latency_seconds{{quantile="{q}"}} '
            f"{snap['latency_seconds'][key]:.6f}")
    for name, seconds in sorted(
            snap.get("profile_regions_seconds", {}).items()):
        lines.append(
            f'repro_serve_profile_region_seconds{{region="{name}"}} '
            f"{seconds:.6f}")
    # Caller-supplied gauges (engine generation/queue depth) merge with
    # snapshot-carried gauges (ServingMetrics.set_gauge publishers).
    all_gauges = dict(snap.get("gauges", {}))
    all_gauges.update(gauges or {})
    for name, value in sorted(all_gauges.items()):
        lines.append(f"# TYPE repro_serve_{name} gauge")
        lines.append(f"repro_serve_{name} {value:g}")
    if snap.get("precision"):
        # Info-style series: the label carries the active numeric path.
        lines.append("# TYPE repro_serve_precision gauge")
        lines.append(
            f'repro_serve_precision{{precision="{snap["precision"]}"}} 1')
    return "\n".join(lines) + "\n"


def render_cluster_prometheus(snap: dict) -> str:
    """Exposition for a cluster snapshot (front-end + cluster gauges).

    ``snap`` is a :meth:`ClusterEngine.metrics_snapshot` dict: front-end
    counters at the top level, a ``cluster`` gauge block and per-worker
    snapshots under ``workers``.
    """
    cluster = snap.get("cluster", {})
    text = render_snapshot(snap)
    lines = [text.rstrip("\n")]
    for name in ("workers_alive", "workers_total", "workers_lost",
                 "generation"):
        if name in cluster:
            lines.append(f"# TYPE repro_serve_cluster_{name} gauge")
            lines.append(f"repro_serve_cluster_{name} {cluster[name]}")
    for wid, depth in sorted(cluster.get("shard_queue_depths", {}).items()):
        lines.append(
            f'repro_serve_shard_queue_depth{{worker="{wid}"}} {depth}')
    for wid, worker in sorted(snap.get("workers", {}).items()):
        for metric, key in (
                ("requests_total", "requests_total"),
                ("sessions_total", "sessions_total"),
                ("batches_total", "batches_total")):
            lines.append(
                f'repro_serve_worker_{metric}{{worker="{wid}"}} '
                f"{worker.get(key, 0)}")
        lines.append(
            f'repro_serve_worker_batch_seconds_total{{worker="{wid}"}} '
            f"{worker.get('batch_seconds_total', 0.0):.6f}")
    return "\n".join(lines) + "\n"
