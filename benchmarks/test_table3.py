"""Benchmark: regenerate Table III (label-corrector TPR/TNR)."""

from repro.experiments import paper_reference, run_table3


def test_table3_label_corrector(run_once, settings, report):
    results = run_once(lambda: run_table3(settings, verbose=True))

    report()
    report("Table III (measured, reduced scale) vs paper:")
    report(f"{'Dataset':14s} {'Noise':22s} {'TPR':>12s} {'TNR':>12s} "
          f"{'paper TPR':>10s} {'paper TNR':>10s}")
    for dataset, per_noise in results.items():
        for noise_label, cell in per_noise.items():
            kind = "uniform" if noise_label.startswith("eta=") \
                else "class-dependent"
            paper_tpr, paper_tnr = paper_reference.TABLE3[dataset][kind]
            report(f"{dataset:14s} {noise_label:22s} "
                  f"{cell['tpr']!s:>12s} {cell['tnr']!s:>12s} "
                  f"{paper_tpr:10.1f} {paper_tnr:10.1f}")

    # Shape: the corrector must denoise — per cell it must beat the raw
    # noise floor (the noisy labels' TNR is 55 at η/η₀₁ = 0.45) and on
    # average it must clear it decisively.
    import numpy as np

    tnrs = [cell["tnr"].mean
            for per_noise in results.values()
            for cell in per_noise.values()]
    for dataset, per_noise in results.items():
        for noise_label, cell in per_noise.items():
            assert cell["tnr"].mean > 55.0, (dataset, noise_label)
    assert float(np.mean(tnrs)) > 65.0
