"""Dependency-free significance tests: known values + scipy cross-check."""

import math

import numpy as np
import pytest

from repro.analysis import (
    holm_correction,
    paired_t_test,
    t_sf,
    wilcoxon_signed_rank,
)
from repro.analysis.stats import regularized_incomplete_beta


# ----------------------------------------------------------------------
# Special functions
# ----------------------------------------------------------------------
def test_incomplete_beta_endpoints_and_symmetry():
    assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
    assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0
    # I_x(a, b) = 1 - I_{1-x}(b, a)
    left = regularized_incomplete_beta(2.5, 4.0, 0.3)
    right = 1.0 - regularized_incomplete_beta(4.0, 2.5, 0.7)
    assert left == pytest.approx(right, abs=1e-12)
    # I_x(1, 1) is the uniform CDF.
    assert regularized_incomplete_beta(1.0, 1.0, 0.42) == \
        pytest.approx(0.42, abs=1e-12)


def test_t_sf_reference_values():
    # Textbook t-table: P(T >= 2.228 | df=10) = 0.025.
    assert t_sf(2.228, 10) == pytest.approx(0.025, abs=1e-4)
    assert t_sf(0.0, 7) == pytest.approx(0.5, abs=1e-12)
    assert t_sf(-2.228, 10) == pytest.approx(0.975, abs=1e-4)
    assert t_sf(math.inf, 5) == 0.0
    assert math.isnan(t_sf(math.nan, 5))
    # df=1 is the Cauchy distribution: P(T >= 1) = 1/4.
    assert t_sf(1.0, 1) == pytest.approx(0.25, abs=1e-10)


# ----------------------------------------------------------------------
# Paired t
# ----------------------------------------------------------------------
def test_paired_t_known_example():
    x = [30.0, 31.0, 34.0, 33.0, 35.0]
    y = [29.0, 30.0, 31.0, 32.0, 30.0]
    result = paired_t_test(x, y)
    d = np.array(x) - np.array(y)
    expected_t = d.mean() / (d.std(ddof=1) / math.sqrt(5))
    assert result.statistic == pytest.approx(expected_t, abs=1e-12)
    assert result.n == 5
    assert result.mean_difference == pytest.approx(d.mean())
    assert 0.0 < result.pvalue < 1.0


def test_paired_t_identical_models_is_p_one():
    result = paired_t_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
    assert result.statistic == 0.0
    assert result.pvalue == 1.0


def test_paired_t_constant_nonzero_difference():
    result = paired_t_test([2.0, 3.0, 4.0], [1.0, 2.0, 3.0])
    assert math.isinf(result.statistic) and result.statistic > 0
    assert result.pvalue == 0.0


def test_paired_t_drops_non_finite_pairs():
    result = paired_t_test([1.0, 2.0, math.nan, 4.0],
                           [0.0, 1.0, 5.0, math.inf])
    assert result.n == 2


def test_paired_t_validates_shapes():
    with pytest.raises(ValueError):
        paired_t_test([1.0, 2.0], [1.0])
    with pytest.raises(ValueError):
        paired_t_test([1.0], [1.0])


# ----------------------------------------------------------------------
# Wilcoxon signed-rank
# ----------------------------------------------------------------------
def test_wilcoxon_exact_small_sample():
    # n=5, all differences positive -> W- = 0, the most extreme value.
    # Exact two-sided p = 2 * P(W <= 0) = 2 / 2^5 = 0.0625.
    result = wilcoxon_signed_rank([2.0, 4.0, 6.0, 8.0, 10.0],
                                  [1.0, 2.0, 3.0, 4.0, 5.0])
    assert result.statistic == 0.0
    assert result.pvalue == pytest.approx(0.0625, abs=1e-12)
    assert result.n == 5


def test_wilcoxon_drops_zero_differences():
    result = wilcoxon_signed_rank([1.0, 2.0, 5.0, 7.0],
                                  [1.0, 2.0, 3.0, 4.0])
    assert result.n == 2  # the two exact ties dropped


def test_wilcoxon_all_ties_degenerate():
    result = wilcoxon_signed_rank([1.0, 2.0], [1.0, 2.0])
    assert result.pvalue == 1.0
    assert result.n == 0


def test_wilcoxon_large_sample_uses_normal_approximation():
    rng = np.random.default_rng(0)
    x = rng.normal(0.3, 1.0, size=60)
    y = np.zeros(60)
    result = wilcoxon_signed_rank(x, y)
    assert result.n == 60
    assert result.pvalue < 0.2


# ----------------------------------------------------------------------
# Holm
# ----------------------------------------------------------------------
def test_holm_known_example():
    adjusted = holm_correction([0.01, 0.04, 0.03, 0.005])
    assert adjusted == pytest.approx([0.03, 0.06, 0.06, 0.02])


def test_holm_is_monotone_and_capped():
    adjusted = holm_correction([0.9, 0.8, 0.7])
    assert all(p <= 1.0 for p in adjusted)
    ordering = sorted(range(3), key=lambda i: [0.9, 0.8, 0.7][i])
    assert [adjusted[i] for i in ordering] == sorted(
        adjusted[i] for i in ordering)


def test_holm_nan_passthrough_shrinks_family():
    adjusted = holm_correction([0.02, math.nan, 0.04])
    assert math.isnan(adjusted[1])
    # Family size is 2, not 3.
    assert adjusted[0] == pytest.approx(0.04)
    assert adjusted[2] == pytest.approx(0.04)


# ----------------------------------------------------------------------
# scipy cross-checks (skipped on the scipy-free CI image)
# ----------------------------------------------------------------------
def test_paired_t_matches_scipy():
    scipy_stats = pytest.importorskip("scipy.stats")
    rng = np.random.default_rng(7)
    for _ in range(25):
        n = int(rng.integers(3, 30))
        x = rng.normal(0.2, 1.0, size=n)
        y = rng.normal(0.0, 1.0, size=n)
        ours = paired_t_test(x, y)
        ref = scipy_stats.ttest_rel(x, y)
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-9)
        assert ours.pvalue == pytest.approx(ref.pvalue, abs=1e-9)


def test_wilcoxon_matches_scipy_exact():
    scipy_stats = pytest.importorskip("scipy.stats")
    rng = np.random.default_rng(11)
    for _ in range(25):
        n = int(rng.integers(5, 20))
        x = rng.normal(0.3, 1.0, size=n)
        y = rng.normal(0.0, 1.0, size=n)
        ours = wilcoxon_signed_rank(x, y)
        ref = scipy_stats.wilcoxon(x, y, mode="exact")
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-9)
        assert ours.pvalue == pytest.approx(ref.pvalue, abs=1e-9)


def test_t_sf_matches_scipy():
    scipy_stats = pytest.importorskip("scipy.stats")
    for t in (-3.2, -0.5, 0.0, 0.7, 2.5, 6.0):
        for df in (1, 4, 9, 30, 120):
            assert t_sf(t, df) == pytest.approx(
                scipy_stats.t.sf(t, df), abs=1e-10)
