"""HTTP front end: endpoints, error mapping, concurrent scoring."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import InferenceEngine, ServingServer


@pytest.fixture(scope="module")
def server(served_model):
    engine = InferenceEngine(served_model, max_batch=16, max_wait_ms=2.0)
    srv = ServingServer(engine, port=0, model_name="test-model")
    srv.start_background()
    yield srv
    srv.shutdown()
    engine.close()


def _request(server, path, payload=None, method=None):
    url = f"http://127.0.0.1:{server.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, exc.read()


def _json(server, path, payload=None, method=None):
    status, _, body = _request(server, path, payload, method)
    return status, json.loads(body)


def test_score_single_session(server):
    status, body = _json(server, "/score",
                         {"activities": [1, 2, 3], "session_id": "abc"})
    assert status == 200
    assert body["session_id"] == "abc"
    assert body["label"] in (0, 1)
    assert 0.0 <= body["score"] <= 1.0
    assert len(body["probs"]) == 2
    assert body["oov_count"] == 0


def test_score_batch(server):
    payload = {"sessions": [{"activities": [1, 2]},
                            {"activities": [3, 1, 2]},
                            {"activities": [2]}]}
    status, body = _json(server, "/score", payload)
    assert status == 200
    assert len(body["results"]) == 3
    assert all("score" in r for r in body["results"])


def test_malformed_body_is_structured_400(server):
    status, body = _json(server, "/score", {"activities": []})
    assert status == 400
    assert body["error"] == "empty_session"
    assert "message" in body


def test_invalid_json_is_400(server):
    url = f"http://127.0.0.1:{server.port}/score"
    req = urllib.request.Request(url, data=b"{nope", method="POST")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req, timeout=30).read()
    assert excinfo.value.code == 400
    assert json.loads(excinfo.value.read())["error"] == "invalid_json"


def test_empty_body_is_400(server):
    status, body = _json(server, "/score", method="POST")
    assert status == 400
    assert body["error"] == "empty_body"


def test_healthz(server):
    status, body = _json(server, "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["model"] == "test-model"
    assert body["queue_depth"] >= 0


def test_metrics_prometheus_text(server):
    # Generate at least one scored request first.
    _json(server, "/score", {"activities": [1]})
    status, headers, body = _request(server, "/metrics")
    text = body.decode()
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert "repro_serve_requests_total" in text
    assert "repro_serve_batch_size_count" in text
    assert 'repro_serve_latency_seconds{quantile="0.99"}' in text
    assert 'repro_serve_profile_region_seconds{region="batch_forward"}' in text


def test_metrics_json_snapshot(server):
    _json(server, "/score", {"activities": [1]})
    status, body = _json(server, "/metrics?format=json")
    assert status == 200
    assert body["requests_total"] >= 1
    assert body["sessions_total"] >= 1
    assert "p50" in body["latency_seconds"]
    assert "batch_forward" in body["profile_regions_seconds"]


def test_unknown_route_is_404(server):
    status, body = _json(server, "/nope")
    assert status == 404
    assert body["error"] == "not_found"
    status, body = _json(server, "/nope", {"activities": [1]})
    assert status == 404


def test_errors_show_up_in_metrics(server):
    _json(server, "/score", {"activities": []})
    status, body = _json(server, "/metrics?format=json")
    assert status == 200
    assert body["errors_total"].get("empty_session", 0) >= 1


def test_concurrent_requests_all_succeed(server):
    statuses = []
    lock = threading.Lock()

    def hit(i):
        status, body = _json(server, "/score",
                             {"activities": [1 + (i % 3), 2],
                              "session_id": f"c{i}"})
        with lock:
            statuses.append((status, body.get("session_id")))

    threads = [threading.Thread(target=hit, args=(i,)) for i in range(24)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert len(statuses) == 24
    assert all(status == 200 for status, _ in statuses)
    assert {sid for _, sid in statuses} == {f"c{i}" for i in range(24)}
