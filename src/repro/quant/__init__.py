"""Low-precision inference: archive quantization + distillation.

The production path for cheap serving (DESIGN.md §14):

1. :func:`distill_student` — optionally shrink a fitted CLFD teacher
   into a 1-layer student trained on its soft scores.
2. :func:`quantize_archive` — turn the persisted archive into an
   inference-only v3 archive: per-channel symmetric int8 weights,
   row-scaled float16 embeddings, deterministic bytes.
3. Serve it — :func:`repro.core.persistence.load_clfd` (and therefore
   ``InferenceEngine``/``ClusterEngine``) transparently build the
   :class:`QuantizedCLFD` runtime for v3 archives, or quantize a
   full-precision archive on the fly via
   ``ServeConfig(precision="int8")``.
"""

from .distill import distill_student, student_config
from .quantize import (PRECISIONS, SCALE_SUFFIX, apply_precision,
                       quantize_archive, quantize_arrays)
from .runtime import (QuantWeight, QuantizedCLFD, QuantizedSkipGram,
                      build_quantized)

__all__ = [
    "PRECISIONS", "SCALE_SUFFIX",
    "quantize_arrays", "apply_precision", "quantize_archive",
    "QuantWeight", "QuantizedSkipGram", "QuantizedCLFD",
    "build_quantized",
    "distill_student", "student_config",
]
