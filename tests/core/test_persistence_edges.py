"""Edge cases for model persistence and module serialization."""

import numpy as np
import pytest

from repro import nn
from repro.core import persistence


def test_save_module_without_parameters(tmp_path):
    class Empty(nn.Module):
        pass

    with pytest.raises(ValueError):
        nn.save_module(Empty(), tmp_path / "empty.npz")


def test_load_clfd_rejects_future_format(tmp_path, monkeypatch):
    """Archives written by a newer format version must be refused."""
    import json

    payload = {
        "meta": np.frombuffer(
            json.dumps({"format_version": 999, "config": {},
                        "max_len": 4, "has_corrector": False,
                        "has_detector": False}).encode(),
            dtype=np.uint8,
        ),
        "word2vec/vectors": np.zeros((3, 2)),
    }
    path = tmp_path / "future.npz"
    np.savez(path, **payload)
    with pytest.raises(ValueError):
        persistence.load_clfd(path)


def test_flatten_extract_state_roundtrip():
    state = {"w": np.arange(3.0), "nested.b": np.ones(2)}
    out: dict = {}
    persistence._flatten_state("enc", state, out)
    assert set(out) == {"enc/w", "enc/nested.b"}
    back = persistence._extract_state("enc", out)
    np.testing.assert_array_equal(back["w"], state["w"])
    np.testing.assert_array_equal(back["nested.b"], state["nested.b"])


def test_extract_state_ignores_other_prefixes():
    archive = {"a/x": np.zeros(1), "b/x": np.ones(1)}
    assert list(persistence._extract_state("a", archive)) == ["x"]
