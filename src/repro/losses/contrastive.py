"""Contrastive losses: SimCLR NT-Xent and supervised-contrastive variants.

Three supervised variants from the paper are provided through one entry
point, :func:`sup_con_loss`:

* ``variant="weighted"`` — the paper's L_Sup (Eq. 5): each positive pair
  is weighted by the label-corrector confidences ``cᵢ·cₚ``;
* ``variant="unweighted"`` — L_Sup^uw (Eq. 18), the "w/o L_Sup" ablation;
* ``variant="filtered"`` — L_Sup^ftr (Eq. 20): pairs with
  ``cᵢ·cₚ ≤ τ`` are discarded.

Anchors are the first ``num_anchors`` rows (the training batch S); all
rows (S ∪ S¹, including the auxiliary malicious batch) act as candidates
A(xᵢ), exactly as in Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, cosine_similarity_matrix
from ..nn.tensor import detached

__all__ = ["nt_xent_loss", "sup_con_loss", "sup_con_pair_weights",
           "sup_con_from_weights"]

_NEG_INF = -1e9

# Per-(size, dtype) caches of the loss-geometry constants.  Both losses
# rebuild the same (m, m) diagonal mask and the NT-Xent positive-index
# arrays every call, and the losses run once per training step — for the
# small batch sizes the paper uses, allocating and filling these
# dominated the pure-Python side of the loss.  Entries are marked
# read-only so a cached array can never be mutated in place by a caller.
# Masks are cached per dtype: adding a float64 mask to float32 logits
# silently promoted the whole contrastive graph to float64.
_DIAG_MASKS: dict[tuple[int, np.dtype], np.ndarray] = {}
_NT_XENT_INDEX: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _diag_mask(m: int, dtype) -> np.ndarray:
    """Read-only (m, m) ``dtype`` matrix with ``_NEG_INF`` on the diagonal."""
    key = (m, np.dtype(dtype))
    mask = _DIAG_MASKS.get(key)
    if mask is None:
        mask = np.full((m, m), 0.0, dtype=key[1])
        np.fill_diagonal(mask, _NEG_INF)
        mask.setflags(write=False)
        _DIAG_MASKS[key] = mask
    return mask


def _nt_xent_index(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Read-only (rows, positives) index arrays for a 2n NT-Xent batch."""
    pair = _NT_XENT_INDEX.get(n)
    if pair is None:
        rows = np.arange(2 * n)
        positives = np.concatenate([np.arange(n, 2 * n), np.arange(0, n)])
        rows.setflags(write=False)
        positives.setflags(write=False)
        pair = _NT_XENT_INDEX[n] = (rows, positives)
    return pair


def nt_xent_loss(z_a: Tensor, z_b: Tensor, temperature: float = 1.0) -> Tensor:
    """SimCLR NT-Xent loss over two augmented views.

    ``z_a[i]`` and ``z_b[i]`` are representations of two augmentations of
    the same session; every other representation in the 2N batch is a
    negative.  Used for the label corrector's self-supervised
    pre-training (§III-A).
    """
    if z_a.shape != z_b.shape:
        raise ValueError(f"view shapes differ: {z_a.shape} vs {z_b.shape}")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    n = z_a.shape[0]
    from ..nn import concat

    z = concat([z_a, z_b], axis=0)                       # (2n, d)
    sims = cosine_similarity_matrix(z) * (1.0 / temperature)
    # Mask self-similarity out of the denominator.
    logits = sims + Tensor(_diag_mask(2 * n, sims.data.dtype))
    log_denom = _row_logsumexp(logits)
    rows, positives = _nt_xent_index(n)
    pos_logit = logits[rows, positives]
    return (log_denom - pos_logit).mean()


def sup_con_loss(z: Tensor, labels, temperature: float = 1.0,
                 confidences=None, num_anchors: int | None = None,
                 variant: str = "weighted",
                 threshold: float = 0.7) -> Tensor:
    """Supervised contrastive loss with confidence weighting (Eq. 5–6).

    Parameters
    ----------
    z: representations, shape (n, d). Rows ``[num_anchors:]`` are the
        auxiliary malicious batch S¹ (candidates only, never anchors).
    labels: corrected labels ŷ for all n rows.
    temperature: α in Eq. 6.
    confidences: label-corrector confidences c for all n rows. Required
        for the weighted and filtered variants.
    num_anchors: R, the anchor count (defaults to all rows).
    variant: "weighted" (paper), "unweighted" (Eq. 18) or "filtered"
        (Eq. 20 with ``threshold`` = τ).
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = z.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels must have shape ({n},), got {labels.shape}")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if num_anchors is None:
        num_anchors = n
    if not 1 <= num_anchors <= n:
        raise ValueError(f"num_anchors must be in [1, {n}]")
    if variant not in ("weighted", "unweighted", "filtered"):
        raise ValueError(f"unknown variant {variant!r}")

    weights = sup_con_pair_weights(
        labels, confidences, num_anchors=num_anchors, variant=variant,
        threshold=threshold, dtype=z.data.dtype)
    inv_anchors = np.asarray(1.0 / num_anchors, dtype=z.data.dtype)
    return sup_con_from_weights(z, weights, inv_anchors,
                                temperature=temperature)


def sup_con_pair_weights(labels, confidences=None, *,
                         num_anchors: int | None = None,
                         variant: str = "weighted", threshold: float = 0.7,
                         dtype=np.float64) -> np.ndarray:
    """The pure-NumPy half of :func:`sup_con_loss`: the (n, n) matrix of
    per-pair coefficients ``mask(i,p) · w(i,p) / |B(x_i)|``.

    Split out so a compiled training step can build it in the step's
    ``prepare`` stage (it depends only on labels/confidences, not on the
    representations) and feed it to :func:`sup_con_from_weights` as a
    plain input array.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.shape[0]
    if num_anchors is None:
        num_anchors = n
    if variant == "unweighted":
        pair_weights = np.ones((n, n))
    else:
        if confidences is None:
            raise ValueError(f"variant {variant!r} requires confidences")
        conf = np.asarray(confidences, dtype=np.float64)
        if conf.shape != (n,):
            raise ValueError(f"confidences must have shape ({n},)")
        pair_weights = np.outer(conf, conf)
        if variant == "filtered":
            pair_weights = (pair_weights > threshold).astype(np.float64)

    same_label = (labels[:, None] == labels[None, :]).astype(np.float64)
    np.fill_diagonal(same_label, 0.0)                     # B(x_i) excludes i
    positive_mask = same_label.copy()
    positive_mask[num_anchors:, :] = 0.0                  # only S rows anchor

    counts = positive_mask.sum(axis=1)                    # |B(x_i)|
    # 1/|B| per anchor; anchors with no positives contribute zero.
    inv_counts = np.divide(1.0, counts, out=np.zeros_like(counts),
                           where=counts > 0)
    return (positive_mask * pair_weights
            * inv_counts[:, None]).astype(dtype)


def sup_con_from_weights(z: Tensor, weights, inv_anchors,
                         temperature: float = 1.0) -> Tensor:
    """Tensor half of :func:`sup_con_loss`, parameterised by the weight
    matrix from :func:`sup_con_pair_weights`.

    ``inv_anchors`` is ``1/R`` as a 0-d array (not a Python float): a
    scalar would be baked into a compiled tape as a constant, and R
    varies with the final partial batch.
    """
    n = z.shape[0]
    sims = cosine_similarity_matrix(z) * (1.0 / temperature)
    logits = sims + Tensor(_diag_mask(n, sims.data.dtype))
    log_denom = _row_logsumexp(logits)                    # (n,)
    # l_sup(i, p) = log_denom_i - logit_ip for each positive pair.
    pair_loss = (log_denom.reshape(n, 1) - logits)
    total = (pair_loss * Tensor(weights)).sum()
    return total * Tensor(inv_anchors)


def _row_logsumexp(logits: Tensor) -> Tensor:
    """Row-wise log-sum-exp, numerically stabilised with a detached max.

    A non-finite row max (every entry masked out, or an upstream inf)
    would turn ``logits - row_max`` into NaN for the whole row; guarding
    the shift keeps the mask value itself as the result instead.
    """
    def guarded_max(data: np.ndarray) -> np.ndarray:
        row_max = data.max(axis=1, keepdims=True)
        return np.where(np.isfinite(row_max), row_max,
                        np.zeros((), dtype=row_max.dtype))

    row_max = detached(logits, guarded_max)
    shifted = logits - row_max
    return (shifted.exp().sum(axis=1).log() + row_max.reshape(-1))
