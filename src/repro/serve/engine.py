"""The micro-batched inference engine.

:class:`InferenceEngine` owns a warm-loaded CLFD model and a
:class:`~repro.serve.batcher.MicroBatcher`.  Callers (HTTP handler
threads, or library users) submit one raw session at a time; the
batcher coalesces them and the engine scores each batch with a single
padded forward pass through the standard
:meth:`CLFD.predict(..., return_embeddings=...) <repro.core.CLFD.predict>`
path — the engine never touches encoder internals.

Degradation policy (per ISSUE motivation: deployment-time scoring is
where detectors fail in practice):

* malformed payloads raise a structured
  :class:`~repro.serve.schemas.RequestError` at *submit* time, before
  they can poison a batch;
* unseen activity tokens and out-of-range activity ids degrade to the
  padding embedding (≈ zero vector) and are reported per session as
  ``oov_count`` instead of failing the request;
* a full queue raises ``RequestError(queue_full, status=429)`` —
  backpressure, not unbounded buffering.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import Future
from typing import Any, Iterable

import numpy as np

from ..core.clfd import CLFD
from ..data.sessions import Session, SessionDataset
from ..data.vocab import Vocabulary
from ..nn.profiler import Profiler
from .batcher import MicroBatcher, QueueFullError
from .metrics import ServingMetrics
from .schemas import RawSession, RequestError, ScoreResult, parse_session

__all__ = ["InferenceEngine"]


@dataclasses.dataclass(frozen=True)
class _Encoded:
    """A session after vocabulary encoding, ready to batch."""

    ids: tuple[int, ...]
    session_id: str
    oov_count: int


class InferenceEngine:
    """Scores raw sessions against a fitted CLFD with micro-batching.

    Parameters
    ----------
    model: a *fitted* CLFD (typically from
        :func:`repro.core.load_clfd`).
    max_batch / max_wait_ms / max_queue: micro-batcher knobs — batch
        ceiling, coalescing window, and backpressure bound.
    include_embeddings: attach the encoder representation to every
        :class:`ScoreResult` (for downstream similarity search /
        representation monitoring).
    warmup: run one throwaway forward at construction so the first real
        request does not pay first-call allocation costs.
    """

    def __init__(self, model: CLFD, *, max_batch: int = 32,
                 max_wait_ms: float = 2.0, max_queue: int = 1024,
                 include_embeddings: bool = False, warmup: bool = True,
                 metrics: ServingMetrics | None = None):
        if model.vectorizer is None:
            raise ValueError("InferenceEngine requires a fitted CLFD")
        self.model = model
        self.vectorizer = model.vectorizer
        self.include_embeddings = include_embeddings
        self.metrics = metrics or ServingMetrics()
        self.profiler = Profiler()
        self._vocab = self.vectorizer.vocab
        self._vocab_size = self.vectorizer.model.vocab_size
        self._dataset_vocab = self._vocab or Vocabulary()
        if warmup:
            self._score_batch([_Encoded(ids=(0,), session_id="warmup",
                                        oov_count=0)])
        self.batcher = MicroBatcher(
            self._score_batch, max_batch=max_batch, max_wait_ms=max_wait_ms,
            max_queue=max_queue, on_batch=self.metrics.record_batch,
        )

    @classmethod
    def from_archive(cls, path: str | os.PathLike,
                     **kwargs) -> "InferenceEngine":
        """Warm-load a persisted archive (see :func:`repro.core.load_clfd`)."""
        from ..core.persistence import load_clfd

        return cls(load_clfd(path), **kwargs)

    # ------------------------------------------------------------------
    # Public scoring API
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> "Future[ScoreResult]":
        """Validate + encode ``payload`` and enqueue it for scoring.

        Raises :class:`RequestError` for malformed payloads or when the
        queue is full; otherwise returns a future resolving to the
        session's :class:`ScoreResult`.
        """
        raw = payload if isinstance(payload, RawSession) \
            else parse_session(payload)
        encoded = self._encode(raw)
        try:
            return self.batcher.submit(encoded)
        except QueueFullError as exc:
            raise RequestError("queue_full", str(exc), status=429) from None

    def score(self, payload: Any, timeout: float | None = 30.0) -> ScoreResult:
        """Synchronous single-session scoring (submit + wait)."""
        return self.submit(payload).result(timeout=timeout)

    def score_many(self, payloads: Iterable[Any],
                   timeout: float | None = 30.0) -> list[ScoreResult]:
        """Score several sessions, preserving order.

        All payloads are validated and enqueued before the first wait,
        so they can share micro-batches.
        """
        futures = [self.submit(p) for p in payloads]
        return [future.result(timeout=timeout) for future in futures]

    @property
    def queue_depth(self) -> int:
        return self.batcher.pending

    def close(self) -> None:
        self.batcher.close()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _encode(self, raw: RawSession) -> _Encoded:
        """Map tokens/ids into embedding rows, with OOV degradation."""
        pad = self._dataset_vocab.pad_id
        ids: list[int] = []
        oov = 0
        for activity in raw.activities:
            if isinstance(activity, int):
                if 0 <= activity < self._vocab_size:
                    ids.append(int(activity))
                else:
                    ids.append(pad)
                    oov += 1
            else:
                if self._vocab is None:
                    raise RequestError(
                        "tokens_unsupported",
                        "this model archive carries no vocabulary "
                        "(format v1); send integer activity ids",
                    )
                if activity in self._vocab:
                    ids.append(self._vocab[activity])
                else:
                    ids.append(pad)
                    oov += 1
        # The model pads/truncates at max_len anyway; trim early so a
        # long session does not inflate the batch buffers.
        ids = ids[: self.vectorizer.max_len]
        return _Encoded(ids=tuple(ids), session_id=raw.session_id,
                        oov_count=oov)

    def _score_batch(self, items: list[_Encoded]) -> list[ScoreResult]:
        """One padded forward pass for a coalesced micro-batch."""
        dataset = SessionDataset(
            [Session(activities=list(item.ids), label=0,
                     session_id=item.session_id) for item in items],
            self._dataset_vocab, name="serve-batch",
        )
        with self.profiler.timer("batch_forward"):
            if self.include_embeddings:
                labels, scores, embeddings = self.model.predict(
                    dataset, return_embeddings=True)
            else:
                labels, scores = self.model.predict(dataset)
                embeddings = None
        results = []
        for row, item in enumerate(items):
            score = float(scores[row])
            warnings: tuple[str, ...] = ()
            if not np.isfinite(score):
                # Don't let a numerically-broken model masquerade as a
                # confident verdict: flag the session so clients can
                # route it to review instead of trusting label/score.
                warnings = ("score is not finite; the model produced a "
                            "non-finite probability for this session",)
            results.append(ScoreResult(
                session_id=item.session_id,
                label=int(labels[row]),
                score=score,
                probs=(1.0 - score, score),
                oov_count=item.oov_count,
                embedding=(tuple(np.asarray(embeddings[row], dtype=float))
                           if embeddings is not None else None),
                warnings=warnings,
            ))
        return results
