"""Synthetic session generators standing in for the paper's benchmarks.

The paper evaluates on CERT [14], UMD-Wikipedia [15] and OpenStack [16].
Those corpora cannot be fetched in this offline environment, so each
generator below synthesises sessions that preserve the three properties
CLFD's design targets:

* **extreme class imbalance** — train/test counts follow §IV-A1 of the
  paper (scaled by a configurable factor);
* **session diversity** — each class is a *mixture of archetypes*
  (behavioural templates), so same-class sessions need not share
  features, which is exactly the challenge that defeats image-style
  sample-similarity label correction;
* **sequential token structure** — sessions are token sequences drawn
  from phase grammars with jitter, so sequence encoders (LSTM / DeepLog
  next-key prediction) have real signal to exploit.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from .sessions import MALICIOUS, NORMAL, Session, SessionDataset
from .vocab import Vocabulary

__all__ = [
    "Archetype",
    "SplitSpec",
    "SessionGenerator",
    "CertLikeGenerator",
    "WikiLikeGenerator",
    "OpenStackLikeGenerator",
    "DATASET_GENERATORS",
    "make_dataset",
]


@dataclasses.dataclass
class Archetype:
    """A behavioural template: an ordered list of phases.

    Each phase is ``(candidate_tokens, min_repeat, max_repeat)``; the
    generator samples a repeat count and then draws that many tokens from
    the candidates.  ``jitter`` replaces each emitted token with a random
    vocabulary token with the given probability, so no two sessions of an
    archetype are identical.
    """

    name: str
    label: int
    phases: list[tuple[list[str], int, int]]
    jitter: float = 0.05
    weight: float = 1.0

    def sample(self, vocab_tokens: Sequence[str],
               rng: np.random.Generator) -> list[str]:
        tokens: list[str] = []
        for candidates, lo, hi in self.phases:
            count = int(rng.integers(lo, hi + 1))
            for _ in range(count):
                if rng.random() < self.jitter:
                    tokens.append(str(rng.choice(vocab_tokens)))
                else:
                    tokens.append(str(rng.choice(candidates)))
        return tokens


@dataclasses.dataclass
class SplitSpec:
    """Train/test counts per class, following §IV-A1 of the paper."""

    train_normal: int
    train_malicious: int
    test_normal: int
    test_malicious: int

    def scaled(self, scale: float) -> "SplitSpec":
        """Scale the *normal* counts, keeping enough samples for stable metrics.

        Malicious counts are already tiny at full scale (30/80/60 train
        sessions in the paper), so they are kept as-is: scaling them
        further would make the noisy-label problem statistically
        unsolvable rather than merely hard, changing the task.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")

        def shrink(count: int, minimum: int) -> int:
            return max(int(round(count * scale)), minimum)

        return SplitSpec(
            train_normal=shrink(self.train_normal, 60),
            train_malicious=self.train_malicious,
            test_normal=shrink(self.test_normal, 40),
            test_malicious=shrink(self.test_malicious, 18),
        )


class SessionGenerator:
    """Base generator: builds the vocabulary and samples archetype mixtures."""

    name = "generic"
    spec = SplitSpec(train_normal=1000, train_malicious=30,
                     test_normal=200, test_malicious=20)

    def __init__(self, max_session_length: int = 16):
        self.max_session_length = max_session_length
        self.archetypes = self._build_archetypes()
        if not any(a.label == NORMAL for a in self.archetypes):
            raise ValueError("generator needs at least one normal archetype")
        if not any(a.label == MALICIOUS for a in self.archetypes):
            raise ValueError("generator needs at least one malicious archetype")
        tokens: list[str] = []
        for archetype in self.archetypes:
            for candidates, _, _ in archetype.phases:
                tokens.extend(candidates)
        # Stable ordering: first occurrence wins.
        seen: dict[str, None] = dict.fromkeys(tokens)
        self.vocab = Vocabulary(seen.keys())
        self._token_pool = list(seen.keys())

    # Subclasses override this.
    def _build_archetypes(self) -> list[Archetype]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def sample_session(self, label: int, rng: np.random.Generator,
                       session_id: str = "") -> Session:
        """Draw one session of the requested ground-truth class."""
        pool = [a for a in self.archetypes if a.label == label]
        weights = np.array([a.weight for a in pool], dtype=np.float64)
        archetype = pool[rng.choice(len(pool), p=weights / weights.sum())]
        tokens = archetype.sample(self._token_pool, rng)
        tokens = tokens[: self.max_session_length]
        return Session(
            activities=self.vocab.encode(tokens),
            label=label,
            session_id=session_id or f"{self.name}-{archetype.name}-{rng.integers(1 << 30)}",
            user=f"user{int(rng.integers(0, 500)):04d}",
        )

    def generate(self, n_normal: int, n_malicious: int,
                 rng: np.random.Generator, tag: str = "") -> SessionDataset:
        """Generate a dataset with the requested class counts."""
        sessions = [
            self.sample_session(NORMAL, rng, session_id=f"{tag}n{i}")
            for i in range(n_normal)
        ]
        sessions += [
            self.sample_session(MALICIOUS, rng, session_id=f"{tag}m{i}")
            for i in range(n_malicious)
        ]
        order = rng.permutation(len(sessions))
        return SessionDataset([sessions[i] for i in order], self.vocab,
                              name=self.name)

    def make_splits(self, rng: np.random.Generator,
                    scale: float = 1.0) -> tuple[SessionDataset, SessionDataset]:
        """Build (train, test) datasets at the paper's §IV-A1 proportions."""
        spec = self.spec.scaled(scale) if scale != 1.0 else self.spec
        train = self.generate(spec.train_normal, spec.train_malicious, rng,
                              tag="train-")
        test = self.generate(spec.test_normal, spec.test_malicious, rng,
                             tag="test-")
        return train, test


class CertLikeGenerator(SessionGenerator):
    """CERT r4.2-flavoured insider-threat sessions.

    Normal archetypes model ordinary office behaviour; malicious ones
    mirror the three CERT insider scenarios (after-hours data theft via
    USB, mass e-mail exfiltration, disgruntled-leaker web uploads).
    """

    name = "cert"
    # Paper: 10,000/30 train and 500/18 test (sampled from 1.58M/48).
    spec = SplitSpec(train_normal=10_000, train_malicious=30,
                     test_normal=500, test_malicious=18)

    def _build_archetypes(self) -> list[Archetype]:
        logon = ["logon_am", "logon_desk"]
        work = ["email_read", "email_send_int", "web_news", "web_search",
                "file_open_doc", "file_write_doc"]
        meetings = ["calendar_check", "email_send_int", "web_intranet"]
        dev = ["file_open_code", "file_write_code", "web_stackoverflow"]
        logoff = ["logoff"]
        night = ["logon_night"]
        usb = ["device_connect", "file_copy_usb", "file_copy_usb",
               "device_disconnect"]
        usb_light = ["device_connect", "file_copy_usb", "device_disconnect"]
        exfil_mail = ["email_send_ext", "email_attach_large"]
        sales_mail = ["email_send_ext", "email_read", "calendar_check",
                      "email_attach_large"]
        upload = ["web_upload_site", "file_archive", "web_upload_site"]
        backup = ["file_archive", "web_upload_site", "file_open_doc"]
        # Every "suspicious" token also occurs in some normal archetype
        # (IT staff use USB devices, sales mail external contacts, some
        # staff work at night), so token-level anomaly detectors cannot
        # trivially flag malicious sessions — only contextual combinations
        # (night + heavy USB, work + sustained external exfil) separate
        # the classes, mirroring real insider-threat data.
        return [
            Archetype("office-worker", NORMAL,
                      [(logon, 1, 1), (work, 6, 12), (logoff, 1, 1)]),
            Archetype("meeting-heavy", NORMAL,
                      [(logon, 1, 1), (meetings, 4, 8), (work, 2, 5),
                       (logoff, 1, 1)]),
            Archetype("developer", NORMAL,
                      [(logon, 1, 1), (dev, 6, 12), (logoff, 1, 1)]),
            Archetype("it-admin", NORMAL,
                      [(logon, 1, 1), (work, 2, 4), (usb_light, 2, 4),
                       (backup, 1, 2), (logoff, 1, 1)], weight=0.5),
            Archetype("sales", NORMAL,
                      [(logon, 1, 1), (sales_mail, 4, 8), (work, 2, 4),
                       (logoff, 1, 1)], weight=0.5),
            Archetype("late-worker", NORMAL,
                      [(night, 1, 1), (work, 4, 8), (logoff, 1, 1)],
                      weight=0.4),
            # Malicious sessions re-use normal phases in anomalous
            # combinations (night + sustained USB, all-exfil mail days,
            # bulk uploads), so per-transition language models see
            # locally plausible activity.
            Archetype("usb-thief", MALICIOUS,
                      [(night, 1, 1), (work, 1, 2), (usb, 2, 4),
                       (usb_light, 2, 4), (logoff, 1, 1)]),
            Archetype("mail-exfil", MALICIOUS,
                      [(logon, 1, 1), (work, 1, 2), (exfil_mail, 4, 7),
                       (sales_mail, 1, 3), (logoff, 1, 1)]),
            Archetype("leaker", MALICIOUS,
                      [(logon, 1, 1), (dev, 1, 2), (upload, 3, 5),
                       (backup, 2, 4), (logoff, 1, 1)]),
        ]


class WikiLikeGenerator(SessionGenerator):
    """UMD-Wikipedia-flavoured editor sessions (vandals vs benign editors)."""

    name = "umd-wikipedia"
    # Paper: 4486/80 train and 1000/500 test.
    spec = SplitSpec(train_normal=4486, train_malicious=80,
                     test_normal=1000, test_malicious=500)

    def _build_archetypes(self) -> list[Archetype]:
        read = ["view_article", "view_history", "view_talk"]
        good_edit = ["edit_article", "add_ref", "add_link", "minor_fix",
                     "edit_summary"]
        curation = ["revert_vandal", "patrol_recent", "edit_talk"]
        creation = ["create_page", "add_category", "add_ref"]
        blank = ["blank_section", "blank_page", "remove_ref"]
        spam = ["add_spam_link", "add_spam_link", "create_page"]
        rapid = ["edit_article", "new_page_hop", "edit_article",
                 "new_page_hop"]
        cleanup = ["remove_ref", "blank_section", "blank_page",
                   "edit_summary", "add_ref"]
        promo = ["add_spam_link", "edit_article", "add_ref"]
        patrol_hop = ["patrol_recent", "new_page_hop", "revert_vandal"]
        # Cleanup editors legitimately blank sections and remove refs,
        # and promotional-but-tolerated editors add external links, so
        # vandals are distinguished by volume and missing curation
        # context rather than by unique tokens.
        return [
            Archetype("copy-editor", NORMAL,
                      [(read, 1, 3), (good_edit, 4, 10)]),
            Archetype("patroller", NORMAL,
                      [(curation, 3, 6), (patrol_hop, 2, 4), (read, 1, 3)]),
            Archetype("author", NORMAL,
                      [(read, 1, 2), (creation, 3, 6), (good_edit, 2, 5)]),
            Archetype("cleanup-editor", NORMAL,
                      [(read, 1, 2), (cleanup, 3, 6), (good_edit, 1, 3)],
                      weight=0.5),
            Archetype("promo-editor", NORMAL,
                      [(read, 1, 2), (promo, 2, 4), (good_edit, 2, 4)],
                      weight=0.4),
            Archetype("blanker", MALICIOUS,
                      [(read, 0, 2), (blank, 4, 9)]),
            Archetype("link-spammer", MALICIOUS,
                      [(spam, 5, 10)]),
            Archetype("drive-by", MALICIOUS,
                      [(rapid, 5, 11)], jitter=0.1),
        ]


class OpenStackLikeGenerator(SessionGenerator):
    """OpenStack-log-flavoured VM lifecycle sessions (per DeepLog [16])."""

    name = "openstack"
    # Paper: 10,000/60 train and 1000/100 test.
    spec = SplitSpec(train_normal=10_000, train_malicious=60,
                     test_normal=1000, test_malicious=100)

    def _build_archetypes(self) -> list[Archetype]:
        create = ["api_create", "sched_pick_host", "image_fetch",
                  "network_alloc"]
        boot = ["vm_spawn", "vm_boot", "status_active"]
        steady = ["status_active", "heartbeat", "volume_attach",
                  "snapshot_create"]
        teardown = ["api_delete", "vm_shutdown", "network_dealloc",
                    "vm_terminated"]
        errors = ["spawn_error", "retry_spawn", "timeout_wait",
                  "image_fetch"]
        stuck = ["timeout_wait", "heartbeat_miss", "status_error"]
        ghost = ["api_delete", "status_active", "heartbeat",
                 "vm_shutdown_failed"]
        flaky = ["spawn_error", "retry_spawn", "timeout_wait", "vm_spawn",
                 "vm_boot", "status_active"]
        degraded = ["heartbeat_miss", "heartbeat", "status_active",
                    "timeout_wait"]
        return [
            Archetype("clean-lifecycle", NORMAL,
                      [(create, 3, 4), (boot, 2, 3), (steady, 2, 6),
                       (teardown, 3, 4)]),
            Archetype("long-running", NORMAL,
                      [(create, 3, 4), (boot, 2, 3), (steady, 6, 10)]),
            Archetype("quick-teardown", NORMAL,
                      [(create, 3, 4), (boot, 2, 3), (teardown, 3, 4)]),
            # Transient errors that recover are normal in real clouds, so
            # error tokens alone must not mark a session malicious.
            Archetype("flaky-but-recovers", NORMAL,
                      [(create, 3, 4), (flaky, 2, 4), (steady, 2, 4),
                       (teardown, 3, 4)], weight=0.5),
            Archetype("degraded-but-ok", NORMAL,
                      [(create, 3, 4), (boot, 2, 3), (degraded, 2, 4),
                       (steady, 1, 3)], weight=0.4),
            Archetype("spawn-failure-loop", MALICIOUS,
                      [(create, 2, 4), (errors, 5, 9)]),
            Archetype("hung-instance", MALICIOUS,
                      [(create, 3, 4), (boot, 1, 2), (stuck, 4, 8)]),
            Archetype("ghost-delete", MALICIOUS,
                      [(create, 2, 3), (boot, 2, 3), (ghost, 4, 7)]),
        ]


DATASET_GENERATORS: dict[str, type[SessionGenerator]] = {
    CertLikeGenerator.name: CertLikeGenerator,
    WikiLikeGenerator.name: WikiLikeGenerator,
    OpenStackLikeGenerator.name: OpenStackLikeGenerator,
}


def make_dataset(name: str, rng: np.random.Generator | int,
                 scale: float = 1.0, max_session_length: int = 16,
                 ) -> tuple[SessionDataset, SessionDataset]:
    """Convenience factory: (train, test) for a named benchmark.

    ``rng`` accepts either a Generator or a plain integer seed; a seed
    is routed through :func:`repro.train.seed_everything` so ad-hoc
    ``default_rng(seed)`` construction at call sites becomes one
    consistent, global-state-covering entry point.
    """
    if isinstance(rng, (int, np.integer)):
        from ..train import seed_everything

        rng = seed_everything(int(rng))
    try:
        generator_cls = DATASET_GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; options: {sorted(DATASET_GENERATORS)}"
        ) from None
    generator = generator_cls(max_session_length=max_session_length)
    return generator.make_splits(rng, scale=scale)
