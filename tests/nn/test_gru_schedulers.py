"""Tests for the GRU layers and training-loop utilities."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# ----------------------------------------------------------------------
# GRU
# ----------------------------------------------------------------------
def test_gru_shapes(rng):
    gru = nn.GRU(6, 9, rng, num_layers=2)
    outputs, h = gru(Tensor(rng.normal(size=(4, 7, 6))))
    assert outputs.shape == (4, 7, 9)
    assert h.shape == (4, 9)


def test_gru_final_state_matches_last_output(rng):
    gru = nn.GRU(3, 5, rng, num_layers=1)
    outputs, h = gru(Tensor(rng.normal(size=(2, 4, 3))))
    np.testing.assert_allclose(outputs.data[:, -1, :], h.data)


def test_gru_validation(rng):
    with pytest.raises(ValueError):
        nn.GRU(3, 5, rng, num_layers=0)
    gru = nn.GRU(3, 5, rng)
    with pytest.raises(ValueError):
        gru(Tensor(np.zeros((2, 3))))


def test_gru_mean_pool_masks_padding(rng):
    gru = nn.GRU(3, 5, rng)
    x = rng.normal(size=(1, 6, 3))
    altered = x.copy()
    altered[0, 4:, :] = 77.0
    lengths = np.array([4])
    np.testing.assert_allclose(
        gru.mean_pool(Tensor(x), lengths).data,
        gru.mean_pool(Tensor(altered), lengths).data,
    )


def test_gru_cell_gradcheck(rng):
    cell = nn.GRUCell(3, 4, rng)
    x = Tensor(rng.normal(scale=0.5, size=(2, 3)), requires_grad=True)

    def fn():
        h = cell(x, cell.initial_state(2))
        return (h * h).sum()

    check_gradients(fn, [x] + cell.parameters(), atol=1e-4)


def test_gru_sequence_gradcheck(rng):
    gru = nn.GRU(3, 4, rng, num_layers=2)
    x = Tensor(rng.normal(scale=0.5, size=(2, 4, 3)), requires_grad=True)
    check_gradients(lambda: (gru.mean_pool(x) ** 2).sum(),
                    [x] + gru.parameters(), atol=1e-4)


def test_gru_fewer_parameters_than_lstm(rng):
    gru = nn.GRU(8, 16, rng)
    lstm = nn.LSTM(8, 16, np.random.default_rng(0))
    assert sum(p.size for p in gru.parameters()) < \
        sum(p.size for p in lstm.parameters())


def test_gru_trains_on_toy_task(rng):
    gru = nn.GRU(4, 8, rng, num_layers=1)
    head = nn.Linear(8, 2, rng)
    opt = nn.Adam(gru.parameters() + head.parameters(), lr=0.02)
    x = rng.normal(size=(16, 5, 4))
    labels = (x[:, 0, 0] > 0).astype(int)
    for _ in range(60):
        opt.zero_grad()
        loss = nn.cross_entropy(head(gru.mean_pool(Tensor(x))), labels)
        loss.backward()
        opt.step()
    preds = np.argmax(head(gru.mean_pool(Tensor(x))).data, axis=1)
    assert (preds == labels).mean() >= 0.9


# ----------------------------------------------------------------------
# Schedulers
# ----------------------------------------------------------------------
def _opt():
    p = nn.Parameter(np.zeros(1))
    return nn.SGD([p], lr=1.0)


def test_step_lr_decays_in_steps():
    sched = nn.StepLR(_opt(), step_size=2, gamma=0.5)
    rates = [sched.step() for _ in range(5)]
    assert rates == [1.0, 0.5, 0.5, 0.25, 0.25]


def test_cosine_lr_endpoints():
    sched = nn.CosineAnnealingLR(_opt(), total_epochs=10, min_lr=0.1)
    rates = [sched.step() for _ in range(12)]
    assert rates[0] < 1.0
    assert rates[9] == pytest.approx(0.1)
    assert rates[11] == pytest.approx(0.1)  # clamped past the horizon
    assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))


def test_linear_decay_lr():
    sched = nn.LinearDecayLR(_opt(), total_epochs=4, final_fraction=0.0)
    rates = [sched.step() for _ in range(4)]
    np.testing.assert_allclose(rates, [0.75, 0.5, 0.25, 0.0])


def test_scheduler_mutates_optimizer():
    opt = _opt()
    sched = nn.StepLR(opt, step_size=1, gamma=0.1)
    sched.step()
    assert opt.lr == pytest.approx(0.1)


def test_scheduler_validation():
    with pytest.raises(ValueError):
        nn.StepLR(_opt(), step_size=0)
    with pytest.raises(ValueError):
        nn.StepLR(_opt(), step_size=1, gamma=0.0)
    with pytest.raises(ValueError):
        nn.CosineAnnealingLR(_opt(), total_epochs=0)
    with pytest.raises(ValueError):
        nn.LinearDecayLR(_opt(), total_epochs=1, final_fraction=2.0)


# ----------------------------------------------------------------------
# Early stopping
# ----------------------------------------------------------------------
def test_early_stopping_triggers_after_patience():
    stopper = nn.EarlyStopping(patience=3)
    assert not stopper.update(1.0)
    assert not stopper.update(0.9)   # improvement resets
    assert not stopper.update(0.95)
    assert not stopper.update(0.95)
    assert stopper.update(0.95)      # third stale epoch


def test_early_stopping_min_delta():
    stopper = nn.EarlyStopping(patience=1, min_delta=0.1)
    stopper.update(1.0)
    # 0.95 improves by < min_delta, so it counts as stale.
    assert stopper.update(0.95)


def test_early_stopping_validation():
    with pytest.raises(ValueError):
        nn.EarlyStopping(patience=0)
