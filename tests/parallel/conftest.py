"""Shared fixtures for the parallel-executor tests.

Cells use the cheapest real estimator (DeepLog, one epoch, tiny dims)
at scale 0.02 so success-path tests train an actual model in ~0.1s.
"""

import pytest

from repro.baselines import BaselineConfig
from repro.data import Word2VecConfig, clear_split_cache
from repro.parallel import TaskSpec


@pytest.fixture(scope="session")
def tiny_config():
    return BaselineConfig(embedding_dim=12, hidden_size=16, epochs=1,
                          batch_size=32,
                          word2vec=Word2VecConfig(dim=12, epochs=1))


@pytest.fixture
def make_spec(tiny_config):
    def build(seed=0, failpoint=None, eta=0.2, dataset="cert"):
        return TaskSpec(model="DeepLog", estimator="DeepLog",
                        config=tiny_config, dataset=dataset,
                        noise_kind="uniform", noise_params=(eta,),
                        seed=seed, scale=0.02, failpoint=failpoint)
    return build


@pytest.fixture(autouse=True)
def fresh_split_cache():
    clear_split_cache()
    yield
    clear_split_cache()
