"""Tests for the LSTM and transformer sequence encoders."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_lstm_output_shapes(rng):
    lstm = nn.LSTM(6, 9, rng, num_layers=2)
    outputs, (h, c) = lstm(Tensor(rng.normal(size=(4, 7, 6))))
    assert outputs.shape == (4, 7, 9)
    assert h.shape == (4, 9)
    assert c.shape == (4, 9)


def test_lstm_rejects_2d_input(rng):
    lstm = nn.LSTM(6, 9, rng)
    with pytest.raises(ValueError):
        lstm(Tensor(np.zeros((4, 6))))

    with pytest.raises(ValueError):
        nn.LSTM(6, 9, rng, num_layers=0)


def test_lstm_final_state_matches_last_output(rng):
    lstm = nn.LSTM(3, 5, rng, num_layers=1)
    outputs, (h, _) = lstm(Tensor(rng.normal(size=(2, 4, 3))))
    np.testing.assert_allclose(outputs.data[:, -1, :], h.data)


def test_lstm_is_deterministic_given_seed():
    a = nn.LSTM(3, 5, np.random.default_rng(1))
    b = nn.LSTM(3, 5, np.random.default_rng(1))
    x = Tensor(np.random.default_rng(2).normal(size=(2, 4, 3)))
    np.testing.assert_allclose(a.mean_pool(x).data, b.mean_pool(x).data)


def test_lstm_mean_pool_ignores_padding(rng):
    """Changing activity vectors beyond a session's length must not change z."""
    lstm = nn.LSTM(3, 5, rng)
    x = rng.normal(size=(1, 6, 3))
    x_altered = x.copy()
    x_altered[0, 4:, :] = 99.0  # corrupt padding positions
    lengths = np.array([4])
    z1 = lstm.mean_pool(Tensor(x), lengths).data
    z2 = lstm.mean_pool(Tensor(x_altered), lengths).data
    np.testing.assert_allclose(z1, z2)


def test_lstm_mean_pool_full_length_equals_plain_mean(rng):
    lstm = nn.LSTM(3, 5, rng)
    x = Tensor(rng.normal(size=(2, 4, 3)))
    full = lstm.mean_pool(x, lengths=np.array([4, 4])).data
    plain = lstm.mean_pool(x).data
    np.testing.assert_allclose(full, plain)


def test_lstm_gates_bounded(rng):
    """Hidden state of tanh-gated LSTM must stay in (-1, 1)."""
    lstm = nn.LSTM(2, 4, rng)
    x = Tensor(rng.normal(scale=10.0, size=(3, 20, 2)))
    outputs, _ = lstm(x)
    assert np.all(np.abs(outputs.data) < 1.0)


def test_sinusoidal_positions_shape_and_range():
    table = nn.sinusoidal_positions(50, 16)
    assert table.shape == (50, 16)
    assert np.all(np.abs(table) <= 1.0)
    # Distinct positions get distinct encodings.
    assert not np.allclose(table[0], table[1])


def test_attention_mask_blocks_padding(rng):
    attn = nn.MultiHeadAttention(8, 2, rng)
    x = rng.normal(size=(1, 5, 8))
    x_altered = x.copy()
    x_altered[0, 3:, :] = 42.0
    mask = np.array([[1, 1, 1, 0, 0]])
    out1 = attn(Tensor(x), mask=mask).data[:, :3]
    out2 = attn(Tensor(x_altered), mask=mask).data[:, :3]
    np.testing.assert_allclose(out1, out2, atol=1e-10)


def test_attention_rejects_indivisible_heads(rng):
    with pytest.raises(ValueError):
        nn.MultiHeadAttention(7, 2, rng)


def test_transformer_encoder_shapes(rng):
    encoder = nn.TransformerEncoder(8, 2, 16, num_layers=2, rng=rng)
    out = encoder(Tensor(rng.normal(size=(3, 5, 8))))
    assert out.shape == (3, 5, 8)
    pooled = encoder.mean_pool(Tensor(rng.normal(size=(3, 5, 8))),
                               lengths=np.array([5, 3, 1]))
    assert pooled.shape == (3, 8)


def test_transformer_trains_on_toy_task(rng):
    """Transformer + Adam can fit 'is the first token positive?'"""
    encoder = nn.TransformerEncoder(4, 2, 8, num_layers=1, rng=rng)
    head = nn.Linear(4, 2, rng)
    params = encoder.parameters() + head.parameters()
    opt = nn.Adam(params, lr=0.01)
    x = rng.normal(size=(16, 3, 4))
    labels = (x[:, 0, 0] > 0).astype(int)
    for _ in range(60):
        opt.zero_grad()
        logits = head(encoder.mean_pool(Tensor(x)))
        loss = nn.cross_entropy(logits, labels)
        loss.backward()
        opt.step()
    preds = np.argmax(head(encoder.mean_pool(Tensor(x))).data, axis=1)
    assert (preds == labels).mean() >= 0.9
