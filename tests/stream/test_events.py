"""Event log semantics and the synthetic drifting stream generator."""

import numpy as np
import pytest

from repro.data.generators import DATASET_GENERATORS
from repro.stream import (
    DRIFT_MODES,
    NOVEL_ARCHETYPES,
    Event,
    EventLog,
    synthesize_drifting_events,
    write_events,
)


def _event(t, entity="u0", activity="a"):
    return Event(time=t, entity=entity, activity=activity)


def test_event_log_roundtrip_with_offsets(tmp_path):
    log = EventLog(tmp_path / "events.jsonl")
    assert log.append(_event(0.0)) == 0
    assert log.append(_event(1.0, "u1", 7)) == 1
    assert log.extend([_event(2.0), _event(3.0)]) == 4
    assert len(log) == 4

    events = list(log)
    assert [e.offset for e in events] == [0, 1, 2, 3]
    assert [e.time for e in events] == [0.0, 1.0, 2.0, 3.0]
    assert events[1].entity == "u1"
    assert events[1].activity == 7  # int ids survive the round trip


def test_event_log_read_from_offset(tmp_path):
    log = write_events(tmp_path / "events.jsonl",
                       [_event(float(t)) for t in range(5)])
    tail = list(log.read(3))
    assert [e.offset for e in tail] == [3, 4]


def test_event_log_skips_torn_trailing_line(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.append(_event(0.0))
    with open(path, "a") as fh:
        fh.write('{"time": 1.0, "entity": "u0", "act')  # crash mid-write
    assert [e.offset for e in log] == [0]


def test_synthesis_is_deterministic():
    a = synthesize_drifting_events("cert", n_sessions=30, rng=5)
    b = synthesize_drifting_events("cert", n_sessions=30, rng=5)
    c = synthesize_drifting_events("cert", n_sessions=30, rng=6)
    assert a == b
    assert a != c


def test_synthesis_orders_events_and_names_entities():
    events = synthesize_drifting_events("cert", n_sessions=40, rng=0)
    times = [e.time for e in events]
    assert times == sorted(times)
    assert {e.entity for e in events} == {f"s{i:05d}" for i in range(40)}


def test_synthesis_validates_arguments():
    with pytest.raises(ValueError):
        synthesize_drifting_events("cert", drift="sideways")
    with pytest.raises(KeyError):
        synthesize_drifting_events("no-such-dataset")


@pytest.mark.parametrize("dataset", sorted(NOVEL_ARCHETYPES))
def test_novel_archetypes_use_in_vocabulary_tokens(dataset):
    # The post-drift behaviour must be a *novel combination* of known
    # tokens: lexical OOV drift is a separate (oov_rate) signal.
    generator = DATASET_GENERATORS[dataset]()
    for tokens, _, _ in NOVEL_ARCHETYPES[dataset].phases:
        for token in tokens:
            assert token in generator.vocab


@pytest.mark.parametrize("drift", DRIFT_MODES)
def test_drift_changes_only_the_post_drift_world(drift):
    events = synthesize_drifting_events(
        "cert", n_sessions=200, drift=drift, drift_at=100,
        eta=0.1, eta_after=0.45, malicious_rate=0.1,
        malicious_rate_after=0.45, rng=3)
    by_entity = {}
    for e in events:
        by_entity.setdefault(e.entity, e)
    pre = [by_entity[f"s{i:05d}"] for i in range(100)]
    post = [by_entity[f"s{i:05d}"] for i in range(100, 200)]

    def flip_rate(group):
        return np.mean([e.noisy_label != e.label for e in group])

    def malicious_rate(group):
        return np.mean([e.label for e in group])

    if "noise" in drift:
        assert flip_rate(post) > flip_rate(pre) + 0.15
    else:
        assert abs(flip_rate(post) - flip_rate(pre)) < 0.15
    if "archetype" in drift:
        assert malicious_rate(post) > malicious_rate(pre) + 0.15
    else:
        assert abs(malicious_rate(post) - malicious_rate(pre)) < 0.15
