"""Atomic on-disk checkpoints for nested training state.

A checkpoint is one ``.npz`` archive per *tag* (``"corrector/ssl"``,
``"detector"``, ...) holding an arbitrary nested structure of NumPy
arrays, scalars, strings, lists and dicts — module state dicts,
optimizer moments, scheduler position, RNG state, epoch counters and
loss histories all snapshot through the same two calls:

    manager.save("corrector/ssl", {"model": module.state_dict(),
                                   "optimizer": optimizer.state_dict(),
                                   "rng": generator_state(rng),
                                   "epoch": 3})
    state = manager.load("corrector/ssl")

Arrays round-trip bit for bit (dtype and shape preserved, stored
uncompressed); everything else rides in a JSON sidecar entry inside the
same archive, with arbitrary-precision ints intact (PCG64 RNG state is
a 128-bit integer).  Writes are atomic — temp file in the target
directory, then ``os.replace`` — so a crash mid-snapshot can never
corrupt the previous snapshot.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

__all__ = ["CheckpointManager"]

_META_KEY = "__meta__"
_ARRAY_SENTINEL = "__array__"
_SUFFIX = ".ckpt.npz"


def _flatten(value, key: str, arrays: dict[str, np.ndarray]):
    """Split a nested structure into (JSON skeleton, array payload)."""
    if isinstance(value, np.ndarray):
        arrays[key] = value
        return {_ARRAY_SENTINEL: key}
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        for sub in value:
            if not isinstance(sub, str):
                raise TypeError(f"checkpoint dict keys must be str, "
                                f"got {type(sub).__name__} under {key!r}")
        return {sub: _flatten(item, f"{key}/{sub}", arrays)
                for sub, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_flatten(item, f"{key}/{i}", arrays)
                for i, item in enumerate(value)]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot checkpoint {type(value).__name__} under {key!r}")


def _unflatten(skeleton, arrays: dict[str, np.ndarray]):
    if isinstance(skeleton, dict):
        if set(skeleton) == {_ARRAY_SENTINEL}:
            return arrays[skeleton[_ARRAY_SENTINEL]]
        return {key: _unflatten(item, arrays)
                for key, item in skeleton.items()}
    if isinstance(skeleton, list):
        return [_unflatten(item, arrays) for item in skeleton]
    return skeleton


class CheckpointManager:
    """Tagged, atomic snapshot store rooted at one directory."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path(self, tag: str) -> pathlib.Path:
        return self.directory / (self._sanitize(tag) + _SUFFIX)

    @staticmethod
    def _sanitize(tag: str) -> str:
        if not tag:
            raise ValueError("checkpoint tag must be non-empty")
        name = tag.replace("/", "--")
        if name != name.strip(".") or os.sep in name:
            raise ValueError(f"invalid checkpoint tag {tag!r}")
        return name

    # ------------------------------------------------------------------
    def save(self, tag: str, state: dict) -> pathlib.Path:
        """Atomically write ``state`` (nested dict) under ``tag``."""
        arrays: dict[str, np.ndarray] = {}
        skeleton = _flatten(state, "root", arrays)
        meta = json.dumps(skeleton).encode("utf-8")
        payload = dict(arrays)
        payload[_META_KEY] = np.frombuffer(meta, dtype=np.uint8)
        target = self.path(tag)
        tmp = target.with_name(f".{target.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **payload)
                # Flush the payload to stable storage *before* the
                # rename: os.replace only orders the directory entry,
                # so an unsynced temp file can survive a power loss as
                # a zero-length "committed" snapshot.
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            # Best-effort cleanup that must never mask the original
            # failure (the unlink itself can raise, e.g. ENOENT after
            # a concurrent clear, or EACCES on a read-only mount).
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        # Make the rename itself durable: fsync the parent directory so
        # the new entry survives a crash of the whole machine.
        dir_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        return target

    def load(self, tag: str) -> dict | None:
        """Return the snapshot for ``tag``, or None if absent."""
        target = self.path(tag)
        if not target.exists():
            return None
        with np.load(target) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = arrays.pop(_META_KEY)
        skeleton = json.loads(bytes(meta).decode("utf-8"))
        return _unflatten(skeleton, arrays)

    def has(self, tag: str) -> bool:
        return self.path(tag).exists()

    def remove(self, tag: str) -> None:
        self.path(tag).unlink(missing_ok=True)

    def tags(self) -> list[str]:
        """Every stored tag, sorted (``--`` undone back to ``/``)."""
        return sorted(
            p.name[: -len(_SUFFIX)].replace("--", "/")
            for p in self.directory.glob(f"*{_SUFFIX}")
        )

    def clear(self) -> None:
        for tag in self.tags():
            self.remove(tag)
