"""Vectorization pipeline: sessions -> padded embedding arrays.

Models in this repository consume ``(batch, time, dim)`` float arrays of
word2vec activity embeddings (the paper's *raw representation* x_i) plus
per-session lengths for mask-aware pooling.  :class:`SessionVectorizer`
owns that transformation.
"""

from __future__ import annotations

import numpy as np

from .sessions import SessionDataset
from .vocab import Vocabulary
from .word2vec import SkipGramModel, Word2VecConfig, train_word2vec

__all__ = ["SessionVectorizer"]


class SessionVectorizer:
    """Embeds sessions with a (trained or supplied) word2vec model.

    Parameters
    ----------
    model: trained :class:`SkipGramModel`.  Use :meth:`fit` to train one
        from a corpus in a single call.
    max_len: pad/truncate length for every batch (the paper fixes T per
        dataset; we default to the training corpus maximum).
    vocab: the activity vocabulary the embedding rows are indexed by.
        Optional for array-only workflows, but required by the serving
        layer to encode raw activity *tokens* (and persisted alongside
        the embeddings by :func:`repro.core.persistence.save_clfd`).
    """

    def __init__(self, model: SkipGramModel, max_len: int,
                 vocab: Vocabulary | None = None):
        if max_len < 1:
            raise ValueError("max_len must be >= 1")
        self.model = model
        self.max_len = max_len
        self.vocab = vocab
        # Epoch-persistent embedding cache: dataset identity -> fully
        # embedded (x, lengths).  Training loops re-embed the same
        # sessions every batch of every epoch; precomputing once turns
        # transform() into array slicing.  Entries keep a reference to
        # the dataset so an id() collision with a dead object is
        # impossible.
        self._cache: dict[int, tuple[SessionDataset, np.ndarray, np.ndarray]] = {}

    @classmethod
    def fit(cls, corpus: SessionDataset,
            config: Word2VecConfig | None = None,
            rng: np.random.Generator | None = None) -> "SessionVectorizer":
        """Train word2vec on ``corpus`` and return a ready vectorizer."""
        model = train_word2vec(corpus, config=config, rng=rng)
        return cls(model, max_len=corpus.max_length(), vocab=corpus.vocab)

    @property
    def dim(self) -> int:
        return self.model.dim

    def precompute(self, dataset: SessionDataset) -> None:
        """Embed every session of ``dataset`` once and cache the result.

        Subsequent :meth:`transform` calls for the same dataset object
        (any ``indices``) slice the cached array instead of re-running
        the embedding lookup.  Call :meth:`evict` when done to release
        the (n, max_len, dim) buffer.
        """
        entry = self._cache.get(id(dataset))
        if entry is not None and entry[0] is dataset:
            return
        ids, lengths = dataset.padded_ids(self.max_len)
        self._cache[id(dataset)] = (dataset, self.model.embed_ids(ids), lengths)

    def evict(self, dataset: SessionDataset | None = None) -> None:
        """Drop the cache entry for ``dataset`` (or all entries)."""
        if dataset is None:
            self._cache.clear()
        else:
            self._cache.pop(id(dataset), None)

    def transform(self, dataset: SessionDataset,
                  indices: np.ndarray | None = None,
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, lengths)``: x is (n, max_len, dim) float64.

        ``indices`` selects a batch subset without materialising a new
        dataset object.  When the dataset has been :meth:`precompute`-d,
        this is a cache slice rather than an embedding pass.
        """
        entry = self._cache.get(id(dataset))
        if entry is not None and entry[0] is dataset:
            _, x, lengths = entry
            if indices is None:
                return x, lengths
            idx = np.asarray(indices)
            return x[idx], lengths[idx]
        subset = dataset if indices is None else dataset[np.asarray(indices)]
        ids, lengths = subset.padded_ids(self.max_len)
        return self.model.embed_ids(ids), lengths

    def transform_token_ids(self, dataset: SessionDataset,
                            indices: np.ndarray | None = None,
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Return raw padded ``(ids, lengths)`` for id-consuming models
        (DeepLog / LogBert operate on log keys rather than embeddings)."""
        subset = dataset if indices is None else dataset[np.asarray(indices)]
        return subset.padded_ids(self.max_len)
