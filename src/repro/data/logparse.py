"""Raw-log ingestion: template mining and session assembly.

The paper's benchmarks start from raw data — CERT activity CSVs and
OpenStack log lines — which must be turned into activity-id sequences
before any model sees them.  This module provides that ingestion path
for users with real data:

* :class:`LogTemplateMiner` — a simplified Drain-style miner that groups
  log messages into templates ("log keys") by token length and fixed
  prefix tokens, abstracting variable fields to ``<*>``;
* :func:`parse_log_records` — raw ``(entity, message)`` records →
  per-entity log-key sequences;
* :func:`sessions_from_records` — full pipeline: mine templates, build a
  :class:`~repro.data.vocab.Vocabulary`, and assemble a
  :class:`~repro.data.sessions.SessionDataset` with per-entity labels;
* :func:`read_csv_events` — a small reader for CERT-style event CSVs.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import os
import re
from typing import Iterable, Sequence

from .sessions import Session, SessionDataset
from .vocab import Vocabulary

__all__ = [
    "LogRecord",
    "LogTemplateMiner",
    "parse_log_records",
    "sessions_from_records",
    "read_csv_events",
]

_NUMBER = re.compile(r"^\d+(\.\d+)?$")
_HEXID = re.compile(r"^(0x)?[0-9a-f]{6,}$", re.IGNORECASE)
_UUID = re.compile(
    r"^[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}$",
    re.IGNORECASE,
)
_IP = re.compile(r"^\d{1,3}(\.\d{1,3}){3}(:\d+)?$")
_PATH = re.compile(r"^(/[^/ ]+)+/?$")
WILDCARD = "<*>"


@dataclasses.dataclass(frozen=True)
class LogRecord:
    """One raw log event: who produced it and what it said."""

    entity: str      # session/user/instance the event belongs to
    message: str
    label: int = 0   # ground-truth or heuristic label of the entity


_HAS_DIGIT = re.compile(r"\d")


def _abstract_token(token: str) -> str:
    """Replace obviously-variable tokens by <*>.

    As in Drain, any token containing a digit is treated as a variable
    (device names, ids, counters), alongside numbers/hex ids/UUIDs/IPs
    and filesystem paths.
    """
    if (_NUMBER.match(token) or _HEXID.match(token) or _UUID.match(token)
            or _IP.match(token) or _PATH.match(token)
            or _HAS_DIGIT.search(token)):
        return WILDCARD
    return token


class LogTemplateMiner:
    """Simplified Drain: bucket by token count + leading tokens, then
    merge messages whose similarity exceeds a threshold.

    Parameters
    ----------
    depth: how many leading (non-wildcard) tokens form the bucket path.
    similarity: fraction of positions that must match an existing
        template for the message to join it (otherwise a new template
        is created).
    """

    def __init__(self, depth: int = 2, similarity: float = 0.5):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if not 0.0 < similarity <= 1.0:
            raise ValueError("similarity must be in (0, 1]")
        self.depth = depth
        self.similarity = similarity
        # Template token lists indexed by stable id; buckets hold ids.
        self._templates: list[list[str]] = []
        self._buckets: dict[tuple, list[int]] = {}
        # Messages that matched no template while the miner was frozen
        # (match_message misses).  The streaming drift monitor reads
        # this as the novel-template rate; reset_novel_count() starts a
        # fresh observation window.
        self.novel_count = 0

    # ------------------------------------------------------------------
    def fit_message(self, message: str) -> int:
        """Assign ``message`` to a template (creating one if needed);
        returns the template id."""
        tokens = [_abstract_token(t) for t in message.split()]
        if not tokens:
            tokens = [WILDCARD]
        key = self._bucket_key(tokens)
        bucket = self._buckets.setdefault(key, [])

        best_id, best_score = self._best_in(bucket, tokens)
        if best_id is not None and best_score >= self.similarity:
            self._merge(self._templates[best_id], tokens)
            return best_id
        new_id = len(self._templates)
        self._templates.append(tokens)
        bucket.append(new_id)
        return new_id

    def match_message(self, message: str) -> int | None:
        """Template id for ``message`` without creating new templates."""
        tokens = [_abstract_token(t) for t in message.split()] or [WILDCARD]
        bucket = self._buckets.get(self._bucket_key(tokens), [])
        best_id, best_score = self._best_in(bucket, tokens)
        if best_id is not None and best_score >= self.similarity:
            return best_id
        self.novel_count += 1
        return None

    def reset_novel_count(self) -> int:
        """Return and zero the frozen-miss counter (per-window tally)."""
        count = self.novel_count
        self.novel_count = 0
        return count

    def _best_in(self, bucket: list[int],
                 tokens: list[str]) -> tuple[int | None, float]:
        best_id, best_score = None, -1.0
        for template_id in bucket:
            score = self._score(self._templates[template_id], tokens)
            if score > best_score:
                best_id, best_score = template_id, score
        return best_id, best_score

    @property
    def templates(self) -> list[str]:
        """All mined templates, in id order."""
        return [" ".join(tokens) for tokens in self._templates]

    # ------------------------------------------------------------------
    def _bucket_key(self, tokens: list[str]) -> tuple:
        prefix = tuple(
            t for t in tokens[: self.depth] if t != WILDCARD
        )
        return (len(tokens), prefix)

    @staticmethod
    def _score(template: list[str], tokens: list[str]) -> float:
        if len(template) != len(tokens):
            return -1.0
        same = sum(1 for a, b in zip(template, tokens)
                   if a == b and a != WILDCARD)
        return same / len(tokens)

    @staticmethod
    def _merge(template: list[str], tokens: list[str]) -> None:
        """Generalise the template in place where tokens disagree."""
        for i, (a, b) in enumerate(zip(template, tokens)):
            if a != b:
                template[i] = WILDCARD


def parse_log_records(records: Iterable[LogRecord],
                      miner: LogTemplateMiner | None = None,
                      grow: bool = True,
                      ) -> tuple[dict[str, list[int]], LogTemplateMiner]:
    """Mine templates over ``records`` and group key sequences by entity.

    Returns ``(sequences, miner)`` where ``sequences[entity]`` is the
    entity's template-id sequence in record order.

    ``grow=False`` freezes the miner (inference mode): messages are
    matched against existing templates only, and unmatched messages are
    dropped — but not silently: every miss increments
    ``miner.novel_count``, which the streaming drift monitor reads (via
    ``reset_novel_count``) as the per-window novel-template rate.
    """
    miner = miner or LogTemplateMiner()
    sequences: dict[str, list[int]] = {}
    for record in records:
        if grow:
            template_id = miner.fit_message(record.message)
        else:
            template_id = miner.match_message(record.message)
            if template_id is None:
                sequences.setdefault(record.entity, [])
                continue
        sequences.setdefault(record.entity, []).append(template_id)
    return sequences, miner


def sessions_from_records(records: Sequence[LogRecord],
                          miner: LogTemplateMiner | None = None,
                          grow: bool = True) -> SessionDataset:
    """Full ingestion: raw records → SessionDataset with a template vocab.

    Entity labels are taken from the records (all records of one entity
    must agree); the session's activity ids index the mined templates
    through the dataset vocabulary.  Pass the training miner with
    ``grow=False`` to encode new data against a frozen template
    vocabulary (entities with no matched lines are dropped).
    """
    records = list(records)
    if not records:
        raise ValueError("no records supplied")
    labels: dict[str, int] = {}
    for record in records:
        if record.entity in labels and labels[record.entity] != record.label:
            raise ValueError(
                f"conflicting labels for entity {record.entity!r}"
            )
        labels[record.entity] = record.label

    sequences, miner = parse_log_records(records, miner, grow=grow)
    sequences = {entity: keys for entity, keys in sequences.items() if keys}
    if not sequences:
        raise ValueError("no messages matched the frozen template miner")
    vocab = Vocabulary(miner.templates)
    sessions = []
    for entity, key_sequence in sequences.items():
        activities = [vocab[miner.templates[k]] for k in key_sequence]
        sessions.append(Session(
            activities=activities,
            label=labels[entity],
            session_id=entity,
            user=entity,
        ))
    return SessionDataset(sessions, vocab, name="parsed-logs")


def read_csv_events(source: str | os.PathLike | io.TextIOBase,
                    entity_column: str, message_columns: Sequence[str],
                    label_column: str | None = None) -> list[LogRecord]:
    """Read CERT-style event CSVs into :class:`LogRecord` rows.

    ``message_columns`` are joined with spaces to form the raw message
    (e.g. ``["activity", "pc"]``).  ``label_column``, when present, must
    hold 0/1 entity labels.
    """
    own_handle = False
    if isinstance(source, (str, os.PathLike)):
        handle = open(source, newline="")
        own_handle = True
    else:
        handle = source
    try:
        reader = csv.DictReader(handle)
        records = []
        for row in reader:
            message = " ".join(row[c] for c in message_columns)
            label = int(row[label_column]) if label_column else 0
            records.append(LogRecord(entity=row[entity_column],
                                     message=message, label=label))
        return records
    finally:
        if own_handle:
            handle.close()
