"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_accepts_all_commands():
    parser = build_parser()
    for argv in (["table1"], ["table2"], ["table3"],
                 ["ablation", "--noise", "class-dependent"], ["latency"],
                 ["demo", "--dataset", "openstack"]):
        args = parser.parse_args(argv)
        assert args.command == argv[0]


def test_parser_scale_and_seeds():
    args = build_parser().parse_args(["--scale", "0.3", "--seeds", "5",
                                      "table3"])
    assert args.scale == 0.3
    assert args.seeds == 5


def test_parser_rejects_bad_choice():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["demo", "--dataset", "imagenet"])


def test_main_demo_runs(capsys, monkeypatch):
    """End-to-end CLI smoke test on a tiny scale."""
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    code = main(["--scale", "0.02", "demo", "--eta", "0.1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "label corrector" in out
    assert "f1=" in out


def test_main_table1_subset(capsys):
    code = main(["--scale", "0.02", "table1", "--etas", "0.2",
                 "--models", "CLFD,DeepLog"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table I (measured)" in out
    assert "DeepLog" in out


def test_parser_sweep_command():
    args = build_parser().parse_args(["sweep", "q", "0.5", "0.7"])
    assert args.command == "sweep"
    assert args.values == ["0.5", "0.7"]


def test_parse_value_literals():
    from repro.cli import _parse_value

    assert _parse_value("0.5") == 0.5
    assert _parse_value("3") == 3
    assert _parse_value("true") is True
    assert _parse_value("weighted") == "weighted"


def test_main_sweep_runs(capsys):
    code = main(["--scale", "0.02", "sweep", "q", "0.7", "--eta", "0.2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "sweep over q" in out


def test_parser_train_command(tmp_path):
    args = build_parser().parse_args(
        ["train", "--checkpoint-dir", str(tmp_path), "--seed", "3",
         "--eta", "0.2", "--resume", "--snapshot-every", "2",
         "--stop-after", "corrector", "--metrics-out", "m.json"])
    assert args.command == "train"
    assert args.seed == 3 and args.resume
    assert args.snapshot_every == 2
    assert args.stop_after == "corrector"
    assert args.metrics_out == "m.json"


def test_parser_train_requires_checkpoint_dir():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["train"])


def test_parser_tail_command():
    args = build_parser().parse_args(
        ["tail", "--journal", "j.jsonl", "-n", "5", "--phase",
         "corrector/ssl"])
    assert args.command == "tail"
    assert args.lines == 5 and args.phase == "corrector/ssl"
    assert not args.follow


def test_main_train_stop_resume_tail(tmp_path, capsys):
    """The full crash-drill workflow through the CLI.

    A --stop-after run exits 3 with checkpoints on disk; --resume
    finishes it; the metrics JSON is bit-identical to a clean run; and
    `repro tail` renders the journal.
    """
    ckpt = tmp_path / "ckpt"
    common = ["--scale", "0.02", "train", "--eta", "0.2", "--seed", "1",
              "--checkpoint-dir", str(ckpt)]

    code = main(common + ["--stop-after", "corrector"])
    out = capsys.readouterr().out
    assert code == 3
    assert "interrupted after 'corrector'" in out
    assert "--resume" in out

    resumed_json = tmp_path / "resumed.json"
    code = main(common + ["--resume", "--metrics-out", str(resumed_json)])
    out = capsys.readouterr().out
    assert code == 0
    assert "resuming CLFD" in out and "f1=" in out

    clean_json = tmp_path / "clean.json"
    code = main(["--scale", "0.02", "train", "--eta", "0.2", "--seed",
                 "1", "--checkpoint-dir", str(tmp_path / "clean-ckpt"),
                 "--metrics-out", str(clean_json)])
    capsys.readouterr()
    assert code == 0
    assert resumed_json.read_text() == clean_json.read_text()

    code = main(["tail", "--journal", str(ckpt / "journal.jsonl"),
                 "-n", "5"])
    out = capsys.readouterr().out
    assert code in (0, None)
    assert "epoch" in out or "phase_complete" in out
