"""Online re-correction: frozen-vocab encoding and head fine-tuning."""

import numpy as np
import pytest

from repro.core import load_clfd
from repro.stream import (
    SessionWindower,
    StreamSession,
    build_recent_dataset,
    recorrect_model,
)

from .conftest import drifting_events


def _session(activities, noisy_label=0, label=0, entity="e0"):
    return StreamSession(
        session_id=f"{entity}/0", entity=entity,
        activities=tuple(activities), noisy_label=noisy_label,
        label=label, first_time=0.0, last_time=1.0, close_time=2.0,
        start_offset=0, end_offset=1)


def _recent_sessions(n=80):
    """Closed sessions straight from the windower, like the processor's."""
    windower = SessionWindower(window_size=60.0, session_gap=4.0,
                               max_session_len=16)
    sessions = []
    for event in drifting_events(n_sessions=n):
        for window in windower.process(event):
            sessions.extend(window.sessions)
    for window in windower.flush():
        sessions.extend(window.sessions)
    return sessions


def test_build_recent_dataset_encodes_against_frozen_vocab(stream_model):
    vocab = stream_model.vectorizer.vocab
    known = [t for t in vocab.tokens()[1:3]]
    sessions = [
        _session(known + ["never-seen-token"], noisy_label=1, label=0),
        _session(["also-unseen", "another-unseen"], entity="e1"),
        _session(known, entity="e2"),
    ]
    dataset, dropped, oov = build_recent_dataset(sessions, stream_model)
    assert dropped == 1            # the all-OOV session vanishes
    assert oov == 3                # ...but every novel token is counted
    assert len(dataset) == 2
    assert list(dataset.sessions[0].activities) == vocab.encode(known)
    assert dataset.sessions[0].noisy_label == 1
    assert dataset.sessions[0].label == 0


def test_build_recent_dataset_passes_integer_ids_through(stream_model):
    dataset, dropped, oov = build_recent_dataset(
        [_session([1, 2, 3])], stream_model)
    assert (dropped, oov) == (0, 0)
    assert list(dataset.sessions[0].activities) == [1, 2, 3]


def test_build_recent_dataset_empty_survivors(stream_model):
    dataset, dropped, oov = build_recent_dataset(
        [_session(["nope"], entity="e9")], stream_model)
    assert dataset is None
    assert (dropped, oov) == (1, 1)


def test_recorrect_model_writes_a_loadable_archive(stream_archive,
                                                   tmp_path):
    model = load_clfd(stream_archive)
    sessions = _recent_sessions()
    result = recorrect_model(
        model, sessions, np.random.default_rng(0), generation=1,
        archive_dir=tmp_path, head_epochs=5)
    assert result.archive.exists()
    assert result.archive.name == "model-gen1.npz"
    assert result.generation == 1
    assert result.n_sessions == len(sessions) - result.n_dropped
    assert result.flipped >= 0
    assert np.isfinite(result.corrector_loss)
    assert np.isfinite(result.detector_loss)

    refreshed = load_clfd(result.archive)
    assert refreshed.fraud_detector is not None
    assert refreshed.label_corrector is not None


def test_recorrect_model_requires_corrector(stream_archive, tmp_path):
    model = load_clfd(stream_archive)
    model.label_corrector = None
    with pytest.raises(ValueError, match="corrector"):
        recorrect_model(model, _recent_sessions(20),
                        np.random.default_rng(0), generation=1,
                        archive_dir=tmp_path)
