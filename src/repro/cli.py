"""Command-line interface: reproduce any paper table from the shell.

Usage::

    python -m repro table1 --scale 0.1 --seeds 3
    python -m repro table1 --seeds 5 --workers 2 --hosts :7787
    python -m repro join leader-host:7787
    python -m repro analyze --metric f1 --format both
    python -m repro table3
    python -m repro ablation --noise uniform
    python -m repro latency
    python -m repro demo
    python -m repro save --out model.npz
    python -m repro serve --model model.npz
    python -m repro quantize --model model.npz --out model-int8.npz
    python -m repro distill --model model.npz --out student.npz
    python -m repro stream --model model.npz --workdir stream-state

Each command prints the measured table; scale/seed options map onto
:class:`repro.experiments.ExperimentSettings`.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .parallel import DEFAULT_CACHE_DIR
from .experiments import (
    ExperimentSettings,
    class_dependent_noise,
    format_ablation_table,
    format_comparison_table,
    run_ablation,
    run_latency,
    run_table1,
    run_table2,
    run_table3,
    uniform_noise,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the CLFD paper's experiment tables.",
    )
    parser.add_argument("--scale", type=float, default=0.1,
                        help="dataset scale factor (1.0 = paper size)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="number of repeated runs per cell")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width for grid commands "
                             "(1 = sequential)")
    parser.add_argument("--hosts", metavar="ADDR", default=None,
                        help="listen address (host:port, ':0' = ephemeral) "
                             "for multi-host sweeps: this process becomes "
                             "the leader, --workers local workers join, and "
                             "remote hosts join with `repro join ADDR` "
                             "(grid commands)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk run cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="run-cache directory (grid commands)")
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="Table I: uniform-noise comparison")
    t1.add_argument("--etas", type=str, default="0.1,0.45",
                    help="comma-separated noise rates")
    t1.add_argument("--models", type=str, default=None,
                    help="comma-separated model subset (default: all)")

    t2 = sub.add_parser("table2", help="Table II: class-dependent noise")
    t2.add_argument("--models", type=str, default=None)

    sub.add_parser("table3", help="Table III: label-corrector TPR/TNR")

    ab = sub.add_parser("ablation", help="Tables IV/V: CLFD ablations")
    ab.add_argument("--noise", choices=("uniform", "class-dependent"),
                    default="uniform")
    ab.add_argument("--eta", type=float, default=0.45,
                    help="uniform noise rate (uniform mode only)")

    sub.add_parser("latency", help="Section IV-B3: training latency")

    jn = sub.add_parser(
        "join", help="join a running sweep leader as a worker host")
    jn.add_argument("address", help="leader address from the leader's "
                                    "banner, e.g. 10.0.0.5:7787")
    jn.add_argument("--id", default=None,
                    help="worker id (default: host:pid:uuid)")
    jn.add_argument("--max-cells", type=int, default=None,
                    help="leave after completing this many cells")

    an = sub.add_parser(
        "analyze",
        help="cross-seed aggregation + paired significance tests over "
             "a sweep's run-cache directory")
    an.add_argument("--metric", default="f1",
                    help="metric to aggregate and test (default: f1)")
    an.add_argument("--target", default="CLFD",
                    help="model the paired tests compare against every "
                         "other model (default: CLFD)")
    an.add_argument("--format", default="markdown",
                    choices=("markdown", "latex", "both"),
                    help="table rendering (default: markdown)")
    an.add_argument("--alpha", type=float, default=0.05,
                    help="significance level after Holm correction")
    an.add_argument("--measure", default="test_metrics",
                    help="record kind to analyze (default: test_metrics; "
                         "correction_rates for table3 caches)")

    sw = sub.add_parser("sweep", help="sweep one CLFDConfig field")
    sw.add_argument("field", help="config field, e.g. q or mixup_beta")
    sw.add_argument("values", nargs="+",
                    help="values to sweep (parsed as float when possible)")
    sw.add_argument("--eta", type=float, default=0.45)
    sw.add_argument("--dataset", default="cert",
                    choices=("cert", "umd-wikipedia", "openstack"))

    demo = sub.add_parser("demo", help="train CLFD once and print metrics")
    demo.add_argument("--dataset", default="cert",
                      choices=("cert", "umd-wikipedia", "openstack"))
    demo.add_argument("--eta", type=float, default=0.3)

    save = sub.add_parser(
        "save", help="train CLFD once and persist it for serving")
    save.add_argument("--out", required=True,
                      help="target archive path (.npz appended if missing)")
    save.add_argument("--dataset", default="cert",
                      choices=("cert", "umd-wikipedia", "openstack"))
    save.add_argument("--eta", type=float, default=0.3)

    serve = sub.add_parser(
        "serve", help="serve a persisted model over HTTP with micro-batching")
    serve.add_argument("--model", required=True,
                       help="archive written by `repro save` / save_clfd")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port (0 = pick an ephemeral port)")
    serve.add_argument("--workers", type=int, default=1,
                       help="scoring worker processes (>1 shards sessions "
                            "across a cluster sharing one weight copy)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batch size ceiling")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="coalescing window after the first request")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="queue bound before 429 backpressure")
    serve.add_argument("--rate-limit-rps", type=float, default=None,
                       help="per-tenant sustained sessions/second "
                            "(default: no rate limiting)")
    serve.add_argument("--rate-limit-burst", type=float, default=None,
                       help="per-tenant burst capacity "
                            "(default: the sustained rate)")
    serve.add_argument("--score-timeout", type=float, default=30.0,
                       help="server-side bound on one request's scoring wait")
    serve.add_argument("--precision", default=None,
                       choices=("float32", "float16", "int8"),
                       help="serve through the low-precision runtime "
                            "(quantizes full-precision archives on the "
                            "fly; default: serve the archive as persisted)")

    qz = sub.add_parser(
        "quantize",
        help="quantize a persisted archive for low-precision serving")
    qz.add_argument("--model", required=True,
                    help="source archive written by `repro save` / save_clfd")
    qz.add_argument("--out", required=True,
                    help="target quantized archive (.npz appended if missing)")
    qz.add_argument("--precision", default="int8",
                    choices=("float32", "float16", "int8"),
                    help="storage precision for the detector weights")

    ds = sub.add_parser(
        "distill",
        help="train a 1-layer student on a teacher archive's soft scores")
    ds.add_argument("--model", required=True,
                    help="fitted teacher archive")
    ds.add_argument("--out", required=True,
                    help="target student archive (.npz appended if missing)")
    ds.add_argument("--dataset", default="cert",
                    choices=("cert", "umd-wikipedia", "openstack"))
    ds.add_argument("--epochs", type=int, default=None,
                    help="distillation epochs "
                         "(default: the config's classifier_epochs)")
    ds.add_argument("--seed", type=int, default=0)

    st = sub.add_parser(
        "stream",
        help="score an event stream online with drift detection and "
             "label re-correction")
    st.add_argument("--model", required=True,
                    help="full-precision archive to serve initially "
                         "(also the frozen baseline for --compare-frozen)")
    st.add_argument("--workdir", required=True,
                    help="state directory: checkpoint, journal, "
                         "re-corrected archives")
    st.add_argument("--events", default=None,
                    help="existing JSONL event log; default: synthesize "
                         "a drifting stream into <workdir>/events.jsonl")
    st.add_argument("--dataset", default="cert",
                    choices=("cert", "umd-wikipedia", "openstack"),
                    help="archetype family for synthesized streams")
    st.add_argument("--drift", default="archetype+noise",
                    choices=("none", "archetype", "noise",
                             "archetype+noise"),
                    help="what shifts mid-stream in synthesized streams")
    st.add_argument("--sessions", type=int, default=240,
                    help="synthesized stream length in sessions")
    st.add_argument("--stream-seed", type=int, default=11,
                    help="seed for the synthesized stream")
    st.add_argument("--seed", type=int, default=0,
                    help="processor seed (re-correction batching)")
    st.add_argument("--window-size", type=float, default=60.0,
                    help="window length in stream time units")
    st.add_argument("--session-gap", type=float, default=4.0,
                    help="silence after which a session closes")
    st.add_argument("--max-session-len", type=int, default=16,
                    help="hard cap on events per session")
    st.add_argument("--recorrect-windows", type=int, default=5,
                    help="trailing windows re-correction trains on")
    st.add_argument("--head-epochs", type=int, default=30,
                    help="fine-tune epochs per re-correction")
    st.add_argument("--max-recorrections", type=int, default=None,
                    help="cap on re-correction passes")
    st.add_argument("--max-windows", type=int, default=None,
                    help="stop after this many windows (kill point; "
                         "rerun with --resume to continue)")
    st.add_argument("--resume", action="store_true",
                    help="continue from <workdir>/checkpoint.json")
    st.add_argument("--compare-frozen", action="store_true",
                    help="after the run, re-score post-swap sessions "
                         "with the frozen model and print both AUCs")

    tr = sub.add_parser(
        "train", help="checkpointed CLFD training with kill/resume support")
    tr.add_argument("--dataset", default="cert",
                    choices=("cert", "umd-wikipedia", "openstack"))
    tr.add_argument("--eta", type=float, default=0.3,
                    help="uniform label-noise rate")
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--checkpoint-dir", required=True,
                    help="directory for phase/epoch snapshots")
    tr.add_argument("--resume", action="store_true",
                    help="continue from the snapshots in --checkpoint-dir")
    tr.add_argument("--journal", default=None,
                    help="metrics journal path "
                         "(default: <checkpoint-dir>/journal.jsonl)")
    tr.add_argument("--snapshot-every", type=int, default=1,
                    help="epoch-snapshot cadence within each phase")
    tr.add_argument("--stop-after", default=None,
                    help="crash drill: interrupt after this phase tag "
                         "(or '<scope>@N' after epoch N) checkpoints")
    tr.add_argument("--profile", action="store_true",
                    help="attach nn.profile op breakdowns to the journal")
    tr.add_argument("--compile", action="store_true",
                    help="run each phase through the trace-once/replay "
                         "executor (bit-identical, faster steady state)")
    tr.add_argument("--metrics-out", default=None,
                    help="write deterministic JSON (metrics + parameter "
                         "fingerprint) here — bit-diffable across resumes")
    tr.add_argument("--out", default=None,
                    help="persist the fitted model archive here")

    sub.add_parser(
        "lint-graph",
        help="structural lint of a CLFD training-step autograd graph "
             "(exit 2 on error-severity issues)")

    tl = sub.add_parser("tail", help="render a training journal")
    tl.add_argument("--journal", required=True)
    tl.add_argument("-n", "--lines", type=int, default=10,
                    help="number of trailing entries to show")
    tl.add_argument("--phase", default=None,
                    help="only entries of this phase")
    tl.add_argument("--follow", action="store_true",
                    help="keep streaming new entries")
    return parser


def _settings(args) -> ExperimentSettings:
    settings = ExperimentSettings.from_env()
    settings.scale = args.scale
    settings.seeds = args.seeds
    return settings


def _model_list(value: str | None) -> list[str] | None:
    return value.split(",") if value else None


def _executor_kwargs(args) -> dict:
    """workers/cache/coordination settings shared by grid subcommands."""
    kwargs = {
        "workers": args.workers,
        "cache": None if args.no_cache else args.cache_dir,
    }
    if args.hosts is not None:
        kwargs["coordinate"] = args.hosts
    return kwargs


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    settings = _settings(args)

    if args.command == "table1":
        settings.etas = tuple(float(e) for e in args.etas.split(","))
        results = run_table1(settings, models=_model_list(args.models),
                             verbose=True, **_executor_kwargs(args))
        print()
        print(format_comparison_table(results, "Table I (measured)"))
    elif args.command == "table2":
        results = run_table2(settings, models=_model_list(args.models),
                             verbose=True, **_executor_kwargs(args))
        print()
        print(format_comparison_table(results, "Table II (measured)"))
    elif args.command == "table3":
        results = run_table3(settings, verbose=True,
                             **_executor_kwargs(args))
        print()
        for dataset, per_noise in results.items():
            for noise_label, cell in per_noise.items():
                print(f"{dataset:14s} {noise_label:22s} "
                      f"TPR={cell['tpr']!s} TNR={cell['tnr']!s}")
    elif args.command == "ablation":
        noise = (uniform_noise(args.eta) if args.noise == "uniform"
                 else class_dependent_noise())
        results = run_ablation(noise, settings, verbose=True,
                               **_executor_kwargs(args))
        print()
        print(format_ablation_table(
            results, f"Ablations ({noise.label}, measured)"))
    elif args.command == "latency":
        latencies = run_latency(settings, verbose=True)
        print()
        base = min(latencies.values())
        for model, seconds in sorted(latencies.items(), key=lambda kv: -kv[1]):
            print(f"{model:10s} {seconds:8.2f}s ({seconds / base:4.1f}x)")
    elif args.command == "sweep":
        from .experiments import format_sweep, sweep_config_field

        values = [_parse_value(v) for v in args.values]
        points = sweep_config_field(args.field, values, settings=settings,
                                    dataset=args.dataset,
                                    noise=uniform_noise(args.eta),
                                    verbose=True)
        print()
        print(format_sweep(args.field, points))
    elif args.command == "join":
        from .parallel import run_worker

        print(f"joining sweep at {args.address} ...")
        completed = run_worker(args.address, worker_id=args.id,
                               max_cells=args.max_cells)
        print(f"completed {completed} cell(s)")
    elif args.command == "analyze":
        from .analysis import analyze_cache

        print(analyze_cache(args.cache_dir, metric=args.metric,
                            target=args.target, fmt=args.format,
                            alpha=args.alpha, measure=args.measure))
    elif args.command == "demo":
        _run_demo(args, settings)
    elif args.command == "save":
        _run_save(args, settings)
    elif args.command == "stream":
        return _run_stream(args)
    elif args.command == "train":
        return _run_train(args, settings)
    elif args.command == "lint-graph":
        from .nn.debug.lint import lint_demo_graph

        issues = lint_demo_graph(verbose=True)
        return 2 if any(i.severity == "error" for i in issues) else 0
    elif args.command == "tail":
        from .train import tail_journal

        tail_journal(args.journal, n=args.lines, phase=args.phase,
                     follow=args.follow)
    elif args.command == "serve":
        from .serve import ServeConfig, run_server

        config = ServeConfig(
            host=args.host, port=args.port, workers=args.workers,
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue, rate_limit_rps=args.rate_limit_rps,
            rate_limit_burst=args.rate_limit_burst,
            score_timeout_s=args.score_timeout,
            precision=args.precision, verbose=True)
        run_server(args.model, config)
    elif args.command == "quantize":
        _run_quantize(args)
    elif args.command == "distill":
        _run_distill(args, settings)
    return 0


def _parse_value(raw: str):
    """Best-effort literal parsing: float, int, bool, else string."""
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        as_float = float(raw)
    except ValueError:
        return raw
    return int(as_float) if as_float.is_integer() and "." not in raw \
        else as_float


def _run_demo(args, settings: ExperimentSettings) -> None:
    from . import CLFD
    from .data import apply_uniform_noise, make_dataset
    from .metrics import evaluate_detector

    rng = np.random.default_rng(0)
    train, test = make_dataset(args.dataset, rng, scale=settings.scale)
    apply_uniform_noise(train, eta=args.eta, rng=rng)
    print(f"training CLFD on {args.dataset} "
          f"(scale={settings.scale}, eta={args.eta}) ...")
    model = CLFD(settings.clfd_config()).fit(train,
                                             rng=np.random.default_rng(0))
    quality = model.correction_quality(train)
    print(f"label corrector: TPR={quality['tpr']:.1f}% "
          f"TNR={quality['tnr']:.1f}%")
    labels, scores = model.predict(test)
    metrics = evaluate_detector(test.labels(), labels, scores)
    print(", ".join(f"{k}={v:.1f}%" for k, v in metrics.items()))


def _run_stream(args) -> int:
    """`repro stream`: online scoring + drift detection + re-correction."""
    import pathlib

    from .stream import (EventLog, StreamConfig, StreamProcessor,
                         compare_with_frozen, synthesize_drifting_events,
                         write_events)

    if args.events:
        log = EventLog(args.events)
    else:
        path = pathlib.Path(args.workdir) / "events.jsonl"
        if path.exists() and args.resume:
            log = EventLog(path)
        else:
            print(f"synthesizing a {args.drift!r}-drift {args.dataset} "
                  f"stream ({args.sessions} sessions) ...")
            events = synthesize_drifting_events(
                args.dataset, n_sessions=args.sessions, drift=args.drift,
                eta=0.1, eta_after=0.45, malicious_rate=0.1,
                malicious_rate_after=0.45,
                max_session_length=args.max_session_len,
                rng=args.stream_seed)
            log = write_events(path, events)
    config = StreamConfig(
        window_size=args.window_size, session_gap=args.session_gap,
        max_session_len=args.max_session_len,
        recorrect_windows=args.recorrect_windows,
        head_epochs=args.head_epochs,
        max_recorrections=args.max_recorrections)
    with StreamProcessor(args.model, args.workdir, config=config,
                         seed=args.seed, resume=args.resume) as proc:
        print(f"{'window':>6} {'sessions':>8} {'oov':>6} {'drift':>7} "
              f"{'trigger':>9} {'gen':>4}")
        summaries = proc.run_log(log, max_windows=args.max_windows)
        for s in summaries:
            reading = s["reading"]
            flag = "  ALARM" if s["alarm"] else ""
            swap = "  -> re-corrected + hot-swapped" if s["recorrected"] \
                else ""
            print(f"{s['window']:>6} {s['n_sessions']:>8} "
                  f"{s['oov_rate']:>6.3f} {reading.drift_score:>7.3f} "
                  f"{reading.trigger or '-':>9} {s['generation']:>4}"
                  f"{flag}{swap}")
        print(f"processed {proc.windows_processed} windows, "
              f"{proc.recorrections} re-correction(s), serving "
              f"generation {proc.model_generation} "
              f"({proc.current_archive.name})")
        if args.max_windows is not None \
                and len(summaries) >= args.max_windows:
            print(f"stopped after --max-windows {args.max_windows}; "
                  f"rerun with --resume to continue from offset "
                  f"{proc.next_offset}")
        if args.compare_frozen:
            if proc.recorrections:
                auc = compare_with_frozen(proc.records, args.model)
                print(f"post-swap AUC over {auc['n_sessions']} sessions: "
                      f"live={auc['live_auc']:.1f}% "
                      f"frozen={auc['frozen_auc']:.1f}%")
            else:
                print("no re-correction happened; nothing to compare")
    return 0


def _run_train(args, settings: ExperimentSettings) -> int:
    """`repro train`: a checkpointed, resumable single CLFD run.

    Exit codes: 0 on completion, 3 when a --stop-after crash drill
    interrupted the run (checkpoints are on disk; rerun with --resume).
    """
    import json
    import os

    from . import CLFD
    from .core import model_fingerprint, save_clfd
    from .data import apply_uniform_noise, make_dataset
    from .metrics import evaluate_detector
    from .train import TrainRun, TrainingInterrupted, seed_everything

    data_rng = seed_everything(args.seed)
    train, test = make_dataset(args.dataset, data_rng, scale=settings.scale)
    apply_uniform_noise(train, eta=args.eta, rng=data_rng)
    journal = args.journal or os.path.join(args.checkpoint_dir,
                                           "journal.jsonl")
    run = TrainRun(args.checkpoint_dir, journal=journal,
                   resume=args.resume, snapshot_every=args.snapshot_every,
                   stop_after=args.stop_after, profile=args.profile,
                   compile=args.compile)
    mode = "resuming" if args.resume else "training"
    print(f"{mode} CLFD on {args.dataset} (scale={settings.scale}, "
          f"eta={args.eta}, seed={args.seed}) ...")
    model = CLFD(settings.clfd_config())
    try:
        model.fit(train, rng=seed_everything(args.seed), run=run)
    except TrainingInterrupted as exc:
        print(f"interrupted after {exc.tag!r}; checkpoints in "
              f"{args.checkpoint_dir} — rerun with --resume to continue")
        return 3
    labels, scores = model.predict(test)
    metrics = evaluate_detector(test.labels(), labels, scores)
    print(", ".join(f"{k}={v:.1f}%" for k, v in metrics.items()))
    if args.metrics_out:
        payload = {
            "dataset": args.dataset, "eta": args.eta, "seed": args.seed,
            "scale": settings.scale,
            "metrics": {k: float(v) for k, v in metrics.items()},
            "params_sha256": model_fingerprint(model),
        }
        with open(args.metrics_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out}")
    if args.out:
        path = save_clfd(model, args.out)
        print(f"saved model to {path}")
    return 0


def _run_quantize(args) -> None:
    import os

    from .quant import quantize_archive

    path = quantize_archive(args.model, args.out, precision=args.precision)
    before = os.path.getsize(args.model if os.path.exists(args.model)
                             else f"{args.model}.npz")
    after = os.path.getsize(path)
    print(f"quantized {args.model} -> {path} ({args.precision}, "
          f"{before / 1024:.1f} KiB -> {after / 1024:.1f} KiB); serve it: "
          f"python -m repro serve --model {path}")


def _run_distill(args, settings: ExperimentSettings) -> None:
    from .core import load_clfd, save_clfd
    from .data import make_dataset
    from .quant import distill_student

    rng = np.random.default_rng(args.seed)
    train, _ = make_dataset(args.dataset, rng, scale=settings.scale)
    teacher = load_clfd(args.model)
    print(f"distilling a 1-layer student from {args.model} on "
          f"{args.dataset} (scale={settings.scale}) ...")
    student = distill_student(teacher, train, epochs=args.epochs,
                              rng=np.random.default_rng(args.seed))
    path = save_clfd(student, args.out)
    print(f"saved student to {path} (quantize it: python -m repro "
          f"quantize --model {path} --out {path.stem}-int8)")


def _run_save(args, settings: ExperimentSettings) -> None:
    from . import CLFD
    from .core import save_clfd
    from .data import apply_uniform_noise, make_dataset

    rng = np.random.default_rng(0)
    train, _ = make_dataset(args.dataset, rng, scale=settings.scale)
    apply_uniform_noise(train, eta=args.eta, rng=rng)
    print(f"training CLFD on {args.dataset} "
          f"(scale={settings.scale}, eta={args.eta}) ...")
    model = CLFD(settings.clfd_config()).fit(train,
                                             rng=np.random.default_rng(0))
    path = save_clfd(model, args.out)
    print(f"saved model to {path} "
          f"(serve it: python -m repro serve --model {path})")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

