"""Tests for the SGNS word2vec trainer and the vectorization pipeline."""

import numpy as np
import pytest

from repro.data import (
    NORMAL,
    Session,
    SessionDataset,
    SessionVectorizer,
    Vocabulary,
    Word2VecConfig,
    make_dataset,
    train_word2vec,
)


@pytest.fixture(scope="module")
def corpus():
    """A corpus with two disjoint co-occurrence cliques: {a,b} and {c,d}."""
    vocab = Vocabulary(["a", "b", "c", "d"])
    rng = np.random.default_rng(0)
    sessions = []
    for _ in range(120):
        if rng.random() < 0.5:
            tokens = [1, 2] * 4  # a-b clique
        else:
            tokens = [3, 4] * 4  # c-d clique
        sessions.append(Session(list(tokens), NORMAL))
    return SessionDataset(sessions, vocab)


@pytest.fixture(scope="module")
def model(corpus):
    return train_word2vec(corpus, Word2VecConfig(dim=8, epochs=5),
                          rng=np.random.default_rng(1))


def test_model_shape(model, corpus):
    assert model.vectors.shape == (len(corpus.vocab), 8)
    assert model.dim == 8
    assert model.vocab_size == 5


def test_cooccurring_tokens_are_similar(model):
    def cos(i, j):
        a, b = model.vectors[i], model.vectors[j]
        return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))

    assert cos(1, 2) > cos(1, 3)
    assert cos(3, 4) > cos(3, 2)


def test_most_similar_excludes_self(model):
    neighbours = model.most_similar(1, top_k=2)
    assert all(idx != 1 for idx, _ in neighbours)
    assert neighbours[0][0] == 2  # b is a's clique partner


def test_embed_ids_shapes(model):
    out = model.embed_ids(np.zeros((3, 7), dtype=np.int64))
    assert out.shape == (3, 7, 8)


def test_training_is_deterministic(corpus):
    cfg = Word2VecConfig(dim=4, epochs=2)
    a = train_word2vec(corpus, cfg, rng=np.random.default_rng(5))
    b = train_word2vec(corpus, cfg, rng=np.random.default_rng(5))
    np.testing.assert_allclose(a.vectors, b.vectors)


def test_vectors_stay_bounded(corpus):
    model = train_word2vec(corpus, Word2VecConfig(dim=8, epochs=10, lr=0.1),
                           rng=np.random.default_rng(2))
    assert np.linalg.norm(model.vectors, axis=1).max() < 50.0


def test_config_validation():
    with pytest.raises(ValueError):
        Word2VecConfig(dim=0)
    with pytest.raises(ValueError):
        Word2VecConfig(epochs=0)
    with pytest.raises(ValueError):
        Word2VecConfig(negatives=0)


def test_length_one_corpus_raises():
    vocab = Vocabulary(["a"])
    ds = SessionDataset([Session([1], NORMAL)], vocab)
    with pytest.raises(ValueError):
        train_word2vec(ds)


def test_vectorizer_fit_and_transform():
    rng = np.random.default_rng(3)
    train, test = make_dataset("umd-wikipedia", rng, scale=0.02)
    vec = SessionVectorizer.fit(train, Word2VecConfig(dim=12, epochs=2),
                                rng=rng)
    x, lengths = vec.transform(train, indices=np.arange(5))
    assert x.shape == (5, train.max_length(), 12)
    assert lengths.shape == (5,)
    assert vec.dim == 12
    # Test set reuses the training max_len even if its own sessions differ.
    x_test, _ = vec.transform(test)
    assert x_test.shape[1] == train.max_length()


def test_vectorizer_token_ids():
    rng = np.random.default_rng(4)
    train, _ = make_dataset("openstack", rng, scale=0.02)
    vec = SessionVectorizer.fit(train, Word2VecConfig(dim=8, epochs=1),
                                rng=rng)
    ids, lengths = vec.transform_token_ids(train, indices=np.arange(3))
    assert ids.dtype == np.int64
    assert ids.shape == (3, train.max_length())
    assert (lengths <= train.max_length()).all()


def test_vectorizer_rejects_bad_max_len(model):
    with pytest.raises(ValueError):
        SessionVectorizer(model, max_len=0)


def test_padding_rows_embed_pad_vector():
    rng = np.random.default_rng(5)
    train, _ = make_dataset("cert", rng, scale=0.02)
    vec = SessionVectorizer.fit(train, Word2VecConfig(dim=8, epochs=1),
                                rng=rng)
    x, lengths = vec.transform(train, indices=np.arange(1))
    length = int(lengths[0])
    if length < vec.max_len:
        pad_vec = vec.model.vectors[train.vocab.pad_id]
        np.testing.assert_allclose(x[0, length], pad_vec)
