"""Fused recurrent cell kernels with hand-derived backward closures.

The generic autograd path builds ~15 graph nodes per LSTM timestep (two
matmuls, adds, four gate slices, four activations, five elementwise
state ops); each gate slice's backward used to allocate a full
``(batch, 4*hidden)`` zero buffer and scatter through ``np.add.at``.
These kernels compute the whole gate block and state update in plain
NumPy in one forward pass and register **one backward closure per
output tensor**, writing parameter-gradient slices directly into the
shared ``.grad`` buffers.

Two tiers are provided:

* ``fused_lstm_step`` / ``fused_gru_step`` — drop-in cell steps taking
  the raw input ``x_t`` (used by :class:`~repro.nn.lstm.LSTMCell` and
  :class:`~repro.nn.gru.GRUCell`, and by gradcheck).
* ``fused_lstm_step_preproj`` / ``fused_gru_step_preproj`` — step
  variants consuming a precomputed input projection
  (``x_t @ W_x + b``), letting the layer batch all timesteps' input
  GEMMs into one large matmul outside the recurrence.
* ``fused_lstm_sequence`` / ``fused_gru_sequence`` — whole-layer
  kernels: the entire time loop runs inside one forward and registers a
  **single** backward closure that walks the sequence in reverse,
  scatters gate pre-activation gradients into one ``(batch, time,
  gates)`` buffer, and computes every weight gradient with one batched
  GEMM over all timesteps instead of one small GEMM per step.  These
  are what the ``LSTM``/``GRU`` layers use.

All kernels follow the engine's dtype: float32 inputs stay float32
throughout forward and backward.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "fused_lstm_step",
    "fused_lstm_step_preproj",
    "fused_lstm_sequence",
    "fused_gru_step",
    "fused_gru_step_preproj",
    "fused_gru_sequence",
]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _sigmoid_inplace(x: np.ndarray) -> None:
    """Overwrite ``x`` with ``sigmoid(x)`` without temporaries."""
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += 1.0
    np.reciprocal(x, out=x)


def _add_grad_slice(param: Tensor, cols: slice, grad: np.ndarray) -> None:
    """Accumulate into a column block of a parameter's shared grad buffer."""
    param._init_grad()
    if param.grad.ndim == 1:
        param.grad[cols] += grad
    else:
        param.grad[:, cols] += grad


# ----------------------------------------------------------------------
# LSTM
# ----------------------------------------------------------------------
def fused_lstm_step(x, h_prev, c_prev, w_x, w_h, bias):
    """One LSTM step: returns ``(h, c)`` with a fused forward/backward.

    Gate order in the fused weights is ``[input, forget, cell, output]``,
    matching :class:`~repro.nn.lstm.LSTMCell`.
    """
    x, h_prev, c_prev = as_tensor(x), as_tensor(h_prev), as_tensor(c_prev)

    def project():
        return x.data @ w_x.data + h_prev.data @ w_h.data + bias.data

    return _lstm_tail(project, x, h_prev, c_prev, w_x, w_h, bias)


def fused_lstm_step_preproj(x_proj, h_prev, c_prev, w_h):
    """LSTM step given ``x_proj = x @ W_x + b`` precomputed for the step.

    ``x_proj`` participates in the graph: gate pre-activation gradients
    are scattered back into its shared grad buffer, so the layer-level
    input projection (one big GEMM over all timesteps) receives them.
    """
    x_proj, h_prev, c_prev = as_tensor(x_proj), as_tensor(h_prev), as_tensor(c_prev)

    def project():
        return x_proj.data + h_prev.data @ w_h.data

    return _lstm_tail(project, x_proj, h_prev, c_prev, None, w_h, None)


def _lstm_tail(project, x_in, h_prev, c_prev, w_x, w_h, bias):
    """Shared forward tail + backward closures for the LSTM kernels.

    ``project()`` produces the gate pre-activations from the parents'
    *current* payloads — called once here and again by the recompute
    closures, so a compiled tape replays the step against fresh inputs.
    ``w_x``/``bias`` are None in the pre-projected variant, in which
    case ``x_in`` holds the projected gates and receives the
    pre-activation gradient directly.
    """
    hs = w_h.shape[0]
    gates = project()
    i = _sigmoid(gates[:, 0 * hs:1 * hs])
    f = _sigmoid(gates[:, 1 * hs:2 * hs])
    g = np.tanh(gates[:, 2 * hs:3 * hs])
    o = _sigmoid(gates[:, 3 * hs:4 * hs])
    c_data = f * c_prev.data + i * g
    t = np.tanh(c_data)
    h_data = o * t
    preproj = w_x is None
    # backward_h stashes the output gate's pre-activation grad here so
    # backward_c can route all four gates in one full-width GEMM with
    # the contiguous weight matrices (no column-sliced copies).
    pending_o: list[np.ndarray] = []

    def backward_h():
        dh = h_out.grad
        if c_out.requires_grad:
            c_out._accumulate(dh * o * (1.0 - t * t))
        pending_o.append(dh * t * o * (1.0 - o))

    def backward_c():
        # Runs after backward_h (h_out is a consumer of c_out), so
        # c_out.grad already includes dL/dh routed through tanh(c).
        dc = c_out.grad
        d_pre = np.empty_like(gates)
        d_pre[:, 0 * hs:1 * hs] = dc * g * i * (1.0 - i)
        d_pre[:, 1 * hs:2 * hs] = dc * c_prev.data * f * (1.0 - f)
        d_pre[:, 2 * hs:3 * hs] = dc * i * (1.0 - g * g)
        if pending_o:
            d_pre[:, 3 * hs:4 * hs] = pending_o.pop()
        else:  # h was never consumed downstream
            d_pre[:, 3 * hs:4 * hs] = 0.0
        if preproj:
            if x_in.requires_grad:
                x_in._accumulate(d_pre)
        else:
            if x_in.requires_grad:
                x_in._accumulate(d_pre @ w_x.data.T)
            if w_x.requires_grad:
                w_x._accumulate(x_in.data.T @ d_pre)
            if bias.requires_grad:
                bias._accumulate(d_pre.sum(axis=0))
        if h_prev.requires_grad:
            h_prev._accumulate(d_pre @ w_h.data.T)
        if w_h.requires_grad:
            w_h._accumulate(h_prev.data.T @ d_pre)
        if c_prev.requires_grad:
            c_prev._accumulate(dc * f)

    def recompute_c():
        fresh = project()
        np.copyto(i, _sigmoid(fresh[:, 0 * hs:1 * hs]))
        np.copyto(f, _sigmoid(fresh[:, 1 * hs:2 * hs]))
        np.copyto(g, np.tanh(fresh[:, 2 * hs:3 * hs]))
        np.copyto(o, _sigmoid(fresh[:, 3 * hs:4 * hs]))
        np.multiply(f, c_prev.data, out=c_data)
        np.add(c_data, i * g, out=c_data)

    def recompute_h():
        np.tanh(c_data, out=t)
        np.multiply(o, t, out=h_data)

    if preproj:
        c_parents = (x_in, h_prev, c_prev, w_h)
    else:
        c_parents = (x_in, h_prev, c_prev, w_x, w_h, bias)
    c_out = Tensor._make(c_data, c_parents, backward_c, recompute_c,
                         "fused_lstm_step")
    # h consumes c, so reverse-topological order runs backward_h before
    # backward_c: c_out.grad is complete when backward_c fires, and all
    # other inputs are reachable (and ordered after h) through c_out.
    h_out = Tensor._make(h_data, (c_out,), backward_h, recompute_h,
                         "fused_lstm_step")
    return h_out, c_out


def fused_lstm_sequence(x, h0, c0, w_x, w_h, bias):
    """Run a whole LSTM layer over time as one graph node.

    ``x`` is the layer input ``(batch, time, features)``.  The input
    projection ``x @ W_x + b`` for every timestep is computed as a single
    GEMM inside the kernel (no intermediate graph nodes), then the
    recurrence runs in plain NumPy.  Returns ``(h_seq, h_T, c_T)`` where
    ``h_seq`` is ``(batch, time, hidden)`` and ``h_T``/``c_T`` are the
    final states.  The single backward closure walks the sequence in
    reverse, filling one ``(batch, time, 4*hidden)`` pre-activation
    gradient buffer; every weight gradient is then one batched GEMM over
    all timesteps rather than ``time`` small per-step GEMMs.
    """
    x, h0, c0 = as_tensor(x), as_tensor(h0), as_tensor(c0)
    batch, time, feat = x.data.shape
    hs = w_h.shape[0]
    four_hs = 4 * hs
    dtype = x.data.dtype
    # Time-major (T, B, .) buffers: every per-step slice [t] is
    # contiguous, so GEMMs and in-place ufuncs never touch strided
    # memory inside the recurrence.  All buffers are allocated once and
    # refilled by ``forward_pass`` so a compiled tape can replay the
    # kernel in place (the backward closure reads these same buffers).
    x_tb = np.empty((time, batch, feat), dtype=dtype)
    flat = x_tb.reshape(time * batch, feat)
    proj2d = np.empty((time * batch, four_hs), dtype=dtype)
    proj = proj2d.reshape(time, batch, four_hs)
    act = np.empty((time, batch, four_hs), dtype=dtype)
    # One extra leading slot holds the initial state, so the backward
    # pass reads h_prev/c_prev as plain slices with no concatenation.
    c_all = np.empty((time + 1, batch, hs), dtype=dtype)
    h_all = np.empty((time + 1, batch, hs), dtype=dtype)
    tc_all = np.empty((time, batch, hs), dtype=dtype)
    scratch = np.empty((batch, hs), dtype=dtype)

    def forward_pass():
        np.copyto(x_tb, x.data.transpose(1, 0, 2))
        np.dot(flat, w_x.data, out=proj2d)
        np.add(proj2d, bias.data, out=proj2d)
        c_all[0], h_all[0] = c0.data, h0.data
        h0_zero = not (h0.requires_grad or h0.data.any())
        h, c = h0.data, c0.data
        for t in range(time):
            gates = act[t]
            if t == 0 and h0_zero:  # h0 all-zero: skip the recurrent GEMM
                np.copyto(gates, proj[t])
            else:
                np.dot(h, w_h.data, out=gates)
                gates += proj[t]
            _sigmoid_inplace(gates[:, 0 * hs:2 * hs])   # input + forget
            np.tanh(gates[:, 2 * hs:3 * hs], out=gates[:, 2 * hs:3 * hs])
            _sigmoid_inplace(gates[:, 3 * hs:4 * hs])   # output
            i = gates[:, 0 * hs:1 * hs]
            f = gates[:, 1 * hs:2 * hs]
            g = gates[:, 2 * hs:3 * hs]
            o = gates[:, 3 * hs:4 * hs]
            c_new, tc, h_new = c_all[t + 1], tc_all[t], h_all[t + 1]
            np.multiply(f, c, out=c_new)
            np.multiply(i, g, out=scratch)
            c_new += scratch
            np.tanh(c_new, out=tc)
            np.multiply(o, tc, out=h_new)
            h, c = h_new, c_new

    forward_pass()

    # c_T's backward (which reverse-topological order runs first, since
    # c_T consumes h_seq) stashes its incoming grad here; the sequence
    # backward pops it as the initial dL/dc.
    pending_c: list[np.ndarray] = []

    def backward_seq():
        # Contiguous time-major copy of the incoming grad, plus
        # preallocated scratch: the reverse loop performs no
        # allocations at all — every elementwise op writes into a
        # reused buffer or directly into the d_pre slab.
        d_h_tb = np.ascontiguousarray(h_seq.grad.transpose(1, 0, 2))
        dc = np.zeros((batch, hs), dtype=dtype)
        if pending_c:
            np.copyto(dc, pending_c.pop())
        carry = np.zeros((batch, hs), dtype=dtype)
        dh = np.empty((batch, hs), dtype=dtype)
        s = np.empty((batch, hs), dtype=dtype)
        d_pre = np.empty_like(act)
        w_h_t = np.ascontiguousarray(w_h.data.T)
        for t in range(time - 1, -1, -1):
            np.add(d_h_tb[t], carry, out=dh)
            gates = act[t]
            i = gates[:, 0 * hs:1 * hs]
            f = gates[:, 1 * hs:2 * hs]
            g = gates[:, 2 * hs:3 * hs]
            o = gates[:, 3 * hs:4 * hs]
            tc = tc_all[t]
            np.multiply(tc, tc, out=s)       # dc += dh * o * (1 - tanh(c)^2)
            np.subtract(1.0, s, out=s)
            s *= o
            s *= dh
            dc += s
            c_prev = c_all[t]
            step = d_pre[t]
            np.subtract(1.0, i, out=s)       # d_gate_i = dc * g * i * (1-i)
            s *= i
            s *= g
            np.multiply(s, dc, out=step[:, 0 * hs:1 * hs])
            np.subtract(1.0, f, out=s)       # d_gate_f = dc * c_prev * f * (1-f)
            s *= f
            s *= c_prev
            np.multiply(s, dc, out=step[:, 1 * hs:2 * hs])
            np.multiply(g, g, out=s)         # d_gate_g = dc * i * (1 - g^2)
            np.subtract(1.0, s, out=s)
            s *= i
            np.multiply(s, dc, out=step[:, 2 * hs:3 * hs])
            np.subtract(1.0, o, out=s)       # d_gate_o = dh * tanh(c) * o * (1-o)
            s *= o
            s *= tc
            np.multiply(s, dh, out=step[:, 3 * hs:4 * hs])
            if t > 0 or h0.requires_grad:
                np.dot(step, w_h_t, out=carry)
            dc *= f
        d_pre_flat = d_pre.reshape(time * batch, four_hs)
        if x.requires_grad:
            x._accumulate((d_pre_flat @ w_x.data.T)
                          .reshape(time, batch, feat).transpose(1, 0, 2))
        if w_x.requires_grad:
            w_x._accumulate(flat.T @ d_pre_flat)
        if bias.requires_grad:
            bias._accumulate(d_pre_flat.sum(axis=0))
        if w_h.requires_grad:
            w_h._accumulate(h_all[:-1].reshape(time * batch, hs).T @ d_pre_flat)
        if h0.requires_grad:
            h0._accumulate(carry)
        if c0.requires_grad:
            c0._accumulate(dc)

    h_seq_data = np.ascontiguousarray(h_all[1:].transpose(1, 0, 2))

    def recompute_seq():
        forward_pass()
        np.copyto(h_seq_data, h_all[1:].transpose(1, 0, 2))

    h_seq = Tensor._make(h_seq_data, (x, h0, c0, w_x, w_h, bias),
                         backward_seq, recompute_seq, "fused_lstm_sequence")

    def backward_c_final():
        pending_c.append(c_final.grad)

    c_final_data = c_all[-1].copy()

    def recompute_c_final():
        np.copyto(c_final_data, c_all[-1])

    c_final = Tensor._make(c_final_data, (h_seq,), backward_c_final,
                           recompute_c_final, "fused_lstm_sequence")
    return h_seq, h_seq[:, -1, :], c_final


# ----------------------------------------------------------------------
# GRU
# ----------------------------------------------------------------------
def fused_gru_step(x, h_prev, w_x, w_h, bias, w_xc, w_hc, bias_c):
    """One GRU step: returns the new hidden state with a fused backward.

    Gate order in the fused reset/update weights is ``[reset, update]``,
    matching :class:`~repro.nn.gru.GRUCell`.
    """
    x, h_prev = as_tensor(x), as_tensor(h_prev)

    def project_gates():
        return x.data @ w_x.data + h_prev.data @ w_h.data + bias.data

    def project_cand():
        return x.data @ w_xc.data + bias_c.data

    return _gru_tail(project_gates, project_cand, x, h_prev,
                     w_x, w_h, bias, w_xc, w_hc, bias_c)


def fused_gru_step_preproj(x_proj, cand_proj, h_prev, w_h, w_hc):
    """GRU step given precomputed ``x @ W_x + b`` and ``x @ W_xc + b_c``.

    Pre-activation gradients scatter into the two projection tensors'
    shared grad buffers.
    """
    x_proj, cand_proj, h_prev = (as_tensor(x_proj), as_tensor(cand_proj),
                                 as_tensor(h_prev))

    def project_gates():
        return x_proj.data + h_prev.data @ w_h.data

    return _gru_tail(project_gates, lambda: cand_proj.data, x_proj, h_prev,
                     None, w_h, None, None, w_hc, None, cand_in=cand_proj)


def _gru_tail(project_gates, project_cand, x_in, h_prev, w_x, w_h, bias,
              w_xc, w_hc, bias_c, cand_in=None):
    """Shared GRU tail; the two ``project_*()`` closures rebuild the
    gate and candidate pre-activations from current parent payloads, so
    the recompute closure can replay the step under a compiled tape."""
    hs = w_h.shape[0]
    gates = project_gates()
    r = _sigmoid(gates[:, 0 * hs:1 * hs])
    z = _sigmoid(gates[:, 1 * hs:2 * hs])
    rh = r * h_prev.data
    n = np.tanh(project_cand() + rh @ w_hc.data)
    h_data = z * h_prev.data + (1.0 - z) * n
    preproj = w_x is None

    def backward():
        dh = h_out.grad
        dn = dh * (1.0 - z)
        da = dn * (1.0 - n * n)              # candidate pre-activation
        d_rh = da @ w_hc.data.T
        d_pre = np.empty_like(gates)
        d_pre[:, 0 * hs:1 * hs] = d_rh * h_prev.data * r * (1.0 - r)
        d_pre[:, 1 * hs:2 * hs] = dh * (h_prev.data - n) * z * (1.0 - z)
        if preproj:
            if x_in.requires_grad:
                x_in._accumulate(d_pre)
            if cand_in.requires_grad:
                cand_in._accumulate(da)
        else:
            if x_in.requires_grad:
                x_in._accumulate(d_pre @ w_x.data.T + da @ w_xc.data.T)
            if w_x.requires_grad:
                w_x._accumulate(x_in.data.T @ d_pre)
            if bias.requires_grad:
                bias._accumulate(d_pre.sum(axis=0))
            if w_xc.requires_grad:
                w_xc._accumulate(x_in.data.T @ da)
            if bias_c.requires_grad:
                bias_c._accumulate(da.sum(axis=0))
        if h_prev.requires_grad:
            h_prev._accumulate(dh * z + d_rh * r + d_pre @ w_h.data.T)
        if w_h.requires_grad:
            w_h._accumulate(h_prev.data.T @ d_pre)
        if w_hc.requires_grad:
            w_hc._accumulate(rh.T @ da)

    def recompute():
        fresh = project_gates()
        np.copyto(r, _sigmoid(fresh[:, 0 * hs:1 * hs]))
        np.copyto(z, _sigmoid(fresh[:, 1 * hs:2 * hs]))
        np.multiply(r, h_prev.data, out=rh)
        np.copyto(n, np.tanh(project_cand() + rh @ w_hc.data))
        np.multiply(z, h_prev.data, out=h_data)
        np.add(h_data, (1.0 - z) * n, out=h_data)

    if preproj:
        parents = (x_in, cand_in, h_prev, w_h, w_hc)
    else:
        parents = (x_in, h_prev, w_x, w_h, bias, w_xc, w_hc, bias_c)
    h_out = Tensor._make(h_data, parents, backward, recompute,
                         "fused_gru_step")
    return h_out


def fused_gru_sequence(x, h0, w_x, w_h, bias, w_xc, w_hc, bias_c):
    """Run a whole GRU layer over time as one graph node.

    ``x`` is the layer input ``(batch, time, features)``.  Both input
    projections (``x @ W_x + b`` for the gates and ``x @ W_xc + b_c``
    for the candidate) are computed as single GEMMs inside the kernel.
    Returns ``(h_seq, h_T)``.  Like :func:`fused_lstm_sequence`, the
    single backward closure fills per-sequence gradient buffers and
    computes every weight gradient with batched GEMMs over all
    timesteps.
    """
    x, h0 = as_tensor(x), as_tensor(h0)
    batch, time, feat = x.data.shape
    hs = w_h.shape[0]
    two_hs = 2 * hs
    dtype = x.data.dtype
    # Time-major (T, B, .) layout, as in fused_lstm_sequence: per-step
    # slices are contiguous for the in-loop GEMMs and in-place ufuncs.
    # Buffers are allocated once and refilled by ``forward_pass`` so a
    # compiled tape can replay the kernel in place.
    x_tb = np.empty((time, batch, feat), dtype=dtype)
    flat = x_tb.reshape(time * batch, feat)
    proj_g2d = np.empty((time * batch, two_hs), dtype=dtype)
    proj_g = proj_g2d.reshape(time, batch, two_hs)
    proj_c2d = np.empty((time * batch, hs), dtype=dtype)
    proj_c = proj_c2d.reshape(time, batch, hs)
    gate_all = np.empty((time, batch, two_hs), dtype=dtype)
    n_all = np.empty((time, batch, hs), dtype=dtype)
    # Extra leading slot holds h0 so backward reads h_prev as a slice.
    h_all = np.empty((time + 1, batch, hs), dtype=dtype)
    scratch = np.empty((batch, hs), dtype=dtype)

    def forward_pass():
        np.copyto(x_tb, x.data.transpose(1, 0, 2))
        np.dot(flat, w_x.data, out=proj_g2d)
        np.add(proj_g2d, bias.data, out=proj_g2d)
        np.dot(flat, w_xc.data, out=proj_c2d)
        np.add(proj_c2d, bias_c.data, out=proj_c2d)
        h_all[0] = h0.data
        h = h0.data
        for t in range(time):
            gates = gate_all[t]
            np.dot(h, w_h.data, out=gates)
            gates += proj_g[t]
            _sigmoid_inplace(gates)                  # reset + update
            r = gates[:, 0 * hs:1 * hs]
            z = gates[:, 1 * hs:2 * hs]
            n, h_new = n_all[t], h_all[t + 1]
            np.multiply(r, h, out=scratch)
            np.dot(scratch, w_hc.data, out=n)
            n += proj_c[t]
            np.tanh(n, out=n)
            np.multiply(z, h, out=h_new)
            np.subtract(1.0, z, out=scratch)
            np.multiply(scratch, n, out=scratch)
            h_new += scratch
            h = h_new

    forward_pass()

    def backward_seq():
        # Same zero-allocation reverse loop as fused_lstm_sequence.
        d_h_tb = np.ascontiguousarray(h_seq.grad.transpose(1, 0, 2))
        carry = np.zeros((batch, hs), dtype=dtype)
        dh = np.empty((batch, hs), dtype=dtype)
        s = np.empty((batch, hs), dtype=dtype)
        d_rh = np.empty((batch, hs), dtype=dtype)
        d_pre = np.empty((time, batch, two_hs), dtype=dtype)
        da_all = np.empty((time, batch, hs), dtype=dtype)
        w_h_t = np.ascontiguousarray(w_h.data.T)
        w_hc_t = np.ascontiguousarray(w_hc.data.T)
        for t in range(time - 1, -1, -1):
            np.add(d_h_tb[t], carry, out=dh)
            h_prev = h_all[t]
            gates = gate_all[t]
            r = gates[:, 0 * hs:1 * hs]
            z = gates[:, 1 * hs:2 * hs]
            n = n_all[t]
            da = da_all[t]
            np.multiply(n, n, out=s)         # da = dh * (1-z) * (1 - n^2)
            np.subtract(1.0, s, out=s)
            np.subtract(1.0, z, out=da)
            da *= s
            da *= dh
            np.dot(da, w_hc_t, out=d_rh)
            step = d_pre[t]
            np.subtract(1.0, r, out=s)       # d_gate_r = d_rh*h_prev*r*(1-r)
            s *= r
            s *= h_prev
            np.multiply(s, d_rh, out=step[:, 0 * hs:1 * hs])
            np.subtract(1.0, z, out=s)       # d_gate_z = dh*(h_prev-n)*z*(1-z)
            s *= z
            np.multiply(s, dh, out=s)
            np.subtract(h_prev, n, out=carry)
            np.multiply(s, carry, out=step[:, 1 * hs:2 * hs])
            np.multiply(dh, z, out=carry)    # dh_prev = dh*z + d_rh*r + gates
            d_rh *= r
            carry += d_rh
            np.dot(step, w_h_t, out=s)
            carry += s
        d_pre_flat = d_pre.reshape(time * batch, two_hs)
        da_flat = da_all.reshape(time * batch, hs)
        if x.requires_grad:
            x._accumulate(
                (d_pre_flat @ w_x.data.T + da_flat @ w_xc.data.T)
                .reshape(time, batch, feat).transpose(1, 0, 2))
        if w_x.requires_grad:
            w_x._accumulate(flat.T @ d_pre_flat)
        if bias.requires_grad:
            bias._accumulate(d_pre_flat.sum(axis=0))
        if w_xc.requires_grad:
            w_xc._accumulate(flat.T @ da_flat)
        if bias_c.requires_grad:
            bias_c._accumulate(da_flat.sum(axis=0))
        if w_h.requires_grad or w_hc.requires_grad:
            h_prev_seq = h_all[:-1]
            if w_h.requires_grad:
                w_h._accumulate(
                    h_prev_seq.reshape(time * batch, hs).T @ d_pre_flat)
            if w_hc.requires_grad:
                w_hc._accumulate(
                    (gate_all[:, :, 0 * hs:1 * hs] * h_prev_seq)
                    .reshape(time * batch, hs).T @ da_flat)
        if h0.requires_grad:
            h0._accumulate(carry)

    h_seq_data = np.ascontiguousarray(h_all[1:].transpose(1, 0, 2))

    def recompute_seq():
        forward_pass()
        np.copyto(h_seq_data, h_all[1:].transpose(1, 0, 2))

    h_seq = Tensor._make(
        h_seq_data, (x, h0, w_x, w_h, bias, w_xc, w_hc, bias_c),
        backward_seq, recompute_seq, "fused_gru_sequence")
    return h_seq, h_seq[:, -1, :]
