"""ClusterEngine: bit-identity, shard affinity, reloads, worker death.

One module-scoped two-worker cluster serves the cheap assertions (the
rolling-reload test runs last — it advances the cluster's generation);
the worker-kill test spins up its own cluster because it leaves a
corpse behind.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import load_clfd
from repro.serve import (ClusterEngine, HashRing, InferenceEngine,
                         RequestError, ServeConfig, TenantRateLimiter)

CLUSTER_CONFIG = ServeConfig(workers=2, max_wait_ms=1.0, max_batch=8)


@pytest.fixture(scope="module")
def cluster(served_archive):
    with ClusterEngine(served_archive, CLUSTER_CONFIG) as eng:
        yield eng


@pytest.fixture(scope="module")
def single(served_archive):
    with InferenceEngine.from_archive(
            served_archive, CLUSTER_CONFIG.replace(workers=1)) as eng:
        yield eng


def _payloads(n, prefix="s", tokens=False):
    id_activities = [[1, 2, 3], [2, 1], [3, 3, 1, 2]]
    token_activities = [["login", "email"], ["web", "login", "logon"]]
    pool = token_activities if tokens else id_activities
    return [{"activities": pool[i % len(pool)],
             "session_id": f"{prefix}{i}"} for i in range(n)]


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------
def test_ring_is_deterministic():
    a, b = HashRing([0, 1, 2]), HashRing([2, 1, 0])
    keys = [f"session-{i}" for i in range(200)]
    assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]


def test_ring_spreads_and_rebalances_minimally():
    ring = HashRing([0, 1, 2, 3])
    keys = [f"session-{i}" for i in range(2000)]
    before = {k: ring.lookup(k) for k in keys}
    counts = {node: 0 for node in ring.nodes}
    for owner in before.values():
        counts[owner] += 1
    assert min(counts.values()) > 0  # nobody starves
    ring.remove(2)
    moved = sum(1 for k in keys
                if before[k] != ring.lookup(k) and before[k] != 2)
    assert moved == 0  # only the dead node's keys move
    assert all(ring.lookup(k) != 2 for k in keys)


def test_empty_ring_raises():
    with pytest.raises(KeyError):
        HashRing().lookup("x")


# ----------------------------------------------------------------------
# Module cluster (order matters: the reload test runs last)
# ----------------------------------------------------------------------
def test_cluster_scores_bit_identical_to_single_process(cluster, single):
    payloads = _payloads(24) + _payloads(8, prefix="t", tokens=True)
    expected = single.score_many(payloads)
    got = cluster.score_many(payloads)
    for ref, res in zip(expected, got):
        assert res.score == ref.score  # exact float equality
        assert res.label == ref.label
        assert res.probs == ref.probs
        assert res.oov_count == ref.oov_count
    assert {r.worker for r in got} == {0, 1}
    assert all(r.generation == 0 for r in got)


def test_sessions_shard_by_consistent_hash(cluster):
    payloads = _payloads(32, prefix="affinity-")
    results = cluster.score_many(payloads)
    # Placement matches an independently-built ring (deterministic
    # across processes), and repeat requests stick to their shard.
    ring = HashRing(range(2))
    for payload, result in zip(payloads, results):
        assert result.worker == ring.lookup(payload["session_id"])
    again = cluster.score_many(payloads)
    assert [r.worker for r in again] == [r.worker for r in results]


def test_cluster_metrics_aggregate_workers(cluster):
    scored = len(cluster.score_many(_payloads(12, prefix="m")))
    snap = cluster.metrics_snapshot()
    assert set(snap["workers"]) == {"0", "1"}
    per_worker = [snap["workers"][w]["sessions_total"]
                  for w in snap["workers"]]
    assert all(n > 0 for n in per_worker)
    assert snap["workers_combined"]["sessions_total"] == sum(per_worker)
    assert sum(per_worker) >= scored
    assert snap["cluster"]["workers_alive"] == 2
    assert snap["cluster"]["workers_total"] == 2
    assert snap["cluster"]["workers_lost"] == 0
    assert set(snap["cluster"]["shard_queue_depths"]) == {0, 1}

    text = cluster.metrics_prometheus()
    assert "repro_serve_cluster_workers_alive 2" in text
    assert 'repro_serve_worker_sessions_total{worker="0"}' in text
    assert 'repro_serve_worker_sessions_total{worker="1"}' in text
    assert 'repro_serve_shard_queue_depth{worker="0"}' in text


def test_cluster_rate_limits_per_tenant(cluster):
    class FakeClock:
        now = 0.0

        def __call__(self):
            return self.now

    saved = cluster._limiter
    cluster._limiter = TenantRateLimiter(rate=1.0, burst=4.0,
                                         clock=FakeClock())
    try:
        cluster.score_many(_payloads(4, prefix="rl"), tenant="noisy")
        with pytest.raises(RequestError) as excinfo:
            cluster.score(_payloads(1)[0], tenant="noisy")
        assert excinfo.value.code == "rate_limited"
        assert excinfo.value.status == 429
        # Other tenants are unaffected.
        cluster.score_many(_payloads(4, prefix="rl2"), tenant="quiet")
    finally:
        cluster._limiter = saved


def test_rolling_reload_is_atomic_and_bit_consistent(
        cluster, served_archive_v2):
    """Runs last on the shared cluster: flips it to generation 1."""
    payloads = _payloads(16, prefix="reload-")
    # Requests in flight when the reload lands must resolve against the
    # generation that accepted them.
    in_flight = [cluster.submit(p) for p in payloads]
    gen = cluster.reload(served_archive_v2)
    assert gen == 1
    old = [f.result(timeout=30) for f in in_flight]
    assert all(r.generation == 0 for r in old)
    # Post-flip scores are bit-identical to a fresh single-process
    # engine over the new archive.
    with InferenceEngine(load_clfd(served_archive_v2),
                         ServeConfig(max_wait_ms=1.0)) as fresh:
        expected = fresh.score_many(payloads)
    got = cluster.score_many(payloads)
    assert all(r.generation == 1 for r in got)
    for ref, res in zip(expected, got):
        assert res.score == ref.score
    assert cluster.generation == 1
    assert cluster.metrics_snapshot()["cluster"]["generation"] == 1


# ----------------------------------------------------------------------
# Worker death (own cluster: it leaves a corpse)
# ----------------------------------------------------------------------
def test_worker_death_resharding_and_shutdown(served_archive, single):
    eng = ClusterEngine(served_archive, CLUSTER_CONFIG)
    try:
        payloads = _payloads(24, prefix="kill-")
        expected = {r.session_id: r.score
                    for r in single.score_many(payloads)}
        assert {r.worker for r in eng.score_many(payloads)} == {0, 1}

        victim = eng._clients[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)

        # A bounded number of requests may 503 while the death is
        # detected; everything converges onto the survivor.
        deadline = time.monotonic() + 30
        errors = 0
        results = []
        while len(results) < len(payloads):
            assert time.monotonic() < deadline, "cluster never converged"
            try:
                results = eng.score_many(payloads, timeout=30)
            except RequestError as exc:
                assert exc.status == 503
                assert exc.code in ("worker_lost", "no_workers")
                errors += 1
                assert errors < 200
        assert all(r.worker == 1 for r in results)
        for r in results:
            assert r.score == expected[r.session_id]  # still exact
        assert eng.workers_alive == [1]
        health = eng.health()
        assert health["workers_alive"] == 1
        assert health["workers_total"] == 2
        snap = eng.metrics_snapshot()
        assert snap["cluster"]["workers_lost"] == 1
        assert set(snap["workers"]) == {"1"}
    finally:
        eng.close()
    with pytest.raises(RequestError) as excinfo:
        eng.submit(_payloads(1)[0])
    assert excinfo.value.code == "shutting_down"
    assert excinfo.value.status == 503
