"""The CLFD facade: label corrector + fraud detector end to end.

Usage::

    config = CLFDConfig.fast()
    model = CLFD(config)
    model.fit(noisy_train, rng=np.random.default_rng(0))
    labels, scores = model.predict(test)

Ablations are configured through :class:`CLFDConfig` switches; see its
docstring for the Table IV/V mapping.
"""

from __future__ import annotations

import numpy as np

from ..data.pipeline import SessionVectorizer
from ..data.sessions import SessionDataset
from .config import CLFDConfig
from .fraud_detector import FraudDetector
from .label_corrector import LabelCorrector

__all__ = ["CLFD"]


class CLFD:
    """Contrastive Learning based Fraud Detection (the paper's framework)."""

    def __init__(self, config: CLFDConfig | None = None):
        self.config = config or CLFDConfig()
        self.vectorizer: SessionVectorizer | None = None
        self.label_corrector: LabelCorrector | None = None
        self.fraud_detector: FraudDetector | None = None
        self.corrected_labels: np.ndarray | None = None
        self.confidences: np.ndarray | None = None
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, train: SessionDataset,
            rng: np.random.Generator | None = None) -> "CLFD":
        """Train on a noisy training set (``Session.noisy_label`` is used).

        Pipeline: word2vec activity embeddings → label corrector →
        corrected labels + confidences → fraud detector (Algorithm 1).
        Ablation switches in the config prune stages accordingly.
        """
        rng = rng or np.random.default_rng(0)
        config = self.config
        self.vectorizer = SessionVectorizer.fit(
            train, config=config.word2vec, rng=rng
        )

        if config.use_label_corrector:
            self.label_corrector = LabelCorrector(config, self.vectorizer, rng)
            self.label_corrector.fit(train)
            labels, confidences = self.label_corrector.correct(train)
        else:
            # "w/o LC": train the detector directly on the noisy labels
            # with unit confidences (vanilla supervised contrastive loss).
            labels = train.noisy_labels()
            confidences = np.ones(len(train))

        self.corrected_labels = labels
        self.confidences = confidences

        if config.use_fraud_detector:
            self.fraud_detector = FraudDetector(config, self.vectorizer, rng)
            self.fraud_detector.fit(train, labels, confidences)
        elif not config.use_label_corrector:
            raise ValueError(
                "at least one of use_label_corrector/use_fraud_detector "
                "must be enabled"
            )
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict(self, dataset: SessionDataset, *,
                return_embeddings: bool = False):
        """Classify sessions: returns ``(labels, malicious scores)``.

        With ``return_embeddings=True`` the encoded representations used
        for classification ride along as a third element, ``(labels,
        scores, embeddings)`` — the supported way for serving and
        representation analyses to obtain the encoder output without
        reaching into ``fraud_detector.encoder`` internals.  The
        embeddings come from whichever component performs inference
        (fraud detector, or label corrector under the "w/o FD"
        ablation), at zero extra forward cost.
        """
        if not self._fitted:
            raise RuntimeError("CLFD.fit must be called first")
        component = (self.fraud_detector if self.config.use_fraud_detector
                     else self.label_corrector)
        return component.predict(dataset,
                                 return_embeddings=return_embeddings)

    def predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        """Class probabilities ``[p(normal), p(malicious)]`` per session."""
        if not self._fitted:
            raise RuntimeError("CLFD.fit must be called first")
        if self.config.use_fraud_detector:
            return self.fraud_detector.predict_proba(dataset)
        return self.label_corrector.predict_proba(dataset)

    def correction_quality(self, train: SessionDataset) -> dict[str, float]:
        """Table III metrics: TPR/TNR of corrected labels vs ground truth."""
        from ..metrics import true_rates

        if self.corrected_labels is None:
            raise RuntimeError("CLFD.fit must be called first")
        tpr, tnr = true_rates(train.labels(), self.corrected_labels)
        return {"tpr": tpr, "tnr": tnr}
