"""Evaluation metrics (F1, FPR, TPR/TNR, AUC-ROC) and run aggregation."""

from .thresholds import best_f1_threshold, operating_points, threshold_at_fpr
from .classification import (
    ConfusionMatrix,
    UndefinedMetricWarning,
    MetricSummary,
    auc_roc,
    confusion_matrix,
    evaluate_detector,
    false_positive_rate,
    precision_recall_f1,
    roc_curve,
    summarize_runs,
    true_rates,
)

__all__ = [
    "ConfusionMatrix", "confusion_matrix",
    "precision_recall_f1", "false_positive_rate", "true_rates",
    "roc_curve", "auc_roc", "evaluate_detector",
    "MetricSummary", "summarize_runs", "UndefinedMetricWarning",
    "best_f1_threshold", "threshold_at_fpr", "operating_points",
]
