"""Numerical gradient checking for autograd correctness.

Used both by the test suite and as a debugging aid: compares analytic
gradients produced by :meth:`Tensor.backward` against central finite
differences.

Step sizes and tolerances default per dtype: float64 can afford a tiny
step and tight tolerances, while float32 forward noise (~1e-7 relative)
forces a larger step and looser bounds — reusing the float64 settings
for float32 produces spurious failures, and reusing float32 settings
for float64 hides real bugs.  Explicit arguments always override the
defaults.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients", "GradcheckFailure"]

# Per-dtype central-difference step and comparison tolerances.  The
# float64 step 1e-6 balances truncation (O(eps^2)) against round-off
# (O(ulp/eps)); float32 needs a much larger step for the same reason.
_DTYPE_DEFAULTS: dict[np.dtype, dict[str, float]] = {
    np.dtype(np.float64): {"eps": 1e-6, "atol": 1e-6, "rtol": 1e-4},
    np.dtype(np.float32): {"eps": 1e-2, "atol": 1e-2, "rtol": 1e-2},
}


@dataclasses.dataclass(frozen=True)
class GradcheckFailure:
    """One mismatching gradient entry (``raise_on_first=False`` mode)."""

    tensor_index: int
    flat_index: int
    analytic: float
    numeric: float

    @property
    def abs_diff(self) -> float:
        return abs(self.analytic - self.numeric)

    def __str__(self) -> str:
        return (f"tensor #{self.tensor_index}[{self.flat_index}]: "
                f"analytic={self.analytic:.6e} numeric={self.numeric:.6e} "
                f"|diff|={self.abs_diff:.3e}")


def _defaults_for(tensors: Sequence[Tensor]) -> dict[str, float]:
    """Per-dtype defaults, keyed by the *loosest* dtype among inputs."""
    dtypes = {t.data.dtype for t in tensors}
    if np.dtype(np.float32) in dtypes:
        return _DTYPE_DEFAULTS[np.dtype(np.float32)]
    return _DTYPE_DEFAULTS[np.dtype(np.float64)]


def numeric_gradient(fn: Callable[[], Tensor], tensor: Tensor,
                     eps: float | None = None) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    if eps is None:
        eps = _defaults_for((tensor,))["eps"]
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn().data)
        flat[i] = original - eps
        minus = float(fn().data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: Sequence[Tensor],
                    eps: float | None = None, atol: float | None = None,
                    rtol: float | None = None, *,
                    raise_on_first: bool = True
                    ) -> list[GradcheckFailure]:
    """Compare analytic gradients of scalar ``fn()`` to finite differences.

    With ``raise_on_first=True`` (the default, and the historical
    behaviour) an ``AssertionError`` naming the offending tensor index
    and the max absolute deviation is raised on the first mismatching
    tensor.  With ``raise_on_first=False`` every failing entry across
    all tensors is collected and returned as a list of
    :class:`GradcheckFailure` records (empty = pass) — the op fuzzer
    uses this to report complete failure patterns instead of one entry.
    """
    defaults = _defaults_for(tensors)
    if eps is None:
        eps = defaults["eps"]
    if atol is None:
        atol = defaults["atol"]
    if rtol is None:
        rtol = defaults["rtol"]

    for t in tensors:
        t.zero_grad()
    out = fn()
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    failures: list[GradcheckFailure] = []
    for idx, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None \
            else np.zeros_like(tensor.data)
        numeric = numeric_gradient(fn, tensor, eps=eps)
        mismatch = ~np.isclose(analytic, numeric, atol=atol, rtol=rtol)
        if not mismatch.any():
            continue
        if raise_on_first:
            deviation = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for tensor #{idx}: max|diff|={deviation:.3e}"
            )
        analytic_flat = np.asarray(analytic, dtype=np.float64).reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for flat_index in np.flatnonzero(mismatch.reshape(-1)):
            failures.append(GradcheckFailure(
                tensor_index=idx, flat_index=int(flat_index),
                analytic=float(analytic_flat[flat_index]),
                numeric=float(numeric_flat[flat_index])))
    return failures
