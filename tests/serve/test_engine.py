"""InferenceEngine: parity with model.predict, OOV handling, degradation."""

import numpy as np
import pytest

from repro.serve import (InferenceEngine, RequestError, ServeConfig,
                         ServingMetrics)


@pytest.fixture(scope="module")
def engine(served_model):
    eng = InferenceEngine(served_model,
                          ServeConfig(max_batch=8, max_wait_ms=1.0))
    yield eng
    eng.close()


def _payload(test, row, vocab=None):
    session = test.sessions[row]
    activities = (vocab.decode(session.activities) if vocab is not None
                  else [int(a) for a in session.activities])
    return {"activities": activities, "session_id": f"row-{row}"}


def test_scores_match_model_predict(engine, served_model, serve_split):
    _, test = serve_split
    results = engine.score_many(
        [_payload(test, row) for row in range(12)])
    labels, scores = served_model.predict(test[list(range(12))])
    np.testing.assert_array_equal([r.label for r in results], labels)
    np.testing.assert_allclose([r.score for r in results], scores)
    for r in results:
        assert r.probs[0] + r.probs[1] == pytest.approx(1.0)
        assert r.oov_count == 0


def test_token_and_id_requests_agree(engine, serve_split):
    _, test = serve_split
    by_tokens = engine.score(_payload(test, 0, vocab=test.vocab))
    by_ids = engine.score(_payload(test, 0))
    assert by_tokens.score == pytest.approx(by_ids.score, abs=1e-12)


def test_unseen_tokens_degrade_to_oov(engine, serve_split):
    _, test = serve_split
    payload = _payload(test, 0, vocab=test.vocab)
    payload["activities"] = ["<never-seen>"] + payload["activities"]
    result = engine.score(payload)
    assert result.oov_count == 1
    assert np.isfinite(result.score)


def test_out_of_range_ids_degrade_to_oov(engine):
    result = engine.score({"activities": [10_000_000, 1, -4]})
    assert result.oov_count == 2


def test_malformed_request_is_structured_error(engine):
    with pytest.raises(RequestError) as excinfo:
        engine.score({"activities": []})
    assert excinfo.value.code == "empty_session"


def test_malformed_request_does_not_poison_batch(engine, serve_split):
    """A bad payload fails at submit; queued good payloads still score."""
    _, test = serve_split
    good = engine.submit(_payload(test, 1))
    with pytest.raises(RequestError):
        engine.submit({"activities": []})
    assert good.result(timeout=10).session_id == "row-1"


def test_session_longer_than_max_len_is_truncated(engine, served_model):
    max_len = served_model.vectorizer.max_len
    long = {"activities": [1] * (max_len + 50)}
    short = {"activities": [1] * max_len}
    assert engine.score(long).score == pytest.approx(
        engine.score(short).score, abs=1e-12)


def test_queue_full_maps_to_429(served_model):
    eng = InferenceEngine(
        served_model, ServeConfig(max_batch=1, max_wait_ms=0,
                                  max_queue=1, warmup=False))
    # Flood a single-slot queue until backpressure kicks in.
    futures, codes = [], []
    try:
        for _ in range(200):
            futures.append(eng.submit({"activities": [1]}))
    except RequestError as exc:
        codes.append((exc.code, exc.status))
    for f in futures:
        f.result(timeout=30)
    eng.close()
    assert codes and codes[0] == ("queue_full", 429)


def test_include_embeddings(served_model):
    with InferenceEngine(
            served_model, ServeConfig(include_embeddings=True,
                                      max_wait_ms=0)) as eng:
        result = eng.score({"activities": [1, 2]})
    assert result.embedding is not None
    assert len(result.embedding) > 0
    assert np.all(np.isfinite(result.embedding))
    assert "embedding" in result.to_dict()


def test_batching_is_observable_in_metrics(served_model, serve_split):
    _, test = serve_split
    metrics = ServingMetrics()
    with InferenceEngine(served_model,
                         ServeConfig(max_batch=16, max_wait_ms=20),
                         metrics=metrics) as eng:
        eng.score_many([_payload(test, row) for row in range(16)])
    sizes = metrics.snapshot()["batch_size_histogram"]
    # score_many enqueues everything before waiting, so at least one
    # multi-session batch must have formed.
    assert any(int(size) > 1 for size in sizes)
    assert eng.profiler.regions.get("batch_forward", 0.0) > 0.0


def test_token_requests_require_vocab(served_model):
    vectorizer = served_model.vectorizer
    saved_vocab = vectorizer.vocab
    vectorizer.vocab = None  # simulate a format-v1 archive
    try:
        with InferenceEngine(
                served_model,
                ServeConfig(max_wait_ms=0, warmup=False)) as eng:
            assert eng.score({"activities": [1]}).label in (0, 1)
            with pytest.raises(RequestError) as excinfo:
                eng.score({"activities": ["login"]})
            assert excinfo.value.code == "tokens_unsupported"
    finally:
        vectorizer.vocab = saved_vocab


def test_engine_requires_fitted_model():
    from repro import CLFD

    with pytest.raises(ValueError):
        InferenceEngine(CLFD())


def test_non_finite_score_carries_structured_warning(served_model,
                                                     serve_split,
                                                     monkeypatch):
    """A numerically-broken model must not masquerade as a confident
    verdict: the result carries a warnings entry and /score-style
    serialization turns the NaN into null."""
    _, test = serve_split
    eng = InferenceEngine(served_model,
                          ServeConfig(max_batch=4, max_wait_ms=1.0))
    try:
        def broken_predict(dataset, return_embeddings=False):
            n = len(dataset)
            scores = np.full(n, np.nan)
            return np.zeros(n, dtype=int), scores

        monkeypatch.setattr(eng.model, "predict", broken_predict)
        result = eng.score(_payload(test, 0))
        assert result.warnings and "not finite" in result.warnings[0]
        body = result.to_dict()
        assert body["score"] is None
        assert body["warnings"]
    finally:
        eng.close()


def test_finite_score_has_no_warnings(engine, serve_split):
    _, test = serve_split
    result = engine.score(_payload(test, 1))
    assert result.warnings == ()
    assert "warnings" not in result.to_dict()


def test_results_are_generation_tagged(engine):
    result = engine.score({"activities": [1, 2]})
    assert result.generation == 0
    assert result.worker is None  # in-process, no cluster shard


def test_rolling_reload_flips_generation(served_model, served_archive_v2):
    from repro.core import load_clfd

    eng = InferenceEngine(served_model, ServeConfig(max_wait_ms=1.0))
    try:
        payload = {"activities": [1, 2, 3], "session_id": "r1"}
        before = eng.score(payload)
        assert before.generation == 0
        gen = eng.reload(served_archive_v2)
        assert gen == 1 and eng.generation == 1
        after = eng.score(payload)
        assert after.generation == 1
        # The reloaded engine scores exactly like a fresh engine over
        # the new archive.
        with InferenceEngine(load_clfd(served_archive_v2),
                             ServeConfig(max_wait_ms=1.0)) as fresh:
            assert after.score == fresh.score(payload).score
    finally:
        eng.close()


def test_reload_drains_in_flight_requests(served_model, served_archive):
    """Requests queued before the flip resolve against the generation
    that accepted them — a reload drops nothing."""
    eng = InferenceEngine(served_model,
                          ServeConfig(max_batch=4, max_wait_ms=40.0))
    try:
        futures = [eng.submit({"activities": [1, 2], "session_id": f"g{i}"})
                   for i in range(8)]
        eng.reload(served_archive)  # same archive, next generation
        results = [f.result(timeout=30) for f in futures]
        assert all(r.generation == 0 for r in results)
        assert eng.score({"activities": [1, 2]}).generation == 1
    finally:
        eng.close()


def test_submit_after_close_is_structured_503(served_model):
    eng = InferenceEngine(served_model,
                          ServeConfig(max_wait_ms=0, warmup=False))
    eng.close()
    with pytest.raises(RequestError) as excinfo:
        eng.submit({"activities": [1]})
    assert excinfo.value.code == "shutting_down"
    assert excinfo.value.status == 503


def test_legacy_kwargs_warn_once_with_identical_behavior(served_model):
    """The deprecation shim: one warning naming every legacy kwarg, and
    a config equal to the explicitly-constructed one."""
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        eng = InferenceEngine(served_model, max_batch=8, max_wait_ms=1.0,
                              warmup=False)
    try:
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "max_batch" in message and "max_wait_ms" in message \
            and "warmup" in message
        assert eng.config == ServeConfig(max_batch=8, max_wait_ms=1.0,
                                         warmup=False)
    finally:
        eng.close()


def test_config_and_legacy_kwargs_together_is_type_error(served_model):
    with pytest.raises(TypeError):
        InferenceEngine(served_model, ServeConfig(), max_batch=8)


def test_unknown_legacy_kwarg_is_type_error(served_model):
    with pytest.raises(TypeError):
        InferenceEngine(served_model, max_btach=8)
