"""Diagnostics: representation geometry and confidence calibration."""

from .calibration import (
    confidence_threshold_sweep,
    expected_calibration_error,
    reliability_curve,
)
from .plots import ascii_bars, ascii_curve, ascii_roc
from .representation import (
    RepresentationReport,
    centroid_separability,
    cosine_separation_gap,
    knn_label_purity,
    pca_project,
    representation_report,
    silhouette_score,
)

__all__ = [
    "RepresentationReport", "representation_report",
    "cosine_separation_gap", "silhouette_score", "knn_label_purity",
    "centroid_separability", "pca_project",
    "reliability_curve", "expected_calibration_error",
    "confidence_threshold_sweep",
    "ascii_curve", "ascii_bars", "ascii_roc",
]
