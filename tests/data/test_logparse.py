"""Tests for raw-log template mining and session assembly."""

import io

import numpy as np
import pytest

from repro.data import (
    LogRecord,
    LogTemplateMiner,
    parse_log_records,
    read_csv_events,
    sessions_from_records,
)


OPENSTACK_LINES = [
    "nova instance 3d5c-aa41 spawned on host 10.0.0.3",
    "nova instance 77fe-bb12 spawned on host 10.0.0.9",
    "nova instance 3d5c-aa41 terminated after 3600 seconds",
    "nova instance 77fe-bb12 terminated after 7201 seconds",
    "scheduler picked host 10.0.0.3 weight 12",
]


def test_miner_groups_variable_fields():
    miner = LogTemplateMiner()
    ids = [miner.fit_message(m) for m in OPENSTACK_LINES]
    # Lines 0/1 and 2/3 differ only by ids/hosts -> same templates.
    assert ids[0] == ids[1]
    assert ids[2] == ids[3]
    assert ids[0] != ids[2] != ids[4]
    assert len(miner.templates) == 3


def test_miner_abstracts_numbers_ids_ips_paths():
    miner = LogTemplateMiner()
    miner.fit_message("user copied /home/alice/report.pdf to 10.1.1.5:8080")
    template = miner.templates[0]
    assert "<*>" in template
    assert "10.1.1.5:8080" not in template
    assert "/home/alice/report.pdf" not in template
    assert "copied" in template


def test_miner_match_without_fit():
    miner = LogTemplateMiner()
    known = miner.fit_message("job 123 finished with status 0")
    assert miner.match_message("job 999 finished with status 1") == known
    assert miner.match_message("completely different text here now") is None
    assert len(miner.templates) == 1  # match never creates templates


def test_miner_merge_generalises_templates():
    miner = LogTemplateMiner(similarity=0.5)
    a = miner.fit_message("disk sda1 usage high")
    b = miner.fit_message("disk sdb2 usage high")
    assert a == b
    assert miner.templates[a].count("<*>") >= 1


def test_miner_validation():
    with pytest.raises(ValueError):
        LogTemplateMiner(depth=0)
    with pytest.raises(ValueError):
        LogTemplateMiner(similarity=0.0)


def test_miner_empty_message():
    miner = LogTemplateMiner()
    tid = miner.fit_message("")
    assert miner.templates[tid] == "<*>"


def test_parse_log_records_groups_by_entity():
    records = [
        LogRecord("vm1", "instance 1 spawned"),
        LogRecord("vm2", "instance 2 spawned"),
        LogRecord("vm1", "instance 1 terminated"),
    ]
    sequences, miner = parse_log_records(records)
    assert set(sequences) == {"vm1", "vm2"}
    assert len(sequences["vm1"]) == 2
    assert sequences["vm1"][0] == sequences["vm2"][0]  # same template


def test_sessions_from_records_end_to_end():
    records = []
    for vm in ("vm1", "vm2"):
        records += [
            LogRecord(vm, f"instance {vm} created flavor 2", label=0),
            LogRecord(vm, f"instance {vm} active after 12 seconds", label=0),
        ]
    records += [
        LogRecord("bad", "instance bad created flavor 9", label=1),
        LogRecord("bad", "instance bad crashed with error 500", label=1),
    ]
    dataset = sessions_from_records(records)
    assert len(dataset) == 3
    assert dataset.class_counts() == (2, 1)
    by_id = {s.session_id: s for s in dataset}
    assert len(by_id["vm1"].activities) == 2
    # Sessions decode back to mined templates.
    tokens = dataset.vocab.decode(by_id["bad"].activities)
    assert any("crashed" in t for t in tokens)


def test_sessions_from_records_validation():
    with pytest.raises(ValueError):
        sessions_from_records([])
    conflicting = [LogRecord("e", "msg one", label=0),
                   LogRecord("e", "msg two", label=1)]
    with pytest.raises(ValueError):
        sessions_from_records(conflicting)


def test_parsed_sessions_feed_the_pipeline():
    """Parsed datasets work with the vectorizer + CLFD components."""
    rng = np.random.default_rng(0)
    records = []
    for i in range(30):
        entity = f"u{i}"
        label = int(i < 5)
        verbs = ["opened", "edited", "closed"] if label == 0 \
            else ["deleted", "exfiltrated", "wiped"]
        for step, verb in enumerate(verbs * 2):
            records.append(LogRecord(
                entity, f"user {entity} {verb} file {step}", label=label))
    dataset = sessions_from_records(records)

    from repro.data import SessionVectorizer, Word2VecConfig

    vec = SessionVectorizer.fit(dataset, Word2VecConfig(dim=8, epochs=1),
                                rng=rng)
    x, lengths = vec.transform(dataset, indices=np.arange(4))
    assert x.shape == (4, dataset.max_length(), 8)


def test_read_csv_events():
    csv_text = io.StringIO(
        "user,activity,pc,insider\n"
        "alice,logon,pc-01,0\n"
        "alice,email send,pc-01,0\n"
        "mallory,usb insert,pc-99,1\n"
    )
    records = read_csv_events(csv_text, entity_column="user",
                              message_columns=["activity", "pc"],
                              label_column="insider")
    assert len(records) == 3
    assert records[0].entity == "alice"
    assert records[0].message == "logon pc-01"
    assert records[2].label == 1


def test_read_csv_events_from_path(tmp_path):
    path = tmp_path / "events.csv"
    path.write_text("id,msg\ns1,hello world\n")
    records = read_csv_events(path, entity_column="id",
                              message_columns=["msg"])
    assert records[0].message == "hello world"
    assert records[0].label == 0


def test_frozen_miner_encodes_against_training_templates():
    miner = LogTemplateMiner()
    train = sessions_from_records(
        [LogRecord("a", "job 1 started", label=0),
         LogRecord("a", "job 1 finished", label=0)],
        miner=miner,
    )
    test = sessions_from_records(
        [LogRecord("x", "job 9 started", label=0),
         LogRecord("x", "totally novel message never seen", label=0),
         LogRecord("y", "job 7 finished", label=1)],
        miner=miner, grow=False,
    )
    # Novel message dropped; matched ids align with the training vocab.
    by_id = {s.session_id: s for s in test}
    assert len(by_id["x"].activities) == 1
    assert by_id["x"].activities[0] == train[0].activities[0]
    assert len(miner.templates) == 2  # frozen: nothing new was mined


def test_frozen_miner_all_unmatched_raises():
    miner = LogTemplateMiner()
    miner.fit_message("known message template")
    with pytest.raises(ValueError):
        sessions_from_records(
            [LogRecord("e", "completely different unseen line", label=0)],
            miner=miner, grow=False,
        )


def test_frozen_miner_counts_novel_messages():
    miner = LogTemplateMiner()
    miner.fit_message("job 1 started")
    miner.fit_message("job 1 finished")
    assert miner.novel_count == 0

    sequences, _ = parse_log_records(
        [LogRecord("e", "job 9 started", label=0),
         LogRecord("e", "never seen before at all", label=0),
         LogRecord("e", "second unseen kind of line", label=0)],
        miner=miner, grow=False,
    )
    assert sequences["e"] == [0]   # only the matched message survives
    assert miner.novel_count == 2  # ...but every miss is tallied
    assert miner.reset_novel_count() == 2
    assert miner.novel_count == 0


def test_growing_miner_never_counts_novel():
    miner = LogTemplateMiner()
    parse_log_records(
        [LogRecord("e", "alpha beta", label=0),
         LogRecord("e", "gamma delta epsilon", label=0)],
        miner=miner,
    )
    assert miner.novel_count == 0
