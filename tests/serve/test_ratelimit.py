"""Token buckets and per-tenant isolation, on an injectable clock."""

import pytest

from repro.serve import RequestError, ServeConfig, TenantRateLimiter
from repro.serve.ratelimit import DEFAULT_TENANT, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_bucket_starts_full_and_refills_continuously():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    assert bucket.tokens == 4.0
    assert all(bucket.try_acquire() for _ in range(4))
    assert not bucket.try_acquire()
    clock.advance(0.5)  # 2/s * 0.5s = 1 token
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_bucket_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
    clock.advance(60.0)
    assert bucket.tokens == 3.0


def test_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.0)


def test_batch_spends_one_token_per_session():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate=1.0, burst=10.0, clock=clock)
    limiter.check("t", sessions=8)
    with pytest.raises(RequestError) as excinfo:
        limiter.check("t", sessions=3)  # only 2 left
    assert excinfo.value.code == "rate_limited"
    assert excinfo.value.status == 429
    limiter.check("t", sessions=2)


def test_tenants_are_isolated():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate=1.0, burst=2.0, clock=clock)
    limiter.check("noisy", sessions=2)
    with pytest.raises(RequestError):
        limiter.check("noisy")
    # Another tenant's bucket is untouched.
    limiter.check("quiet", sessions=2)
    snap = limiter.snapshot()
    assert snap["noisy"] == {"allowed_total": 2, "limited_total": 1}
    assert snap["quiet"] == {"allowed_total": 2, "limited_total": 0}


def test_none_tenant_maps_to_default():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate=1.0, burst=1.0, clock=clock)
    limiter.check(None)
    assert limiter.snapshot()[DEFAULT_TENANT]["allowed_total"] == 1


def test_error_details_name_the_tenant_and_limit():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate=2.0, burst=1.0, clock=clock)
    limiter.check("t")
    with pytest.raises(RequestError) as excinfo:
        limiter.check("t")
    details = excinfo.value.details
    assert details["tenant"] == "t"
    assert details["rate_limit_rps"] == 2.0
    assert details["rate_limit_burst"] == 1.0


def test_from_config():
    assert TenantRateLimiter.from_config(ServeConfig()) is None
    limiter = TenantRateLimiter.from_config(
        ServeConfig(rate_limit_rps=3.0, rate_limit_burst=9.0))
    assert limiter is not None
    assert limiter.rate == 3.0 and limiter.burst == 9.0
