"""Co-teaching label correction (the paper's third future-work item).

§V: *"We will also explore benefits of integrating supervised
contrastive learning model with co-teaching based noisy label learning
approaches."*

:class:`CoTeachingCorrector` trains two independently-seeded label
correctors and fuses their outputs:

* **agreement** sessions (both correctors assign the same label) get
  that label with the *product-rule* confidence;
* **disagreement** sessions keep the label of the more confident
  corrector, with its confidence discounted by the disagreement.

The fused corrector plugs into :class:`~repro.core.CLFD` via
:meth:`clfd_with_co_teaching`, keeping the rest of Algorithm 1 intact —
exactly the integration the future-work sentence sketches.
"""

from __future__ import annotations

import numpy as np

from ..data.pipeline import SessionVectorizer
from ..data.sessions import SessionDataset
from ..train import TrainRun, generator_state, set_generator_state
from .clfd import _restore_vectorizer, _vectorizer_phase_state
from .config import CLFDConfig
from .fraud_detector import FraudDetector
from .label_corrector import LabelCorrector

__all__ = ["CoTeachingCorrector", "CoTeachingCLFD"]


class CoTeachingCorrector:
    """Two label correctors cross-checking each other's corrections."""

    def __init__(self, config: CLFDConfig, vectorizer: SessionVectorizer,
                 rng: np.random.Generator):
        seeds = rng.integers(0, 2 ** 31, size=2)
        self.correctors = [
            LabelCorrector(config, vectorizer, np.random.default_rng(seed))
            for seed in seeds
        ]
        self._fitted = False

    def fit(self, train: SessionDataset,
            rng: np.random.Generator | None = None,
            run: TrainRun | None = None) -> "CoTeachingCorrector":
        """Train both correctors.

        ``rng`` exists for :class:`~repro.baselines.Estimator`
        conformance; the two correctors draw their seeds at construction
        time, so it is unused here.  ``run`` scopes each corrector's
        checkpoints under ``"<i>/"``.
        """
        del rng
        run = run or TrainRun()
        for i, corrector in enumerate(self.correctors):
            corrector.fit(train, run=run.scoped(f"{i}/"))
        self._fitted = True
        return self

    def correct(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        """Fused (labels, confidences) from both correctors."""
        if not self._fitted:
            raise RuntimeError("CoTeachingCorrector.fit must be called first")
        (labels_a, conf_a), (labels_b, conf_b) = (
            corrector.correct(dataset) for corrector in self.correctors
        )
        agree = labels_a == labels_b
        labels = np.where(agree, labels_a,
                          np.where(conf_a >= conf_b, labels_a, labels_b))
        # Agreement: both correctors vouch — combine by the product rule
        # renormalised over the two classes.
        p_both = conf_a * conf_b
        p_neither = (1 - conf_a) * (1 - conf_b)
        agree_conf = p_both / np.maximum(p_both + p_neither, 1e-12)
        # Disagreement: trust the stronger view, discounted toward 0.5.
        disagree_conf = 0.5 + np.abs(conf_a - conf_b) / 2.0
        confidences = np.where(agree, agree_conf, disagree_conf)
        return labels.astype(np.int64), confidences

    def predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        """Product-rule fusion of the two correctors' distributions."""
        if not self._fitted:
            raise RuntimeError("CoTeachingCorrector.fit must be called first")
        probs_a, probs_b = (corrector.predict_proba(dataset)
                            for corrector in self.correctors)
        fused = probs_a * probs_b
        return fused / np.maximum(fused.sum(axis=1, keepdims=True), 1e-12)

    def predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        """Test-time inference from the fused distribution."""
        probs = self.predict_proba(dataset)
        return probs.argmax(axis=1), probs[:, 1]

    def agreement_rate(self, dataset: SessionDataset) -> float:
        """Fraction of sessions the two correctors agree on."""
        (labels_a, _), (labels_b, _) = (
            corrector.correct(dataset) for corrector in self.correctors
        )
        return float((labels_a == labels_b).mean())


class CoTeachingCLFD:
    """CLFD with the co-teaching corrector in place of the single one.

    API-compatible with :class:`~repro.core.CLFD` for fit/predict/
    correction_quality, so the experiment harness and benches can use it
    as a drop-in ablation of the future-work idea.
    """

    supports_train_run = True

    def __init__(self, config: CLFDConfig | None = None):
        self.config = config or CLFDConfig()
        self.vectorizer: SessionVectorizer | None = None
        self.corrector: CoTeachingCorrector | None = None
        self.fraud_detector: FraudDetector | None = None
        self.corrected_labels: np.ndarray | None = None
        self.confidences: np.ndarray | None = None
        self._fitted = False

    def fit(self, train: SessionDataset,
            rng: np.random.Generator | None = None,
            run: TrainRun | None = None) -> "CoTeachingCLFD":
        rng = rng or np.random.default_rng(0)
        run = run or TrainRun()
        if self.config.detect_anomaly:
            run.detect_anomaly = True
        if self.config.compile:
            run.compile = True

        state = run.load_phase("vectorizer")
        if state is not None:
            self.vectorizer = _restore_vectorizer(state, rng)
        else:
            self.vectorizer = SessionVectorizer.fit(
                train, config=self.config.word2vec, rng=rng
            )
            run.save_phase("vectorizer",
                           _vectorizer_phase_state(self.vectorizer, rng))

        self.corrector = CoTeachingCorrector(self.config, self.vectorizer, rng)
        state = run.load_phase("coteach")
        if state is not None:
            for corrector, saved in zip(self.corrector.correctors,
                                        state["correctors"]):
                corrector.encoder.load_state_dict(saved["encoder"])
                corrector.classifier.load_state_dict(saved["classifier"])
                corrector._fitted = True
            self.corrector._fitted = True
            labels = state["labels"]
            confidences = state["confidences"]
            set_generator_state(rng, state["rng"])
        else:
            self.corrector.fit(train, run=run.scoped("coteach/"))
            labels, confidences = self.corrector.correct(train)
            run.save_phase("coteach", {
                "correctors": [
                    {"encoder": corrector.encoder.state_dict(),
                     "classifier": corrector.classifier.state_dict()}
                    for corrector in self.corrector.correctors
                ],
                "labels": labels,
                "confidences": confidences,
                "rng": generator_state(rng),
            })
        self.corrected_labels = labels
        self.confidences = confidences

        self.fraud_detector = FraudDetector(self.config, self.vectorizer, rng)
        state = run.load_phase("detector")
        if state is not None:
            detector = self.fraud_detector
            detector.encoder.load_state_dict(state["encoder"])
            detector.classifier.load_state_dict(state["classifier"])
            detector.centroids = state["centroids"]
            detector._fitted = True
            set_generator_state(rng, state["rng"])
        else:
            self.fraud_detector.fit(train, labels, confidences,
                                    run=run.scoped("detector/"))
            run.save_phase("detector", {
                "encoder": self.fraud_detector.encoder.state_dict(),
                "classifier": self.fraud_detector.classifier.state_dict(),
                "centroids": self.fraud_detector.centroids,
                "rng": generator_state(rng),
            })
        self._fitted = True
        return self

    def predict(self, dataset: SessionDataset, *,
                return_embeddings: bool = False):
        if not self._fitted:
            raise RuntimeError("CoTeachingCLFD.fit must be called first")
        return self.fraud_detector.predict(
            dataset, return_embeddings=return_embeddings)

    def predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("CoTeachingCLFD.fit must be called first")
        return self.fraud_detector.predict_proba(dataset)

    def correction_quality(self, train: SessionDataset) -> dict[str, float]:
        from ..metrics import true_rates

        if self.corrected_labels is None:
            raise RuntimeError("CoTeachingCLFD.fit must be called first")
        tpr, tnr = true_rates(train.labels(), self.corrected_labels)
        return {"tpr": tpr, "tnr": tnr}
