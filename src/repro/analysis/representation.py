"""Representation-space diagnostics.

The paper's central mechanism is geometric: supervised contrastive
learning pushes same-class sessions together and the two classes apart
(§I, §III-B).  This module quantifies that effect so users can verify
it on their own data:

* cosine **separation gap** — mean same-class minus mean cross-class
  cosine similarity;
* **silhouette score** over the two classes;
* **kNN label purity** — how often a session's neighbours share its
  label (the quantity Sel-CL's correction implicitly relies on);
* **centroid geometry** — class-centroid distance vs within-class
  spread (a Fisher-style separability ratio);
* 2-D **PCA projection** for plotting.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "RepresentationReport",
    "cosine_separation_gap",
    "silhouette_score",
    "knn_label_purity",
    "centroid_separability",
    "pca_project",
    "representation_report",
]


def _validate(features: np.ndarray, labels: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D array")
    if labels.shape != (features.shape[0],):
        raise ValueError("labels must align with features")
    if len(np.unique(labels)) < 2:
        raise ValueError("need at least two classes for separation metrics")
    return features, labels


def _unit_rows(features: np.ndarray) -> np.ndarray:
    return features / (np.linalg.norm(features, axis=1, keepdims=True)
                       + 1e-12)


def cosine_separation_gap(features: np.ndarray, labels) -> float:
    """Mean same-class cosine similarity minus mean cross-class one.

    Positive values mean classes form angular clusters; 0 means no
    class structure.
    """
    features, labels = _validate(features, labels)
    sims = _unit_rows(features) @ _unit_rows(features).T
    same = labels[:, None] == labels[None, :]
    off_diagonal = ~np.eye(len(labels), dtype=bool)
    return float(sims[same & off_diagonal].mean()
                 - sims[~same].mean())


def silhouette_score(features: np.ndarray, labels) -> float:
    """Mean silhouette coefficient over all samples (euclidean)."""
    features, labels = _validate(features, labels)
    n = features.shape[0]
    dists = np.linalg.norm(features[:, None, :] - features[None, :, :],
                           axis=2)
    scores = np.zeros(n)
    for i in range(n):
        own = labels == labels[i]
        own[i] = False
        a = dists[i, own].mean() if own.any() else 0.0
        b = np.inf
        for cls in np.unique(labels):
            if cls == labels[i]:
                continue
            other = labels == cls
            b = min(b, dists[i, other].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def knn_label_purity(features: np.ndarray, labels, k: int = 5) -> float:
    """Fraction of k nearest neighbours sharing the sample's label."""
    features, labels = _validate(features, labels)
    sims = _unit_rows(features) @ _unit_rows(features).T
    np.fill_diagonal(sims, -np.inf)
    k = min(k, len(labels) - 1)
    neighbours = np.argsort(-sims, axis=1)[:, :k]
    matches = labels[neighbours] == labels[:, None]
    return float(matches.mean())


def centroid_separability(features: np.ndarray, labels) -> float:
    """Fisher-style ratio: centroid distance / mean within-class spread."""
    features, labels = _validate(features, labels)
    centroids = {cls: features[labels == cls].mean(axis=0)
                 for cls in np.unique(labels)}
    classes = sorted(centroids)
    between = np.linalg.norm(centroids[classes[0]] - centroids[classes[1]])
    within = np.mean([
        np.linalg.norm(features[labels == cls] - centroids[cls], axis=1).mean()
        for cls in classes
    ])
    return float(between / (within + 1e-12))


def pca_project(features: np.ndarray, dims: int = 2) -> np.ndarray:
    """Project features onto their top principal components."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D array")
    if not 1 <= dims <= features.shape[1]:
        raise ValueError(f"dims must be in [1, {features.shape[1]}]")
    centered = features - features.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:dims].T


@dataclasses.dataclass(frozen=True)
class RepresentationReport:
    """All diagnostics for one (features, labels) pair."""

    cosine_gap: float
    silhouette: float
    knn_purity: float
    centroid_ratio: float
    num_samples: int

    def __str__(self) -> str:
        return (f"cosine gap {self.cosine_gap:+.3f} | "
                f"silhouette {self.silhouette:+.3f} | "
                f"kNN purity {self.knn_purity:.3f} | "
                f"centroid ratio {self.centroid_ratio:.2f} "
                f"(n={self.num_samples})")


def representation_report(features: np.ndarray, labels,
                          k: int = 5) -> RepresentationReport:
    """Compute every diagnostic in one pass."""
    features, labels = _validate(features, labels)
    return RepresentationReport(
        cosine_gap=cosine_separation_gap(features, labels),
        silhouette=silhouette_score(features, labels),
        knn_purity=knn_label_purity(features, labels, k=k),
        centroid_ratio=centroid_separability(features, labels),
        num_samples=features.shape[0],
    )
