"""Session datasets: data model, synthetic benchmarks, noise, embeddings."""

from .generators import (
    DATASET_GENERATORS,
    Archetype,
    CertLikeGenerator,
    OpenStackLikeGenerator,
    SessionGenerator,
    SplitSpec,
    WikiLikeGenerator,
    make_dataset,
)
from .logparse import (
    LogRecord,
    LogTemplateMiner,
    parse_log_records,
    read_csv_events,
    sessions_from_records,
)
from .noise import (
    apply_class_dependent_noise,
    apply_instance_dependent_noise,
    apply_uniform_noise,
    empirical_noise_rates,
    invert_noisy_labels,
)
from .pipeline import SessionVectorizer
from .sessions import MALICIOUS, NORMAL, Session, SessionDataset, iter_batches
from .split_cache import cached_splits, clear_split_cache, split_cache_info
from .vocab import PAD_TOKEN, Vocabulary
from .word2vec import SkipGramModel, Word2VecConfig, train_word2vec

__all__ = [
    "NORMAL", "MALICIOUS", "Session", "SessionDataset", "iter_batches",
    "PAD_TOKEN", "Vocabulary",
    "Archetype", "SplitSpec", "SessionGenerator",
    "CertLikeGenerator", "WikiLikeGenerator", "OpenStackLikeGenerator",
    "DATASET_GENERATORS", "make_dataset",
    "cached_splits", "clear_split_cache", "split_cache_info",
    "apply_uniform_noise", "apply_class_dependent_noise",
    "apply_instance_dependent_noise",
    "invert_noisy_labels", "empirical_noise_rates",
    "Word2VecConfig", "SkipGramModel", "train_word2vec",
    "SessionVectorizer",
    "LogRecord", "LogTemplateMiner", "parse_log_records",
    "sessions_from_records", "read_csv_events",
]
