"""Model archives in POSIX shared memory: one warm load, N readers.

A serving cluster must not pay one archive load (and one resident copy
of the weights) per worker process.  :class:`SharedArchive` publishes an
archive's arrays into a single ``multiprocessing.shared_memory``
segment exactly once; each worker then *attaches* by name and gets
read-only, zero-copy ``np.ndarray`` views over the same physical pages,
which :func:`repro.core.build_clfd` binds directly into module
parameters (``bind=True``).

The picklable :attr:`manifest` carries everything a worker needs to
attach: segment name, model generation, the archive's JSON metadata and
the per-array ``(dtype, shape, offset)`` table.  Rolling reloads
publish the next generation into a *fresh* segment; the old one is
unlinked only after every worker has flipped and drained.
"""

from __future__ import annotations

import os
import sys
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArchive"]

_ALIGN = 64  # cache-line align every array within the segment

# SharedMemory wrappers whose mapping still had live numpy views at
# close() time: parked here so garbage collection cannot unmap pages
# under a view (the OS reclaims them at process exit).
_LIVE_LEAKS: list = []


def _layout(arrays: dict[str, np.ndarray],
            kinds: dict[str, str] | None = None) -> tuple[list[dict], int]:
    """Compute per-array offsets; returns (table, total_bytes).

    Every entry carries its **own** dtype plus, for quantized archives,
    its storage kind (``int8`` / ``fp16_rows`` / ``fp16`` / ``raw`` /
    ``scale``) — a segment may legitimately mix int8 payloads, float16
    tables, float32 scales and int-typed auxiliaries, so nothing here
    may assume one parameter dtype for the whole archive.
    """
    table: list[dict] = []
    offset = 0
    for key in sorted(arrays):
        value = arrays[key]
        entry = {"key": key, "dtype": str(value.dtype),
                 "shape": list(value.shape), "offset": offset}
        if kinds is not None:
            base = key[:-len("/scale")] if key.endswith("/scale") else None
            entry["kind"] = ("scale" if base in kinds
                             else kinds.get(key, "raw"))
        table.append(entry)
        nbytes = int(value.nbytes)
        offset += (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
    return table, max(offset, 1)


def _views(shm: shared_memory.SharedMemory, table: list[dict],
           writeable: bool) -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {}
    for entry in table:
        view = np.ndarray(tuple(entry["shape"]),
                          dtype=np.dtype(entry["dtype"]),
                          buffer=shm.buf, offset=entry["offset"])
        view.flags.writeable = writeable
        out[entry["key"]] = view
    return out


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach without registering with the resource tracker.

    Before Python 3.13 every ``SharedMemory(name=...)`` attach registers
    the segment with the resource tracker, which unlinks it when the
    attaching process exits — a worker death would destroy the segment
    under every other worker (bpo-38119).  3.13 grew ``track=False``; on
    older interpreters we suppress the registration call itself.
    (Attach-then-``unregister`` is not equivalent: the tracker keys a
    plain *set* per resource type, so N attachers registering and
    unregistering one segment name race each other and the owner.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pre-3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shm(res_name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(res_name, rtype)

    resource_tracker.register = _skip_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedArchive:
    """One model generation's arrays, resident in a shared segment."""

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict,
                 arrays: dict[str, np.ndarray], owner: bool):
        self._shm = shm
        self.manifest = manifest
        self._arrays: dict[str, np.ndarray] | None = arrays
        self._owner = owner
        self._unlinked = False

    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, meta: dict, arrays: dict[str, np.ndarray], *,
                generation: int = 0) -> "SharedArchive":
        """Create a segment and copy ``arrays`` in (the one warm load)."""
        quant = meta.get("quant") or {}
        table, total = _layout(arrays, kinds=quant.get("arrays"))
        shm = shared_memory.SharedMemory(
            create=True, size=total,
            name=f"repro-serve-{os.getpid()}-g{generation}-{os.urandom(4).hex()}")
        views = _views(shm, table, writeable=True)
        for key, view in views.items():
            view[...] = arrays[key]
            view.flags.writeable = False
        manifest = {"segment": shm.name, "generation": int(generation),
                    "meta": meta, "arrays": table,
                    "precision": quant.get("precision")}
        return cls(shm, manifest, views, owner=True)

    @classmethod
    def publish_archive(cls, path: str | os.PathLike, *,
                        generation: int = 0,
                        precision: str | None = None) -> "SharedArchive":
        """Load a persisted CLFD archive once and publish it.

        ``precision`` quantizes a full-precision archive before the
        copy-in (see :func:`repro.quant.apply_precision`), so the
        segment holds int8/float16 payloads and every worker binds the
        quantized arrays zero-copy.
        """
        from ..core.persistence import read_archive

        meta, arrays = read_archive(path)
        if precision is not None:
            from ..quant.quantize import apply_precision

            meta, arrays = apply_precision(meta, arrays, precision)
        return cls.publish(meta, arrays, generation=generation)

    @classmethod
    def attach(cls, manifest: dict) -> "SharedArchive":
        """Map an already-published segment: read-only zero-copy views."""
        shm = _attach_untracked(manifest["segment"])
        views = _views(shm, manifest["arrays"], writeable=False)
        return cls(shm, manifest, views, owner=False)

    # ------------------------------------------------------------------
    @property
    def arrays(self) -> dict[str, np.ndarray]:
        if self._arrays is None:
            raise RuntimeError("shared archive is closed")
        return self._arrays

    @property
    def generation(self) -> int:
        return int(self.manifest["generation"])

    @property
    def precision(self) -> str | None:
        """The published arrays' quantized precision (None = full)."""
        return self.manifest.get("precision")

    @property
    def nbytes(self) -> int:
        if not self.manifest["arrays"]:
            return 0
        last = self.manifest["arrays"][-1]
        rows = int(np.prod(last["shape"])) if last["shape"] else 1
        return last["offset"] + rows * np.dtype(last["dtype"]).itemsize

    def close(self) -> None:
        """Drop our views and, when provably safe, the mapping itself.

        ``np.ndarray(buffer=shm.buf)`` resolves its base to the
        underlying ``mmap`` *without* holding a buffer export, so
        ``SharedMemory.close()`` happily unmaps pages under live views
        and the next read segfaults.  We only unmap when the mmap's
        refcount shows no view outside this object is left; otherwise
        the wrapper is parked on a module-level keep-alive list (so its
        ``__del__`` cannot unmap either) and the OS reclaims the
        mapping at process exit.
        """
        self._arrays = None
        shm, self._shm = self._shm, None
        if shm is None:
            return
        mm = getattr(shm, "_mmap", None)
        # Baseline references to the mmap with no live views:
        # shm._mmap, shm._buf's exporter ref, and getrefcount's arg.
        if mm is None or sys.getrefcount(mm) <= 3:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - belt and braces
                _LIVE_LEAKS.append(shm)
        else:
            _LIVE_LEAKS.append(shm)

    def unlink(self) -> None:
        """Remove the segment's name (owner only).  Existing mappings —
        workers still draining the old generation — stay valid until
        they close; the memory is freed when the last one does."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            if self._shm is not None:
                self._shm.unlink()
            else:  # closed first; remove the name directly
                from multiprocessing import resource_tracker
                from multiprocessing.shared_memory import _posixshmem

                _posixshmem.shm_unlink("/" + self.manifest["segment"])
                resource_tracker.unregister(
                    "/" + self.manifest["segment"], "shared_memory")
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedArchive":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()
        self.close()
