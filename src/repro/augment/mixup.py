"""Mixup sampling for the mixup-GCE loss (paper §III-A1, Algorithm 1).

The paper's mixup strategy differs from vanilla mixup [37] in one key
way: the partner xⱼ is always drawn from the *opposite noisy class*
(ỹⱼ ≠ ỹᵢ), so every interpolated sample mixes the two classes.  The
interpolation coefficient is λ ~ Beta(β, β); the experiments use β = 16,
which concentrates λ near 0.5 (strong interpolation) to suppress label
memorization.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..nn import Tensor, one_hot

__all__ = ["MixupBatch", "sample_mixup", "mix_representations"]


@dataclasses.dataclass
class MixupBatch:
    """Partner indices, λ draws and mixed targets for one batch."""

    partner: np.ndarray        # (n,) index of x_j within the batch
    lam: np.ndarray            # (n,) λ draws
    mixed_targets: np.ndarray  # (n, 2) m̃_i = λ ẽ_i + (1-λ) ẽ_j


def sample_mixup(labels, rng: np.random.Generator, beta: float = 0.3,
                 num_classes: int = 2,
                 anchor_dominant: bool = True) -> MixupBatch:
    """Draw mixup partners and coefficients for a batch of noisy labels.

    Partners are sampled uniformly from batch members with a different
    label; if a batch is single-class (possible under extreme imbalance),
    partners fall back to uniform sampling over the whole batch, which
    degenerates to vanilla mixup for those rows.

    ``anchor_dominant=True`` applies λ ← max(λ, 1-λ), the standard
    convention in noisy-label mixup implementations (e.g. DivideMix):
    the anchor always receives the majority of the interpolation weight,
    so the effective class prior of the mixed targets stays anchored to
    the data instead of collapsing to 50/50 under opposite-class pairing.

    .. note::
       §III-A1 of the paper defines β ∈ [0, 1] (a U-shaped Beta, λ near
       the endpoints) while §IV-A2 sets β = 16 (λ concentrated at 0.5).
       The two are inconsistent: with β=16 every mixed target is ≈(½, ½),
       so classifier confidences can never approach 1, contradicting the
       paper's own Theorem 5 analysis of high-confidence corrections.
       This implementation therefore follows the formal definition and
       defaults to β = 0.3; β = 16 remains available for comparison.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if beta <= 0:
        raise ValueError("beta must be positive")
    n = labels.shape[0]
    if n < 2:
        raise ValueError("mixup needs at least two samples")

    partner = np.empty(n, dtype=np.int64)
    for cls in np.unique(labels):
        rows = np.flatnonzero(labels == cls)
        opposite = np.flatnonzero(labels != cls)
        pool = opposite if opposite.size else np.flatnonzero(labels == cls)
        partner[rows] = rng.choice(pool, size=rows.size)

    lam = rng.beta(beta, beta, size=n)
    if anchor_dominant:
        lam = np.maximum(lam, 1.0 - lam)
    targets = one_hot(labels, num_classes)
    mixed = lam[:, None] * targets + (1.0 - lam)[:, None] * targets[partner]
    return MixupBatch(partner=partner, lam=lam, mixed_targets=mixed)


def mix_representations(z: Tensor, batch: MixupBatch) -> Tensor:
    """Interpolate representations: ``z^λ = λ z + (1-λ) z[partner]``.

    Differentiable: gradients flow to both endpoints, as in the paper's
    Algorithm 1 (line 17) where mixup is applied to encoded session
    representations.
    """
    lam = Tensor(batch.lam[:, None].astype(z.data.dtype))
    return z * lam + z[batch.partner] * (1.0 - lam)
