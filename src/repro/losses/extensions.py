"""Extension losses from the paper's future-work list.

§V: *"We will explore benefits of developing the mixup versions of other
robust loss functions."*  This module provides those: the symmetric
cross-entropy of Wang et al. [21], an explicit unhinged/MAE loss entry
point, and :func:`make_mixup_loss`, which lifts any probability-space
loss to its mixup form so new robust losses can be dropped into the
CLFD classifier-head trainer unchanged.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..augment import MixupBatch, sample_mixup
from ..nn import Tensor, as_tensor
from .robust import _PROB_FLOOR, _check_inputs, _reduce, cce_loss, gce_loss, \
    mae_loss

__all__ = ["sce_loss", "mixup_loss_value", "make_mixup_loss", "LOSS_REGISTRY"]

_EPS = 1e-12


def sce_loss(probs: Tensor, targets, alpha: float = 0.1, beta: float = 1.0,
             reduction: str = "mean") -> Tensor:
    """Symmetric cross-entropy (Wang et al., ICCV 2019).

    ``l = α·CCE(p, t) + β·RCE(p, t)`` where the reverse cross-entropy
    ``RCE = -Σ_k p_k log t_k`` treats the prediction as the reference
    distribution.  ``log 0`` is clamped to ``log ε`` (the original
    implementation's A = -4 style clamp), which is what gives the loss
    its noise robustness.
    """
    if alpha < 0 or beta < 0:
        raise ValueError("alpha and beta must be non-negative")
    targets = _check_inputs(probs, targets)
    probs = as_tensor(probs).clip(_EPS, 1.0)
    forward = -(Tensor(targets) * probs.log()).sum(axis=-1)
    clamped_log_targets = np.log(np.maximum(targets, _PROB_FLOOR))
    reverse = -(probs * Tensor(clamped_log_targets)).sum(axis=-1)
    return _reduce(forward * alpha + reverse * beta, reduction)


def mixup_loss_value(loss_fn: Callable[..., Tensor], probs_fn,
                     features: Tensor, batch: MixupBatch, **loss_kwargs
                     ) -> Tensor:
    """Evaluate ``loss_fn`` on a mixup batch.

    ``probs_fn`` maps (mixed) features to softmax probabilities;
    ``batch`` supplies partners, λ draws and mixed targets.
    """
    # λ adopts the feature dtype: a float64 coefficient tensor would
    # silently promote a float32 graph.
    lam = Tensor(batch.lam[:, None].astype(features.data.dtype))
    mixed = features * lam + features[batch.partner] * (1.0 - lam)
    return loss_fn(probs_fn(mixed), batch.mixed_targets, **loss_kwargs)


def make_mixup_loss(loss_fn: Callable[..., Tensor], beta: float = 0.3,
                    **loss_kwargs) -> Callable:
    """Lift a probability-space loss to its mixup version.

    Returns ``mixup_loss(probs_fn, features, labels, rng) -> Tensor`` that
    draws a fresh mixup batch and evaluates ``loss_fn`` on it, matching
    the construction of Eq. 2–3 for arbitrary base losses.
    """

    def mixup_loss(probs_fn, features: Tensor, labels,
                   rng: np.random.Generator) -> Tensor:
        batch = sample_mixup(np.asarray(labels, dtype=np.int64), rng,
                             beta=beta)
        return mixup_loss_value(loss_fn, probs_fn, features, batch,
                                **loss_kwargs)

    mixup_loss.__name__ = f"mixup_{getattr(loss_fn, '__name__', 'loss')}"
    return mixup_loss


#: Name -> probability-space loss, for config-driven selection.
LOSS_REGISTRY: dict[str, Callable[..., Tensor]] = {
    "gce": gce_loss,
    "cce": cce_loss,
    "mae": mae_loss,
    "sce": sce_loss,
}
