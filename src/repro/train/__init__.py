"""Checkpointed, observable, fault-tolerant training runtime.

The ``repro.train`` package is the single substrate every epoch loop in
the repo runs on:

* :class:`Trainer` — the event loop (callbacks, snapshots, journal);
* :class:`TrainRun` — per-run wiring of checkpoints + journal + resume,
  threaded through ``fit(..., run=...)`` on CLFD, co-teaching and the
  sequence-LM baselines;
* :class:`CheckpointManager` — atomic tagged snapshots (params,
  optimizer moments, RNG state) as flattened ``.npz`` archives;
* :class:`MetricJournal` — crash-safe JSONL metrics
  (``repro tail`` renders it);
* :func:`seed_everything` and the RNG state helpers — the determinism
  backbone that makes kill-and-resume bit-identical.
"""

from .checkpoint import CheckpointManager
from .journal import (
    DETERMINISTIC_FIELDS,
    MetricJournal,
    deterministic_entries,
    format_entry,
    read_journal,
    tail_journal,
)
from .run import TrainRun
from .seeding import (
    capture_rng_state,
    generator_state,
    restore_rng_state,
    seed_everything,
    set_generator_state,
)
from .trainer import (
    EarlyStoppingCallback,
    Trainer,
    TrainerCallback,
    TrainingInterrupted,
)

__all__ = [
    "Trainer", "TrainerCallback", "EarlyStoppingCallback",
    "TrainingInterrupted", "TrainRun", "CheckpointManager",
    "MetricJournal", "read_journal", "deterministic_entries",
    "format_entry", "tail_journal", "DETERMINISTIC_FIELDS",
    "seed_everything", "generator_state", "set_generator_state",
    "capture_rng_state", "restore_rng_state",
]
