"""RunCache: roundtrip, restart survival, corruption tolerance."""

import os
import time

import pytest

from repro.parallel import RunCache


def test_roundtrip(tmp_path):
    cache = RunCache(tmp_path / "cache")
    assert cache.get("abc") is None
    cache.put("abc", {"metrics": {"f1": 1.0}, "seconds": 0.5})
    record = cache.get("abc")
    assert record["metrics"] == {"f1": 1.0}
    assert "created" in record and record["key"] == "abc"
    assert "abc" in cache and len(cache) == 1


def test_survives_process_restart(tmp_path):
    # A fresh RunCache over the same directory — the in-memory object
    # holds no state, so this is exactly what a new process sees.
    RunCache(tmp_path / "cache").put("k", {"metrics": {"f1": 2.0}})
    reopened = RunCache(tmp_path / "cache")
    assert reopened.get("k")["metrics"] == {"f1": 2.0}


def test_corrupt_record_is_a_miss(tmp_path):
    cache = RunCache(tmp_path / "cache")
    cache.put("k", {"metrics": {}})
    cache.path("k").write_text("{ not json")
    assert cache.get("k") is None
    cache.path("k").write_text("[1, 2]")  # valid JSON, wrong shape
    assert cache.get("k") is None


def test_contains_agrees_with_get_on_corrupt_record(tmp_path):
    """Regression: __contains__ used path.exists() while get() treated
    a torn record as a miss, so the executor skipped the cell as
    "cached" and aggregated a null result."""
    cache = RunCache(tmp_path / "cache")
    cache.put("k", {"metrics": {"f1": 1.0}})
    assert "k" in cache
    # Plant a torn record: the file exists but is unreadable.
    cache.path("k").write_text('{"metrics": {"f1"')
    assert cache.get("k") is None
    assert "k" not in cache  # exists() would say True
    cache.path("k").write_text("[1, 2]")  # valid JSON, wrong shape
    assert "k" not in cache


def test_orphaned_tmp_files_swept(tmp_path):
    """Regression: a put() crash window strands mkstemp *.tmp files
    that clear() never removed and that pile up under a shared dir."""
    root = tmp_path / "cache"
    cache = RunCache(root)
    old = root / "orphan-old.tmp"
    old.write_text("{partial")
    stale_mtime = time.time() - 7200
    os.utime(old, (stale_mtime, stale_mtime))
    fresh = root / "orphan-fresh.tmp"
    fresh.write_text("{in-flight")

    # Opening the cache sweeps only age-gated orphans: the stale one
    # goes, the fresh one (an in-flight writer on another host) stays.
    reopened = RunCache(root)
    assert not old.exists()
    assert fresh.exists()

    # clear() means "empty the directory": records and all tmp files.
    reopened.put("k", {"metrics": {}})
    assert reopened.clear() == 1
    assert not fresh.exists()
    assert list(root.glob("*.tmp")) == []


def test_put_crash_window_orphan_is_recovered(tmp_path, monkeypatch):
    """Kill put() between mkstemp and os.replace; the orphan must be
    reclaimed by the next age-gated sweep and never count as a hit."""
    cache = RunCache(tmp_path / "cache")

    def exploding_replace(src, dst):
        raise OSError("disk pulled mid-replace")

    def failing_unlink(path):
        raise OSError("host died before cleanup")

    monkeypatch.setattr(os, "replace", exploding_replace)
    # Worst case: the error-path unlink *also* fails (host died),
    # stranding the tmp file.
    monkeypatch.setattr(os, "unlink", failing_unlink)
    with pytest.raises(OSError, match="disk pulled"):
        cache.put("k", {"metrics": {"f1": 1.0}})
    monkeypatch.undo()
    orphans = list(cache.root.glob("*.tmp"))
    assert len(orphans) == 1
    assert "k" not in cache
    stale = time.time() - 7200
    os.utime(orphans[0], (stale, stale))
    # A fresh open (what every other host does) reclaims the orphan.
    RunCache(cache.root)
    assert list(cache.root.glob("*.tmp")) == []


def test_put_overwrites_atomically(tmp_path):
    cache = RunCache(tmp_path / "cache")
    cache.put("k", {"metrics": {"f1": 1.0}})
    cache.put("k", {"metrics": {"f1": 9.0}})
    assert cache.get("k")["metrics"] == {"f1": 9.0}
    assert len(cache) == 1
    # No stray temp files left behind.
    assert list(cache.root.glob("*.tmp")) == []


def test_clear(tmp_path):
    cache = RunCache(tmp_path / "cache")
    for i in range(3):
        cache.put(f"k{i}", {"metrics": {}})
    assert cache.clear() == 3
    assert len(cache) == 0
