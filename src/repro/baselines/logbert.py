"""LogBert baseline (Guo et al. [48]).

LogBert learns normal behaviour with masked-log-key prediction: random
positions of (noisily) normal sessions are masked and a transformer must
recover them.  At inference, sessions whose masked keys are poorly
predicted are anomalous.  Like DeepLog, it has no noise-robustness
mechanism — noisy "normal" sessions contaminate the model of normality.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.sessions import NORMAL, SessionDataset, iter_batches
from ..train import TrainRun
from .base import BaselineConfig, BaselineModel

__all__ = ["LogBertModel"]

_MASK_RATE = 0.3


class LogBertModel(BaselineModel):
    """Masked-key transformer over activity ids."""

    name = "LogBert"

    def __init__(self, config: BaselineConfig | None = None,
                 num_heads: int = 4, num_layers: int = 2, top_k: int = 3,
                 threshold_quantile: float = 0.9, score_rounds: int = 3):
        super().__init__(config)
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.top_k = top_k
        # Calibrated on the (noisily) normal training sessions' scores.
        self.threshold_quantile = threshold_quantile
        # Averaging several independent masking rounds stabilises the
        # per-session score (each round masks different positions).
        self.score_rounds = score_rounds
        self.miss_threshold: float | None = None
        self.embedding: nn.Embedding | None = None
        self.encoder: nn.TransformerEncoder | None = None
        self.out: nn.Linear | None = None
        self.mask_id: int | None = None

    def _fit(self, train: SessionDataset, rng: np.random.Generator,
             run: TrainRun) -> None:
        config = self.config
        # Reserve an extra row in the embedding for the [MASK] token.
        vocab_size = len(train.vocab)
        self.mask_id = vocab_size
        self.embedding = nn.Embedding(vocab_size + 1, config.embedding_dim, rng)
        self.encoder = nn.TransformerEncoder(
            dim=config.embedding_dim, num_heads=self.num_heads,
            ff_dim=2 * config.embedding_dim, num_layers=self.num_layers,
            rng=rng, max_len=max(self.vectorizer.max_len, 8),
        )
        self.out = nn.Linear(config.embedding_dim, vocab_size, rng)
        params = (self.embedding.parameters() + self.encoder.parameters()
                  + self.out.parameters())
        optimizer = nn.Adam(params, lr=config.lr)

        normal = train[train.indices_with_noisy_label(NORMAL)]
        ids, lengths = normal.padded_ids(self.vectorizer.max_len)

        def batches(batch_rng: np.random.Generator):
            return iter_batches(normal, config.batch_size, batch_rng)

        step = nn.StepProgram(
            lambda batch: self._mlm_prepare(ids[batch], lengths[batch], rng),
            self._mlm_program)

        trainer = run.trainer(
            "mlm",
            {"embedding": self.embedding, "encoder": self.encoder,
             "out": self.out},
            optimizer, grad_clip=config.grad_clip)
        trainer.fit(batches, step, epochs=config.epochs, rng=rng)

        train_scores = self._session_scores(normal)
        self.miss_threshold = float(
            np.quantile(train_scores, self.threshold_quantile)
        )

    def _session_scores(self, dataset: SessionDataset) -> np.ndarray:
        """Average miss fraction over several independent mask rounds."""
        rounds = [
            self._miss_fractions(dataset, np.random.default_rng(1234 + i))
            for i in range(self.score_rounds)
        ]
        return np.mean(rounds, axis=0)

    def _mask(self, ids: np.ndarray, lengths: np.ndarray,
              rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Mask ~30% of valid positions; guarantee one mask per session."""
        steps = np.arange(ids.shape[1])[None, :]
        valid = steps < lengths[:, None]
        mask = (rng.random(ids.shape) < _MASK_RATE) & valid
        for row in range(ids.shape[0]):
            if not mask[row].any() and lengths[row] > 0:
                mask[row, int(rng.integers(0, lengths[row]))] = True
        masked = ids.copy()
        masked[mask] = self.mask_id
        return masked, mask

    def _mlm_prepare(self, ids: np.ndarray, lengths: np.ndarray,
                     rng: np.random.Generator):
        """Impure half of the MLM step: masking draw, embedding lookup,
        attention bias, and the masked-position weights.

        The mask weights stay a dense (batch·time,) array rather than
        ``np.nonzero`` indices: a per-batch number of masked positions
        would change the input signature — and force a re-trace — every
        step.  The embedding rows are gathered here in NumPy because the
        step (inherited from the original loop) deliberately detaches
        them; only the transformer and head receive gradients.
        """
        masked, mask = self._mask(ids, lengths, rng)
        if not mask.any():
            return None
        steps = np.arange(ids.shape[1])[None, :]
        attn_mask = (steps < lengths[:, None]).astype(np.float64)
        bias = nn.MultiHeadAttention.mask_bias(attn_mask)
        embedded = self.embedding.weight.data[masked]
        weights = mask.astype(np.float64).ravel()
        inv_count = np.asarray(1.0 / mask.sum())
        return embedded, bias, weights, ids.ravel(), inv_count

    def _mlm_program(self, embedded: np.ndarray, bias: np.ndarray,
                     weights: np.ndarray, flat_ids: np.ndarray,
                     inv_count: np.ndarray):
        """Pure half: masked-key cross-entropy at the masked positions."""
        hidden = self.encoder(nn.Tensor(embedded), bias=bias)
        log_probs = nn.log_softmax(self.out(hidden), axis=-1)
        batch, time = embedded.shape[:2]
        rows = np.repeat(np.arange(batch), time)
        cols = np.tile(np.arange(time), batch)
        picked = log_probs[rows, cols, flat_ids]
        return -(picked * nn.Tensor(weights)).sum() * nn.Tensor(inv_count)

    def _miss_fractions(self, dataset: SessionDataset,
                        rng: np.random.Generator) -> np.ndarray:
        """Per-session fraction of masked keys outside top-k predictions."""
        ids, lengths = dataset.padded_ids(self.vectorizer.max_len)
        fractions = np.zeros(len(dataset))
        with nn.no_grad():
            for start in range(0, len(dataset), 256):
                rows_slice = slice(start, min(start + 256, len(dataset)))
                batch_ids = ids[rows_slice]
                batch_lengths = lengths[rows_slice]
                masked, mask = self._mask(batch_ids, batch_lengths, rng)
                steps = np.arange(batch_ids.shape[1])[None, :]
                attn_mask = (steps < batch_lengths[:, None]).astype(np.float64)
                hidden = self.encoder(nn.Tensor(self.embedding(masked)),
                                      mask=attn_mask)
                logits = self.out(hidden).data
                ranks = np.argsort(-logits, axis=-1)[:, :, : self.top_k]
                hit = (ranks == batch_ids[:, :, None]).any(axis=-1)
                counts = np.maximum(mask.sum(axis=1), 1)
                fractions[rows_slice] = ((~hit) & mask).sum(axis=1) / counts
        return fractions

    def _predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        # Fixed seeds inside _session_scores keep inference reproducible.
        scores = self._session_scores(dataset)
        labels = (scores > self.miss_threshold).astype(np.int64)
        return labels, scores
