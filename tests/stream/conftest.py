"""Shared streaming fixtures: one stronger tiny CLFD + drifting streams.

The serve fixtures' scale-0.02 model is deliberately weak (serving
tests only care about plumbing).  Drift detection needs a model whose
score distributions actually separate stationary from drifted windows,
so the stream fixture trains at scale 0.05 with a slightly wider net —
still ~2 s, reaching ~85% test AUC on cert — and every processor test
shares the one session-scoped archive.

The stream/window/monitor knobs here are pinned together with the
synthesis seeds: at these settings the stationary stream raises zero
alarms and drift injected at window 6 alarms within 1-2 windows
(validated over seeds 11 and 23).
"""

import numpy as np
import pytest

from repro import CLFD, CLFDConfig
from repro.core import save_clfd
from repro.data import Word2VecConfig, apply_uniform_noise, make_dataset
from repro.serve import ServeConfig
from repro.stream import StreamConfig, synthesize_drifting_events

STREAM_MODEL_CONFIG = dict(
    embedding_dim=16,
    hidden_size=24,
    batch_size=32,
    aux_batch_size=8,
    ssl_epochs=2,
    supcon_epochs=4,
    classifier_epochs=40,
    word2vec=Word2VecConfig(dim=16, epochs=2),
)

STREAM_CONFIG = StreamConfig(
    window_size=60.0, session_gap=4.0, max_session_len=16,
    recorrect_windows=5, head_epochs=30, max_recorrections=2)

SERVE_CONFIG = ServeConfig(verbose=False)

# Sessions start 3 time units apart, so with 240 sessions drift begins
# at session 120 = t=360 = tumbling window 6 at window_size 60.
DRIFT_WINDOW = 6


def drifting_events(drift="archetype+noise", seed=11, n_sessions=240):
    return synthesize_drifting_events(
        "cert", n_sessions=n_sessions, drift=drift,
        eta=0.1, eta_after=0.45,
        malicious_rate=0.1, malicious_rate_after=0.45,
        spacing=3.0, max_session_length=16, rng=seed)


@pytest.fixture(scope="session")
def stream_split():
    rng = np.random.default_rng(7)
    train, test = make_dataset("cert", rng, scale=0.05)
    apply_uniform_noise(train, eta=0.1, rng=rng)
    return train, test


@pytest.fixture(scope="session")
def stream_model(stream_split):
    train, _ = stream_split
    return CLFD(CLFDConfig(**STREAM_MODEL_CONFIG)).fit(
        train, rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def stream_archive(stream_model, tmp_path_factory):
    return save_clfd(stream_model,
                     tmp_path_factory.mktemp("stream") / "model")
