"""Benchmark harness configuration.

Benchmarks regenerate every table/figure of the paper at a reduced,
CPU-friendly scale and print the rows next to the paper's reported
values.  Scale up with environment variables::

    REPRO_SCALE=0.3 REPRO_SEEDS=5 pytest benchmarks/ --benchmark-only

Each benchmark runs its workload exactly once (rounds=1): a table
regeneration is minutes of training, not a microbenchmark.
"""

import pathlib

import pytest

from repro.experiments import ExperimentSettings

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "latest.txt"


@pytest.fixture(scope="session")
def settings():
    return ExperimentSettings.from_env()


@pytest.fixture(scope="session")
def _results_file():
    """One results file per bench session (pytest captures stdout of
    passing tests, so tables are teed here for EXPERIMENTS.md)."""
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    with open(RESULTS_PATH, "w") as fh:
        yield fh


@pytest.fixture
def report(_results_file):
    """Print a line and append it to the session results file."""

    def emit(*args):
        line = " ".join(str(a) for a in args)
        print(line)
        _results_file.write(line + "\n")
        _results_file.flush()

    return emit


@pytest.fixture
def run_once(benchmark):
    """Fixture: time a callable exactly once through pytest-benchmark."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner
