"""Graph lint: structural checks over captured autograd graphs."""

import numpy as np
import pytest

from repro.nn import Tensor, split
from repro.nn.debug import capture_graph, lint_graph
from repro.nn.debug.lint import lint_demo_graph


def _checks(issues):
    return {i.check for i in issues}


def test_demo_clfd_graph_is_clean():
    issues = lint_demo_graph()
    assert issues == [], [str(i) for i in issues]


def test_capture_graph_walks_all_parents():
    a = Tensor(np.ones(3), requires_grad=True)
    b = Tensor(np.ones(3), requires_grad=True)
    loss = ((a * b) + a).sum()
    nodes = capture_graph(loss)
    ids = {id(n) for n in nodes}
    assert {id(a), id(b), id(loss)} <= ids


def test_capture_graph_refuses_freed_graph():
    a = Tensor(np.ones(3), requires_grad=True)
    loss = (a * 2.0).sum()
    loss.backward()
    with pytest.raises(ValueError, match="freed"):
        capture_graph(loss)


def test_detached_param_not_reachable():
    a = Tensor(np.ones(3), requires_grad=True, name="used")
    orphan = Tensor(np.ones(3), requires_grad=True, name="orphan")
    loss = (a * 2.0).sum()
    issues = lint_graph(loss, [a, orphan])
    detached = [i for i in issues if i.check == "detached-param"]
    assert len(detached) == 1
    assert "orphan" in detached[0].message
    assert detached[0].severity == "error"


def test_detached_param_requires_grad_false():
    frozen = Tensor(np.ones(3), requires_grad=False, name="frozen")
    loss = (frozen * 2.0).sum()
    issues = lint_graph(loss, [frozen])
    assert any(i.check == "detached-param"
               and "requires_grad=False" in i.message for i in issues)


def test_dtype_mixing_flagged():
    a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    b = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
    loss = (a + b).sum()  # silent float32 -> float64 promotion
    issues = lint_graph(loss)
    mixing = [i for i in issues if i.check == "dtype-mixing"]
    assert mixing and mixing[0].severity == "error"


def test_explicit_astype_is_not_mixing():
    a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    loss = a.astype(np.float64).sum()
    issues = lint_graph(loss)
    assert "dtype-mixing" not in _checks(issues)


def test_split_fanout_warns_shared_buffer():
    a = Tensor(np.arange(8.0), requires_grad=True)
    parts = split(a, 2)
    loss = sum((p * p).sum() for p in parts[1:]) + (parts[0] ** 2).sum()
    issues = lint_graph(loss)
    shared = [i for i in issues if i.check == "shared-buffer"]
    assert shared and shared[0].severity == "warning"


def test_unfuzzed_op_flagged():
    x = Tensor(np.ones(3), requires_grad=True)

    def fn():
        def backward():
            x._accumulate(out.grad)

        out = Tensor._make(x.data * 1.0, (x,), backward)
        return out

    # Rename the closure so it reads as an op no fuzz spec covers.
    node = fn()
    node._backward.__qualname__ = "_totally_new_op"
    loss = node.sum()
    issues = lint_graph(loss)
    unfuzzed = [i for i in issues if i.check == "unfuzzed-op"]
    assert unfuzzed and "_totally_new_op" in unfuzzed[0].message


def test_errors_sort_before_warnings():
    a = Tensor(np.arange(8.0, dtype=np.float32), requires_grad=True)
    parts = split(a, 2)  # warning: shared-buffer fan-out
    b = Tensor(np.ones(2, dtype=np.float64), requires_grad=True)
    loss = (parts[0].astype(np.float64) * b).sum() \
        + sum((p * p).sum() for p in parts[1:]).astype(np.float64)
    orphan = Tensor(np.ones(1), requires_grad=True, name="orphan")
    issues = lint_graph(loss, [orphan])
    severities = [i.severity for i in issues]
    assert "error" in severities and "warning" in severities
    assert severities == sorted(severities, key=lambda s: s != "error")


def test_cli_lint_graph_exits_zero(capsys):
    from repro.cli import main

    assert main(["lint-graph"]) == 0
    out = capsys.readouterr().out
    assert "lint-graph:" in out
    assert "no issues found" in out
