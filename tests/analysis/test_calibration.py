"""Tests for confidence-calibration diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    confidence_threshold_sweep,
    expected_calibration_error,
    reliability_curve,
)


@pytest.fixture
def perfectly_calibrated():
    """Correctness drawn exactly at the stated confidence."""
    rng = np.random.default_rng(0)
    conf = rng.uniform(0.5, 1.0, size=5000)
    correct = rng.random(5000) < conf
    return conf, correct


def test_reliability_curve_tracks_confidence(perfectly_calibrated):
    conf, correct = perfectly_calibrated
    centers, accuracy, counts = reliability_curve(conf, correct, bins=10)
    populated = counts > 100
    np.testing.assert_allclose(accuracy[populated], centers[populated],
                               atol=0.08)


def test_reliability_curve_empty_bins_are_nan():
    conf = np.array([0.95, 0.96, 0.97])
    correct = np.array([True, True, False])
    _, accuracy, counts = reliability_curve(conf, correct, bins=10)
    assert counts[0] == 0
    assert np.isnan(accuracy[0])
    assert counts[-1] == 3


def test_ece_low_when_calibrated(perfectly_calibrated):
    conf, correct = perfectly_calibrated
    assert expected_calibration_error(conf, correct) < 0.05


def test_ece_high_when_overconfident():
    conf = np.full(1000, 0.99)
    correct = np.random.default_rng(1).random(1000) < 0.5
    assert expected_calibration_error(conf, correct) > 0.4


def test_threshold_sweep_monotone_coverage(perfectly_calibrated):
    conf, correct = perfectly_calibrated
    rows = confidence_threshold_sweep(conf, correct)
    coverages = [row["coverage"] for row in rows]
    assert all(a >= b for a, b in zip(coverages, coverages[1:]))
    # Accuracy should rise (roughly) with the threshold when calibrated.
    assert rows[-1]["accuracy"] > rows[0]["accuracy"]


def test_threshold_sweep_empty_tail():
    conf = np.array([0.55, 0.6])
    correct = np.array([True, False])
    rows = confidence_threshold_sweep(conf, correct, thresholds=[0.9])
    assert rows[0]["coverage"] == 0.0
    assert np.isnan(rows[0]["accuracy"])


def test_validation():
    with pytest.raises(ValueError):
        reliability_curve([], [])
    with pytest.raises(ValueError):
        reliability_curve([0.5], [True, False])
    with pytest.raises(ValueError):
        expected_calibration_error([1.5], [True])
