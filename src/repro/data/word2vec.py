"""Skip-gram word2vec with negative sampling (SGNS).

The paper represents each activity by a word-to-vector embedding trained
on the session corpus (§III).  This implementation is a compact,
vectorised NumPy SGNS trainer — the same algorithm as word2vec, sized
for activity vocabularies of a few dozen tokens.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .sessions import SessionDataset

__all__ = ["Word2VecConfig", "SkipGramModel", "train_word2vec"]


@dataclasses.dataclass
class Word2VecConfig:
    """Hyper-parameters for SGNS training."""

    dim: int = 50
    window: int = 2
    negatives: int = 5
    epochs: int = 3
    lr: float = 0.05
    batch_size: int = 512
    # Unigram distribution exponent from the original word2vec paper.
    smoothing: float = 0.75

    def __post_init__(self):
        if self.dim < 1 or self.window < 1 or self.negatives < 1:
            raise ValueError("dim, window and negatives must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


class SkipGramModel:
    """Trained SGNS embeddings: input vectors indexed by activity id."""

    def __init__(self, vectors: np.ndarray):
        self.vectors = vectors

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    @property
    def vocab_size(self) -> int:
        return self.vectors.shape[0]

    def embed_ids(self, ids: np.ndarray) -> np.ndarray:
        """Lookup: ids of any shape -> embeddings with a trailing dim axis."""
        return self.vectors[np.asarray(ids, dtype=np.int64)]

    def most_similar(self, token_id: int, top_k: int = 5) -> list[tuple[int, float]]:
        """Nearest activities by cosine similarity (excluding the query)."""
        norms = np.linalg.norm(self.vectors, axis=1) + 1e-12
        sims = (self.vectors @ self.vectors[token_id]) / (
            norms * norms[token_id]
        )
        order = np.argsort(-sims)
        return [(int(i), float(sims[i])) for i in order if i != token_id][:top_k]


def _skipgram_pairs(dataset: SessionDataset, window: int) -> np.ndarray:
    """All (center, context) id pairs within the window, across sessions."""
    pairs: list[tuple[int, int]] = []
    for session in dataset:
        seq = session.activities
        for i, center in enumerate(seq):
            lo = max(0, i - window)
            hi = min(len(seq), i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    pairs.append((center, seq[j]))
    if not pairs:
        raise ValueError("no skip-gram pairs; dataset has only length-1 sessions")
    return np.asarray(pairs, dtype=np.int64)


def _unigram_table(dataset: SessionDataset, vocab_size: int,
                   smoothing: float) -> np.ndarray:
    counts = np.zeros(vocab_size, dtype=np.float64)
    for session in dataset:
        np.add.at(counts, session.activities, 1.0)
    counts = np.maximum(counts, 1e-8) ** smoothing
    return counts / counts.sum()


def train_word2vec(dataset: SessionDataset,
                   config: Word2VecConfig | None = None,
                   rng: np.random.Generator | None = None) -> SkipGramModel:
    """Train SGNS embeddings over the sessions in ``dataset``.

    Returns a :class:`SkipGramModel` whose row ``i`` embeds activity id
    ``i`` of ``dataset.vocab`` (row 0, the pad token, stays ~zero because
    it never occurs in sessions).
    """
    config = config or Word2VecConfig()
    rng = rng or np.random.default_rng(0)
    vocab_size = len(dataset.vocab)
    pairs = _skipgram_pairs(dataset, config.window)
    noise = _unigram_table(dataset, vocab_size, config.smoothing)

    scale = 0.5 / config.dim
    w_in = rng.uniform(-scale, scale, size=(vocab_size, config.dim))
    w_out = np.zeros((vocab_size, config.dim))

    total_steps = config.epochs * max(1, -(-len(pairs) // config.batch_size))
    step = 0
    for _ in range(config.epochs):
        order = rng.permutation(len(pairs))
        for start in range(0, len(order), config.batch_size):
            batch = pairs[order[start:start + config.batch_size]]
            centers, contexts = batch[:, 0], batch[:, 1]
            negatives = rng.choice(vocab_size, p=noise,
                                   size=(len(batch), config.negatives))
            # Linear learning-rate decay, as in the reference word2vec.
            lr = config.lr * max(1.0 - step / total_steps, 1e-2)
            _sgns_step(w_in, w_out, centers, contexts, negatives, lr)
            step += 1
    return SkipGramModel(w_in)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return out


def _sgns_step(w_in: np.ndarray, w_out: np.ndarray, centers: np.ndarray,
               contexts: np.ndarray, negatives: np.ndarray, lr: float) -> None:
    """One SGNS gradient step over a batch (in-place updates)."""
    v_c = w_in[centers]                      # (B, D)
    u_pos = w_out[contexts]                  # (B, D)
    u_neg = w_out[negatives]                 # (B, K, D)

    pos_score = _stable_sigmoid((v_c * u_pos).sum(axis=1))          # (B,)
    neg_score = _stable_sigmoid(np.einsum("bd,bkd->bk", v_c, u_neg))

    g_pos = (pos_score - 1.0)[:, None]       # d/du_pos
    g_neg = neg_score[:, :, None]            # d/du_neg

    clip = 1.0  # bounds per-step movement; prevents norm blow-up on tiny vocabs
    grad_center = np.clip(g_pos * u_pos + (g_neg * u_neg).sum(axis=1),
                          -clip, clip)
    grad_pos = np.clip(g_pos * v_c, -clip, clip)
    grad_neg = np.clip(g_neg * v_c[:, None, :], -clip, clip)

    np.add.at(w_in, centers, -lr * grad_center)
    np.add.at(w_out, contexts, -lr * grad_pos)
    np.add.at(w_out, negatives.ravel(),
              -lr * grad_neg.reshape(-1, w_out.shape[1]))
