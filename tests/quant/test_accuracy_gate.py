"""The quantization accuracy gate: AUC delta vs full precision.

Policy (DESIGN.md §14): a quantized archive may not move AUC-ROC on the
seeded benchmark split by more than 0.002 (0.2 in this repository's
percent convention) relative to the full-precision model it was derived
from.  This test IS the gate — a quantization change that degrades
accuracy beyond the budget fails CI here, not in production.
"""

import numpy as np

from repro.core import load_clfd
from repro.metrics import auc_roc

#: Maximum allowed |AUC(quantized) - AUC(full)| in percent (= 0.002
#: as a fraction) — the regression budget from the issue.
AUC_DELTA_BUDGET_PCT = 0.2


def _auc(model, test) -> float:
    _, scores = model.predict(test)
    return auc_roc(test.labels(), scores)


def test_int8_auc_delta_within_budget(quant_split, reference_model,
                                      int8_archive):
    _, test = quant_split
    full = _auc(reference_model, test)
    quantized = _auc(load_clfd(int8_archive), test)
    assert abs(quantized - full) <= AUC_DELTA_BUDGET_PCT, (
        f"int8 AUC {quantized:.4f} vs full {full:.4f}: delta "
        f"{abs(quantized - full):.4f} exceeds {AUC_DELTA_BUDGET_PCT} pct")


def test_float16_auc_delta_within_budget(quant_split, teacher_archive,
                                         reference_model):
    _, test = quant_split
    full = _auc(reference_model, test)
    f16 = _auc(load_clfd(teacher_archive, precision="float16"), test)
    assert abs(f16 - full) <= AUC_DELTA_BUDGET_PCT


def test_gate_would_catch_a_broken_quantizer(quant_split, int8_archive):
    """Sanity-check the gate has teeth: wrecking the quantized scales
    moves AUC far beyond the budget."""
    _, test = quant_split
    model = load_clfd(int8_archive)
    baseline = _auc(model, test)
    rng = np.random.default_rng(0)
    fc1 = model.classifier.fc1
    fc1.scales = (fc1.scales
                  * rng.uniform(-3.0, 3.0, size=fc1.scales.shape)
                  .astype(np.float32))
    fc1._dense = None
    broken = _auc(model, test)
    assert abs(broken - baseline) > AUC_DELTA_BUDGET_PCT
