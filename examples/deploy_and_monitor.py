"""Production workflow: train, estimate noise, persist, reload, monitor.

A downstream team would not stop at `fit`/`predict`.  This example walks
the operational extras:

1. estimate the annotation pipeline's noise rates from the trained
   corrector (including the §IV-A2 "invert if η > 0.5" check);
2. check the corrector's confidence calibration (the assumption behind
   the weighted sup-con loss);
3. save the fitted model to one `.npz` artifact and reload it in a fresh
   "inference service" without the training data.

Run:  python examples/deploy_and_monitor.py
"""

import tempfile

import numpy as np

from repro import CLFD, CLFDConfig
from repro.analysis import (
    confidence_threshold_sweep,
    expected_calibration_error,
)
from repro.core import estimate_noise_rates, load_clfd, recommend_inversion, save_clfd
from repro.data import apply_class_dependent_noise, make_dataset
from repro.metrics import evaluate_detector


def main():
    rng = np.random.default_rng(0)
    train, test = make_dataset("cert", rng, scale=0.1)
    apply_class_dependent_noise(train, eta_10=0.3, eta_01=0.45, rng=rng)

    model = CLFD(CLFDConfig.fast()).fit(train, rng=np.random.default_rng(0))

    # 1. What does the corrector say about our annotation pipeline?
    estimate = estimate_noise_rates(train, model.corrected_labels,
                                    model.confidences)
    print(f"estimated noise: eta={estimate.eta:.2f} "
          f"(eta10={estimate.eta_10:.2f}, eta01={estimate.eta_01:.2f})")
    print(f"invert labels before retraining? {recommend_inversion(estimate)}")

    # 2. Are the correction confidences trustworthy?
    correct = model.corrected_labels == train.labels()
    ece = expected_calibration_error(model.confidences, correct)
    print(f"corrector calibration: ECE={ece:.3f}")
    print("confidence threshold sweep (accepted corrections):")
    for row in confidence_threshold_sweep(model.confidences, correct,
                                          thresholds=(0.6, 0.8, 0.9)):
        print(f"  tau={row['threshold']:.2f}: coverage={row['coverage']:.2f} "
              f"accuracy={row['accuracy']:.2f}")

    # 3. Ship the model.
    with tempfile.NamedTemporaryFile(suffix=".npz") as artifact:
        save_clfd(model, artifact.name)
        service_model = load_clfd(artifact.name)
        labels, scores = service_model.predict(test)
        metrics = evaluate_detector(test.labels(), labels, scores)
        print(f"reloaded model on live traffic: "
              + ", ".join(f"{k}={v:.1f}%" for k, v in metrics.items()))


if __name__ == "__main__":
    main()
