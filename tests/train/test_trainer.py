"""Tests for the Trainer event loop: callbacks, snapshots, resume."""

import numpy as np
import pytest

import repro.nn as nn
from repro.train import (
    EarlyStoppingCallback,
    MetricJournal,
    TrainerCallback,
    TrainingInterrupted,
    TrainRun,
    deterministic_entries,
)

N, DIM, EPOCHS = 64, 4, 6


def _problem(seed=0):
    """A tiny least-squares problem: model, optimizer, closures."""
    data_rng = np.random.default_rng(7)
    x = data_rng.normal(size=(N, DIM))
    y = x @ np.array([1.0, -2.0, 0.5, 3.0]) + 0.1

    model = nn.Linear(DIM, 1, np.random.default_rng(seed))
    optimizer = nn.Adam(model.parameters(), lr=0.01)

    def batches(rng):
        order = rng.permutation(N)
        for start in range(0, N, 16):
            yield order[start:start + 16]

    def step(idx):
        pred = model(nn.as_tensor(x[idx]))
        return ((pred - nn.as_tensor(y[idx, None])) ** 2).mean()

    return model, optimizer, batches, step


def _weights(model):
    return {k: np.array(v) for k, v in model.state_dict().items()}


def test_fit_trains_and_returns_history():
    model, optimizer, batches, step = _problem()
    run = TrainRun()  # inert: plain in-memory loop
    history = run.trainer("fit", model, optimizer).fit(
        batches, step, epochs=EPOCHS, rng=np.random.default_rng(1))
    assert len(history) == EPOCHS
    assert history[-1] < history[0]


def test_inert_run_matches_checkpointed_run_bitwise(tmp_path):
    model_a, opt_a, batches_a, step_a = _problem()
    TrainRun().trainer("fit", model_a, opt_a).fit(
        batches_a, step_a, epochs=EPOCHS, rng=np.random.default_rng(1))

    model_b, opt_b, batches_b, step_b = _problem()
    run = TrainRun(tmp_path / "ckpt", tmp_path / "journal.jsonl")
    run.trainer("fit", model_b, opt_b).fit(
        batches_b, step_b, epochs=EPOCHS, rng=np.random.default_rng(1))

    for key, value in _weights(model_a).items():
        np.testing.assert_array_equal(value, _weights(model_b)[key])


def test_step_returning_none_skips_batch():
    model, optimizer, batches, step = _problem()
    stepped, skipped = [], []

    def picky_step(idx):
        if idx[0] % 2:  # arbitrary: skip batches led by an odd index
            skipped.append(idx[0])
            return None
        stepped.append(idx[0])
        return step(idx)

    batch_ends = []

    class Counter(TrainerCallback):
        def on_batch_end(self, trainer, batch_index, loss):
            batch_ends.append(batch_index)

    TrainRun().trainer("fit", model, optimizer,
                       callbacks=[Counter()]).fit(
        batches, picky_step, epochs=1, rng=np.random.default_rng(1))
    assert len(stepped) + len(skipped) == N // 16
    # on_batch_end fires only for stepped batches, with dense indices.
    assert batch_ends == list(range(len(stepped)))


def test_early_stopping_callback_stops_and_records_epoch():
    model, optimizer, batches, step = _problem()
    stopper = EarlyStoppingCallback(patience=1, min_delta=10.0)
    history = TrainRun().trainer("fit", model, optimizer,
                                 callbacks=[stopper]).fit(
        batches, step, epochs=50, rng=np.random.default_rng(1))
    # min_delta=10 means no epoch ever counts as an improvement after
    # the first, so patience=1 trips at epoch 1.
    assert len(history) == 2
    assert stopper.stopped_epoch == 1


def test_journal_records_epochs_and_lr(tmp_path):
    model, optimizer, batches, step = _problem()
    journal = tmp_path / "journal.jsonl"
    run = TrainRun(tmp_path / "ckpt", journal)
    scheduler = nn.StepLR(optimizer, step_size=2, gamma=0.5)
    run.trainer("fit", model, optimizer, scheduler=scheduler).fit(
        batches, step, epochs=4, rng=np.random.default_rng(1))
    entries = deterministic_entries(journal)
    assert [e["epoch"] for e in entries] == [0, 1, 2, 3]
    assert all(e["phase"] == "fit" for e in entries)
    assert all(e["batches"] == N // 16 for e in entries)
    # lr is journaled before scheduler.step, so epochs 0-1 log the base
    # lr and epochs 2-3 the decayed one.
    assert [e["lr"] for e in entries] == [0.01, 0.01, 0.005, 0.005]


@pytest.mark.parametrize("stop_epoch", [1, 3])
def test_stop_after_epoch_then_resume_is_bit_identical(tmp_path,
                                                       stop_epoch):
    model_a, opt_a, batches_a, step_a = _problem()
    TrainRun().trainer("fit", model_a, opt_a).fit(
        batches_a, step_a, epochs=EPOCHS, rng=np.random.default_rng(1))

    model_b, opt_b, batches_b, step_b = _problem()
    run = TrainRun(tmp_path / "ckpt", tmp_path / "journal.jsonl",
                   stop_after=f"fit@{stop_epoch}")
    with pytest.raises(TrainingInterrupted) as err:
        run.trainer("fit", model_b, opt_b).fit(
            batches_b, step_b, epochs=EPOCHS, rng=np.random.default_rng(1))
    assert err.value.tag == f"fit@{stop_epoch}"

    # Fresh process simulation: rebuild everything, resume.
    model_c, opt_c, batches_c, step_c = _problem()
    resumed = TrainRun(tmp_path / "ckpt", tmp_path / "journal.jsonl",
                       resume=True)
    history = resumed.trainer("fit", model_c, opt_c).fit(
        batches_c, step_c, epochs=EPOCHS, rng=np.random.default_rng(1))
    assert len(history) == EPOCHS
    for key, value in _weights(model_a).items():
        np.testing.assert_array_equal(value, _weights(model_c)[key])
    # Journal shows every epoch exactly once plus the resume event.
    entries = deterministic_entries(tmp_path / "journal.jsonl")
    assert [e["epoch"] for e in entries] == list(range(EPOCHS))


def test_resume_of_completed_scope_is_a_noop(tmp_path):
    model_a, opt_a, batches_a, step_a = _problem()
    run = TrainRun(tmp_path / "ckpt", tmp_path / "journal.jsonl")
    history_a = run.trainer("fit", model_a, opt_a).fit(
        batches_a, step_a, epochs=EPOCHS, rng=np.random.default_rng(1))

    model_c, opt_c, batches_c, step_c = _problem()
    resumed = TrainRun(tmp_path / "ckpt", tmp_path / "journal.jsonl",
                       resume=True)
    history_c = resumed.trainer("fit", model_c, opt_c).fit(
        batches_c, step_c, epochs=EPOCHS, rng=np.random.default_rng(1))
    assert history_c == history_a
    for key, value in _weights(model_a).items():
        np.testing.assert_array_equal(value, _weights(model_c)[key])


def test_early_stopping_state_survives_resume(tmp_path):
    def build():
        model, optimizer, batches, step = _problem()
        stopper = EarlyStoppingCallback(patience=3, min_delta=10.0)
        return model, optimizer, batches, step, stopper

    model_a, opt_a, batches_a, step_a, stop_a = build()
    TrainRun().trainer("fit", model_a, opt_a, callbacks=[stop_a]).fit(
        batches_a, step_a, epochs=50, rng=np.random.default_rng(1))

    model_b, opt_b, batches_b, step_b, stop_b = build()
    run = TrainRun(tmp_path / "ckpt", stop_after="fit@2")
    with pytest.raises(TrainingInterrupted):
        run.trainer("fit", model_b, opt_b, callbacks=[stop_b]).fit(
            batches_b, step_b, epochs=50, rng=np.random.default_rng(1))

    model_c, opt_c, batches_c, step_c, stop_c = build()
    resumed = TrainRun(tmp_path / "ckpt", resume=True)
    history = resumed.trainer("fit", model_c, opt_c,
                              callbacks=[stop_c]).fit(
        batches_c, step_c, epochs=50, rng=np.random.default_rng(1))
    # The resumed patience counter continues from the snapshot, so the
    # stop fires at the same epoch the uninterrupted run stopped at.
    assert stop_c.stopped_epoch == stop_a.stopped_epoch
    assert len(history) == stop_a.stopped_epoch + 1
    for key, value in _weights(model_a).items():
        np.testing.assert_array_equal(value, _weights(model_c)[key])


def test_snapshot_every_skips_intermediate_epochs(tmp_path):
    model, optimizer, batches, step = _problem()
    run = TrainRun(tmp_path / "ckpt", snapshot_every=10)
    mtimes = []

    class Watch(TrainerCallback):
        def on_epoch_end(self, trainer, epoch, logs):
            path = run.checkpoints.path("fit")
            mtimes.append(path.exists())

    run.trainer("fit", model, optimizer, callbacks=[Watch()]).fit(
        batches, step, epochs=EPOCHS, rng=np.random.default_rng(1))
    # No snapshot lands until the final (done) epoch.
    assert mtimes == [False] * EPOCHS
    assert run.checkpoints.tags() == ["fit"]
    assert run.checkpoints.load("fit")["done"] is True


def test_scoped_run_prefixes_tags_and_phases(tmp_path):
    model, optimizer, batches, step = _problem()
    journal = tmp_path / "journal.jsonl"
    run = TrainRun(tmp_path / "ckpt", journal).scoped("corrector/")
    run.trainer("ssl", model, optimizer).fit(
        batches, step, epochs=2, rng=np.random.default_rng(1))
    run.save_phase("labels", {"ok": 1})
    assert run.checkpoints.tags() == ["corrector/labels", "corrector/ssl"]
    phases = {e.get("phase") for e in MetricJournal(journal,
                                                    resume=True).entries()}
    assert phases == {"corrector/ssl", "corrector/labels"}


def test_save_phase_honours_stop_after(tmp_path):
    run = TrainRun(tmp_path / "ckpt", stop_after="vectorizer")
    with pytest.raises(TrainingInterrupted) as err:
        run.save_phase("vectorizer", {"x": np.ones(3)})
    assert err.value.tag == "vectorizer"
    # The checkpoint landed before the interrupt fired.
    assert run.checkpoints.has("vectorizer")


def test_load_phase_requires_resume(tmp_path):
    run = TrainRun(tmp_path / "ckpt")
    run.checkpoints.save("vectorizer", {"x": 1})
    assert run.load_phase("vectorizer") is None
    resumed = TrainRun(tmp_path / "ckpt", resume=True)
    assert resumed.load_phase("vectorizer") == {"x": 1}
    assert resumed.load_phase("missing") is None


def test_profile_attaches_op_breakdown(tmp_path):
    model, optimizer, batches, step = _problem()
    journal = tmp_path / "journal.jsonl"
    run = TrainRun(tmp_path / "ckpt", journal, profile=True)
    run.trainer("fit", model, optimizer).fit(
        batches, step, epochs=1, rng=np.random.default_rng(1))
    entry = MetricJournal(journal, resume=True).entries()[0]
    assert "profile" in entry and len(entry["profile"]) >= 1
    assert all(isinstance(v, float) for v in entry["profile"].values())
