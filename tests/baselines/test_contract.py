"""Contract tests every baseline must satisfy (fit/predict interface)."""

import numpy as np
import pytest

from repro.baselines import BASELINES, BaselineConfig
from repro.data import Word2VecConfig


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_fit_predict_contract(name, small_config, noisy_split):
    train, test = noisy_split
    model = BASELINES[name](small_config)
    assert model.name == name
    model.fit(train, rng=np.random.default_rng(0))
    labels, scores = model.predict(test)
    assert labels.shape == (len(test),)
    assert scores.shape == (len(test),)
    assert set(np.unique(labels)) <= {0, 1}
    assert np.isfinite(scores).all()


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_predict_before_fit_raises(name, small_config):
    model = BASELINES[name](small_config)
    with pytest.raises(RuntimeError):
        model.predict(None)


def test_registry_covers_paper_models():
    assert set(BASELINES) == {
        "DivMix", "ULC", "Sel-CL", "CTRR",
        "Few-Shot", "CLDet", "DeepLog", "LogBert",
    }


def test_baseline_config_validation():
    with pytest.raises(ValueError):
        BaselineConfig(epochs=0)
    with pytest.raises(ValueError):
        BaselineConfig(embedding_dim=8, word2vec=Word2VecConfig(dim=16))


def test_default_config_created():
    model = BASELINES["CTRR"]()
    assert model.config.word2vec is not None
