"""Save/load model parameters as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write the module's state dict to ``path`` (npz format)."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Restore a state dict previously written by :func:`save_module`."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
