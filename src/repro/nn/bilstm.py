"""Bidirectional LSTM and attention pooling — encoder variants.

Session models frequently benefit from right-to-left context (an
exfiltration burst recolours the log-on that preceded it) and from
learned pooling instead of a plain mean.  These wrappers compose the
base :class:`~repro.nn.lstm.LSTM` into a bidirectional encoder and add
an additive-attention pooling head, both interface-compatible with the
encoders used across this repository.
"""

from __future__ import annotations

import numpy as np

from . import init
from .lstm import LSTM
from .module import Module, Parameter
from .tensor import Tensor, concat

__all__ = ["BiLSTM", "AttentionPooling"]


class BiLSTM(Module):
    """Two LSTMs run over the sequence in opposite directions.

    Outputs are concatenated per step, so the output width is
    ``2 * hidden_size``.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 2,
                 fused: bool = True):
        super().__init__()
        self.fused = fused
        self.forward_lstm = LSTM(input_size, hidden_size, rng,
                                 num_layers=num_layers, fused=fused)
        self.backward_lstm = LSTM(input_size, hidden_size, rng,
                                  num_layers=num_layers, fused=fused)
        self.hidden_size = hidden_size
        self.output_size = 2 * hidden_size

    def forward(self, x: Tensor) -> Tensor:
        """Return per-step outputs of shape (batch, time, 2*hidden)."""
        if x.ndim != 3:
            raise ValueError(f"BiLSTM expects (batch, time, features), "
                             f"got {x.shape}")
        fwd, _ = self.forward_lstm(x)
        # Strided slices reverse time in one graph node each (their
        # backward is an in-place += on a reversed view) instead of the
        # old stack-of-T-slices round trip.
        bwd_rev, _ = self.backward_lstm(x[:, ::-1, :])
        bwd = bwd_rev[:, ::-1, :]
        return concat([fwd, bwd], axis=2)

    def mean_pool(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        """Masked mean over time of the concatenated outputs."""
        outputs = self.forward(x)
        batch, time, _ = outputs.shape
        if lengths is None:
            return outputs.mean(axis=1)
        dtype = outputs.data.dtype
        lengths = np.asarray(lengths, dtype=dtype)
        mask = (np.arange(time)[None, :] < lengths[:, None]).astype(dtype)
        masked = outputs * Tensor(mask[:, :, None])
        return masked.sum(axis=1) / Tensor(np.maximum(lengths, 1.0)[:, None])


class AttentionPooling(Module):
    """Additive attention pooling over per-step encoder outputs.

    Learns a query vector; each step's weight is
    ``softmax(tanh(h W) · q)`` with padding masked out.
    """

    def __init__(self, dim: int, rng: np.random.Generator,
                 attention_dim: int | None = None):
        super().__init__()
        attention_dim = attention_dim or dim
        self.proj = Parameter(init.xavier_uniform((dim, attention_dim), rng))
        self.query = Parameter(init.xavier_uniform((attention_dim,), rng))

    def forward(self, outputs: Tensor,
                lengths: np.ndarray | None = None) -> Tensor:
        """Pool (batch, time, dim) -> (batch, dim)."""
        if outputs.ndim != 3:
            raise ValueError("AttentionPooling expects (batch, time, dim)")
        batch, time, _ = outputs.shape
        scores = (outputs @ self.proj).tanh() @ self.query   # (batch, time)
        if lengths is not None:
            lengths = np.asarray(lengths)
            bias = np.where(np.arange(time)[None, :] < lengths[:, None],
                            0.0, -1e9)
            scores = scores + Tensor(bias)
        shifted = scores - Tensor(scores.data.max(axis=1, keepdims=True))
        weights = shifted.exp()
        weights = weights / weights.sum(axis=1, keepdims=True)
        return (outputs * weights.reshape(batch, time, 1)).sum(axis=1)
