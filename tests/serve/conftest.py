"""Shared serving fixtures: one tiny fitted CLFD and its archive."""

import numpy as np
import pytest

from repro import CLFD, CLFDConfig
from repro.core import load_clfd, save_clfd
from repro.data import Word2VecConfig, apply_uniform_noise, make_dataset

SERVE_CONFIG = dict(
    embedding_dim=12,
    hidden_size=16,
    batch_size=32,
    aux_batch_size=8,
    ssl_epochs=1,
    supcon_epochs=2,
    classifier_epochs=30,
    word2vec=Word2VecConfig(dim=12, epochs=1),
)


@pytest.fixture(scope="session")
def serve_split():
    rng = np.random.default_rng(7)
    train, test = make_dataset("cert", rng, scale=0.02)
    apply_uniform_noise(train, eta=0.2, rng=rng)
    return train, test


def _train_archive(serve_split, tmp_path_factory, seed, name):
    train, _ = serve_split
    model = CLFD(CLFDConfig(**SERVE_CONFIG)).fit(
        train, rng=np.random.default_rng(seed))
    return save_clfd(model, tmp_path_factory.mktemp("serve") / name)


@pytest.fixture(scope="session")
def served_archive(serve_split, tmp_path_factory):
    """Path of a persisted tiny CLFD archive (the cluster's input)."""
    return _train_archive(serve_split, tmp_path_factory, seed=0,
                          name="model")


@pytest.fixture(scope="session")
def served_archive_v2(serve_split, tmp_path_factory):
    """A *differently-seeded* archive, for rolling-reload tests: its
    scores measurably differ from ``served_archive``'s."""
    return _train_archive(serve_split, tmp_path_factory, seed=1,
                          name="model-v2")


@pytest.fixture(scope="session")
def served_model(served_archive):
    """A fitted CLFD persisted + reloaded, as a serving process sees it."""
    return load_clfd(served_archive)
