"""Op-level profiling for the autograd engine.

Activating :func:`profile` registers a hook with :mod:`repro.nn.tensor`
that counts every graph node created and times every backward closure,
keyed by the op that built it.  Forward-side regions (a whole layer, an
epoch) can be timed with :meth:`Profiler.timer`.  The hooks cost a
single ``is not None`` check per node when disabled, so they are safe to
leave compiled into the hot path.

Usage::

    with profile() as prof:
        loss = model(x).sum()
        loss.backward()
    print(prof.summary())
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

from . import tensor as _tensor

__all__ = ["OpStats", "Profiler", "profile"]


def _op_name(backward_fn) -> str:
    """Derive the op name from its backward closure's qualname.

    ``Tensor.__add__.<locals>.backward`` -> ``__add__``;
    ``fused_lstm_step.<locals>.backward_h`` -> ``fused_lstm_step``.
    """
    qualname = getattr(backward_fn, "__qualname__", "?")
    return qualname.split(".<locals>")[0].rsplit(".", 1)[-1]


@dataclass
class OpStats:
    """Aggregate counters for one op."""

    nodes: int = 0
    backward_calls: int = 0
    backward_seconds: float = 0.0


@dataclass
class Profiler:
    """Collects node counts and per-op backward wall time."""

    ops: dict[str, OpStats] = field(default_factory=dict)
    regions: dict[str, float] = field(default_factory=dict)

    def _stats(self, backward_fn) -> OpStats:
        name = _op_name(backward_fn)
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpStats()
        return stats

    # Hook points called from repro.nn.tensor -------------------------
    def record_node(self, backward_fn) -> None:
        self._stats(backward_fn).nodes += 1

    def record_backward(self, backward_fn, seconds: float) -> None:
        stats = self._stats(backward_fn)
        stats.backward_calls += 1
        stats.backward_seconds += seconds

    # Aggregates ------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        return sum(s.nodes for s in self.ops.values())

    @property
    def total_backward_seconds(self) -> float:
        return sum(s.backward_seconds for s in self.ops.values())

    @contextlib.contextmanager
    def timer(self, name: str):
        """Accumulate wall time of a forward-side region under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.regions[name] = (self.regions.get(name, 0.0)
                                  + time.perf_counter() - start)

    def summary(self, top: int = 15) -> str:
        """Human-readable table sorted by backward time."""
        lines = [f"{'op':24s} {'nodes':>8s} {'bwd calls':>10s} {'bwd ms':>10s}"]
        ranked = sorted(self.ops.items(),
                        key=lambda kv: -kv[1].backward_seconds)
        for name, stats in ranked[:top]:
            lines.append(f"{name:24s} {stats.nodes:8d} "
                         f"{stats.backward_calls:10d} "
                         f"{stats.backward_seconds * 1e3:10.2f}")
        lines.append(f"{'total':24s} {self.total_nodes:8d} "
                     f"{sum(s.backward_calls for s in self.ops.values()):10d} "
                     f"{self.total_backward_seconds * 1e3:10.2f}")
        for name, seconds in self.regions.items():
            lines.append(f"region {name}: {seconds * 1e3:.2f} ms")
        return "\n".join(lines)


@contextlib.contextmanager
def profile():
    """Context manager: activate profiling, yield the :class:`Profiler`."""
    prof = Profiler()
    _tensor._set_profile_hook(prof)
    try:
        yield prof
    finally:
        _tensor._set_profile_hook(None)
