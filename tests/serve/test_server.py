"""HTTP front end: the v1 surface, error envelope, redirects, shutdown."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import InferenceEngine, ServeConfig, ServingServer


@pytest.fixture(scope="module")
def server(served_model):
    engine = InferenceEngine(
        served_model, ServeConfig(max_batch=16, max_wait_ms=2.0, port=0))
    srv = ServingServer(engine, model_name="test-model")
    srv.start_background()
    yield srv
    srv.shutdown()


def _request(server, path, payload=None, method=None):
    url = f"http://127.0.0.1:{server.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, exc.read()


def _json(server, path, payload=None, method=None):
    status, _, body = _request(server, path, payload, method)
    return status, json.loads(body)


def test_score_single_session(server):
    status, body = _json(server, "/v1/score",
                         {"activities": [1, 2, 3], "session_id": "abc"})
    assert status == 200
    assert body["session_id"] == "abc"
    assert body["label"] in (0, 1)
    assert 0.0 <= body["score"] <= 1.0
    assert len(body["probs"]) == 2
    assert body["oov_count"] == 0
    assert body["generation"] == 0


def test_score_batch(server):
    payload = {"sessions": [{"activities": [1, 2]},
                            {"activities": [3, 1, 2]},
                            {"activities": [2]}]}
    status, body = _json(server, "/v1/score", payload)
    assert status == 200
    assert len(body["results"]) == 3
    assert all("score" in r for r in body["results"])


def test_unversioned_get_redirects_and_resolves(server):
    # urllib follows GET redirects, so the legacy spelling still works.
    status, body = _json(server, "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    status, _, _ = _request(server, "/metrics?format=json")
    assert status == 200


def test_unversioned_post_is_method_preserving_307(server):
    # urllib refuses to auto-follow POST redirects — which makes the
    # bare 307 + Location observable.
    status, headers, body = _request(
        server, "/score", {"activities": [1]})
    assert status == 307
    assert headers["Location"] == "/v1/score"
    assert json.loads(body)["location"] == "/v1/score"


def test_redirect_preserves_query(server):
    # Disable redirect-following so the 307 itself is observable.
    req = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/metrics?format=json")

    class NoRedirect(urllib.request.HTTPRedirectHandler):
        def redirect_request(self, *args, **kwargs):
            return None

    opener = urllib.request.build_opener(NoRedirect)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        opener.open(req, timeout=30)
    assert excinfo.value.code == 307
    assert excinfo.value.headers["Location"] == "/v1/metrics?format=json"


def test_malformed_body_is_enveloped_400(server):
    status, body = _json(server, "/v1/score", {"activities": []})
    assert status == 400
    assert body["error"]["code"] == "empty_session"
    assert body["error"]["status"] == 400
    assert "message" in body["error"]


def test_invalid_json_is_400(server):
    url = f"http://127.0.0.1:{server.port}/v1/score"
    req = urllib.request.Request(url, data=b"{nope", method="POST")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req, timeout=30).read()
    assert excinfo.value.code == 400
    body = json.loads(excinfo.value.read())
    assert body["error"]["code"] == "invalid_json"


def test_empty_body_is_400(server):
    status, body = _json(server, "/v1/score", method="POST")
    assert status == 400
    assert body["error"]["code"] == "empty_body"


def test_healthz(server):
    status, body = _json(server, "/v1/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["model"] == "test-model"
    assert body["queue_depth"] >= 0
    assert body["generation"] == 0


def test_metrics_prometheus_text(server):
    # Generate at least one scored request first.
    _json(server, "/v1/score", {"activities": [1]})
    status, headers, body = _request(server, "/v1/metrics")
    text = body.decode()
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert "repro_serve_requests_total" in text
    assert "repro_serve_batch_size_count" in text
    assert 'repro_serve_latency_seconds{quantile="0.99"}' in text
    assert 'repro_serve_profile_region_seconds{region="batch_forward"}' in text
    assert "repro_serve_generation 0" in text


def test_metrics_json_snapshot(server):
    _json(server, "/v1/score", {"activities": [1]})
    status, body = _json(server, "/v1/metrics?format=json")
    assert status == 200
    assert body["requests_total"] >= 1
    assert body["sessions_total"] >= 1
    assert "p50" in body["latency_seconds"]
    assert "batch_forward" in body["profile_regions_seconds"]
    assert body["generation"] == 0


def test_unknown_route_is_enveloped_404(server):
    status, body = _json(server, "/v1/nope")
    assert status == 404
    assert body["error"]["code"] == "not_found"
    status, body = _json(server, "/v1/nope", {"activities": [1]})
    assert status == 404
    assert body["error"]["code"] == "not_found"


def test_errors_show_up_in_metrics(server):
    _json(server, "/v1/score", {"activities": []})
    status, body = _json(server, "/v1/metrics?format=json")
    assert status == 200
    assert body["errors_total"].get("empty_session", 0) >= 1


def test_concurrent_requests_all_succeed(server):
    statuses = []
    lock = threading.Lock()

    def hit(i):
        status, body = _json(server, "/v1/score",
                             {"activities": [1 + (i % 3), 2],
                              "session_id": f"c{i}"})
        with lock:
            statuses.append((status, body.get("session_id")))

    threads = [threading.Thread(target=hit, args=(i,)) for i in range(24)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert len(statuses) == 24
    assert all(status == 200 for status, _ in statuses)
    assert {sid for _, sid in statuses} == {f"c{i}" for i in range(24)}


def test_reload_endpoint(served_model, served_archive, served_archive_v2):
    engine = InferenceEngine(served_model,
                             ServeConfig(max_wait_ms=1.0, port=0))
    srv = ServingServer(engine, model_name="reload-test")
    srv.start_background()
    try:
        status, body = _json(srv, "/v1/score", {"activities": [1, 2]})
        assert status == 200 and body["generation"] == 0
        status, body = _json(srv, "/v1/reload",
                             {"model": str(served_archive_v2)})
        assert status == 200
        assert body["generation"] == 1
        status, body = _json(srv, "/v1/score", {"activities": [1, 2]})
        assert status == 200 and body["generation"] == 1
        # Bad paths and bodies come back as envelopes, not 500 soup.
        status, body = _json(srv, "/v1/reload", {"model": "/no/such.npz"})
        assert status == 404
        assert body["error"]["code"] == "model_not_found"
        status, body = _json(srv, "/v1/reload", {"nope": 1})
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
    finally:
        srv.shutdown()


def test_tenant_rate_limit_isolation(served_model):
    """One throttled tenant 429s while another keeps scoring."""
    engine = InferenceEngine(
        served_model,
        ServeConfig(max_wait_ms=1.0, port=0,
                    rate_limit_rps=0.001, rate_limit_burst=3.0))
    srv = ServingServer(engine, model_name="rl-test")
    srv.start_background()
    try:
        def score_as(tenant):
            url = f"http://127.0.0.1:{srv.port}/v1/score"
            req = urllib.request.Request(
                url, data=json.dumps({"activities": [1]}).encode(),
                headers={"X-Tenant": tenant})
            try:
                with urllib.request.urlopen(req, timeout=30) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read())

        outcomes = [score_as("noisy")[0] for _ in range(6)]
        assert outcomes.count(200) == 3  # burst, then throttled
        assert outcomes.count(429) == 3
        status, body = score_as("noisy")
        assert status == 429
        assert body["error"]["code"] == "rate_limited"
        assert body["error"]["details"]["tenant"] == "noisy"
        # The quiet tenant's bucket is untouched.
        for _ in range(3):
            status, _ = score_as("quiet")
            assert status == 200
        snap = engine.metrics_snapshot()
        assert snap["rate_limiter"]["noisy"]["limited_total"] >= 4
        assert snap["rate_limiter"]["quiet"]["limited_total"] == 0
    finally:
        srv.shutdown()


def test_shutdown_drains_in_flight_futures(served_model, monkeypatch):
    """Regression: shutdown() must resolve queued scoring futures.

    The old order stopped the HTTP loop and left the batcher running;
    handler threads blocked on futures were abandoned at process exit.
    Now the engine drains first, so every submitted future is done by
    the time shutdown() returns.
    """
    engine = InferenceEngine(
        served_model, ServeConfig(max_batch=2, max_wait_ms=50.0, port=0))
    srv = ServingServer(engine, model_name="drain-test")
    srv.start_background()

    real_predict = engine.model.predict

    def slow_predict(dataset, **kwargs):
        time.sleep(0.05)
        return real_predict(dataset, **kwargs)

    monkeypatch.setattr(engine.model, "predict", slow_predict)
    futures = [engine.submit({"activities": [1, 2], "session_id": f"d{i}"})
               for i in range(8)]
    srv.shutdown()
    assert all(f.done() for f in futures)
    results = [f.result(timeout=0) for f in futures]
    assert [r.session_id for r in results] == [f"d{i}" for i in range(8)]
