"""Tests for NT-Xent and supervised contrastive losses."""

import numpy as np
import pytest

from repro.losses import nt_xent_loss, sup_con_loss
from repro.nn import Adam, Parameter, Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def _unit_rows(matrix):
    matrix = np.asarray(matrix, dtype=float)
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


# ----------------------------------------------------------------------
# NT-Xent
# ----------------------------------------------------------------------
def test_nt_xent_low_when_views_aligned(rng):
    base = rng.normal(size=(8, 6))
    aligned = nt_xent_loss(Tensor(base), Tensor(base * 3.0)).item()
    shuffled = nt_xent_loss(Tensor(base),
                            Tensor(base[rng.permutation(8)])).item()
    assert aligned < shuffled


def test_nt_xent_validates_inputs():
    with pytest.raises(ValueError):
        nt_xent_loss(Tensor(np.ones((2, 3))), Tensor(np.ones((3, 3))))
    with pytest.raises(ValueError):
        nt_xent_loss(Tensor(np.ones((2, 3))), Tensor(np.ones((2, 3))),
                     temperature=0.0)


def test_nt_xent_training_aligns_views(rng):
    """Minimising NT-Xent through an encoder pulls paired views together."""
    w = Parameter(rng.normal(scale=0.5, size=(4, 4)))
    x_a = rng.normal(size=(12, 4))
    x_b = x_a + rng.normal(scale=0.3, size=(12, 4))
    opt = Adam([w], lr=0.05)

    def pair_cos():
        za, zb = x_a @ w.data, x_b @ w.data
        za = _unit_rows(za)
        zb = _unit_rows(zb)
        return float((za * zb).sum(axis=1).mean())

    before = pair_cos()
    for _ in range(40):
        opt.zero_grad()
        loss = nt_xent_loss(Tensor(x_a) @ w, Tensor(x_b) @ w, temperature=0.5)
        loss.backward()
        opt.step()
    assert pair_cos() > before


def test_nt_xent_gradient_flows(rng):
    z_a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    z_b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    nt_xent_loss(z_a, z_b).backward()
    assert z_a.grad is not None and np.isfinite(z_a.grad).all()
    assert z_b.grad is not None


# ----------------------------------------------------------------------
# Supervised contrastive
# ----------------------------------------------------------------------
def test_sup_con_lower_when_classes_clustered(rng):
    labels = np.array([0, 0, 0, 1, 1, 1])
    clustered = np.vstack([np.tile([1.0, 0.0], (3, 1)) + rng.normal(scale=0.05, size=(3, 2)),
                           np.tile([0.0, 1.0], (3, 1)) + rng.normal(scale=0.05, size=(3, 2))])
    mixed = rng.normal(size=(6, 2))
    conf = np.ones(6)
    low = sup_con_loss(Tensor(clustered), labels, confidences=conf).item()
    high = sup_con_loss(Tensor(mixed), labels, confidences=conf).item()
    assert low < high


def test_sup_con_confidence_weighting_shrinks_loss(rng):
    """Low-confidence pairs contribute less (Eq. 5): scaling all c by 0.5
    scales the loss by 0.25."""
    z = Tensor(rng.normal(size=(6, 4)))
    labels = np.array([0, 1, 0, 1, 0, 1])
    full = sup_con_loss(z, labels, confidences=np.ones(6)).item()
    half = sup_con_loss(z, labels, confidences=np.full(6, 0.5)).item()
    assert half == pytest.approx(0.25 * full, rel=1e-9)


def test_sup_con_unweighted_equals_confidence_one(rng):
    z = Tensor(rng.normal(size=(5, 3)))
    labels = np.array([0, 0, 1, 1, 1])
    weighted = sup_con_loss(z, labels, confidences=np.ones(5),
                            variant="weighted").item()
    unweighted = sup_con_loss(z, labels, variant="unweighted").item()
    assert weighted == pytest.approx(unweighted)


def test_sup_con_filtered_drops_low_confidence_pairs(rng):
    z = Tensor(rng.normal(size=(4, 3)))
    labels = np.array([0, 0, 1, 1])
    conf = np.array([0.6, 0.6, 0.99, 0.99])
    # τ=0.7: the (0,1) pair (0.36) is dropped; (2,3) pair (0.98) kept.
    filtered = sup_con_loss(z, labels, confidences=conf, variant="filtered",
                            threshold=0.7)
    unfiltered = sup_con_loss(z, labels, variant="unweighted")
    assert 0.0 < filtered.item() < unfiltered.item()
    # With everything below threshold the loss is exactly zero.
    all_low = sup_con_loss(z, labels, confidences=np.full(4, 0.5),
                           variant="filtered", threshold=0.7)
    assert all_low.item() == pytest.approx(0.0)


def test_sup_con_auxiliary_rows_are_not_anchors(rng):
    """Rows beyond num_anchors join denominators/positives but never anchor."""
    z_data = rng.normal(size=(6, 4))
    labels = np.array([0, 1, 0, 1, 1, 1])
    # Anchor rows only: loss over first 4 with S1 = rows 4..5.
    loss = sup_con_loss(Tensor(z_data), labels, confidences=np.ones(6),
                        num_anchors=4)
    assert np.isfinite(loss.item())
    # Identical anchors, different auxiliary rows => different loss
    z2 = z_data.copy()
    z2[4:] = rng.normal(size=(2, 4))
    loss2 = sup_con_loss(Tensor(z2), labels, confidences=np.ones(6),
                         num_anchors=4)
    assert loss.item() != pytest.approx(loss2.item())


def test_sup_con_single_class_batch_is_finite(rng):
    z = Tensor(rng.normal(size=(4, 3)))
    labels = np.zeros(4, dtype=int)
    value = sup_con_loss(z, labels, variant="unweighted").item()
    assert np.isfinite(value)


def test_sup_con_anchor_without_positives_contributes_zero(rng):
    """A lone-class anchor has empty B(x_i) and must not produce NaN."""
    z = Tensor(rng.normal(size=(3, 3)))
    labels = np.array([0, 1, 1])
    value = sup_con_loss(z, labels, variant="unweighted").item()
    assert np.isfinite(value)


def test_sup_con_validation(rng):
    z = Tensor(rng.normal(size=(4, 3)))
    labels = np.array([0, 1, 0, 1])
    with pytest.raises(ValueError):
        sup_con_loss(z, labels[:2])
    with pytest.raises(ValueError):
        sup_con_loss(z, labels, temperature=0.0, variant="unweighted")
    with pytest.raises(ValueError):
        sup_con_loss(z, labels, variant="weighted")  # missing confidences
    with pytest.raises(ValueError):
        sup_con_loss(z, labels, variant="bogus")
    with pytest.raises(ValueError):
        sup_con_loss(z, labels, variant="unweighted", num_anchors=9)
    with pytest.raises(ValueError):
        sup_con_loss(z, labels, confidences=np.ones(3))


def test_sup_con_training_clusters_classes(rng):
    """Minimising L_Sup through a linear encoder separates the classes."""
    x = np.vstack([rng.normal(loc=(1.0, 0.0), scale=0.6, size=(10, 2)),
                   rng.normal(loc=(-1.0, 0.0), scale=0.6, size=(10, 2))])
    labels = np.array([0] * 10 + [1] * 10)
    w = Parameter(rng.normal(scale=0.3, size=(2, 4)))
    opt = Adam([w], lr=0.03)

    def intra_vs_inter():
        z = _unit_rows(x @ w.data)
        sims = z @ z.T
        same = sims[labels[:, None] == labels[None, :]].mean()
        diff = sims[labels[:, None] != labels[None, :]].mean()
        return same - diff

    before = intra_vs_inter()
    for _ in range(60):
        opt.zero_grad()
        loss = sup_con_loss(Tensor(x) @ w, labels, confidences=np.ones(20),
                            temperature=0.5)
        loss.backward()
        opt.step()
    assert intra_vs_inter() > before


# ----------------------------------------------------------------------
# Cached loss-geometry constants
# ----------------------------------------------------------------------
def test_diag_mask_cache_reuses_and_protects_arrays(rng):
    from repro.losses import contrastive as mod

    mod._DIAG_MASKS.clear()
    mod._NT_XENT_INDEX.clear()
    base = rng.normal(size=(8, 6))
    first = nt_xent_loss(Tensor(base), Tensor(base * 2.0)).item()
    key = (16, np.dtype(np.float64))
    assert set(mod._DIAG_MASKS) == {key}
    mask = mod._DIAG_MASKS[key]
    assert mod._diag_mask(16, np.float64) is mask  # second call reuses
    with pytest.raises(ValueError):
        mask[0, 0] = 1.0  # cached arrays are immutable
    second = nt_xent_loss(Tensor(base), Tensor(base * 2.0)).item()
    assert second == first  # reuse is bit-identical


def test_sup_con_shares_diag_mask_cache(rng):
    from repro.losses import contrastive as mod

    mod._DIAG_MASKS.clear()
    z = Tensor(rng.normal(size=(6, 4)))
    labels = np.array([0, 0, 1, 1, 0, 1])
    a = sup_con_loss(z, labels, variant="unweighted").item()
    assert (6, np.dtype(np.float64)) in mod._DIAG_MASKS
    b = sup_con_loss(z, labels, variant="unweighted").item()
    assert a == b


# ----------------------------------------------------------------------
# Low-temperature / extreme-scale stability (numerics hardening)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_nt_xent_low_temperature_extreme_scale_is_finite(dtype):
    """τ=0.01 with ±50-scale rows: logits reach ±5e5 before the row-max
    shift; the loss and every gradient must stay finite and keep the
    input dtype (no silent float64 upcast on float32 graphs)."""
    rng = np.random.default_rng(0)
    base = rng.normal(size=(6, 4)) * 50.0
    base[2] = 0.0  # an all-zero row (padding / dead features)
    z_a = Tensor(base.astype(dtype), requires_grad=True)
    z_b = Tensor((base + rng.normal(size=(6, 4))).astype(dtype),
                 requires_grad=True)
    loss = nt_xent_loss(z_a, z_b, temperature=0.01)
    assert loss.data.dtype == np.dtype(dtype)
    assert np.isfinite(loss.item())
    loss.backward()
    for t in (z_a, z_b):
        assert np.isfinite(t.grad).all()
        assert t.grad.dtype == np.dtype(dtype)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_sup_con_low_temperature_extreme_scale_is_finite(dtype):
    rng = np.random.default_rng(1)
    base = rng.normal(size=(6, 4)) * 50.0
    base[4] = 0.0
    z = Tensor(base.astype(dtype), requires_grad=True)
    labels = np.array([0, 1, 0, 1, 0, 1])
    loss = sup_con_loss(z, labels, temperature=0.01,
                        confidences=rng.uniform(0.5, 1.0, size=6))
    assert loss.data.dtype == np.dtype(dtype)
    assert np.isfinite(loss.item())
    loss.backward()
    assert np.isfinite(z.grad).all()
    assert z.grad.dtype == np.dtype(dtype)


def test_nt_xent_all_zero_batch_is_finite():
    """Degenerate all-zero batch: cosine sims are 0/0-adjacent; the
    pre-fix l2_normalize produced NaN gradients here."""
    z_a = Tensor(np.zeros((4, 3)), requires_grad=True)
    z_b = Tensor(np.zeros((4, 3)), requires_grad=True)
    loss = nt_xent_loss(z_a, z_b, temperature=0.01)
    assert np.isfinite(loss.item())
    loss.backward()
    assert np.isfinite(z_a.grad).all()
    assert np.isfinite(z_b.grad).all()
