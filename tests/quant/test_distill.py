"""Distillation: a 1-layer student trained on the teacher's soft scores."""

import numpy as np
import pytest

from repro import CLFD
from repro.core import load_clfd, save_clfd
from repro.metrics import auc_roc
from repro.quant import distill_student, quantize_archive, student_config


@pytest.fixture(scope="module")
def student(teacher_model, quant_split):
    train, _ = quant_split
    return distill_student(teacher_model, train, epochs=8,
                           rng=np.random.default_rng(0))


def test_student_architecture(student, teacher_model):
    assert student.config.lstm_layers == 1
    assert student.config.use_label_corrector is False
    assert student.label_corrector is None
    assert student.fraud_detector is not None
    # The student shares the teacher's vectorizer: same vocabulary,
    # same embedding table object.
    assert student.vectorizer is teacher_model.vectorizer
    config = student_config(teacher_model.config)
    assert config.hidden_size == teacher_model.config.hidden_size


def test_student_tracks_teacher_scores(student, teacher_model,
                                       quant_split):
    _, test = quant_split
    _, teacher_scores = teacher_model.predict(test)
    _, student_scores = student.predict(test)
    teacher_auc = auc_roc(test.labels(), teacher_scores)
    student_auc = auc_roc(test.labels(), student_scores)
    # The student is an approximation, not a clone: require it to keep
    # most of the teacher's ranking quality.
    assert student_auc >= teacher_auc - 10.0
    history = student.fraud_detector.classifier_loss_history
    assert len(history) == 8
    assert history[-1] <= history[0]  # the distillation loss went down


def test_student_persists_and_serves(student, quant_split, tmp_path):
    _, test = quant_split
    batch = test[list(range(16))]
    labels, scores = student.predict(batch)
    restored = load_clfd(save_clfd(student, tmp_path / "student"))
    rlabels, rscores = restored.predict(batch)
    np.testing.assert_array_equal(rlabels, labels)
    np.testing.assert_array_equal(rscores, scores)


def test_student_quantizes(student, quant_split, tmp_path):
    """The intended production stack: distill, then quantize the student."""
    _, test = quant_split
    batch = test[list(range(32))]
    path = save_clfd(student, tmp_path / "student")
    q = load_clfd(quantize_archive(path, tmp_path / "student-int8"))
    assert q.precision == "int8"
    assert q.config.lstm_layers == 1
    _, scores = student.predict(batch)
    _, qscores = q.predict(batch)
    np.testing.assert_allclose(qscores, scores, atol=5e-3)


def test_distill_rejects_unfitted_teacher(quant_split):
    train, _ = quant_split
    with pytest.raises(ValueError):
        distill_student(CLFD(), train)
