"""Stdlib HTTP front end for the inference engine.

``python -m repro serve --model model.npz`` starts a
:class:`ThreadingHTTPServer` where each connection thread parses the
request, submits its sessions to the shared
:class:`~repro.serve.engine.InferenceEngine`, and blocks on the
futures — the micro-batcher turns that blocking concurrency into padded
model batches.

Endpoints
---------
``POST /score``
    Body: one session object or ``{"sessions": [...]}`` (see
    :mod:`repro.serve.schemas`).  Responds with the matching shape:
    a result object, or ``{"results": [...]}``.
``GET /healthz``
    Liveness + queue depth.
``GET /metrics``
    Prometheus-style text exposition (``?format=json`` for the JSON
    snapshot).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

from .engine import InferenceEngine
from .schemas import RequestError, parse_score_request

__all__ = ["ServingServer", "run_server"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_SCORE_TIMEOUT_S = 30.0


class _Handler(BaseHTTPRequestHandler):
    """One instance per request; engine/metrics live on the server."""

    server: "ServingServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        if path == "/healthz":
            self._respond(200, {
                "status": "ok",
                "queue_depth": self.server.engine.queue_depth,
                "model": self.server.model_name,
            })
        elif path == "/metrics":
            engine = self.server.engine
            if "format=json" in (urlparse(self.path).query or ""):
                self._respond(
                    200, engine.metrics.snapshot(engine.profiler.regions))
            else:
                body = engine.metrics.render_prometheus(
                    engine.profiler.regions).encode("utf-8")
                self._send_bytes(200, body, "text/plain; version=0.0.4")
        else:
            self._respond(404, {"error": "not_found",
                                "message": f"no route for {path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        if path != "/score":
            self._respond(404, {"error": "not_found",
                                "message": f"no route for {path}"})
            return
        engine = self.server.engine
        start = time.perf_counter()
        try:
            payload = self._read_json()
            sessions, is_batch = parse_score_request(payload)
            results = engine.score_many(sessions,
                                        timeout=self.server.score_timeout)
        except RequestError as exc:
            engine.metrics.record_request(time.perf_counter() - start,
                                          error=exc.code)
            self._respond(exc.status, exc.to_dict())
            return
        except FutureTimeoutError:
            engine.metrics.record_request(time.perf_counter() - start,
                                          error="timeout")
            self._respond(504, {"error": "timeout",
                                "message": "scoring timed out"})
            return
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            engine.metrics.record_request(time.perf_counter() - start,
                                          error="internal")
            self._respond(500, {"error": "internal", "message": str(exc)})
            return
        engine.metrics.record_request(time.perf_counter() - start,
                                      sessions=len(results))
        if is_batch:
            self._respond(200, {"results": [r.to_dict() for r in results]})
        else:
            self._respond(200, results[0].to_dict())

    # ------------------------------------------------------------------
    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError("empty_body", "request body required")
        if length > _MAX_BODY_BYTES:
            raise RequestError("body_too_large",
                               f"body exceeds {_MAX_BODY_BYTES} bytes",
                               status=413)
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise RequestError("invalid_json",
                               f"body is not valid JSON: {exc}") from None

    def _respond(self, status: int, payload: dict) -> None:
        self._send_bytes(status, json.dumps(payload).encode("utf-8"),
                         "application/json")

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        if self.server.verbose:
            super().log_message(fmt, *args)


class ServingServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one inference engine.

    ``port=0`` binds an ephemeral port (tests); read ``.port`` after
    construction.  Use as a context manager, or call
    :meth:`start_background` / :meth:`shutdown` explicitly.
    """

    daemon_threads = True

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 8000, model_name: str = "clfd",
                 score_timeout: float = _SCORE_TIMEOUT_S,
                 verbose: bool = False):
        super().__init__((host, port), _Handler)
        self.engine = engine
        self.model_name = model_name
        self.score_timeout = score_timeout
        self.verbose = verbose
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> None:
        """Serve on a daemon thread (returns immediately)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-serve-http", daemon=True)
        self._thread.start()

    def shutdown(self) -> None:
        super().shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __exit__(self, *exc) -> None:
        self.shutdown()
        super().__exit__(*exc)


def run_server(model_path: str, host: str = "127.0.0.1", port: int = 8000,
               max_batch: int = 32, max_wait_ms: float = 2.0,
               max_queue: int = 1024, verbose: bool = True) -> None:
    """Blocking entry point behind ``python -m repro serve``."""
    engine = InferenceEngine.from_archive(
        model_path, max_batch=max_batch, max_wait_ms=max_wait_ms,
        max_queue=max_queue,
    )
    server = ServingServer(engine, host=host, port=port,
                           model_name=str(model_path), verbose=verbose)
    print(f"serving {model_path} on http://{host}:{server.port} "
          f"(max_batch={max_batch}, max_wait_ms={max_wait_ms})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.shutdown()
        engine.close()
