"""The Trainer event loop: one epoch loop for every model in the repo.

Every hand-rolled ``for epoch ... for batch ...`` loop (CLFD's four
training stages, co-teaching, the sequence-LM baselines) reduces to the
same skeleton: draw batches from an rng, compute a loss, backprop, clip,
step, record.  :class:`Trainer` owns that skeleton once and adds the
three things none of the hand-rolled loops had:

* **callbacks** — ``on_fit_start`` / ``on_batch_end`` / ``on_epoch_end``
  hooks (:class:`TrainerCallback`), including
  :class:`EarlyStoppingCallback`;
* **checkpointing** — atomic per-epoch snapshots of module parameters,
  full optimizer state (Adam ``m``/``v``/``t``), scheduler position,
  callback state, the training ``Generator``'s exact RNG state, and the
  loss history, through a :class:`~repro.train.CheckpointManager`;
* **observability** — one :class:`~repro.train.MetricJournal` line per
  epoch (loss, pre-clip grad norm, lr, wall-clock, optional
  ``nn.profile`` op breakdown).

Determinism contract: the Trainer consumes randomness *only* through
the caller's ``batches(rng)`` / ``step(batch)`` closures, in the same
order the hand-rolled loops did, and snapshots the generator state at
every epoch boundary.  A run killed at any point and resumed from its
last snapshot therefore produces **bit-identical** final parameters,
optimizer state and journal entries to an uninterrupted run.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

import numpy as np

from .. import nn
from .checkpoint import CheckpointManager
from .journal import MetricJournal
from .seeding import generator_state, set_generator_state

__all__ = ["Trainer", "TrainerCallback", "EarlyStoppingCallback",
           "TrainingInterrupted"]


class TrainingInterrupted(RuntimeError):
    """Deliberate mid-run stop (crash drills, ``--stop-after``).

    Raised *after* the snapshot for ``tag`` is durably on disk, so a
    handler — or the next process — can resume from exactly this point.
    """

    def __init__(self, tag: str):
        self.tag = tag
        super().__init__(
            f"training interrupted after {tag!r} (checkpoint saved; "
            f"resume to continue)")


class TrainerCallback:
    """Base callback: override any subset of the hooks.

    Stateful callbacks should implement ``state_dict`` /
    ``load_state_dict`` so their state rides inside snapshots — e.g.
    early-stopping patience counters must survive a resume or the
    resumed run would stop at a different epoch.
    """

    def on_fit_start(self, trainer: "Trainer") -> None:
        pass

    def on_batch_end(self, trainer: "Trainer", batch_index: int,
                     loss: float) -> None:
        pass

    def on_epoch_end(self, trainer: "Trainer", epoch: int,
                     logs: dict) -> None:
        pass

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class EarlyStoppingCallback(TrainerCallback):
    """Stop the fit when the epoch loss plateaus (``nn.EarlyStopping``)."""

    def __init__(self, patience: int = 10, min_delta: float = 0.0,
                 monitor: str = "loss"):
        self.stopper = nn.EarlyStopping(patience=patience,
                                        min_delta=min_delta)
        self.monitor = monitor
        self.stopped_epoch: int | None = None

    def on_epoch_end(self, trainer: "Trainer", epoch: int,
                     logs: dict) -> None:
        if self.stopper.update(float(logs[self.monitor])):
            self.stopped_epoch = epoch
            trainer.should_stop = True

    def state_dict(self) -> dict:
        state = self.stopper.state_dict()
        state["stopped_epoch"] = self.stopped_epoch
        return state

    def load_state_dict(self, state: dict) -> None:
        self.stopper.load_state_dict(state)
        stopped = state.get("stopped_epoch")
        self.stopped_epoch = None if stopped is None else int(stopped)


class Trainer:
    """Checkpointed, observable epoch loop; see module docstring.

    Parameters
    ----------
    modules: the module(s) whose parameters the snapshot covers — a
        single :class:`~repro.nn.Module` or a ``{name: Module}`` dict
        when the optimizer spans several (DeepLog trains embedding +
        LSTM + head together).
    optimizer: the optimizer driving ``modules``; snapshots capture its
        full state via ``state_dict``.
    scheduler: optional LR scheduler, stepped once per epoch.
    grad_clip: global-norm clip threshold (None = record the norm but
        never scale).
    scope: checkpoint tag and journal ``phase`` for this loop.
    compile: when True and ``fit`` receives an ``nn.StepProgram``, the
        step runs through the trace-once/replay executor
        (:func:`nn.compile_step`) — bit-identical to the interpreted
        path, with per-step Python/graph overhead paid once per input
        signature.  Plain-closure steps stay interpreted and journal a
        ``compile-unsupported`` event.
    checkpoints/journal/resume/snapshot_every/stop_after/profile: see
        :class:`~repro.train.TrainRun`, which wires them consistently.
    """

    def __init__(self, modules, optimizer: nn.Optimizer, *,
                 scheduler: nn.LRScheduler | None = None,
                 grad_clip: float | None = None,
                 callbacks: Sequence[TrainerCallback] = (),
                 scope: str = "train",
                 checkpoints: CheckpointManager | None = None,
                 journal: MetricJournal | None = None,
                 resume: bool = False,
                 snapshot_every: int = 1,
                 stop_after: str | None = None,
                 profile: bool = False,
                 detect_anomaly: bool = False,
                 compile: bool = False):
        if isinstance(modules, nn.Module):
            modules = {"model": modules}
        if not modules:
            raise ValueError("Trainer needs at least one module")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.modules: dict[str, nn.Module] = dict(modules)
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.grad_clip = grad_clip
        self.callbacks = list(callbacks)
        self.scope = scope
        self.checkpoints = checkpoints
        self.journal = journal
        self.resume = resume
        self.snapshot_every = snapshot_every
        self.stop_after = stop_after
        self.profile = profile
        self.detect_anomaly = detect_anomaly
        self.compile = compile
        self.should_stop = False
        self.history: list[float] = []
        self._compiled: "nn.CompiledStep | None" = None

    # ------------------------------------------------------------------
    def fit(self, batches: Callable[[np.random.Generator], Iterable],
            step: Callable[[object], "nn.Tensor | None"], *,
            epochs: int, rng: np.random.Generator) -> list[float]:
        """Run (or resume) the loop; returns the per-epoch loss history.

        ``batches(rng)`` is called once per epoch and must yield the
        epoch's batches (typically index arrays); ``step(batch)``
        computes the batch loss as an autograd Tensor, or returns None
        to skip the batch.  Both may draw from the *same* ``rng`` —
        snapshots capture its state, so resumed draws line up exactly.
        """
        self.should_stop = False
        self.history = []
        self._compiled = None
        if self.compile:
            if isinstance(step, nn.StepProgram):
                self._compiled = nn.compile_step(
                    step, journal=self.journal, scope=self.scope)
            elif self.journal is not None:
                # The step is a plain closure (attention pooling, ad-hoc
                # loops): record that compilation was requested but this
                # loop stays interpreted, rather than failing the fit.
                self.journal.log_event("compile-unsupported", self.scope)
        start = self._restore(rng)
        if start is None:  # scope already ran to completion
            return self.history
        for callback in self.callbacks:
            callback.on_fit_start(self)

        for epoch in range(start, epochs):
            epoch_start = time.perf_counter()
            losses: list[float] = []
            norms: list[float] = []
            if self.profile:
                with nn.profile() as prof:
                    self._run_epoch(batches, step, rng, losses, norms)
                profile = self._profile_summary(prof)
            else:
                self._run_epoch(batches, step, rng, losses, norms)
                profile = None

            mean_loss = float(np.mean(losses)) if losses else 0.0
            mean_norm = float(np.mean(norms)) if norms else 0.0
            self.history.append(mean_loss)
            lr = float(self.optimizer.lr)
            logs = {"loss": mean_loss, "grad_norm": mean_norm, "lr": lr}
            for callback in self.callbacks:
                callback.on_epoch_end(self, epoch, logs)
            if self.journal is not None:
                self.journal.log_epoch(
                    phase=self.scope, epoch=epoch, loss=mean_loss,
                    grad_norm=mean_norm, lr=lr, batches=len(losses),
                    wall_s=time.perf_counter() - epoch_start,
                    profile=profile)
            if self.scheduler is not None:
                self.scheduler.step()

            completed = epoch + 1
            done = completed >= epochs or self.should_stop
            interrupt = self._interrupt_tag(completed, done)
            if self.checkpoints is not None and (
                    done or interrupt
                    or completed % self.snapshot_every == 0):
                self._snapshot(rng, completed, done)
            if interrupt:
                raise TrainingInterrupted(interrupt)
            if self.should_stop:
                break
        return self.history

    # ------------------------------------------------------------------
    def _run_epoch(self, batches, step, rng, losses, norms) -> None:
        for batch in batches(rng):
            try:
                loss = self._forward_backward(step, batch)
            except nn.AnomalyError as err:
                if self.journal is not None:
                    self.journal.log_event(
                        "anomaly", self.scope, op=err.op,
                        anomaly_phase=err.phase, batch=len(losses),
                        message=str(err).splitlines()[0])
                raise
            if loss is None:
                continue
            norm = nn.clip_grad_norm(
                self.optimizer.parameters,
                self.grad_clip if self.grad_clip is not None
                else float("inf"))
            self.optimizer.step()
            value = loss.item()
            losses.append(value)
            norms.append(norm)
            for callback in self.callbacks:
                callback.on_batch_end(self, len(losses) - 1, value)

    def _forward_backward(self, step, batch) -> "nn.Tensor | None":
        """One forward + backward, under anomaly detection when enabled.

        With ``detect_anomaly=True`` a NaN/inf anywhere in the batch's
        graph raises :class:`nn.AnomalyError` naming the op and its
        creation site instead of corrupting the parameters; the caller
        journals the event and re-raises.
        """
        if not self.detect_anomaly:
            return self._step_and_backward(step, batch)
        with nn.detect_anomaly():
            return self._step_and_backward(step, batch)

    def _step_and_backward(self, step, batch) -> "nn.Tensor | None":
        if self._compiled is not None:
            return self._compiled.step_and_backward(batch, self.optimizer)
        loss = step(batch)
        if loss is None:
            return None
        self.optimizer.zero_grad()
        loss.backward()
        return loss

    @staticmethod
    def _profile_summary(prof, top: int = 8) -> dict[str, float]:
        ranked = sorted(prof.ops.items(),
                        key=lambda kv: -kv[1].backward_seconds)
        return {name: round(stats.backward_seconds, 6)
                for name, stats in ranked[:top]}

    def _interrupt_tag(self, completed: int, done: bool) -> str | None:
        """Which stop-after directive (if any) fires at this boundary."""
        if self.stop_after is None:
            return None
        if self.stop_after == f"{self.scope}@{completed}":
            return self.stop_after
        if done and self.stop_after == self.scope:
            return self.scope
        return None

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _snapshot(self, rng: np.random.Generator, completed: int,
                  done: bool) -> None:
        self.checkpoints.save(self.scope, {
            "modules": {name: module.state_dict()
                        for name, module in self.modules.items()},
            "optimizer": self.optimizer.state_dict(),
            "scheduler": (self.scheduler.state_dict()
                          if self.scheduler is not None else None),
            "callbacks": [cb.state_dict() for cb in self.callbacks],
            "rng": generator_state(rng),
            "epoch": int(completed),
            "history": [float(x) for x in self.history],
            "done": bool(done),
        })

    def _restore(self, rng: np.random.Generator) -> int | None:
        """Load this scope's snapshot; returns the start epoch.

        Returns None when the scope already completed — modules, rng and
        history are restored so downstream phases proceed identically.
        """
        if not self.resume or self.checkpoints is None:
            return 0
        state = self.checkpoints.load(self.scope)
        if state is None:
            return 0
        for name, module in self.modules.items():
            module.load_state_dict(state["modules"][name])
        self.optimizer.load_state_dict(state["optimizer"])
        if self.scheduler is not None and state["scheduler"] is not None:
            self.scheduler.load_state_dict(state["scheduler"])
        for callback, cb_state in zip(self.callbacks, state["callbacks"]):
            callback.load_state_dict(cb_state)
        set_generator_state(rng, state["rng"])
        self.history = [float(x) for x in state["history"]]
        start = int(state["epoch"])
        if self.journal is not None:
            self.journal.drop(
                lambda e: (e.get("phase") == self.scope
                           and "event" not in e
                           and e.get("epoch", -1) >= start))
            self.journal.log_event("resume", self.scope, epoch=start,
                                   done=bool(state["done"]))
        return None if state["done"] else start
