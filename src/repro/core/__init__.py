"""CLFD core: the paper's primary contribution."""

from .clfd import CLFD
from .co_teaching import CoTeachingCLFD, CoTeachingCorrector
from .config import CLFDConfig
from .encoder import SessionEncoder, SoftmaxClassifier
from .fraud_detector import FraudDetector
from .label_corrector import LabelCorrector
from .noise_rates import (
    NoiseRateEstimate,
    estimate_noise_rates,
    recommend_inversion,
    session_flip_posterior,
)
from .persistence import (build_clfd, load_clfd, model_fingerprint,
                          read_archive, save_clfd)
from .training import train_classifier_head

__all__ = [
    "CLFD", "CLFDConfig",
    "LabelCorrector", "FraudDetector",
    "SessionEncoder", "SoftmaxClassifier",
    "train_classifier_head",
    "CoTeachingCorrector", "CoTeachingCLFD",
    "NoiseRateEstimate", "estimate_noise_rates", "session_flip_posterior",
    "recommend_inversion",
    "save_clfd", "load_clfd", "model_fingerprint", "read_archive",
    "build_clfd",
]
