"""Op-level profiling for the autograd engine.

Activating :func:`profile` registers a hook with :mod:`repro.nn.tensor`
that counts every graph node created and times every backward closure,
keyed by the op that built it.  Forward-side regions (a whole layer, an
epoch) can be timed with :meth:`Profiler.timer`.  The hooks cost a
single ``is not None`` check per node when disabled, so they are safe to
leave compiled into the hot path.

Activation is thread-safe and re-entrant: any number of ``profile()``
contexts may be live at once — nested in one thread, or concurrently
from several (e.g. the serving layer profiling a request while a
benchmark profiles an epoch).  Every live profiler sees every event;
the tensor-side hook is installed when the first activates and removed
when the last exits, in whichever order the contexts close.

Usage::

    with profile() as prof:
        loss = model(x).sum()
        loss.backward()
    print(prof.summary())
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field

from . import tensor as _tensor

__all__ = ["OpStats", "Profiler", "profile"]


def _op_name(backward_fn) -> str:
    """Derive the op name from its backward closure's qualname.

    ``Tensor.__add__.<locals>.backward`` -> ``__add__``;
    ``fused_lstm_step.<locals>.backward_h`` -> ``fused_lstm_step``.
    """
    qualname = getattr(backward_fn, "__qualname__", "?")
    return qualname.split(".<locals>")[0].rsplit(".", 1)[-1]


@dataclass
class OpStats:
    """Aggregate counters for one op."""

    nodes: int = 0
    backward_calls: int = 0
    backward_seconds: float = 0.0


@dataclass
class Profiler:
    """Collects node counts and per-op backward wall time."""

    ops: dict[str, OpStats] = field(default_factory=dict)
    regions: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def _stats(self, backward_fn) -> OpStats:
        name = _op_name(backward_fn)
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpStats()
        return stats

    # Hook points called from repro.nn.tensor -------------------------
    def record_node(self, backward_fn) -> None:
        with self._lock:
            self._stats(backward_fn).nodes += 1

    def record_backward(self, backward_fn, seconds: float) -> None:
        with self._lock:
            stats = self._stats(backward_fn)
            stats.backward_calls += 1
            stats.backward_seconds += seconds

    # Aggregates ------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        return sum(s.nodes for s in self.ops.values())

    @property
    def total_backward_seconds(self) -> float:
        return sum(s.backward_seconds for s in self.ops.values())

    @contextlib.contextmanager
    def timer(self, name: str):
        """Accumulate wall time of a forward-side region under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.regions[name] = self.regions.get(name, 0.0) + elapsed

    def summary(self, top: int = 15) -> str:
        """Human-readable table sorted by backward time."""
        lines = [f"{'op':24s} {'nodes':>8s} {'bwd calls':>10s} {'bwd ms':>10s}"]
        ranked = sorted(self.ops.items(),
                        key=lambda kv: -kv[1].backward_seconds)
        for name, stats in ranked[:top]:
            lines.append(f"{name:24s} {stats.nodes:8d} "
                         f"{stats.backward_calls:10d} "
                         f"{stats.backward_seconds * 1e3:10.2f}")
        lines.append(f"{'total':24s} {self.total_nodes:8d} "
                     f"{sum(s.backward_calls for s in self.ops.values()):10d} "
                     f"{self.total_backward_seconds * 1e3:10.2f}")
        for name, seconds in self.regions.items():
            lines.append(f"region {name}: {seconds * 1e3:.2f} ms")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Hook installation
# ----------------------------------------------------------------------
# Multiple profilers can be live simultaneously (nested contexts in one
# thread, or concurrent contexts across threads).  A single dispatcher
# is installed as the tensor-side hook while at least one is active and
# fans every event out to all of them; ``_INSTALL_LOCK`` serialises the
# activate/deactivate transitions so racing contexts can never strand a
# hook (or drop one another's).
_INSTALL_LOCK = threading.Lock()
_ACTIVE: tuple[Profiler, ...] = ()


class _Dispatcher:
    """Fans tensor-hook events out to every active profiler."""

    def record_node(self, backward_fn) -> None:
        for prof in _ACTIVE:
            prof.record_node(backward_fn)

    def record_backward(self, backward_fn, seconds: float) -> None:
        for prof in _ACTIVE:
            prof.record_backward(backward_fn, seconds)


_DISPATCHER = _Dispatcher()


def _activate(prof: Profiler) -> None:
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = _ACTIVE + (prof,)
        if len(_ACTIVE) == 1:
            _tensor._set_profile_hook(_DISPATCHER)


def _deactivate(prof: Profiler) -> None:
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = tuple(p for p in _ACTIVE if p is not prof)
        if not _ACTIVE:
            _tensor._set_profile_hook(None)


@contextlib.contextmanager
def profile():
    """Context manager: activate profiling, yield the :class:`Profiler`.

    Safe to nest and safe to run concurrently from multiple threads:
    every live profiler records every event, and the tensor hook stays
    installed until the last context exits.
    """
    prof = Profiler()
    _activate(prof)
    try:
        yield prof
    finally:
        _deactivate(prof)
