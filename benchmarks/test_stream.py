"""Streaming ingestion benchmark: sustained events/sec windower → engine.

The ISSUE's acceptance criterion for the streaming tier is a sustained
ingestion floor: events flow through incremental session assembly and
every closed window's sessions are scored through the micro-batched
engine.  The floor is deliberately far below what CI-class hosts
measure (typically tens of thousands of events/sec) — it is a
regression tripwire for someone accidentally making window handling
quadratic or forcing batch-1 scoring, not a headline number.
``benchmarks/results/latest.txt`` records what was measured.

Marked ``smoke``: trains a deliberately tiny CLFD so the whole bench is
seconds, and uses only the ``report`` fixture (the CI stream job does
not install pytest-benchmark).
"""

import time

import numpy as np
import pytest

from repro import CLFD, CLFDConfig
from repro.data import Word2VecConfig, apply_uniform_noise, make_dataset
from repro.serve import InferenceEngine, ServeConfig
from repro.stream import SessionWindower, synthesize_drifting_events

EVENTS_FLOOR = 500.0  # events/sec; measured throughput is ~50-100x this


@pytest.fixture(scope="module")
def stream_setup():
    rng = np.random.default_rng(23)
    train, _ = make_dataset("cert", rng, scale=0.02)
    apply_uniform_noise(train, eta=0.2, rng=rng)
    config = CLFDConfig(
        embedding_dim=12, hidden_size=16, batch_size=32, aux_batch_size=8,
        ssl_epochs=1, supcon_epochs=2, classifier_epochs=20,
        word2vec=Word2VecConfig(dim=12, epochs=1),
    )
    model = CLFD(config).fit(train, rng=np.random.default_rng(0))
    events = synthesize_drifting_events(
        "cert", n_sessions=400, drift="none", spacing=2.0,
        max_session_length=16, rng=7)
    return model, events


@pytest.mark.smoke
def test_stream_ingestion_throughput(stream_setup, report):
    model, events = stream_setup
    windower = SessionWindower(window_size=40.0, session_gap=4.0,
                               max_session_len=16)
    windows = sessions = 0
    with InferenceEngine(model, ServeConfig(verbose=False)) as engine:
        start = time.perf_counter()
        for event in events:
            for window in windower.process(event):
                windows += 1
                sessions += len(window.sessions)
                if window.sessions:
                    engine.score_many(
                        [{"activities": list(s.activities)}
                         for s in window.sessions])
        for window in windower.flush():
            windows += 1
            sessions += len(window.sessions)
            if window.sessions:
                engine.score_many(
                    [{"activities": list(s.activities)}
                     for s in window.sessions])
        elapsed = time.perf_counter() - start

    events_per_sec = len(events) / elapsed
    report()
    report(f"Stream ingestion ({len(events)} events, {sessions} sessions "
           f"across {windows} windows):")
    report(f"  windower -> engine     {events_per_sec:8.0f} events/s  "
           f"({sessions / elapsed:.0f} sessions/s)")
    assert windows > 0 and sessions > 0
    assert events_per_sec >= EVENTS_FLOOR, (
        f"stream ingestion at {events_per_sec:.0f} events/s is below "
        f"the {EVENTS_FLOOR:.0f}/s acceptance floor")
