"""MicroBatcher behaviour: coalescing, ordering, errors, backpressure."""

import threading
import time

import pytest

from repro.serve import MicroBatcher, QueueFullError


def test_results_map_back_to_items():
    with MicroBatcher(lambda items: [x * 2 for x in items],
                      max_batch=4, max_wait_ms=5) as batcher:
        futures = [batcher.submit(i) for i in range(10)]
        assert [f.result(timeout=5) for f in futures] == [i * 2
                                                          for i in range(10)]


def test_concurrent_submissions_coalesce():
    batch_sizes = []
    release = threading.Event()

    def process(items):
        release.wait(timeout=5)  # hold the first batch so others pile up
        batch_sizes.append(len(items))
        return items

    with MicroBatcher(process, max_batch=8, max_wait_ms=50) as batcher:
        first = batcher.submit(0)
        futures = [batcher.submit(i) for i in range(1, 8)]
        release.set()
        first.result(timeout=5)
        for f in futures:
            f.result(timeout=5)
    # The 7 queued-while-busy items must have shared batches: strictly
    # fewer batches than items overall.
    assert sum(batch_sizes) == 8
    assert len(batch_sizes) < 8
    assert max(batch_sizes) > 1


def test_max_batch_is_respected():
    batch_sizes = []

    def process(items):
        batch_sizes.append(len(items))
        time.sleep(0.01)
        return items

    with MicroBatcher(process, max_batch=3, max_wait_ms=100) as batcher:
        futures = [batcher.submit(i) for i in range(9)]
        for f in futures:
            f.result(timeout=5)
    assert max(batch_sizes) <= 3


def test_process_failure_fails_batch_but_not_worker():
    calls = []

    def process(items):
        calls.append(list(items))
        if items[0] == "boom":
            raise ValueError("bad batch")
        return items

    with MicroBatcher(process, max_batch=1, max_wait_ms=0) as batcher:
        bad = batcher.submit("boom")
        with pytest.raises(ValueError):
            bad.result(timeout=5)
        # The worker must survive and keep scoring.
        assert batcher.submit("fine").result(timeout=5) == "fine"


def test_wrong_result_count_is_an_error():
    with MicroBatcher(lambda items: [1, 2, 3], max_batch=1,
                      max_wait_ms=0) as batcher:
        with pytest.raises(RuntimeError, match="results"):
            batcher.submit("x").result(timeout=5)


def test_backpressure_raises_queue_full():
    stall = threading.Event()

    def process(items):
        stall.wait(timeout=10)
        return items

    batcher = MicroBatcher(process, max_batch=1, max_wait_ms=0, max_queue=2)
    try:
        first = batcher.submit("in-flight")
        time.sleep(0.05)  # let the worker pick it up and stall
        batcher.submit("queued-1")
        batcher.submit("queued-2")
        with pytest.raises(QueueFullError):
            batcher.submit("overflow")
    finally:
        stall.set()
        first.result(timeout=5)
        batcher.close()


def test_close_rejects_new_work_and_drains():
    batcher = MicroBatcher(lambda items: items, max_batch=4, max_wait_ms=1)
    assert batcher.submit("a").result(timeout=5) == "a"
    batcher.close()
    with pytest.raises(RuntimeError):
        batcher.submit("late")
    batcher.close()  # idempotent


def test_submit_close_race_never_strands_a_future():
    """Regression: a submit racing close() could pass the _closed check,
    enqueue behind the shutdown sentinel, and hang forever — its future
    neither resolved by the worker (already gone) nor failed by close's
    drain (already finished).  With submit/close mutually exclusive,
    every submission either completes, fails with the close error, or
    is rejected with RuntimeError at the call site — within a bounded
    wait."""
    for _ in range(20):  # the race needs several attempts to interleave
        batcher = MicroBatcher(lambda items: items, max_batch=4,
                               max_wait_ms=0.1)
        start = threading.Barrier(2)
        outcomes = []

        def submitter():
            start.wait(timeout=5)
            for i in range(50):
                try:
                    future = batcher.submit(i)
                except RuntimeError:  # closed (or QueueFullError)
                    outcomes.append("rejected")
                    return
                try:
                    future.result(timeout=5)
                    outcomes.append("done")
                except RuntimeError:
                    outcomes.append("failed-by-close")

        thread = threading.Thread(target=submitter)
        thread.start()
        start.wait(timeout=5)
        batcher.close()
        thread.join(timeout=10)
        # A stranded future shows up as a hung submitter thread.
        assert not thread.is_alive(), "a submission hung after close()"
        assert outcomes, "submitter made no progress"
