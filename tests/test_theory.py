"""Executable checks of the paper's theoretical results (§VI, §VII).

Each theorem is verified numerically: limits by evaluation at small q,
bounds by property-based sampling, risk bounds by Monte-Carlo
estimation with a fixed classifier, and the gradient claims by
comparing autograd output against the closed forms in the paper.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.augment import sample_mixup
from repro.losses import cce_loss, gce_loss, sup_con_loss
from repro.nn import Tensor, one_hot, softmax


def _random_probs(rng, n):
    logits = rng.normal(size=(n, 2))
    return softmax(Tensor(logits))


# ----------------------------------------------------------------------
# Theorem 1: lim_{q->0} l_GCE^λ = l_CCE^λ
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(lam=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(min_value=0, max_value=1000))
def test_theorem1_gce_to_cce_limit(lam, seed):
    rng = np.random.default_rng(seed)
    probs = _random_probs(rng, 4)
    targets = lam * one_hot([0, 1, 0, 1], 2) + (1 - lam) * one_hot([1, 0, 1, 0], 2)
    cce = cce_loss(probs, targets).item()
    gce_small_q = gce_loss(probs, targets, q=1e-6).item()
    assert gce_small_q == pytest.approx(cce, rel=1e-3, abs=1e-4)


# ----------------------------------------------------------------------
# Theorem 2: min(λ, 1-λ)(2 - 2^{1-q})/q <= l_GCE^λ <= 1/q
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(q=st.floats(min_value=0.05, max_value=1.0),
       lam=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(min_value=0, max_value=1000))
def test_theorem2_mixup_gce_bounds(q, lam, seed):
    rng = np.random.default_rng(seed)
    probs = _random_probs(rng, 1)
    target = np.array([[lam, 1.0 - lam]])
    value = gce_loss(probs, target, q=q).item()
    lower = min(lam, 1.0 - lam) * (2.0 - 2.0 ** (1.0 - q)) / q
    assert lower - 1e-9 <= value <= 1.0 / q + 1e-9


# ----------------------------------------------------------------------
# Theorem 3: uniform noise risk bound R̃ <= R + η/q
# ----------------------------------------------------------------------
@pytest.mark.parametrize("eta", [0.1, 0.3, 0.45])
def test_theorem3_uniform_noise_risk_bound(eta):
    rng = np.random.default_rng(0)
    n, q = 4000, 0.7
    truth = (rng.random(n) < 0.2).astype(int)
    flips = rng.random(n) < eta
    noisy = np.where(flips, 1 - truth, truth)

    probs = _random_probs(rng, n)
    lam = rng.beta(0.5, 0.5, size=n)
    partner = rng.permutation(n)  # mixup partners (shared across risks)

    def mixup_targets(labels):
        onehot = one_hot(labels, 2)
        return lam[:, None] * onehot + (1 - lam)[:, None] * onehot[partner]

    clean_risk = gce_loss(probs, mixup_targets(truth), q=q).item()
    noisy_risk = gce_loss(probs, mixup_targets(noisy), q=q).item()
    assert noisy_risk <= clean_risk + eta / q + 0.05  # MC slack


# ----------------------------------------------------------------------
# Theorem 4: class-dependent noise risk bound
# ----------------------------------------------------------------------
def test_theorem4_class_dependent_risk_bound():
    rng = np.random.default_rng(1)
    n, q = 4000, 0.7
    eta_10, eta_01 = 0.3, 0.45
    truth = (rng.random(n) < 0.3).astype(int)
    draws = rng.random(n)
    flips = np.where(truth == 1, draws < eta_10, draws < eta_01)
    noisy = np.where(flips, 1 - truth, truth)

    probs = _random_probs(rng, n)
    lam = rng.beta(0.5, 0.5, size=n)
    partner = rng.permutation(n)

    def mixup_targets(labels):
        onehot = one_hot(labels, 2)
        return lam[:, None] * onehot + (1 - lam)[:, None] * onehot[partner]

    noisy_risk = gce_loss(probs, mixup_targets(noisy), q=q).item()

    clean_losses = gce_loss(probs, mixup_targets(truth), q=q,
                            reduction="none").data
    risk_pos = clean_losses[truth == 1].mean()
    risk_neg = clean_losses[truth == 0].mean()
    tau1 = (noisy == 1).mean()
    tau0 = (noisy == 0).mean()
    bound = (tau1 * (risk_pos + eta_10 / q)
             + tau0 * (risk_neg + eta_01 / q))
    assert noisy_risk <= bound + 0.05  # MC slack


# ----------------------------------------------------------------------
# Theorem 5 (operational form): confidence weighting bounds L_Sup by the
# oracle loss as corrections become perfect, and never amplifies pairs.
# ----------------------------------------------------------------------
def test_theorem5_weighted_loss_bounded_by_oracle():
    rng = np.random.default_rng(2)
    n = 12
    z = Tensor(rng.normal(size=(n, 6)))
    truth = np.array([0, 1] * (n // 2))

    # Perfect corrector (labels = truth, c = 1): L_Sup == L_Orc exactly.
    weighted = sup_con_loss(z, truth, confidences=np.ones(n)).item()
    oracle = sup_con_loss(z, truth, variant="unweighted").item()
    assert weighted == pytest.approx(oracle)

    # Imperfect confidences shrink the loss below the oracle level:
    # uncertain pairs contribute less learning signal, never more.
    conf = rng.uniform(0.5, 1.0, size=n)
    damped = sup_con_loss(z, truth, confidences=conf).item()
    assert damped <= oracle + 1e-12


def test_theorem5_low_confidence_pairs_contribute_less_gradient():
    """The c_i c_p factor scales each pair's gradient (Eq. 7)."""
    rng = np.random.default_rng(3)
    z_data = rng.normal(size=(6, 4))
    labels = np.array([0, 0, 0, 1, 1, 1])

    def encoder_grad(conf):
        z = Tensor(z_data, requires_grad=True)
        sup_con_loss(z, labels, confidences=conf).backward()
        return np.abs(z.grad).sum()

    high = encoder_grad(np.ones(6))
    low = encoder_grad(np.full(6, 0.6))
    assert low < high


# ----------------------------------------------------------------------
# Eq. 4: GCE gradient weight w_ik = m_ik * f_k^{q-1}
# ----------------------------------------------------------------------
def test_eq4_gce_gradient_weights_match_autograd():
    rng = np.random.default_rng(4)
    q = 0.7
    probs_data = rng.dirichlet(np.ones(2), size=5)
    targets = rng.dirichlet(np.ones(2), size=5)
    probs = Tensor(probs_data, requires_grad=True)
    gce_loss(probs, targets, q=q, reduction="sum").backward()
    analytic = -targets * probs_data ** (q - 1.0)
    np.testing.assert_allclose(probs.grad, analytic, rtol=1e-6)


# ----------------------------------------------------------------------
# §VII: loss-variant analysis
# ----------------------------------------------------------------------
def test_s7_unweighted_equals_weighted_at_full_confidence():
    """When the corrector is fully confident (c ≈ 1), ∂L_Sup ≈ ∂L_Sup^uw."""
    rng = np.random.default_rng(5)
    z_data = rng.normal(size=(8, 5))
    labels = rng.integers(0, 2, size=8)

    def grad(variant, conf=None):
        z = Tensor(z_data, requires_grad=True)
        sup_con_loss(z, labels, confidences=conf, variant=variant).backward()
        return z.grad

    np.testing.assert_allclose(grad("weighted", np.ones(8)),
                               grad("unweighted"))


def test_s7_filtered_gradient_is_masked_unweighted_gradient():
    """∂L_Sup^ftr keeps exactly the pairs with c_i c_p > τ (Eq. 21)."""
    rng = np.random.default_rng(6)
    z_data = rng.normal(size=(6, 4))
    labels = np.array([0, 0, 1, 1, 0, 1])
    conf = np.array([0.95, 0.95, 0.6, 0.6, 0.95, 0.95])
    tau = 0.7

    z = Tensor(z_data, requires_grad=True)
    sup_con_loss(z, labels, confidences=conf, variant="filtered",
                 threshold=tau).backward()
    filtered_grad = z.grad.copy()

    # Equivalent explicit construction: binary weights as confidences is
    # NOT the same (weights multiply), so check via the weighted variant
    # with 0/1 "confidences" constructed per-pair — here all surviving
    # pairs are among the c=0.95 rows, whose pairwise products > τ.
    survivors = conf > np.sqrt(tau)
    z2 = Tensor(z_data, requires_grad=True)
    # Pairs among survivors only — realised by zeroing the others.
    pseudo_conf = survivors.astype(float)
    sup_con_loss(z2, labels, confidences=pseudo_conf,
                 variant="filtered", threshold=tau).backward()
    np.testing.assert_allclose(filtered_grad, z2.grad)


def test_s7_filter_threshold_extremes():
    """τ ≈ 1 discards everything; τ ≈ 0 recovers the unweighted loss."""
    rng = np.random.default_rng(7)
    z = Tensor(rng.normal(size=(6, 4)))
    labels = np.array([0, 1, 0, 1, 0, 1])
    conf = rng.uniform(0.6, 0.9, size=6)
    all_dropped = sup_con_loss(z, labels, confidences=conf,
                               variant="filtered", threshold=0.999).item()
    assert all_dropped == pytest.approx(0.0)
    recovered = sup_con_loss(z, labels, confidences=conf,
                             variant="filtered", threshold=0.0).item()
    unweighted = sup_con_loss(z, labels, variant="unweighted").item()
    assert recovered == pytest.approx(unweighted)


# ----------------------------------------------------------------------
# Mixup construction used throughout the theorems
# ----------------------------------------------------------------------
def test_mixup_targets_match_theorem_form():
    """m̃ = λẽ_i + (1-λ)ẽ_j with ỹ_j ≠ ỹ_i implies m̃ ∈ {(λ, 1-λ), (1-λ, λ)}."""
    rng = np.random.default_rng(8)
    labels = np.array([0, 1, 0, 1, 1, 0])
    batch = sample_mixup(labels, rng, beta=0.5, anchor_dominant=False)
    for i in range(len(labels)):
        lam = batch.lam[i]
        expected = (lam, 1 - lam) if labels[i] == 0 else (1 - lam, lam)
        np.testing.assert_allclose(batch.mixed_targets[i], expected)
