"""TaskSpec validation and cache-key semantics."""

import dataclasses

import numpy as np
import pytest

from repro.data import make_dataset
from repro.parallel import TaskSpec, task_key


def test_key_is_stable_across_calls(make_spec):
    spec = make_spec(seed=1)
    assert task_key(spec) == task_key(spec)
    assert task_key(spec) == task_key(make_spec(seed=1))


def test_key_ignores_display_name(make_spec):
    spec = make_spec()
    renamed = dataclasses.replace(spec, model="anything-else")
    assert task_key(spec) == task_key(renamed)


@pytest.mark.parametrize("field,value", [
    ("seed", 7),
    ("scale", 0.05),
    ("dataset", "openstack"),
    ("noise_params", (0.4,)),
    ("failpoint", "raise"),
])
def test_key_is_sensitive_to_content(make_spec, field, value):
    spec = make_spec()
    changed = dataclasses.replace(spec, **{field: value})
    assert task_key(spec) != task_key(changed)


def test_key_covers_every_hyperparameter(make_spec, tiny_config):
    spec = make_spec()
    bumped = dataclasses.replace(
        spec, config=dataclasses.replace(tiny_config, hidden_size=17))
    assert task_key(spec) != task_key(bumped)


def test_spec_validation(make_spec, tiny_config):
    with pytest.raises(ValueError, match="noise_kind"):
        TaskSpec(model="m", estimator="DeepLog", config=tiny_config,
                 dataset="cert", noise_kind="salt-and-pepper",
                 noise_params=(), seed=0, scale=0.02)
    with pytest.raises(ValueError, match="measure"):
        dataclasses.replace(make_spec(), measure="vibes")
    with pytest.raises(ValueError, match="CLFD"):
        dataclasses.replace(make_spec(), measure="correction_rates")


def test_noise_labels_match_runner():
    from repro.experiments import class_dependent_noise, uniform_noise

    uni = uniform_noise(0.45)
    cd = class_dependent_noise()
    base = dict(model="m", estimator="DeepLog", config=None, dataset="cert",
                seed=0, scale=0.02)
    uni_spec = TaskSpec(noise_kind=uni.kind, noise_params=uni.params, **base)
    cd_spec = TaskSpec(noise_kind=cd.kind, noise_params=cd.params, **base)
    assert uni_spec.noise_label == uni.label
    assert cd_spec.noise_label == cd.label


def test_apply_noise_matches_direct_application(make_spec):
    spec = make_spec(eta=0.3)
    train_a, _ = make_dataset("cert", np.random.default_rng(0), scale=0.02)
    train_b, _ = make_dataset("cert", np.random.default_rng(0), scale=0.02)
    spec.apply_noise(train_a, np.random.default_rng(1))
    from repro.data import apply_uniform_noise

    apply_uniform_noise(train_b, 0.3, np.random.default_rng(1))
    assert (train_a.noisy_labels() == train_b.noisy_labels()).all()
    assert (train_a.labels() != train_a.noisy_labels()).any()


def test_spec_pickles(make_spec):
    import pickle

    spec = make_spec(seed=3)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert task_key(clone) == task_key(spec)
