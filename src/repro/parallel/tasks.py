"""Self-describing grid tasks and their content-addressed cache keys.

A :class:`TaskSpec` captures everything needed to reproduce one cell of
an experiment table — estimator kind + full configuration, dataset,
noise process, seed, scale, and what to measure — as plain picklable
data.  Workers reconstruct the cell from the spec alone, so a spec can
cross a process boundary, be hashed into an on-disk cache key, or be
re-run years later with identical results (all randomness derives from
``spec.seed`` through deterministic generator streams).

The cache key is a SHA-256 over the canonical JSON of the spec plus a
format version: any change to the estimator configuration, noise
parameters, seed, scale, or measured quantity produces a different key,
while the display name (``model``) is presentation-only and excluded —
e.g. the "CLFD" row of Table IV shares cells with Table I.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

from ..data.noise import apply_class_dependent_noise, apply_uniform_noise
from ..data.sessions import SessionDataset

__all__ = ["TaskSpec", "task_key", "CACHE_FORMAT"]

# Bump when the execution semantics change in a way that invalidates
# previously cached records (new measure definitions, changed rng
# derivation, ...).
CACHE_FORMAT = 1

_NOISE_KINDS = ("uniform", "class-dependent", "none")
_MEASURES = ("test_metrics", "correction_rates")


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One grid cell: train ``estimator`` on a noisy split, measure it.

    Parameters
    ----------
    model: display name for reports (a Table I model or an ablation
        row); not part of the cache key.
    estimator: ``"clfd"`` or a key of :data:`repro.baselines.BASELINES`.
    config: the estimator's full configuration dataclass
        (:class:`~repro.core.CLFDConfig` / ``BaselineConfig``); carried
        whole so workers need no side channel and the cache key covers
        every hyper-parameter.
    dataset: benchmark name for :func:`repro.data.make_dataset`.
    noise_kind / noise_params: serialisable noise process —
        ``("uniform", (eta,))``, ``("class-dependent", (eta10, eta01))``
        or ``("none", ())``.
    seed: the cell's deterministic seed; the split generator, the noise
        draw and the training rng all derive from it, so the tuple
        ``(estimator, config, dataset, noise, seed, scale)`` fully
        determines the result.
    measure: ``"test_metrics"`` (Tables I/II/IV/V) or
        ``"correction_rates"`` (Table III TPR/TNR on the noisy train
        set; CLFD only).
    failpoint: fault-injection hook for tests — ``"raise"`` always
        fails, ``"flaky:N"`` fails the first N attempts, ``"crash"``
        kills the worker process outright.  ``None`` in real sweeps.
    """

    model: str
    estimator: str
    config: Any
    dataset: str
    noise_kind: str
    noise_params: tuple[float, ...]
    seed: int
    scale: float
    measure: str = "test_metrics"
    failpoint: str | None = None

    def __post_init__(self):
        if self.noise_kind not in _NOISE_KINDS:
            raise ValueError(f"noise_kind must be one of {_NOISE_KINDS}, "
                             f"got {self.noise_kind!r}")
        if self.measure not in _MEASURES:
            raise ValueError(f"measure must be one of {_MEASURES}, "
                             f"got {self.measure!r}")
        if self.measure == "correction_rates" and self.estimator != "clfd":
            raise ValueError("correction_rates is only defined for the "
                             "CLFD label corrector")
        object.__setattr__(self, "noise_params",
                           tuple(float(p) for p in self.noise_params))

    # ------------------------------------------------------------------
    @property
    def noise_label(self) -> str:
        """Same labels the sequential runner uses, for aggregation."""
        if self.noise_kind == "uniform":
            return f"eta={self.noise_params[0]}"
        if self.noise_kind == "class-dependent":
            return (f"eta10={self.noise_params[0]},"
                    f"eta01={self.noise_params[1]}")
        return "clean"

    def apply_noise(self, dataset: SessionDataset,
                    rng: np.random.Generator) -> None:
        if self.noise_kind == "uniform":
            apply_uniform_noise(dataset, self.noise_params[0], rng)
        elif self.noise_kind == "class-dependent":
            apply_class_dependent_noise(dataset, *self.noise_params, rng)

    def describe(self) -> str:
        """One-line cell description for progress output."""
        return (f"{self.model} {self.dataset} {self.noise_label} "
                f"seed{self.seed}")


def task_key(spec: TaskSpec) -> str:
    """Stable content hash of a spec (plus format fingerprint)."""
    payload = {
        "format": CACHE_FORMAT,
        "estimator": spec.estimator,
        "config_type": type(spec.config).__name__,
        "config": dataclasses.asdict(spec.config),
        "dataset": spec.dataset,
        "noise": [spec.noise_kind, list(spec.noise_params)],
        "seed": int(spec.seed),
        "scale": float(spec.scale),
        "measure": spec.measure,
        "failpoint": spec.failpoint,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]
