"""Shared fixtures for the training-runtime tests: a tiny noisy split.

Epoch counts are cut to the bone — resume tests run several full fits,
and what they assert (bit-identical state) is epoch-count independent.
"""

import numpy as np
import pytest

from repro.core import CLFDConfig
from repro.data import Word2VecConfig, apply_uniform_noise, make_dataset

TINY = dict(
    embedding_dim=12,
    hidden_size=16,
    batch_size=32,
    aux_batch_size=8,
    ssl_epochs=2,
    supcon_epochs=2,
    classifier_epochs=8,
    word2vec=Word2VecConfig(dim=12, epochs=1),
)


@pytest.fixture(scope="session")
def tiny_config():
    return CLFDConfig(**TINY)


@pytest.fixture(scope="session")
def tiny_data():
    rng = np.random.default_rng(11)
    train, test = make_dataset("cert", rng, scale=0.02)
    apply_uniform_noise(train, eta=0.2, rng=rng)
    return train, test
