"""Configuration for the CLFD framework.

Defaults follow §IV-A2 of the paper (dims 50, R=100, M=20, α=1, q=0.7,
β=16, Adam lr=0.005, 10 pre-training epochs, 500 classifier epochs).
The experiment harness overrides the epoch counts and dimensions with
CPU-sized values; see EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses

from ..data.word2vec import Word2VecConfig

__all__ = ["CLFDConfig"]

_CLASSIFIER_LOSSES = ("mixup_gce", "gce", "cce")
_SUPCON_VARIANTS = ("weighted", "unweighted", "filtered")
_INFERENCE_MODES = ("classifier", "centroid")


@dataclasses.dataclass
class CLFDConfig:
    """All hyper-parameters and ablation switches for CLFD.

    The ablation switches map one-to-one onto Table IV/V rows:

    ===========================  =======================================
    Table row                    Config
    ===========================  =======================================
    CLFD (full)                  defaults
    w/o LC                       ``use_label_corrector=False``
    w/o mixup-GCE                ``classifier_loss="gce"``
    w/o GCE loss                 ``classifier_loss="cce"``
    w/o FD                       ``use_fraud_detector=False``
    w/o L_Sup                    ``supcon_variant="unweighted"``
    w/o classifier (FD)          ``inference="centroid"``
    ===========================  =======================================
    """

    # Architecture (§IV-A2: all representation sizes are 50).
    embedding_dim: int = 50
    hidden_size: int = 50
    lstm_layers: int = 2
    # Encoder variants beyond the paper's LSTM+mean configuration.
    encoder_cell: str = "lstm"      # "lstm" | "gru" | "bilstm"
    pooling: str = "mean"           # "mean" | "attention"

    # Numerics: floating dtype for model parameters and activations, and
    # whether the recurrent layers use the fused sequence kernels
    # (``repro.nn.fused``) or the composed-op reference path.
    compute_dtype: str = "float64"  # "float32" | "float64"
    fused_rnn: bool = True
    # Debugging: run every training batch under ``nn.detect_anomaly()``,
    # so the first NaN/inf raises an AnomalyError naming the op and its
    # creation site (and lands in the journal) instead of silently
    # corrupting the run.  Costs an np.isfinite scan per graph node.
    detect_anomaly: bool = False
    # Performance: trace each training step once into a replayable tape
    # (``repro.nn.compile``) and replay it on every subsequent batch of
    # the same input signature.  Bit-identical to the interpreted path;
    # falls back (and journals why) for steps the tracer cannot handle.
    compile: bool = False

    # Batching: R sessions per batch, M auxiliary malicious sessions.
    batch_size: int = 100
    aux_batch_size: int = 20

    # Loss hyper-parameters.
    temperature: float = 1.0        # α in Eq. 6
    q: float = 0.7                  # GCE exponent
    # Beta(β, β) for mixup. The paper defines β ∈ [0, 1] (§III-A1) yet
    # sets β = 16 in §IV-A2; see repro.augment.mixup.sample_mixup for why
    # this implementation follows the formal definition.
    mixup_beta: float = 0.3
    filter_threshold: float = 0.7   # τ for the filtered variant

    # Optimisation.
    lr: float = 0.005
    ssl_epochs: int = 10            # SimCLR pre-training (label corrector)
    supcon_epochs: int = 10         # supervised pre-training (fraud detector)
    classifier_epochs: int = 500    # mixup-GCE classifier heads
    grad_clip: float = 5.0

    # Augmentation (CLDet session reordering window).
    reorder_sub_len: int = 3

    # Word2vec activity embeddings.
    word2vec: Word2VecConfig | None = None

    # Ablation switches (see class docstring).
    use_label_corrector: bool = True
    use_fraud_detector: bool = True
    classifier_loss: str = "mixup_gce"
    supcon_variant: str = "weighted"
    inference: str = "classifier"

    def __post_init__(self):
        if self.word2vec is None:
            self.word2vec = Word2VecConfig(dim=self.embedding_dim)
        if self.word2vec.dim != self.embedding_dim:
            raise ValueError("word2vec.dim must equal embedding_dim")
        if self.encoder_cell not in ("lstm", "gru", "bilstm"):
            raise ValueError("encoder_cell must be lstm, gru or bilstm")
        if self.pooling not in ("mean", "attention"):
            raise ValueError("pooling must be mean or attention")
        if self.compute_dtype not in ("float32", "float64"):
            raise ValueError("compute_dtype must be float32 or float64")
        if self.classifier_loss not in _CLASSIFIER_LOSSES:
            raise ValueError(
                f"classifier_loss must be one of {_CLASSIFIER_LOSSES}"
            )
        if self.supcon_variant not in _SUPCON_VARIANTS:
            raise ValueError(f"supcon_variant must be one of {_SUPCON_VARIANTS}")
        if self.inference not in _INFERENCE_MODES:
            raise ValueError(f"inference must be one of {_INFERENCE_MODES}")
        if not 0.0 < self.q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.batch_size < 2:
            raise ValueError("batch_size must be >= 2")
        for field in ("ssl_epochs", "supcon_epochs", "classifier_epochs"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")

    @classmethod
    def fast(cls, **overrides) -> "CLFDConfig":
        """CPU-sized configuration used by tests, examples and benches.

        Keeps the paper's loss hyper-parameters (q, β, α) but shrinks
        model width and epoch counts so a full train/eval cycle runs in
        seconds on a laptop.
        """
        defaults = dict(
            embedding_dim=16,
            hidden_size=24,
            batch_size=64,
            aux_batch_size=16,
            ssl_epochs=4,
            supcon_epochs=4,
            classifier_epochs=150,
            word2vec=Word2VecConfig(dim=16, epochs=2),
        )
        defaults.update(overrides)
        return cls(**defaults)
