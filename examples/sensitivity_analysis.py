"""Hyper-parameter sensitivity: sweep the GCE exponent q.

The paper fixes q = 0.7 following Zhang & Sabuncu; this example uses the
generic sweep runner to measure how sensitive CLFD is to that choice at
high noise, and renders the curve in the terminal.

Run:  python examples/sensitivity_analysis.py
"""

from repro.analysis import ascii_curve
from repro.experiments import (
    ExperimentSettings,
    format_sweep,
    sweep_config_field,
    uniform_noise,
)


def main():
    settings = ExperimentSettings(scale=0.1, seeds=1)
    qs = [0.3, 0.5, 0.7, 0.9]
    points = sweep_config_field("q", qs, settings=settings,
                                noise=uniform_noise(0.45), verbose=True)

    print()
    print(format_sweep("q", points))
    print()
    print(ascii_curve(qs, [p.f1.mean for p in points],
                      title="CLFD F1 vs GCE exponent q (cert, η=0.45)",
                      y_label="F1 %", height=10))


if __name__ == "__main__":
    main()
