"""Benchmark: the trace-once/replay executor vs interpreted dispatch.

Times the CLFD SSL training step (SessionEncoder + NT-Xent) end to end
— prepare, forward, backward, clip-free Adam step — compiled vs
interpreted, and proves the two runs bit-identical (params SHA-256,
plus deterministic journal entries in the Trainer-driven test).

The composed-op encoder is the workload the compiler exists for: every
primitive dispatches through Python, so graph reconstruction and
``zeros_like`` churn dominate the interpreted step; replaying the taped
closures over the preallocated grad arena removes both and measures
~2.2x on an idle host.  With the fused kernels on, the step is already
~2.4x faster in absolute terms and ~80% of it sits inside vectorised
NumPy loops both paths share, so replay adds only ~1.1x there.  The
assertion floor (1.5x) is a regression tripwire set below the worst
honest composed-path measurement, not the headline number —
``benchmarks/results/latest.txt`` records what was measured.
"""

import hashlib
import time

import numpy as np
import pytest

from repro import nn
from repro.core.encoder import SessionEncoder
from repro.losses import nt_xent_loss
from repro.train import Trainer, MetricJournal
from repro.train.journal import deterministic_entries

BATCH, TIME, DIM, HIDDEN = 64, 16, 16, 24
STEPS = 60


def _fingerprint(module: nn.Module) -> str:
    digest = hashlib.sha256()
    for key, value in sorted(module.state_dict().items()):
        digest.update(key.encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _make_encoder() -> tuple[SessionEncoder, nn.Adam]:
    enc = SessionEncoder(DIM, HIDDEN, np.random.default_rng(1),
                         num_layers=2, fused=False)
    return enc, nn.Adam(enc.parameters(), lr=1e-3)


def _make_step(enc: SessionEncoder, views, lengths) -> nn.StepProgram:
    def prepare(i):
        mask, denom = enc.pooling_arrays(lengths[i], TIME)
        return (np.ascontiguousarray(views[i, 0]),
                np.ascontiguousarray(views[i, 1]), mask, denom)

    def program(view_a, view_b, mask, denom):
        z_a = enc.forward_pooled(view_a, mask, denom)
        z_b = enc.forward_pooled(view_b, mask, denom)
        return nt_xent_loss(z_a, z_b, temperature=1.0)

    return nn.StepProgram(prepare, program)


def _ssl_data():
    rng = np.random.default_rng(0)
    views = rng.normal(size=(STEPS, 2, BATCH, TIME, DIM))
    lengths = rng.integers(4, TIME + 1, size=(STEPS, BATCH)).astype(float)
    return views, lengths


@pytest.mark.smoke
def test_compiled_ssl_step_speedup(report):
    """Segment-alternated timing: each path runs its own batch sequence
    in order (training is stateful), in alternating 15-step segments so
    slow machine states land on both paths — without the per-step
    interleaving that would let the interpreted path's graph-allocation
    churn evict the compiled tape's buffers between every step."""
    views, lengths = _ssl_data()
    enc_i, opt_i = _make_encoder()
    enc_c, opt_c = _make_encoder()
    step_i = _make_step(enc_i, views, lengths)
    runner = nn.compile_step(_make_step(enc_c, views, lengths))

    def interpreted(i):
        loss = step_i(i)
        opt_i.zero_grad()
        loss.backward()
        opt_i.step()

    def compiled(i):
        runner.step_and_backward(i, opt_c)
        opt_c.step()

    total_i = total_c = 0.0
    segment = 15
    for start_step in range(0, STEPS, segment):
        steps = range(start_step, min(start_step + segment, STEPS))
        start = time.perf_counter()
        for i in steps:
            interpreted(i)
        elapsed_i = time.perf_counter() - start
        start = time.perf_counter()
        for i in steps:
            compiled(i)
        elapsed_c = time.perf_counter() - start
        if start_step > 0:  # first segment warms up both paths + trace
            total_i += elapsed_i
            total_c += elapsed_c

    assert runner.traces == 1 and not runner.disabled
    assert _fingerprint(enc_i) == _fingerprint(enc_c), (
        "compiled SSL step diverged from the interpreted path")
    timed = STEPS - segment
    per_i = total_i / timed * 1e3
    per_c = total_c / timed * 1e3
    speedup = total_i / total_c
    report()
    report(f"Compiled SSL step (batch={BATCH}, time={TIME}, "
           f"hidden={HIDDEN}, 2 composed-op GRU layers, NT-Xent):")
    report(f"  interpreted {per_i:7.2f} ms/step")
    report(f"  compiled    {per_c:7.2f} ms/step  ({speedup:.2f}x, "
           f"{runner.replays} replays of 1 trace)")
    assert speedup >= 1.5, (
        f"compiled step regressed: expected >= 1.5x over interpreted "
        f"dispatch (~2.2x measured), got {speedup:.2f}x")


@pytest.mark.smoke
def test_compiled_trainer_bit_identity(report, tmp_path):
    """Trainer-driven: params SHA-256 and journal bit-identical."""
    views, lengths = _ssl_data()

    def run(compile_flag: bool, tag: str):
        enc, opt = _make_encoder()
        journal = MetricJournal(tmp_path / f"{tag}.jsonl")
        trainer = Trainer(enc, opt, scope="ssl", journal=journal,
                          compile=compile_flag)
        step = _make_step(enc, views, lengths)
        batches = lambda rng: rng.permutation(8)
        trainer.fit(batches, step, epochs=3,
                    rng=np.random.default_rng(7))
        return _fingerprint(enc), journal.path

    fp_i, path_i = run(False, "interpreted")
    fp_c, path_c = run(True, "compiled")
    assert fp_i == fp_c, "compiled Trainer run diverged from interpreted"
    assert deterministic_entries(path_i) == deterministic_entries(path_c)
    events = [e.get("event") for e in MetricJournal(path_c, resume=True).entries()]
    assert "compile-trace" in events, "compiled path never traced"
    report()
    report("Compiled Trainer run: params SHA-256 and journal entries "
           "bit-identical to interpreted (3 epochs x 8 batches)")
