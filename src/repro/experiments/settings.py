"""Experiment-harness settings.

The paper's experiments run at full dataset scale with 5 seeds on a
V100; this harness defaults to CPU-sized runs and scales up through
environment variables:

* ``REPRO_SCALE``  — dataset scale factor (default 0.05 for benches);
* ``REPRO_SEEDS``  — number of repeated runs (default 1);
* ``REPRO_ETAS``   — comma-separated uniform noise rates.

Model hyper-parameters for experiments live here so every table uses
identical settings.
"""

from __future__ import annotations

import dataclasses
import os

from ..baselines import BaselineConfig
from ..core import CLFDConfig
from ..data.word2vec import Word2VecConfig

__all__ = ["ExperimentSettings", "DATASETS", "UNIFORM_ETAS",
           "CLASS_DEPENDENT_RATES"]

DATASETS = ("cert", "umd-wikipedia", "openstack")
UNIFORM_ETAS = (0.1, 0.2, 0.3, 0.45)
# η₁₀ = 0.3, η₀₁ = 0.45 (§IV-A2).
CLASS_DEPENDENT_RATES = (0.3, 0.45)


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@dataclasses.dataclass
class ExperimentSettings:
    """Scale/seed settings plus per-model configurations."""

    scale: float = 0.1
    seeds: int = 1
    etas: tuple[float, ...] = UNIFORM_ETAS

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        etas_env = os.environ.get("REPRO_ETAS")
        etas = (tuple(float(e) for e in etas_env.split(","))
                if etas_env else UNIFORM_ETAS)
        return cls(
            scale=_env_float("REPRO_SCALE", 0.1),
            seeds=_env_int("REPRO_SEEDS", 1),
            etas=etas,
        )

    def clfd_config(self) -> CLFDConfig:
        """The CLFD configuration used in every experiment table."""
        return CLFDConfig.fast(
            ssl_epochs=8,
            word2vec=Word2VecConfig(dim=16, epochs=4),
        )

    def baseline_config(self) -> BaselineConfig:
        return BaselineConfig(
            epochs=10,
            word2vec=Word2VecConfig(dim=16, epochs=4),
        )
