"""Archive quantization: determinism, the kind table, and refusal cases."""

import json

import numpy as np
import pytest

from repro.core.persistence import read_archive
from repro.quant import (PRECISIONS, SCALE_SUFFIX, apply_precision,
                         quantize_archive, quantize_arrays)


def test_quantize_archive_bytes_are_deterministic(teacher_archive,
                                                  tmp_path):
    """Same source archive -> bit-identical quantized bytes, every run.

    This is the reproducibility contract the accuracy gate leans on: a
    quantized deployment can be re-derived and diffed as plain files.
    """
    a = quantize_archive(teacher_archive, tmp_path / "a", precision="int8")
    b = quantize_archive(teacher_archive, tmp_path / "b", precision="int8")
    assert a.read_bytes() == b.read_bytes()


def test_quantized_archive_is_smaller(teacher_archive, int8_archive):
    assert int8_archive.stat().st_size < teacher_archive.stat().st_size


def test_v3_meta_and_kind_table(int8_archive):
    meta, arrays = read_archive(int8_archive)
    assert meta["format_version"] == 3
    assert meta["has_corrector"] is False
    quant = meta["quant"]
    assert quant["precision"] == "int8"
    kinds = quant["arrays"]
    # Embedding table: row-scaled float16 with a float32 scale companion.
    assert kinds["word2vec/vectors"] == "fp16_rows"
    assert arrays["word2vec/vectors"].dtype == np.float16
    assert arrays["word2vec/vectors" + SCALE_SUFFIX].dtype == np.float32
    # Every 2-D detector weight: int8 payload + per-channel scales.
    fc1 = "detector/classifier/fc1.weight"
    assert kinds[fc1] == "int8"
    assert arrays[fc1].dtype == np.int8
    assert arrays[fc1 + SCALE_SUFFIX].shape == (arrays[fc1].shape[1],)
    # Biases and centroids stay raw float32.
    assert kinds["detector/classifier/fc1.bias"] == "raw"
    assert arrays["detector/classifier/fc1.bias"].dtype == np.float32
    assert kinds["detector/centroids"] == "raw"
    # The training-only corrector is dropped entirely.
    assert not any(key.startswith("corrector/") for key in arrays)
    assert not any(key.startswith("corrector/") for key in kinds)


@pytest.mark.parametrize("precision", PRECISIONS)
def test_every_precision_produces_a_loadable_archive(teacher_archive,
                                                     tmp_path, precision):
    from repro.core import load_clfd

    path = quantize_archive(teacher_archive, tmp_path / precision,
                            precision=precision)
    model = load_clfd(path)
    assert model.precision == precision


def test_float16_precision_stores_fp16_matrices(teacher_archive, tmp_path):
    path = quantize_archive(teacher_archive, tmp_path / "f16",
                            precision="float16")
    meta, arrays = read_archive(path)
    fc1 = "detector/classifier/fc1.weight"
    assert meta["quant"]["arrays"][fc1] == "fp16"
    assert arrays[fc1].dtype == np.float16
    assert fc1 + SCALE_SUFFIX not in arrays


def test_rejects_bad_precision(teacher_archive, tmp_path):
    with pytest.raises(ValueError):
        quantize_archive(teacher_archive, tmp_path / "bad",
                         precision="int4")


def test_rejects_double_quantization(int8_archive, tmp_path):
    with pytest.raises(ValueError):
        quantize_archive(int8_archive, tmp_path / "twice",
                         precision="float16")


def test_rejects_detectorless_archive(teacher_archive):
    meta, arrays = read_archive(teacher_archive)
    meta = json.loads(json.dumps(meta))
    meta["has_detector"] = False
    with pytest.raises(ValueError):
        quantize_arrays(meta, arrays, "int8")


def test_quantize_arrays_leaves_inputs_untouched(teacher_archive):
    meta, arrays = read_archive(teacher_archive)
    before = {key: value.copy() for key, value in arrays.items()}
    quantize_arrays(meta, arrays, "int8")
    assert meta.get("quant") is None
    assert meta["format_version"] != 3
    for key, value in before.items():
        np.testing.assert_array_equal(arrays[key], value)


def test_apply_precision_routing(teacher_archive, int8_archive):
    full_meta, full_arrays = read_archive(teacher_archive)
    q_meta, q_arrays = read_archive(int8_archive)
    # None = serve as persisted (no-op for both).
    out = apply_precision(full_meta, full_arrays, None)
    assert out[0] is full_meta and out[1] is full_arrays
    out = apply_precision(q_meta, q_arrays, None)
    assert out[0] is q_meta and out[1] is q_arrays
    # Matching precision on a quantized archive is a no-op too.
    out = apply_precision(q_meta, q_arrays, "int8")
    assert out[0] is q_meta and out[1] is q_arrays
    # A full archive quantizes on the fly.
    meta, _ = apply_precision(full_meta, full_arrays, "int8")
    assert meta["quant"]["precision"] == "int8"
    # A quantized archive refuses a different precision.
    with pytest.raises(ValueError):
        apply_precision(q_meta, q_arrays, "float16")


def test_on_the_fly_matches_persisted_quantization(teacher_archive,
                                                   int8_archive):
    """load_clfd(precision=...) and a pre-quantized v3 archive must be
    the same arrays bit for bit."""
    full_meta, full_arrays = read_archive(teacher_archive)
    live_meta, live_arrays = apply_precision(full_meta, full_arrays, "int8")
    persisted_meta, persisted_arrays = read_archive(int8_archive)
    assert live_meta["quant"] == persisted_meta["quant"]
    assert set(live_arrays) == set(persisted_arrays)
    for key in live_arrays:
        assert live_arrays[key].dtype == persisted_arrays[key].dtype
        np.testing.assert_array_equal(live_arrays[key],
                                      persisted_arrays[key])
