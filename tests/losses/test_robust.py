"""Tests for GCE / CCE / MAE losses, including the paper's limit claims."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.losses import cce_loss, gce_loss, mae_loss
from repro.nn import Tensor, one_hot, softmax


def _probs(rows):
    return softmax(Tensor(np.asarray(rows, dtype=float), requires_grad=True))


def test_gce_zero_when_confident_and_correct():
    probs = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
    targets = one_hot([0, 1], 2)
    assert gce_loss(probs, targets, q=0.7).item() == pytest.approx(0.0, abs=1e-6)


def test_gce_maximal_when_confidently_wrong():
    probs = Tensor(np.array([[0.0, 1.0]]))
    targets = one_hot([0], 2)
    # Upper bound of GCE for one-hot target is (1 - floor^q) / q: the
    # probability floor (1e-4) bounds the gradient q * p^(q-1) so the
    # loss saturates just below the theoretical 1/q.
    from repro.losses.robust import _PROB_FLOOR

    bound = (1.0 - _PROB_FLOOR ** 0.5) / 0.5
    assert gce_loss(probs, targets, q=0.5).item() == pytest.approx(bound,
                                                                   abs=1e-5)


def test_gce_q_validation():
    probs = Tensor(np.array([[0.5, 0.5]]))
    for bad_q in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            gce_loss(probs, one_hot([0], 2), q=bad_q)


def test_gce_shape_validation():
    with pytest.raises(ValueError):
        gce_loss(Tensor(np.ones((2, 2)) / 2), np.ones((3, 2)))


def test_gce_reductions():
    probs = Tensor(np.full((4, 2), 0.5))
    targets = one_hot([0, 0, 1, 1], 2)
    none = gce_loss(probs, targets, reduction="none")
    assert none.shape == (4,)
    total = gce_loss(probs, targets, reduction="sum").item()
    mean = gce_loss(probs, targets, reduction="mean").item()
    assert total == pytest.approx(mean * 4)
    with pytest.raises(ValueError):
        gce_loss(probs, targets, reduction="median")


def test_gce_at_q1_equals_mae():
    probs = _probs([[0.3, 1.2], [0.7, -0.5], [2.0, 1.0]])
    targets = one_hot([1, 0, 0], 2)
    gce = gce_loss(probs, targets, q=1.0).item()
    mae = mae_loss(probs, targets).item()
    assert gce == pytest.approx(mae, abs=1e-10)


def test_theorem1_gce_limits_to_cce_as_q_to_zero():
    """Theorem 1: lim_{q->0} GCE = CCE, also for soft mixup targets."""
    probs = _probs([[0.5, 0.1], [-1.0, 0.3]])
    mixed = np.array([[0.6, 0.4], [0.2, 0.8]])  # mixup targets
    cce = cce_loss(probs, mixed).item()
    for q, tol in ((1e-3, 1e-2), (1e-5, 1e-4)):
        assert gce_loss(probs, mixed, q=q).item() == pytest.approx(cce, abs=tol)


def test_cce_matches_nll_on_hard_labels():
    probs = Tensor(np.array([[0.9, 0.1], [0.2, 0.8]]))
    targets = one_hot([0, 1], 2)
    expected = -(np.log(0.9) + np.log(0.8)) / 2
    assert cce_loss(probs, targets).item() == pytest.approx(expected)


def test_losses_backpropagate():
    logits = Tensor(np.array([[0.2, -0.4], [1.0, 0.5]]), requires_grad=True)
    probs = softmax(logits)
    gce_loss(probs, one_hot([0, 1], 2), q=0.7).backward()
    assert logits.grad is not None
    assert np.isfinite(logits.grad).all()


def test_gce_gradient_downweights_weak_agreement():
    """§III-A1: GCE gradient weight w = t·p^(q-1)·p' gives *less* weight to
    samples whose prediction disagrees with the target than CCE does.

    We check the ratio grad(disagree)/grad(agree) is smaller for GCE.
    """
    def grad_norm(loss_fn, logit_row, label):
        logits = Tensor(np.array([logit_row]), requires_grad=True)
        loss_fn(softmax(logits), one_hot([label], 2)).backward()
        return float(np.abs(logits.grad).sum())

    agree = [2.0, -2.0]      # prediction matches label 0
    disagree = [-2.0, 2.0]   # prediction contradicts label 0
    gce_ratio = (grad_norm(lambda p, t: gce_loss(p, t, 0.7), disagree, 0)
                 / grad_norm(lambda p, t: gce_loss(p, t, 0.7), agree, 0))
    cce_ratio = (grad_norm(cce_loss, disagree, 0)
                 / grad_norm(cce_loss, agree, 0))
    assert gce_ratio < cce_ratio


@settings(max_examples=40, deadline=None)
@given(q=st.floats(min_value=0.05, max_value=1.0),
       lam=st.floats(min_value=0.0, max_value=1.0),
       logit=st.floats(min_value=-8.0, max_value=8.0))
def test_theorem2_bounds_hold(q, lam, logit):
    """Theorem 2: min(λ,1-λ)·(2-2^(1-q))/q <= l_GCE^λ <= 1/q."""
    probs = softmax(Tensor(np.array([[logit, -logit]])))
    mixed = np.array([[lam, 1.0 - lam]])
    value = gce_loss(probs, mixed, q=q).item()
    lower = min(lam, 1.0 - lam) * (2.0 - 2.0 ** (1.0 - q)) / q
    upper = 1.0 / q
    # The probability floor raises a near-zero p to _PROB_FLOOR, which
    # lowers the loss by at most floor^q / q relative to the exact
    # bound; the theorem holds up to that slack.
    from repro.losses.robust import _PROB_FLOOR

    floor_slack = _PROB_FLOOR ** q / q
    assert lower - floor_slack - 1e-9 <= value <= upper + 1e-9


@settings(max_examples=40, deadline=None)
@given(q=st.floats(min_value=0.05, max_value=1.0),
       a=st.floats(min_value=-5, max_value=5),
       b=st.floats(min_value=-5, max_value=5))
def test_gce_nonnegative_property(q, a, b):
    probs = softmax(Tensor(np.array([[a, b]])))
    value = gce_loss(probs, one_hot([0], 2), q=q).item()
    assert value >= -1e-12


def test_mae_bounded_by_two():
    probs = Tensor(np.array([[0.0, 1.0]]))
    assert mae_loss(probs, one_hot([0], 2)).item() == pytest.approx(1.0)


# ----------------------------------------------------------------------
# q -> 0 stability (numerics hardening)
# ----------------------------------------------------------------------
def test_gce_tiny_q_with_near_zero_probs_gradchecks():
    """Regression: with the old 1e-12 probability floor, the gradient
    q*p^(q-1) reached ~1e9 for q=1e-3 on near-zero rows and finite
    differences disagreed by ~3e6.  The unified 1e-4 floor keeps the
    power path bounded, so a plain gradcheck must pass."""
    from repro.nn.gradcheck import check_gradients

    logits = Tensor(np.array([[8.0, -8.0], [-8.0, 8.0], [0.3, -0.2]]),
                    requires_grad=True)
    targets = one_hot([1, 0, 0], 2)  # confidently wrong rows -> p ~ 1e-7

    def fn():
        return gce_loss(softmax(logits), targets, q=1e-3)

    check_gradients(fn, [logits])


def test_gce_tiny_q_gradients_are_bounded():
    probs = Tensor(np.array([[1.0 - 1e-9, 1e-9]]), requires_grad=True)
    targets = one_hot([1], 2)
    loss = gce_loss(probs, targets, q=1e-3)
    loss.backward()
    assert np.isfinite(probs.grad).all()
    # The floor caps |dL/dp| at q * floor^(q-1) ~ 10 for q=1e-3.
    assert np.abs(probs.grad).max() < 100.0


def test_gce_and_sce_share_probability_floor():
    from repro.losses.extensions import _PROB_FLOOR as sce_floor
    from repro.losses.robust import _PROB_FLOOR as gce_floor

    assert gce_floor == sce_floor == 1e-4
