"""Shared fixtures for baseline tests."""

import numpy as np
import pytest

from repro.baselines import BaselineConfig
from repro.data import Word2VecConfig, apply_uniform_noise, make_dataset


@pytest.fixture(scope="session")
def small_config():
    return BaselineConfig(
        embedding_dim=12,
        hidden_size=16,
        batch_size=32,
        epochs=2,
        word2vec=Word2VecConfig(dim=12, epochs=1),
    )


@pytest.fixture(scope="session")
def noisy_split():
    rng = np.random.default_rng(13)
    train, test = make_dataset("openstack", rng, scale=0.02)
    apply_uniform_noise(train, eta=0.2, rng=rng)
    return train, test
