"""Fused recurrent kernels: parity with the reference path, dtype
handling, and the op-level profiler hooks."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


def _twin_models(cls, seed=7, input_size=5, hidden=6):
    """Identically initialised fused / unfused instances."""
    fused = cls(input_size, hidden, np.random.default_rng(seed), fused=True)
    ref = cls(input_size, hidden, np.random.default_rng(seed), fused=False)
    return fused, ref


@pytest.mark.parametrize("cls", [nn.LSTM, nn.GRU, nn.BiLSTM])
def test_fused_matches_reference_forward_and_backward(cls):
    """Acceptance criterion: fused vs unfused max abs diff < 1e-6 in
    float64, for outputs, final states, parameter grads and input grads."""
    fused, ref = _twin_models(cls)
    xs = np.random.default_rng(0).normal(size=(4, 9, 5))
    x_f = Tensor(xs, requires_grad=True)
    x_r = Tensor(xs.copy(), requires_grad=True)

    res_f, res_r = fused(x_f), ref(x_r)
    if isinstance(res_f, tuple):  # LSTM/GRU return (outputs, state)
        out_f, state_f = res_f
        out_r, state_r = res_r
        states_f = state_f if isinstance(state_f, tuple) else (state_f,)
        states_r = state_r if isinstance(state_r, tuple) else (state_r,)
    else:  # BiLSTM returns the concatenated per-step outputs
        out_f, out_r = res_f, res_r
        states_f, states_r = (), ()
    np.testing.assert_allclose(out_f.data, out_r.data, atol=1e-6)
    for s_f, s_r in zip(states_f, states_r):
        np.testing.assert_allclose(s_f.data, s_r.data, atol=1e-6)

    # Involve the final state (when there is one) in the loss so its
    # backward path is tested.
    loss_f = (out_f * out_f).sum()
    loss_r = (out_r * out_r).sum()
    if states_f:
        loss_f = loss_f + (states_f[-1] * 1.3).sum()
        loss_r = loss_r + (states_r[-1] * 1.3).sum()
    loss_f.backward()
    loss_r.backward()
    np.testing.assert_allclose(x_f.grad, x_r.grad, atol=1e-6)
    for p_f, p_r in zip(fused.parameters(), ref.parameters()):
        np.testing.assert_allclose(p_f.grad, p_r.grad, atol=1e-6)


@pytest.mark.parametrize("cls", [nn.LSTM, nn.GRU, nn.BiLSTM])
def test_fused_mean_pool_matches_reference(cls):
    fused, ref = _twin_models(cls)
    rng = np.random.default_rng(1)
    xs = rng.normal(size=(3, 7, 5))
    lengths = np.array([7, 4, 2])
    pooled_f = fused.mean_pool(Tensor(xs), lengths)
    pooled_r = ref.mean_pool(Tensor(xs), lengths)
    np.testing.assert_allclose(pooled_f.data, pooled_r.data, atol=1e-6)


@pytest.mark.parametrize("cls", [nn.LSTM, nn.GRU, nn.BiLSTM])
def test_fused_float32_stays_float32(cls):
    with nn.default_dtype(np.float32):
        model = cls(5, 6, np.random.default_rng(2), fused=True)
        x = Tensor(np.random.default_rng(3).normal(size=(2, 4, 5)),
                   dtype=np.float32, requires_grad=True)
        out = model(x)[0]
        assert out.data.dtype == np.float32
        (out * out).sum().backward()
        assert x.grad.dtype == np.float32
        for p in model.parameters():
            assert p.data.dtype == np.float32
            assert p.grad.dtype == np.float32


def test_fused_step_matches_unfused_cell_step():
    cell_f = nn.LSTMCell(4, 3, np.random.default_rng(5), fused=True)
    cell_r = nn.LSTMCell(4, 3, np.random.default_rng(5), fused=False)
    x = Tensor(np.random.default_rng(6).normal(size=(2, 4)))
    h_f, c_f = cell_f(x, cell_f.initial_state(2))
    h_r, c_r = cell_r(x, cell_r.initial_state(2))
    np.testing.assert_allclose(h_f.data, h_r.data, atol=1e-12)
    np.testing.assert_allclose(c_f.data, c_r.data, atol=1e-12)


def test_fused_sequence_final_states_match_step_loop():
    rng = np.random.default_rng(8)
    cell = nn.LSTMCell(5, 6, rng, fused=True)
    xs = rng.normal(size=(3, 4, 5))
    h, c = cell.initial_state(3)
    for t in range(4):
        h, c = cell(Tensor(xs[:, t, :]), (h, c))
    h_seq, h_t, c_t = nn.fused_lstm_sequence(
        Tensor(xs), *cell.initial_state(3), cell.w_x, cell.w_h, cell.bias)
    np.testing.assert_allclose(h_t.data, h.data, atol=1e-12)
    np.testing.assert_allclose(c_t.data, c.data, atol=1e-12)
    np.testing.assert_allclose(h_seq.data[:, -1, :], h.data, atol=1e-12)


def test_fused_works_under_no_grad():
    model = nn.LSTM(5, 6, np.random.default_rng(9), fused=True)
    x = Tensor(np.random.default_rng(10).normal(size=(2, 3, 5)))
    with nn.no_grad():
        out, _ = model(x)
    assert not out.requires_grad
    assert out.shape == (2, 3, 6)


def test_profiler_counts_nodes_and_backward_time():
    model = nn.LSTM(4, 5, np.random.default_rng(11), fused=True)
    x = Tensor(np.random.default_rng(12).normal(size=(2, 6, 4)),
               requires_grad=True)
    with nn.profile() as prof:
        out, _ = model(x)
        (out * out).sum().backward()
    assert prof.total_nodes > 0
    assert "fused_lstm_sequence" in prof.ops
    stats = prof.ops["fused_lstm_sequence"]
    assert stats.backward_calls >= model.num_layers
    assert prof.total_backward_seconds >= 0.0
    assert "fused_lstm_sequence" in prof.summary()


def test_profiler_is_inactive_outside_context():
    with nn.profile() as prof:
        pass
    before = prof.total_nodes
    t = Tensor([1.0], requires_grad=True)
    (t * 2.0).backward()
    assert prof.total_nodes == before
