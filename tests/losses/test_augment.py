"""Tests for session reordering and mixup augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.augment import (
    mix_representations,
    reorder_ids,
    reorder_session,
    sample_mixup,
)
from repro.data import MALICIOUS, NORMAL, Session
from repro.nn import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# ----------------------------------------------------------------------
# Session reordering
# ----------------------------------------------------------------------
def test_reorder_preserves_multiset(rng):
    ids = np.arange(1, 11)
    out = reorder_ids(ids, rng)
    assert sorted(out) == sorted(ids)


def test_reorder_changes_at_most_window(rng):
    ids = np.arange(1, 11)
    out = reorder_ids(ids, rng, sub_len=3)
    changed = np.flatnonzero(out != ids)
    if changed.size:
        assert changed.max() - changed.min() < 3


def test_reorder_respects_length_mask(rng):
    """Padding positions beyond `length` must never move."""
    ids = np.array([5, 6, 7, 0, 0, 0])
    for _ in range(20):
        out = reorder_ids(ids, rng, length=3)
        np.testing.assert_array_equal(out[3:], [0, 0, 0])
        assert sorted(out[:3]) == [5, 6, 7]


def test_reorder_short_sequences(rng):
    np.testing.assert_array_equal(reorder_ids(np.array([4]), rng), [4])
    out = reorder_ids(np.array([1, 2]), rng)
    assert sorted(out) == [1, 2]


def test_reorder_rejects_sub_len_one(rng):
    with pytest.raises(ValueError):
        reorder_ids(np.arange(5), rng, sub_len=1)


def test_reorder_session_copies_metadata(rng):
    s = Session([1, 2, 3, 4], MALICIOUS, noisy_label=NORMAL,
                session_id="sess", user="u1")
    aug = reorder_session(s, rng)
    assert aug.label == MALICIOUS
    assert aug.noisy_label == NORMAL
    assert aug.user == "u1"
    assert aug.session_id == "sess+aug"
    assert sorted(aug.activities) == [1, 2, 3, 4]
    assert s.activities == [1, 2, 3, 4]  # original untouched


def test_reorder_eventually_produces_change(rng):
    ids = np.arange(1, 9)
    assert any(not np.array_equal(reorder_ids(ids, rng), ids)
               for _ in range(50))


# ----------------------------------------------------------------------
# Mixup
# ----------------------------------------------------------------------
def test_mixup_partners_come_from_opposite_class(rng):
    labels = np.array([0, 0, 1, 1, 0, 1])
    batch = sample_mixup(labels, rng)
    for i, j in enumerate(batch.partner):
        assert labels[i] != labels[j]


def test_mixup_single_class_falls_back(rng):
    labels = np.zeros(4, dtype=int)
    batch = sample_mixup(labels, rng)
    assert set(batch.partner) <= {0, 1, 2, 3}


def test_mixup_targets_interpolate(rng):
    labels = np.array([0, 1])
    batch = sample_mixup(labels, rng, beta=16.0)
    lam = batch.lam
    np.testing.assert_allclose(batch.mixed_targets[0],
                               [lam[0], 1.0 - lam[0]])
    np.testing.assert_allclose(batch.mixed_targets[1],
                               [1.0 - lam[1], lam[1]])


def test_mixup_targets_are_distributions(rng):
    labels = np.array([0, 1, 0, 1, 1, 0, 0, 1])
    batch = sample_mixup(labels, rng)
    np.testing.assert_allclose(batch.mixed_targets.sum(axis=1), 1.0)
    assert (batch.mixed_targets >= 0).all()


def test_mixup_beta16_concentrates_near_half(rng):
    labels = np.tile([0, 1], 500)
    batch = sample_mixup(labels, rng, beta=16.0, anchor_dominant=False)
    assert abs(batch.lam.mean() - 0.5) < 0.02
    assert batch.lam.std() < 0.15


def test_mixup_anchor_dominant_keeps_majority_weight(rng):
    """Default λ' = max(λ, 1-λ): anchors keep >= half the weight, so the
    mixed targets' class prior follows the data (not 50/50)."""
    labels = np.array([0] * 90 + [1] * 10)
    batch = sample_mixup(labels, rng, beta=0.3)
    assert (batch.lam >= 0.5).all()
    malicious_mass = batch.mixed_targets[:, 1].mean()
    assert malicious_mass < 0.4  # prior ~0.1 stays nearer 0.1 than 0.5


def test_mixup_validation(rng):
    with pytest.raises(ValueError):
        sample_mixup(np.array([0, 1]), rng, beta=0.0)
    with pytest.raises(ValueError):
        sample_mixup(np.array([0]), rng)


def test_mix_representations_values_and_grads(rng):
    labels = np.array([0, 1, 0, 1])
    batch = sample_mixup(labels, rng)
    z = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    mixed = mix_representations(z, batch)
    expected = (batch.lam[:, None] * z.data
                + (1 - batch.lam)[:, None] * z.data[batch.partner])
    np.testing.assert_allclose(mixed.data, expected)
    mixed.sum().backward()
    assert z.grad is not None and np.isfinite(z.grad).all()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       beta=st.floats(min_value=0.1, max_value=32.0))
def test_mixup_lambda_in_unit_interval(seed, beta):
    labels = np.array([0, 1, 1, 0, 1])
    batch = sample_mixup(labels, np.random.default_rng(seed), beta=beta)
    assert ((batch.lam >= 0) & (batch.lam <= 1)).all()
