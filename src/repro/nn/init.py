"""Weight initialisation schemes.

Every initializer takes an explicit ``numpy.random.Generator`` so that
all model construction in this repository is reproducible from a seed.
Arrays are returned in the engine's default compute dtype (see
:func:`repro.nn.tensor.set_default_dtype`) unless ``dtype`` is given, so
models built under ``default_dtype("float32")`` train in float32
end-to-end.
"""

from __future__ import annotations

import numpy as np

from .tensor import get_default_dtype

__all__ = ["xavier_uniform", "xavier_normal", "uniform", "normal", "zeros", "orthogonal"]


def _cast(arr: np.ndarray, dtype) -> np.ndarray:
    return arr.astype(dtype if dtype is not None else get_default_dtype(),
                      copy=False)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator,
                  dtype=None) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _cast(rng.normal(0.0, std, size=shape), dtype)


def uniform(shape: tuple[int, ...], rng: np.random.Generator,
            low: float = -0.1, high: float = 0.1, dtype=None) -> np.ndarray:
    return _cast(rng.uniform(low, high, size=shape), dtype)


def normal(shape: tuple[int, ...], rng: np.random.Generator,
           std: float = 0.02, dtype=None) -> np.ndarray:
    return _cast(rng.normal(0.0, std, size=shape), dtype)


def zeros(shape: tuple[int, ...], dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=dtype if dtype is not None
                    else get_default_dtype())


def orthogonal(shape: tuple[int, int], rng: np.random.Generator,
               dtype=None) -> np.ndarray:
    """Orthogonal init (used for LSTM recurrent weights)."""
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(flat)
    q = q[:rows, :cols] if q.shape[0] >= rows else q.T[:rows, :cols]
    return _cast(np.ascontiguousarray(q), dtype)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer shapes must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
