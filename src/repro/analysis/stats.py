"""Paired significance tests for cross-seed sweep comparisons.

The paper's headline claims are *paired* comparisons: CLFD and each
baseline are trained on the same splits, the same noise draws, the same
seeds, so the correct tests are the paired t-test and the Wilcoxon
signed-rank test over per-seed differences, with Holm correction across
the family of baselines.

Implemented on numpy + math alone (the tier-1 CI image has no scipy):
the Student-t survival function goes through the regularized incomplete
beta function (Lentz's continued fraction), and the Wilcoxon null is
the exact signed-rank distribution for small n (a dynamic program over
doubled ranks, so midpoint ranks from ties stay integral) with the
tie-corrected normal approximation beyond.  Where scipy is installed,
the test suite cross-checks both against it.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

__all__ = ["PairedTest", "paired_t_test", "wilcoxon_signed_rank",
           "holm_correction", "t_sf", "regularized_incomplete_beta"]

_EXACT_WILCOXON_N = 25


# ----------------------------------------------------------------------
# Special functions (Numerical Recipes-style, float64 accurate ~1e-12)
# ----------------------------------------------------------------------
def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            return h
    return h  # pragma: no cover - 200 iterations always converge


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b) for a, b > 0 and 0 <= x <= 1."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0 or x == 1.0:
        return x
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log1p(-x))
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_sf(t: float, df: float) -> float:
    """One-sided survival function P(T >= t) of Student's t."""
    if math.isnan(t):
        return float("nan")
    if math.isinf(t):
        return 0.0 if t > 0 else 1.0
    p = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5,
                                          df / (df + t * t))
    return p if t >= 0 else 1.0 - p


# ----------------------------------------------------------------------
# Paired tests
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PairedTest:
    """One paired comparison of a target model against a baseline."""

    test: str               # "paired-t" or "wilcoxon"
    statistic: float
    pvalue: float           # two-sided
    n: int                  # pairs used (after zero-difference removal
    #                         for wilcoxon)
    mean_difference: float  # mean(target - baseline) over all pairs
    adjusted_pvalue: float | None = None  # filled by holm_correction

    def adjusted(self, pvalue: float) -> "PairedTest":
        return dataclasses.replace(self, adjusted_pvalue=float(pvalue))


def _pairs(x: Sequence[float], y: Sequence[float]) -> np.ndarray:
    x = np.asarray(list(x), dtype=np.float64)
    y = np.asarray(list(y), dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"paired samples need equal 1-d shapes, got "
                         f"{x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least 2 pairs")
    finite = np.isfinite(x) & np.isfinite(y)
    return x[finite] - y[finite]


def paired_t_test(x: Sequence[float], y: Sequence[float]) -> PairedTest:
    """Two-sided paired t-test of H0: mean(x - y) == 0.

    All-zero differences (the models are literally identical on every
    pair, common at small scales) are reported as p = 1.0 rather than
    the 0/0 NaN a naive implementation produces.
    """
    d = _pairs(x, y)
    n = int(d.size)
    if n < 2:
        return PairedTest("paired-t", float("nan"), float("nan"), n,
                          float(d.mean()) if n else float("nan"))
    mean = float(d.mean())
    sd = float(d.std(ddof=1))
    if sd == 0.0:
        statistic = 0.0 if mean == 0.0 else math.copysign(math.inf, mean)
        pvalue = 1.0 if mean == 0.0 else 0.0
        return PairedTest("paired-t", statistic, pvalue, n, mean)
    statistic = mean / (sd / math.sqrt(n))
    pvalue = 2.0 * t_sf(abs(statistic), n - 1)
    return PairedTest("paired-t", statistic, min(pvalue, 1.0), n, mean)


def _exact_wilcoxon_cdf(w_doubled: int, doubled_ranks: list[int]) -> float:
    """P(W+ <= w) under H0, ranks doubled so tie midpoints are ints."""
    total = sum(doubled_ranks)
    # counts[s] = number of sign assignments with doubled rank sum s.
    counts = np.zeros(total + 1, dtype=np.float64)
    counts[0] = 1.0
    for rank in doubled_ranks:
        counts[rank:] += counts[:-rank or None].copy()
    cdf = counts[: w_doubled + 1].sum() / counts.sum()
    return float(cdf)


def wilcoxon_signed_rank(x: Sequence[float],
                         y: Sequence[float]) -> PairedTest:
    """Two-sided Wilcoxon signed-rank test on paired samples.

    Zero differences are discarded (the classic Wilcoxon treatment);
    ties share midpoint ranks.  Exact null distribution for
    n <= 25 surviving pairs, tie- and continuity-corrected normal
    approximation beyond.
    """
    d_all = _pairs(x, y)
    mean_diff = float(d_all.mean())
    d = d_all[d_all != 0.0]
    n = int(d.size)
    if n < 2:
        # Degenerate: everything tied — no evidence of a difference.
        return PairedTest("wilcoxon", 0.0, 1.0, n, mean_diff)
    magnitudes = np.abs(d)
    order = np.argsort(magnitudes, kind="stable")
    ranks = np.empty(n, dtype=np.float64)
    ranks[order] = np.arange(1, n + 1, dtype=np.float64)
    # Midpoint ranks for tied magnitudes.
    for value in np.unique(magnitudes):
        tied = magnitudes == value
        if tied.sum() > 1:
            ranks[tied] = ranks[tied].mean()
    w_plus = float(ranks[d > 0].sum())
    w_minus = float(ranks[d < 0].sum())
    statistic = min(w_plus, w_minus)

    if n <= _EXACT_WILCOXON_N:
        doubled = [int(round(2 * r)) for r in ranks]
        pvalue = 2.0 * _exact_wilcoxon_cdf(int(round(2 * statistic)),
                                           doubled)
    else:  # normal approximation with tie correction
        mean_w = n * (n + 1) / 4.0
        var_w = n * (n + 1) * (2 * n + 1) / 24.0
        for value in np.unique(magnitudes):
            t = int((magnitudes == value).sum())
            if t > 1:
                var_w -= (t ** 3 - t) / 48.0
        z = (statistic - mean_w + 0.5) / math.sqrt(var_w)
        pvalue = 2.0 * 0.5 * math.erfc(-z / math.sqrt(2.0))
    return PairedTest("wilcoxon", statistic, min(pvalue, 1.0), n, mean_diff)


def holm_correction(pvalues: Sequence[float]) -> list[float]:
    """Holm step-down adjusted p-values (family-wise error control).

    NaN entries (degenerate tests) pass through as NaN and do not count
    toward the family size.
    """
    pvalues = [float(p) for p in pvalues]
    indexed = [(p, i) for i, p in enumerate(pvalues) if not math.isnan(p)]
    m = len(indexed)
    adjusted: list[float] = [float("nan")] * len(pvalues)
    running_max = 0.0
    for rank, (p, i) in enumerate(sorted(indexed)):
        candidate = min(1.0, (m - rank) * p)
        running_max = max(running_max, candidate)
        adjusted[i] = running_max
    return adjusted
