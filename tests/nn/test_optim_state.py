"""Optimizer / scheduler / early-stopping state round-trips.

The checkpointing contract these back: capturing state mid-training
and replaying the remaining steps on a fresh optimizer must land on
bit-identical parameters.
"""

import numpy as np
import pytest

import repro.nn as nn


def _quadratic(params):
    """Gradient of 0.5 * ||p||^2 for each parameter: grad = p."""
    for p in params:
        p.grad = p.data.copy()


def _make(optimizer_factory, seed=3):
    rng = np.random.default_rng(seed)
    params = [nn.Parameter(rng.normal(size=(4, 3))),
              nn.Parameter(rng.normal(size=(3,)))]
    return params, optimizer_factory(params)


def _data(params):
    return [p.data.copy() for p in params]


@pytest.mark.parametrize("factory", [
    lambda ps: nn.SGD(ps, lr=0.1),
    lambda ps: nn.SGD(ps, lr=0.1, momentum=0.9, weight_decay=0.01),
    lambda ps: nn.Adam(ps, lr=0.05),
    lambda ps: nn.Adam(ps, lr=0.05, betas=(0.8, 0.99), eps=1e-6,
                       weight_decay=0.02),
], ids=["sgd", "sgd-momentum", "adam", "adam-tuned"])
def test_mid_training_capture_replays_bit_identical(factory):
    # Reference: 10 uninterrupted steps.
    params_a, opt_a = _make(factory)
    for _ in range(10):
        _quadratic(params_a)
        opt_a.step()

    # Capture after 4 steps, restore into a fresh optimizer, replay 6.
    params_b, opt_b = _make(factory)
    for _ in range(4):
        _quadratic(params_b)
        opt_b.step()
    snapshot = opt_b.state_dict()
    frozen = _data(params_b)

    params_c, opt_c = _make(factory)
    for p, data in zip(params_c, frozen):
        p.data = data.copy()
    opt_c.load_state_dict(snapshot)
    for _ in range(6):
        _quadratic(params_c)
        opt_c.step()

    for a, c in zip(_data(params_a), _data(params_c)):
        np.testing.assert_array_equal(a, c)


def test_state_dict_buffers_are_copies():
    params, opt = _make(lambda ps: nn.Adam(ps, lr=0.05))
    _quadratic(params)
    opt.step()
    snapshot = opt.state_dict()
    snapshot["m"][0][:] = 99.0  # mutate the snapshot, not the optimizer
    _quadratic(params)
    opt.step()
    assert not np.any(opt.state_dict()["m"][0] == 99.0)


def test_adam_state_dict_contents():
    params, opt = _make(lambda ps: nn.Adam(ps, lr=0.05, betas=(0.8, 0.99)))
    for _ in range(3):
        _quadratic(params)
        opt.step()
    state = opt.state_dict()
    assert state["step"] == 3
    assert state["beta1"] == 0.8 and state["beta2"] == 0.99
    assert len(state["m"]) == len(state["v"]) == 2
    assert state["m"][0].shape == (4, 3)


def test_load_state_dict_validates_buffer_count_and_shape():
    params, opt = _make(lambda ps: nn.SGD(ps, lr=0.1, momentum=0.9))
    state = opt.state_dict()
    short = dict(state, velocity=state["velocity"][:1])
    with pytest.raises(ValueError, match="buffers"):
        opt.load_state_dict(short)
    wrong = dict(state,
                 velocity=[np.zeros((2, 2)), state["velocity"][1]])
    with pytest.raises(ValueError, match="shape"):
        opt.load_state_dict(wrong)


def test_lr_rides_in_optimizer_state():
    params, opt = _make(lambda ps: nn.SGD(ps, lr=0.1))
    scheduler = nn.StepLR(opt, step_size=1, gamma=0.5)
    scheduler.step()
    assert opt.lr == 0.05
    state = opt.state_dict()
    _, fresh = _make(lambda ps: nn.SGD(ps, lr=0.1))
    fresh.load_state_dict(state)
    assert fresh.lr == 0.05


@pytest.mark.parametrize("factory", [
    lambda opt: nn.StepLR(opt, step_size=3, gamma=0.5),
    lambda opt: nn.CosineAnnealingLR(opt, total_epochs=12, min_lr=0.001),
    lambda opt: nn.LinearDecayLR(opt, total_epochs=12,
                                 final_fraction=0.1),
], ids=["step", "cosine", "linear"])
def test_scheduler_state_roundtrip_mid_schedule(factory):
    _, opt_a = _make(lambda ps: nn.SGD(ps, lr=0.1))
    sched_a = factory(opt_a)
    for _ in range(10):
        sched_a.step()

    _, opt_b = _make(lambda ps: nn.SGD(ps, lr=0.1))
    sched_b = factory(opt_b)
    for _ in range(4):
        sched_b.step()
    snapshot = sched_b.state_dict()
    assert snapshot == {"epoch": 4, "base_lr": 0.1}

    _, opt_c = _make(lambda ps: nn.SGD(ps, lr=0.1))
    sched_c = factory(opt_c)
    sched_c.load_state_dict(snapshot)
    for _ in range(6):
        sched_c.step()
    assert sched_c.epoch == sched_a.epoch
    assert opt_c.lr == opt_a.lr


def test_early_stopping_state_roundtrip():
    losses = [1.0, 0.9, 0.95, 0.94, 0.93, 0.96, 0.97]
    stop_a = nn.EarlyStopping(patience=3, min_delta=0.0)
    decisions_a = [stop_a.update(x) for x in losses]

    stop_b = nn.EarlyStopping(patience=3, min_delta=0.0)
    for x in losses[:3]:
        stop_b.update(x)
    snapshot = stop_b.state_dict()
    assert snapshot == {"best": 0.9, "stale": 1}

    stop_c = nn.EarlyStopping(patience=3, min_delta=0.0)
    stop_c.load_state_dict(snapshot)
    decisions_c = [stop_c.update(x) for x in losses[3:]]
    assert decisions_c == decisions_a[3:]
    assert decisions_c[-1] is True
