"""RunCache: roundtrip, restart survival, corruption tolerance."""

from repro.parallel import RunCache


def test_roundtrip(tmp_path):
    cache = RunCache(tmp_path / "cache")
    assert cache.get("abc") is None
    cache.put("abc", {"metrics": {"f1": 1.0}, "seconds": 0.5})
    record = cache.get("abc")
    assert record["metrics"] == {"f1": 1.0}
    assert "created" in record and record["key"] == "abc"
    assert "abc" in cache and len(cache) == 1


def test_survives_process_restart(tmp_path):
    # A fresh RunCache over the same directory — the in-memory object
    # holds no state, so this is exactly what a new process sees.
    RunCache(tmp_path / "cache").put("k", {"metrics": {"f1": 2.0}})
    reopened = RunCache(tmp_path / "cache")
    assert reopened.get("k")["metrics"] == {"f1": 2.0}


def test_corrupt_record_is_a_miss(tmp_path):
    cache = RunCache(tmp_path / "cache")
    cache.put("k", {"metrics": {}})
    cache.path("k").write_text("{ not json")
    assert cache.get("k") is None
    cache.path("k").write_text("[1, 2]")  # valid JSON, wrong shape
    assert cache.get("k") is None


def test_put_overwrites_atomically(tmp_path):
    cache = RunCache(tmp_path / "cache")
    cache.put("k", {"metrics": {"f1": 1.0}})
    cache.put("k", {"metrics": {"f1": 9.0}})
    assert cache.get("k")["metrics"] == {"f1": 9.0}
    assert len(cache) == 1
    # No stray temp files left behind.
    assert list(cache.root.glob("*.tmp")) == []


def test_clear(tmp_path):
    cache = RunCache(tmp_path / "cache")
    for i in range(3):
        cache.put(f"k{i}", {"metrics": {}})
    assert cache.clear() == 3
    assert len(cache) == 0
