"""The eight baselines of §IV-A3, adapted to sessions.

Registry :data:`BASELINES` maps the paper's model names to classes so
the experiment harness can instantiate every row of Tables I/II.
"""

from .base import BaselineConfig, BaselineModel, EncoderClassifier, Estimator
from .cldet import CLDetModel
from .ctrr import CTRRModel
from .deeplog import DeepLogModel
from .divmix import DivMixModel, fit_two_component_gmm
from .few_shot import FewShotModel
from .logbert import LogBertModel
from .sel_cl import SelCLModel, knn_correct_labels
from .ulc import ULCModel

BASELINES: dict[str, type[BaselineModel]] = {
    DivMixModel.name: DivMixModel,
    ULCModel.name: ULCModel,
    SelCLModel.name: SelCLModel,
    CTRRModel.name: CTRRModel,
    FewShotModel.name: FewShotModel,
    CLDetModel.name: CLDetModel,
    DeepLogModel.name: DeepLogModel,
    LogBertModel.name: LogBertModel,
}

__all__ = [
    "Estimator", "BaselineConfig", "BaselineModel", "EncoderClassifier",
    "DivMixModel", "ULCModel", "SelCLModel", "CTRRModel",
    "FewShotModel", "CLDetModel", "DeepLogModel", "LogBertModel",
    "BASELINES", "fit_two_component_gmm", "knn_correct_labels",
]
