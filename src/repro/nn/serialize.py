"""Save/load model parameters as ``.npz`` archives.

Besides the classic :func:`save_module`/:func:`load_module` pair, this
module can read archive arrays **into caller-provided buffers**
(:func:`load_arrays_into`): the serving cluster allocates one
shared-memory segment, points numpy views at it, and fills those views
straight from the archive — one warm load, after which every worker
process maps the same bytes.
"""

from __future__ import annotations

import os

import numpy as np

from .module import LoadReport, Module

__all__ = ["save_module", "load_module", "load_arrays", "load_arrays_into"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write the module's state dict to ``path`` (npz format)."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike,
                strict: bool = True, *, copy: bool = True) -> Module:
    """Restore a state dict previously written by :func:`save_module`.

    Strict by default: an archive whose keys do not exactly match the
    module's parameters raises :class:`KeyError` (and shape mismatches
    raise :class:`ValueError`) instead of partially loading.  Pass
    ``strict=False`` to load the intersection deliberately — e.g. when
    warm-starting a related architecture; the skipped keys are recorded
    on ``module.last_load_report``.  ``copy=False`` binds the archive
    arrays without copying (see :meth:`Module.load_state_dict`).
    """
    state = load_arrays(path)
    report: LoadReport = module.load_state_dict(state, strict=strict,
                                                copy=copy)
    module.last_load_report = report
    return module


def load_arrays(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read every array of an ``.npz`` archive into a plain dict."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def load_arrays_into(path: str | os.PathLike,
                     out: dict[str, np.ndarray]) -> list[str]:
    """Read archive arrays into caller-provided buffers, in place.

    Every key of ``out`` must exist in the archive with exactly the
    buffer's dtype and shape — a serving segment laid out for one model
    must never silently accept a different one.  Archive keys absent
    from ``out`` are ignored (callers choose what to map); the list of
    keys actually filled is returned.
    """
    filled: list[str] = []
    with np.load(path) as archive:
        available = set(archive.files)
        missing = sorted(set(out) - available)
        if missing:
            raise KeyError(f"archive {path} is missing array(s) {missing}")
        for key, buffer in out.items():
            value = archive[key]
            if value.dtype != buffer.dtype or value.shape != buffer.shape:
                raise ValueError(
                    f"buffer mismatch for {key!r}: archive has "
                    f"{value.dtype}{value.shape}, buffer is "
                    f"{buffer.dtype}{buffer.shape}")
            buffer[...] = value
            filled.append(key)
    return filled
