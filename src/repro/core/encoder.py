"""Session encoder and classifier head shared by CLFD's components."""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = ["SessionEncoder", "SoftmaxClassifier"]


class SessionEncoder(nn.Module):
    """Recurrent session encoder (§III-B1).

    Maps embedded sessions ``(batch, time, embedding_dim)`` to encoded
    representations ``(batch, output_dim)``.  The paper's configuration
    is an LSTM with mean pooling over the valid time steps; GRU and
    bidirectional-LSTM cells and learned attention pooling are provided
    as drop-in variants (``cell`` / ``pooling``).
    """

    _CELLS = ("lstm", "gru", "bilstm")
    _POOLINGS = ("mean", "attention")

    def __init__(self, embedding_dim: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 2,
                 cell: str = "lstm", pooling: str = "mean",
                 fused: bool = True):
        super().__init__()
        if cell not in self._CELLS:
            raise ValueError(f"cell must be one of {self._CELLS}")
        if pooling not in self._POOLINGS:
            raise ValueError(f"pooling must be one of {self._POOLINGS}")
        self.cell = cell
        self.pooling = pooling
        # Parameters are allocated in the default dtype active at
        # construction time; forward casts inputs to match.
        self._dtype = nn.get_default_dtype()
        if cell == "lstm":
            self.rnn = nn.LSTM(embedding_dim, hidden_size, rng,
                               num_layers=num_layers, fused=fused)
            self.output_dim = hidden_size
        elif cell == "gru":
            self.rnn = nn.GRU(embedding_dim, hidden_size, rng,
                              num_layers=num_layers, fused=fused)
            self.output_dim = hidden_size
        else:
            self.rnn = nn.BiLSTM(embedding_dim, hidden_size, rng,
                                 num_layers=num_layers, fused=fused)
            self.output_dim = 2 * hidden_size
        self.hidden_size = hidden_size
        self.attention = (nn.AttentionPooling(self.output_dim, rng)
                          if pooling == "attention" else None)

    def forward(self, x, lengths: np.ndarray | None = None) -> nn.Tensor:
        if not isinstance(x, nn.Tensor):
            x = nn.Tensor(x, dtype=self._dtype)
        elif x.data.dtype != self._dtype:
            x = x.astype(self._dtype)
        if self.attention is None:
            return self.rnn.mean_pool(x, lengths)
        outputs = self.rnn(x)
        if isinstance(outputs, tuple):  # LSTM/GRU return (outputs, state)
            outputs = outputs[0]
        return self.attention(outputs, lengths)

    def pooling_arrays(self, lengths: np.ndarray,
                       time: int) -> tuple[np.ndarray, np.ndarray] | None:
        """Mask/denominator pair consumed by :meth:`forward_pooled`.

        This is the impure half of mean pooling, split out so a compiled
        step's ``prepare`` stage can build the arrays and hand them to
        the pure program as plain inputs.  Returns None for attention
        pooling, which has no static pooling arrays — callers fall back
        to the interpreted :meth:`forward` path.
        """
        if self.attention is not None:
            return None
        lengths = np.asarray(lengths, dtype=self._dtype)
        mask = (np.arange(time)[None, :] < lengths[:, None]).astype(self._dtype)
        return mask[:, :, None], np.maximum(lengths, 1.0)[:, None]

    def forward_pooled(self, x, mask: np.ndarray, denom: np.ndarray) -> nn.Tensor:
        """Mean-pooled encoding from precomputed pooling arrays.

        Numerically identical to ``forward(x, lengths)`` with mean
        pooling — the ops match ``rnn.mean_pool`` exactly — but every
        data-dependent array (``mask``, ``denom``, and the pre-cast
        ``x``) arrives as an input, so the whole call is traceable: a
        replayed tape re-reads the refreshed buffers instead of baking
        trace-time values.
        """
        if not isinstance(x, nn.Tensor):
            x = nn.Tensor(x)
        if x.data.dtype != self._dtype:
            x = x.astype(self._dtype)
        outputs = self.rnn(x)
        if isinstance(outputs, tuple):  # LSTM/GRU return (outputs, state)
            outputs = outputs[0]
        masked = outputs * nn.Tensor(mask)
        return masked.sum(axis=1) / nn.Tensor(denom)

    @property
    def dtype(self):
        """The parameter/activation dtype inputs must be pre-cast to."""
        return self._dtype

    def encode_numpy(self, x: np.ndarray,
                     lengths: np.ndarray | None = None) -> np.ndarray:
        """Inference helper: encode without building an autograd graph."""
        with nn.no_grad():
            return self.forward(x, lengths).data


class SoftmaxClassifier(nn.Module):
    """The paper's two-layer FCNN head (§III-B2).

    Layer 1: Linear + LeakyReLU on the encoded representation.
    Layer 2: Linear to two logits; :meth:`probs` applies softmax.
    """

    def __init__(self, input_dim: int, rng: np.random.Generator,
                 hidden_dim: int | None = None, num_classes: int = 2):
        super().__init__()
        hidden_dim = hidden_dim or input_dim
        self._dtype = nn.get_default_dtype()
        self.fc1 = nn.Linear(input_dim, hidden_dim, rng)
        self.fc2 = nn.Linear(hidden_dim, num_classes, rng)

    def forward(self, z) -> nn.Tensor:
        """Raw logits."""
        if not isinstance(z, nn.Tensor):
            z = nn.Tensor(z, dtype=self._dtype)
        elif z.data.dtype != self._dtype:
            z = z.astype(self._dtype)
        return self.fc2(self.fc1(z).leaky_relu())

    def probs(self, z) -> nn.Tensor:
        """Softmax probabilities ``[f_0(v), f_1(v)]``."""
        return nn.softmax(self.forward(z), axis=-1)

    def predict_numpy(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Inference: return (labels, malicious-class scores)."""
        with nn.no_grad():
            probs = self.probs(z).data
        return probs.argmax(axis=1), probs[:, 1]
