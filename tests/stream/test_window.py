"""Session assembly and window emission, including replay determinism."""

import json

import pytest

from repro.stream import Event, SessionWindower


def _event(t, entity="u0", activity="a", offset=-1):
    return Event(time=t, entity=entity, activity=activity, offset=offset)


def _stream(windower, events):
    windows = []
    for event in events:
        windows.extend(windower.process(event))
    windows.extend(windower.flush())
    return windows


def test_gap_closes_sessions():
    windower = SessionWindower(window_size=10.0, session_gap=2.0)
    events = [_event(0.0), _event(1.0), _event(5.0), _event(6.0)]
    windows = _stream(windower, events)
    sessions = [s for w in windows for s in w.sessions]
    assert [s.activities for s in sessions] == [("a", "a"), ("a", "a")]
    # close = last event + gap; the second burst closes via flush.
    assert sessions[0].close_time == 3.0
    assert [s.session_id for s in sessions] == ["u0/0", "u0/1"]


def test_max_session_len_closes_at_last_event():
    windower = SessionWindower(window_size=10.0, session_gap=5.0,
                               max_session_len=2)
    windows = _stream(windower, [_event(0.0), _event(1.0), _event(2.0)])
    sessions = [s for w in windows for s in w.sessions]
    assert [len(s.activities) for s in sessions] == [2, 1]
    assert sessions[0].close_time == 1.0  # capped: closes immediately


def test_sessions_keep_event_offsets():
    windower = SessionWindower(window_size=10.0, session_gap=1.0)
    windows = _stream(windower, [_event(0.0, offset=4),
                                 _event(0.5, offset=5)])
    (session,) = [s for w in windows for s in w.sessions]
    assert (session.start_offset, session.end_offset) == (4, 5)


def test_windows_emit_when_watermark_passes_end():
    windower = SessionWindower(window_size=5.0, session_gap=1.0)
    assert windower.process(_event(0.0, "u0")) == []
    assert windower.process(_event(3.0, "u1")) == []
    # Watermark 5.0 seals window 0; u0 closed into it at t=1.0.
    (window,) = windower.process(_event(5.0, "u2"))
    assert (window.index, window.start, window.end) == (0, 0.0, 5.0)
    assert [s.entity for s in window.sessions] == ["u0", "u1"]


def test_sliding_windows_duplicate_by_close_time():
    windower = SessionWindower(window_size=10.0, session_gap=1.0,
                               slide=5.0)
    windows = _stream(windower, [_event(12.0)])
    # close at t=13: covered by [5, 15) and [10, 20).
    covering = [w.index for w in windows if w.sessions]
    assert covering == [1, 2]


def test_out_of_order_event_rejected():
    windower = SessionWindower(window_size=10.0, session_gap=1.0)
    windower.process(_event(5.0))
    with pytest.raises(ValueError, match="time-ordered"):
        windower.process(_event(4.0))


def test_sessions_sorted_by_close_then_entity():
    windower = SessionWindower(window_size=50.0, session_gap=1.0)
    events = sorted([_event(3.0, "zz"), _event(3.0, "aa"),
                     _event(1.0, "mm")], key=lambda e: e.time)
    windows = _stream(windower, events)
    sessions = [s for w in windows for s in w.sessions]
    assert [s.entity for s in sessions] == ["mm", "aa", "zz"]


def test_constructor_validation():
    with pytest.raises(ValueError):
        SessionWindower(window_size=0.0, session_gap=1.0)
    with pytest.raises(ValueError):
        SessionWindower(window_size=1.0, session_gap=0.0)
    with pytest.raises(ValueError):
        SessionWindower(window_size=1.0, session_gap=1.0, slide=2.0)
    with pytest.raises(ValueError):
        SessionWindower(window_size=1.0, session_gap=1.0,
                        max_session_len=0)


@pytest.mark.parametrize("split_at", [1, 7, 20])
def test_checkpoint_resume_is_bit_identical(split_at):
    events = []
    for i in range(30):
        events.append(_event(float(i), entity=f"u{i % 4}",
                             activity=f"act{i % 3}", offset=i))
    baseline = _stream(
        SessionWindower(window_size=6.0, session_gap=2.0,
                        max_session_len=4), events)

    first = SessionWindower(window_size=6.0, session_gap=2.0,
                            max_session_len=4)
    windows = []
    for event in events[:split_at]:
        windows.extend(first.process(event))
    # Round-trip through serialized JSON — exactly what the processor
    # checkpoint stores on disk.
    state = json.loads(json.dumps(first.state_dict()))

    resumed = SessionWindower(window_size=6.0, session_gap=2.0,
                              max_session_len=4)
    resumed.load_state_dict(state)
    for event in events[split_at:]:
        windows.extend(resumed.process(event))
    windows.extend(resumed.flush())
    assert windows == baseline
