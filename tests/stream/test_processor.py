"""End-to-end streaming: detection, re-correction, resume, observability.

These are the ISSUE's acceptance criteria as executable checks:

* a stationary stream raises zero alarms at the pinned seeds;
* injected drift (novel archetype and/or noise-rate shift) is detected
  within two windows of onset;
* online re-correction + hot swap beats the frozen model on post-drift
  AUC (archetype drift — noise-only drift has no behaviour shift to
  re-learn, so there we only require detection);
* a killed-and-resumed stream reproduces the uninterrupted run bit for
  bit: records, journal entries and re-corrected archive bytes;
* quantized archives (no corrector) skip re-correction gracefully.
"""

import json

import numpy as np
import pytest

from repro.stream import StreamProcessor, compare_with_frozen, write_events

from .conftest import DRIFT_WINDOW, SERVE_CONFIG, STREAM_CONFIG, \
    drifting_events


def _run(archive, workdir, events, **kwargs):
    kwargs.setdefault("config", STREAM_CONFIG)
    kwargs.setdefault("serve_config", SERVE_CONFIG)
    with StreamProcessor(archive, workdir, **kwargs) as proc:
        summaries = proc.process_events(events)
        summaries.extend(proc.finish())
        return proc, summaries


def _window_entries(workdir):
    entries = []
    with open(workdir / "journal.jsonl") as fh:
        for line in fh:
            entry = json.loads(line)
            if entry.get("event") == "window":
                entries.append(entry)
    return entries


@pytest.mark.parametrize("seed", [11, 23])
def test_stationary_stream_never_alarms(stream_archive, tmp_path, seed):
    proc, summaries = _run(stream_archive, tmp_path / "w",
                           drifting_events(drift="none", seed=seed))
    assert summaries
    assert all(not s["alarm"] for s in summaries)
    assert proc.recorrections == 0
    assert proc.model_generation == 0
    assert proc.current_archive == stream_archive


@pytest.mark.parametrize("drift", ["archetype", "noise",
                                   "archetype+noise"])
def test_drift_detected_and_recorrected(stream_archive, tmp_path, drift):
    proc, summaries = _run(stream_archive, tmp_path / "w",
                           drifting_events(drift=drift))
    alarms = [s["window"] for s in summaries if s["alarm"]]
    assert alarms, "drift never detected"
    # Detection latency: the first alarm within 2 windows of onset,
    # and never before it.
    assert DRIFT_WINDOW <= alarms[0] <= DRIFT_WINDOW + 2
    assert proc.recorrections >= 1
    assert proc.model_generation >= 1
    assert proc.current_archive.exists()
    assert proc.current_archive.parent == tmp_path / "w" / "archives"
    # Post-swap records are stamped with the new generations.
    post = [r for r in proc.records if r["model_generation"] >= 1]
    assert post
    assert all(r["serve_generation"] >= 1 for r in post)

    if "archetype" in drift:
        auc = compare_with_frozen(proc.records, stream_archive,
                                  SERVE_CONFIG)
        assert auc["n_sessions"] == len(post)
        assert auc["live_auc"] > auc["frozen_auc"], auc


def test_stream_gauges_exported(stream_archive, tmp_path):
    proc, _ = _run(stream_archive, tmp_path / "w", drifting_events())
    gauges = proc.engine.metrics_snapshot()["gauges"]
    assert gauges["stream_windows_processed"] == proc.windows_processed
    assert gauges["stream_alarms_total"] >= 1
    assert gauges["stream_recorrect_generation"] == proc.model_generation
    assert "stream_drift_score" in gauges
    rendered = proc.engine.metrics_prometheus()
    assert "repro_serve_stream_drift_score" in rendered
    assert "repro_serve_stream_alarms_total" in rendered


def test_window_journal_is_deterministic_fields_only(stream_archive,
                                                     tmp_path):
    workdir = tmp_path / "w"
    _run(stream_archive, workdir, drifting_events(n_sessions=60))
    entries = _window_entries(workdir)
    assert entries
    for entry in entries:
        assert "time" not in entry
        assert "timestamp" not in entry
        assert {"window", "n_sessions", "oov_rate", "ks", "ph",
                "centroid_dist", "label_z", "drift_score", "alarm",
                "trigger", "generation"} <= set(entry)


def test_kill_and_resume_is_bit_identical(stream_archive, tmp_path):
    log = write_events(tmp_path / "events.jsonl", drifting_events())

    clean_dir = tmp_path / "clean"
    with StreamProcessor(stream_archive, clean_dir,
                         config=STREAM_CONFIG,
                         serve_config=SERVE_CONFIG) as proc:
        proc.run_log(log)
        clean_records = proc.records
        clean_generation = proc.model_generation

    # Kill after 7 windows (drift detected, first re-correction done),
    # then resume in a brand-new process-equivalent.
    resumed_dir = tmp_path / "resumed"
    with StreamProcessor(stream_archive, resumed_dir,
                         config=STREAM_CONFIG,
                         serve_config=SERVE_CONFIG) as proc:
        proc.run_log(log, max_windows=7, flush=False)
        assert proc.windows_processed == 7
    with StreamProcessor(stream_archive, resumed_dir,
                         config=STREAM_CONFIG, serve_config=SERVE_CONFIG,
                         resume=True) as proc:
        assert proc.windows_processed == 7
        proc.run_log(log)
        resumed_records = proc.records
        resumed_generation = proc.model_generation

    assert resumed_generation == clean_generation >= 1
    assert resumed_records == clean_records
    assert _window_entries(resumed_dir) == _window_entries(clean_dir)
    for name in sorted(p.name for p in
                       (clean_dir / "archives").iterdir()):
        clean_bytes = (clean_dir / "archives" / name).read_bytes()
        resumed_bytes = (resumed_dir / "archives" / name).read_bytes()
        assert clean_bytes == resumed_bytes, f"{name} differs"


def test_quantized_archive_skips_recorrection(stream_archive, tmp_path):
    from repro.quant import quantize_archive

    quantized = quantize_archive(stream_archive,
                                 tmp_path / "model-int8.npz",
                                 precision="int8")
    workdir = tmp_path / "w"
    proc, summaries = _run(quantized, workdir, drifting_events())
    # The label-prevalence statistic still fires (it needs no model),
    # but re-correction is structurally unavailable: no corrector.
    assert any(s["alarm"] for s in summaries)
    assert proc.recorrections == 0
    assert proc.model_generation == 0
    with open(workdir / "journal.jsonl") as fh:
        events = [json.loads(line).get("event") for line in fh]
    assert "recorrect-skipped" in events
    scored = [r["score"] for r in proc.records if r["score"] is not None]
    assert scored and all(0.0 <= s <= 1.0 for s in scored)
