"""Sweep analysis: cache loading, aggregation, significance, rendering."""

import math

import numpy as np
import pytest

from repro.analysis import (
    analyze_cache,
    cross_seed_table,
    load_sweep_records,
    render_latex,
    render_markdown,
    render_significance_latex,
    render_significance_markdown,
    significance_report,
)
from repro.analysis.tables import noise_label
from repro.parallel import RunCache


def record(model, dataset, seed, f1, noise=("uniform", [0.1]),
           measure="test_metrics"):
    return {"model": model, "estimator": model.lower(), "dataset": dataset,
            "noise": list(noise), "seed": seed, "scale": 0.1,
            "measure": measure, "metrics": {"f1": f1, "auc_roc": f1 + 1.0},
            "seconds": 0.5}


def grid(models_to_f1s, datasets=("cert",)):
    """records for each model x dataset x seed from per-seed f1 lists."""
    records = []
    for model, f1s in models_to_f1s.items():
        for dataset in datasets:
            for seed, f1 in enumerate(f1s):
                records.append(record(model, dataset, seed, f1))
    return records


def test_noise_label_matches_runner_labels():
    assert noise_label(["uniform", [0.45]]) == "eta=0.45"
    assert noise_label(["class-dependent", [0.3, 0.45]]) == \
        "eta10=0.3,eta01=0.45"
    assert noise_label(["clean", []]) == "clean"


def test_cross_seed_aggregation():
    cells = cross_seed_table(grid({"CLFD": [80.0, 82.0, 84.0]}))
    assert len(cells) == 1
    cell = cells[0]
    assert (cell.model, cell.dataset, cell.noise) == \
        ("CLFD", "cert", "eta=0.1")
    assert cell.seeds == [0, 1, 2]
    assert cell.mean == pytest.approx(82.0)
    assert cell.std == pytest.approx(np.std([80.0, 82.0, 84.0]))
    assert cell.format() == "82.00±1.63"


def test_identical_duplicate_records_collapse():
    records = grid({"CLFD": [80.0]}) * 2  # same key written twice
    cells = cross_seed_table(records)
    assert cells[0].n == 1


def test_conflicting_duplicates_raise():
    records = grid({"CLFD": [80.0]}) + grid({"CLFD": [81.0]})
    with pytest.raises(ValueError, match="conflicting records"):
        cross_seed_table(records)


def test_significance_report_pairs_on_dataset_noise_seed():
    records = grid({"CLFD": [85.0, 86.0, 87.0],
                    "DeepLog": [80.0, 81.0, 82.0],
                    "LogBert": [84.9, 86.1, 86.9]},
                   datasets=("cert", "openstack"))
    rows = significance_report(records, metric="f1", target="CLFD")
    assert [r.baseline for r in rows] == ["DeepLog", "LogBert"]
    deeplog = rows[0]
    assert deeplog.t.n == 6  # 2 datasets x 3 seeds
    assert deeplog.t.mean_difference == pytest.approx(5.0)
    assert deeplog.t.adjusted_pvalue is not None
    assert deeplog.wilcoxon.adjusted_pvalue is not None
    # Holm never lowers a p-value.
    for row in rows:
        for test in (row.t, row.wilcoxon):
            if not math.isnan(test.pvalue):
                assert test.adjusted_pvalue >= test.pvalue - 1e-15
    # A constant +5 gap is as significant as 6 pairs allow; the near-tie
    # baseline is not.
    assert deeplog.significant(alpha=0.05) or deeplog.t.pvalue < 0.05
    assert not rows[1].significant(alpha=0.01)


def test_significance_report_requires_target():
    with pytest.raises(ValueError, match="no records for target"):
        significance_report(grid({"DeepLog": [80.0, 81.0]}), target="CLFD")


def test_markdown_rendering_has_mean_std_cells():
    records = grid({"CLFD": [85.0, 86.0], "DeepLog": [80.0, 81.0]},
                   datasets=("cert", "openstack"))
    text = render_markdown(cross_seed_table(records))
    assert "| Model | Noise |" in text
    assert "cert (f1, mean±std)" in text
    assert "85.50±0.50 (n=2)" in text
    rows = significance_report(records, target="CLFD")
    sig = render_significance_markdown(rows, target="CLFD")
    assert "| CLFD vs |" in sig and "Holm" in sig
    assert "| DeepLog |" in sig


def test_latex_rendering_escapes_and_bolds():
    records = grid({"CLFD": [85.0, 86.0, 87.0],
                    "w/o L_Sup": [70.0, 71.0, 72.0]})
    text = render_latex(cross_seed_table(records, metric="auc_roc"),
                        metric="auc_roc", caption="cap", label="tab:x")
    assert "\\begin{tabular}{llc}" in text
    assert "w/o L\\_Sup" in text  # underscore escaped
    assert "cert (auc\\_roc)" in text
    assert "$87.00 \\pm 0.82$" in text  # auc_roc = f1 + 1 in fixtures
    sig = render_significance_latex(
        significance_report(records, target="CLFD"), target="CLFD")
    assert "\\toprule" in sig and "w/o L\\_Sup" in sig


def test_analyze_cache_end_to_end(tmp_path):
    cache = RunCache(tmp_path / "cache")
    for i, rec in enumerate(grid({"CLFD": [85.0, 86.0, 87.0],
                                  "DeepLog": [80.0, 81.0, 82.0]})):
        cache.put(f"k{i}", rec)
    # A torn record and an off-measure record must both be ignored.
    (cache.root / "torn.json").write_text('{"metrics": {"f1"')
    cache.put("rates", record("CLFD", "cert", 9, 50.0,
                              measure="correction_rates"))

    out = analyze_cache(cache, metric="f1", target="CLFD", fmt="both")
    assert "Cross-seed aggregation (f1)" in out
    assert "86.00±0.82 (n=3)" in out          # CLFD aggregate
    assert "Significance vs CLFD" in out
    assert "p (t, Holm)" in out                # markdown significance cols
    assert "\\begin{tabular}" in out           # latex section rendered
    assert "$p_t^{\\mathrm{Holm}}$" in out
    assert "seed 9" not in out                 # correction_rates excluded

    rates_only = analyze_cache(cache, metric="f1",
                               measure="correction_rates")
    assert "(n=1)" in rates_only
    assert "Significance" not in rates_only    # single model: no tests


def test_analyze_cache_empty_dir_raises(tmp_path):
    with pytest.raises(ValueError, match="no completed"):
        analyze_cache(tmp_path / "empty")


def test_load_sweep_records_skips_corrupt(tmp_path):
    cache = RunCache(tmp_path / "cache")
    cache.put("good", record("CLFD", "cert", 0, 80.0))
    (cache.root / "bad.json").write_text("not json")
    records = load_sweep_records(cache)
    assert len(records) == 1
    assert records[0]["model"] == "CLFD"
