"""Sharded multi-process scoring cluster.

:class:`ClusterEngine` presents the same surface as
:class:`~repro.serve.engine.InferenceEngine` (``submit`` / ``score`` /
``score_many`` / ``reload`` / ``metrics_snapshot`` / ``close``) but
fans the work out over N scoring **worker processes**:

* the archive is read from disk exactly once and its arrays published
  into a :class:`~repro.serve.shm.SharedArchive` segment; every worker
  attaches read-only, zero-copy views and binds them straight into its
  model's parameters (``build_clfd(..., bind=True)``) — N workers, one
  resident copy of the weights;
* sessions are sharded by a consistent hash on ``session_id``
  (:class:`HashRing`), so a session always lands on the same worker
  while that worker lives and only ``1/N`` of the keyspace moves when
  one dies; sessions without an id round-robin;
* each worker runs a full single-process engine — its own
  :class:`~repro.serve.batcher.MicroBatcher` and
  :class:`~repro.serve.metrics.ServingMetrics` — so batching stays
  process-local and metrics aggregate at the front-end;
* :meth:`ClusterEngine.reload` publishes the next generation into a
  fresh segment, flips every worker (each drains its in-flight batches
  against the generation that accepted them — no dropped requests, no
  mixed-version batches) and only then unlinks the old segment;
* a worker death is detected as pipe EOF: its in-flight requests fail
  with a structured 503, the hash ring re-shards around it, and
  subsequent requests route to survivors.

Workers are ``spawn``-started: fork is unsafe under the front-end's
HTTP threads, and spawn keeps each worker a clean interpreter.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing
import os
import threading
import traceback
from concurrent.futures import Future
from typing import Any, Iterable

from .config import ServeConfig, resolve_config
from .metrics import (ServingMetrics, merge_snapshots,
                      render_cluster_prometheus)
from .ratelimit import TenantRateLimiter
from .schemas import RawSession, RequestError, ScoreResult, parse_session
from .shm import SharedArchive

__all__ = ["ClusterEngine", "HashRing", "WorkerGone"]

_READY_TIMEOUT_S = 120.0
_METRICS_TIMEOUT_S = 10.0


class WorkerGone(RuntimeError):
    """A worker process died (or its pipe broke) with requests pending."""


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
def _hash64(key: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


class HashRing:
    """Consistent hash ring over worker ids.

    Deterministic (keyed blake2b, no process-seeded hashing) so tests —
    and a future multi-front-end deployment — can predict placements.
    Each node contributes ``replicas`` virtual points, which keeps the
    keyspace split within a few percent of even for small clusters.
    """

    def __init__(self, nodes: Iterable[int] = (), replicas: int = 64):
        self.replicas = replicas
        self._points: list[tuple[int, int]] = []  # (hash, node)
        self._keys: list[int] = []
        self._nodes: set[int] = set()
        for node in nodes:
            self.add(node)

    def add(self, node: int) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for r in range(self.replicas):
            point = (_hash64(f"node-{node}-vn-{r}"), node)
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
        self._keys = [h for h, _ in self._points]

    def remove(self, node: int) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]
        self._keys = [h for h, _ in self._points]

    @property
    def nodes(self) -> set[int]:
        return set(self._nodes)

    def lookup(self, key: str) -> int:
        """The node owning ``key`` (clockwise successor on the ring)."""
        if not self._points:
            raise KeyError("hash ring is empty")
        index = bisect.bisect(self._keys, _hash64(key)) % len(self._points)
        return self._points[index][1]

    def __len__(self) -> int:
        return len(self._nodes)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(worker_id: int, req_conn, resp_conn, manifest: dict,
                 config: ServeConfig) -> None:
    """Entry point of one scoring worker process.

    Attaches the shared segment, binds a model over its views, runs a
    full in-process engine, and serves requests from the parent pipe
    until told to stop (or the pipe breaks — parent death).
    """
    from ..core.persistence import build_clfd
    from .engine import InferenceEngine

    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        with send_lock:
            try:
                resp_conn.send(message)
            except (BrokenPipeError, OSError):  # parent is gone
                pass

    def send_error(req_id: int, exc: BaseException) -> None:
        if isinstance(exc, RequestError):
            send(("err", req_id,
                  (exc.code, exc.message, exc.status, exc.details)))
        else:
            send(("err", req_id, ("internal", f"{type(exc).__name__}: {exc}",
                                  500, None)))

    attachment = SharedArchive.attach(manifest)
    engine = InferenceEngine(
        build_clfd(manifest["meta"], attachment.arrays, bind=True),
        config.worker_config(), generation=attachment.generation,
        worker_id=worker_id)

    def on_scored(req_id: int, started: float, future: "Future") -> None:
        import time

        elapsed = time.perf_counter() - started
        exc = future.exception()
        if exc is None:
            engine.metrics.record_request(elapsed)
            send(("ok", req_id, future.result()))
        else:
            code = exc.code if isinstance(exc, RequestError) else "internal"
            engine.metrics.record_request(elapsed, error=code)
            send_error(req_id, exc)

    try:
        while True:
            try:
                kind, req_id, payload = req_conn.recv()
            except (EOFError, OSError):
                break  # parent died; nothing left to serve
            if kind == "score":
                import time

                started = time.perf_counter()
                try:
                    future = engine.submit(payload)
                except RequestError as exc:
                    engine.metrics.record_request(0.0, error=exc.code)
                    send_error(req_id, exc)
                else:
                    future.add_done_callback(
                        lambda fut, rid=req_id, t0=started:
                        on_scored(rid, t0, fut))
            elif kind == "reload":
                generation, new_manifest = payload
                try:
                    new_attachment = SharedArchive.attach(new_manifest)
                    engine.reload_model(
                        build_clfd(new_manifest["meta"],
                                   new_attachment.arrays, bind=True),
                        generation)
                except BaseException as exc:  # noqa: BLE001 - reported
                    traceback.print_exc()
                    send_error(req_id, exc)
                else:
                    attachment.close()
                    attachment = new_attachment
                    send(("ok", req_id, generation))
            elif kind == "metrics":
                send(("ok", req_id, engine.metrics_snapshot()))
            elif kind == "ping":
                send(("ok", req_id, worker_id))
            elif kind == "stop":
                engine.close()
                send(("ok", req_id, None))
                break
            else:  # pragma: no cover - protocol error
                send_error(req_id, RequestError(
                    "bad_request", f"unknown message kind {kind!r}"))
    finally:
        try:
            engine.close()
        finally:
            attachment.close()
            req_conn.close()
            resp_conn.close()


class _WorkerClient:
    """Front-end handle to one worker: pipes, pending futures, reaper."""

    def __init__(self, worker_id: int, manifest: dict, config: ServeConfig,
                 ctx, on_death) -> None:
        self.worker_id = worker_id
        self._on_death = on_death
        self._pending: dict[int, Future] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._closing = False
        # Two unidirectional pipes; the parent closes the child-side
        # ends after spawn so a worker death reads as EOF here.
        req_recv, self._req_send = ctx.Pipe(duplex=False)
        self._resp_recv, resp_send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, req_recv, resp_send, manifest, config),
            name=f"repro-serve-worker-{worker_id}", daemon=True)
        self.process.start()
        req_recv.close()
        resp_send.close()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"repro-serve-reader-{worker_id}",
            daemon=True)
        self._reader.start()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._closing and self.process.is_alive()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def request(self, kind: str, payload: Any = None,
                *, limit: int | None = None) -> "Future":
        """Send one message; returns the future of the worker's reply."""
        future: Future = Future()
        with self._lock:
            if self._closing:
                raise WorkerGone(f"worker {self.worker_id} is shut down")
            if limit is not None and len(self._pending) >= limit:
                raise RequestError(
                    "queue_full",
                    f"worker {self.worker_id} has {limit} requests pending",
                    status=429)
            req_id = next(self._ids)
            self._pending[req_id] = future
            try:
                self._req_send.send((kind, req_id, payload))
            except (BrokenPipeError, OSError):
                del self._pending[req_id]
                raise WorkerGone(
                    f"worker {self.worker_id} pipe is broken") from None
        return future

    def _read_loop(self) -> None:
        while True:
            try:
                status, req_id, payload = self._resp_recv.recv()
            except (EOFError, OSError):
                break
            with self._lock:
                future = self._pending.pop(req_id, None)
            if future is None:
                continue
            if status == "ok":
                future.set_result(payload)
            else:
                code, message, http_status, details = payload
                future.set_exception(RequestError(
                    code, message, status=http_status, details=details))
        if not self._closing:
            self.fail_pending(RequestError(
                "worker_lost",
                f"worker {self.worker_id} died with the request in flight",
                status=503, details={"worker": self.worker_id}))
            self._on_death(self)

    def fail_pending(self, exc: BaseException) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Close pipes and reap the process (terminate if it lingers)."""
        self._closing = True
        for conn in (self._req_send, self._resp_recv):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=timeout)
        self.fail_pending(WorkerGone(
            f"worker {self.worker_id} shut down"))


# ----------------------------------------------------------------------
# Front-end
# ----------------------------------------------------------------------
class ClusterEngine:
    """Shard sessions across worker processes sharing one weight copy.

    Drop-in for :class:`InferenceEngine` behind
    :class:`~repro.serve.server.ServingServer`; scores are bit-identical
    to the single-process engine because each worker *is* one.
    """

    def __init__(self, archive: str | os.PathLike,
                 config: ServeConfig | None = None, *,
                 metrics: ServingMetrics | None = None,
                 rate_limiter: TenantRateLimiter | None = None,
                 **legacy):
        self.config = resolve_config(config, legacy, "ClusterEngine")
        if self.config.workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.metrics = metrics or ServingMetrics()
        self._limiter = (rate_limiter if rate_limiter is not None
                         else TenantRateLimiter.from_config(self.config))
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._closed = False
        self._rr = itertools.count()
        self.workers_lost = 0

        self._segment = SharedArchive.publish_archive(
            archive, generation=0, precision=self.config.precision)
        worker_config = self.config.worker_config()
        self._clients: dict[int, _WorkerClient] = {}
        self._ring = HashRing()
        try:
            for wid in range(self.config.workers):
                self._clients[wid] = _WorkerClient(
                    wid, self._segment.manifest, worker_config,
                    self._ctx, self._on_worker_death)
            # One ping round: a worker answers only once its model is
            # bound and warmed, so this doubles as readiness.
            pings = [(wid, client.request("ping"))
                     for wid, client in self._clients.items()]
            for wid, ping in pings:
                ping.result(timeout=_READY_TIMEOUT_S)
                self._ring.add(wid)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._segment.generation

    @property
    def workers_alive(self) -> list[int]:
        return sorted(self._ring.nodes)

    @property
    def queue_depth(self) -> int:
        return sum(client.pending for client in self._clients.values())

    @property
    def include_embeddings(self) -> bool:
        return self.config.include_embeddings

    @property
    def precision(self) -> str:
        """The published segment's numeric path (mirrors the workers)."""
        meta = self._segment.manifest["meta"]
        return (self._segment.precision
                or meta["config"].get("compute_dtype", "float64"))

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _pick_worker(self, session_id: str) -> _WorkerClient:
        with self._lock:
            if self._closed:
                raise RequestError("shutting_down",
                                   "cluster is shutting down", status=503)
            if not len(self._ring):
                raise RequestError(
                    "no_workers", "every scoring worker is gone",
                    status=503)
            if session_id:
                wid = self._ring.lookup(session_id)
            else:
                alive = sorted(self._ring.nodes)
                wid = alive[next(self._rr) % len(alive)]
            return self._clients[wid]

    def submit(self, payload: Any, *,
               tenant: str | None = None) -> "Future[ScoreResult]":
        """Shard one session to its worker; returns a result future.

        Same error contract as the single-process engine, plus
        ``worker_lost``/``no_workers`` 503s when processes die.  A
        send-time failure re-shards once onto the updated ring.
        """
        raw = payload if isinstance(payload, RawSession) \
            else parse_session(payload)
        if self._limiter is not None:
            self._limiter.check(tenant)
        for _ in range(2):
            client = self._pick_worker(raw.session_id)
            try:
                return client.request("score", raw,
                                      limit=self.config.max_queue)
            except WorkerGone:
                self._on_worker_death(client)
        raise RequestError(
            "worker_lost", "workers kept dying while routing the request",
            status=503)

    def score(self, payload: Any, timeout: float | None = 30.0, *,
              tenant: str | None = None) -> ScoreResult:
        return self.submit(payload, tenant=tenant).result(timeout=timeout)

    def score_many(self, payloads: Iterable[Any],
                   timeout: float | None = 30.0, *,
                   tenant: str | None = None) -> list[ScoreResult]:
        futures = [self.submit(p, tenant=tenant) for p in payloads]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _on_worker_death(self, client: _WorkerClient) -> None:
        with self._lock:
            if client.worker_id in self._ring.nodes:
                self._ring.remove(client.worker_id)
                self.workers_lost += 1

    def reload(self, archive: str | os.PathLike,
               generation: int | None = None) -> int:
        """Rolling reload: publish the next generation, flip, unlink.

        Every live worker warms the new model, atomically flips new
        requests to it, and drains its old batcher before acking — so
        no request is dropped and no batch mixes generations.  The old
        segment is unlinked only after the last ack.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            gen = int(generation) if generation is not None \
                else self.generation + 1
        # Republish at the cluster's configured precision: a rolling
        # reload must never silently change the numeric path.
        new_segment = SharedArchive.publish_archive(
            archive, generation=gen, precision=self.config.precision)
        acks = []
        for client in self._clients.values():
            if not client.alive:
                continue
            try:
                acks.append((client, client.request(
                    "reload", (gen, new_segment.manifest))))
            except WorkerGone:
                self._on_worker_death(client)
        failed = False
        for client, ack in acks:
            try:
                ack.result(timeout=self.config.drain_timeout_s
                           + _READY_TIMEOUT_S)
            except BaseException:  # noqa: BLE001 - worker kept old gen
                failed = True
                self._on_worker_death(client)
        if failed and not len(self._ring):
            new_segment.unlink()
            new_segment.close()
            raise RuntimeError("reload failed on every worker")
        old_segment, self._segment = self._segment, new_segment
        old_segment.unlink()
        old_segment.close()
        return gen

    def close(self) -> None:
        """Drain workers, reap processes, unlink the shared segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        stops = []
        for client in self._clients.values():
            if not client.alive:
                continue
            try:
                stops.append(client.request("stop"))
            except (WorkerGone, RequestError):
                pass
        for stop in stops:
            try:
                stop.result(timeout=self.config.drain_timeout_s)
            except BaseException:  # noqa: BLE001 - reap it anyway
                pass
        for client in self._clients.values():
            client.shutdown()
        self._segment.unlink()
        self._segment.close()

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def health(self) -> dict:
        alive = self.workers_alive
        return {
            "status": "ok" if alive else "degraded",
            "generation": self.generation,
            "queue_depth": self.queue_depth,
            "workers_alive": len(alive),
            "workers_total": len(self._clients),
        }

    def _worker_snapshots(self) -> dict[int, dict]:
        futures = {}
        for wid, client in self._clients.items():
            if not client.alive:
                continue
            try:
                futures[wid] = client.request("metrics")
            except (WorkerGone, RequestError):
                continue
        snaps = {}
        for wid, future in futures.items():
            try:
                snaps[wid] = future.result(timeout=_METRICS_TIMEOUT_S)
            except BaseException:  # noqa: BLE001 - dead mid-scrape
                continue
        return snaps

    def metrics_snapshot(self) -> dict:
        """Cluster-wide ``/v1/metrics``: front-end + per-worker + merged."""
        workers = self._worker_snapshots()
        snap = self.metrics.snapshot()
        snap["generation"] = self.generation
        snap["queue_depth"] = self.queue_depth
        snap["precision"] = self.precision
        if self._limiter is not None:
            snap["rate_limiter"] = self._limiter.snapshot()
        snap["cluster"] = {
            "workers_alive": len(self.workers_alive),
            "workers_total": len(self._clients),
            "workers_lost": self.workers_lost,
            "generation": self.generation,
            "shard_queue_depths": {
                wid: snap_w.get("queue_depth", 0)
                for wid, snap_w in workers.items()},
        }
        snap["workers"] = {str(wid): workers[wid] for wid in sorted(workers)}
        snap["workers_combined"] = merge_snapshots(list(workers.values()))
        return snap

    def metrics_prometheus(self) -> str:
        return render_cluster_prometheus(self.metrics_snapshot())
