"""Numerics-debugging toolkit for the autograd engine.

Three tools, all documented in DESIGN.md §11:

* :func:`detect_anomaly` — context manager that tags every graph node
  with its creating op + Python traceback and raises
  :class:`AnomalyError` the moment a non-finite value appears in a
  forward output or a backward gradient;
* :mod:`repro.nn.debug.fuzz` — property-based fuzzer that hammers every
  registered op with randomized shapes, dtypes, broadcast patterns and
  adversarial values against gradcheck;
* :mod:`repro.nn.debug.lint` — structural lint over a captured graph
  (``repro lint-graph``).
"""

from .anomaly import AnomalyError, detect_anomaly, is_anomaly_enabled
from .fuzz import (
    OP_REGISTRY,
    FuzzFailure,
    FuzzReport,
    covered_graph_ops,
    fuzz_all,
    fuzz_one,
)
from .lint import LintIssue, capture_graph, lint_graph

__all__ = [
    "AnomalyError", "detect_anomaly", "is_anomaly_enabled",
    "OP_REGISTRY", "FuzzFailure", "FuzzReport", "covered_graph_ops",
    "fuzz_all", "fuzz_one",
    "LintIssue", "capture_graph", "lint_graph",
]
