"""Online label re-correction: refresh a served model from recent windows.

On a drift alarm (or a fixed period) the stream processor hands the
last K windows of sessions — with their *noisy* stream annotations —
to :func:`recorrect_model`, which re-runs the CLFD correction loop on
exactly the parts label noise can reach:

1. the corrector's **SSL encoder stays frozen** — it never saw labels,
   so drifting annotation quality cannot have poisoned it, and keeping
   it pins the representation space the reference statistics live in;
2. the corrector's classifier head is **re-trained** on the recent
   noisy labels (mixup-GCE, noise-robust by construction), then
   :meth:`~repro.core.label_corrector.LabelCorrector.correct` produces
   fresh corrected labels + confidences for the recent sessions;
3. the detector's classifier head is **fine-tuned** on the corrected
   labels over the frozen detector encoder, and the class centroids
   are re-fit — both through the same :func:`train_classifier_head`
   loop batch training uses, so a :class:`~repro.train.TrainRun` gives
   atomic checkpoints and journal entries for free;
4. the refreshed model is persisted as a deterministic archive
   (``model-gen{n}.npz``) ready for the serving tier's rolling reload.

Sessions are rebuilt from raw activity tokens against the model's own
frozen vocabulary (:meth:`Vocabulary.encode_frozen`): novel tokens are
*dropped from training* but *counted* — they already raised the
monitor's ``oov_rate``, and training on padding would teach the head
that unknown means normal.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib

import numpy as np

from ..core import CLFD
from ..core.persistence import save_clfd
from ..core.training import train_classifier_head
from ..data.sessions import Session, SessionDataset
from ..train import TrainRun
from .window import StreamSession

__all__ = ["RecorrectResult", "build_recent_dataset", "recorrect_model"]


@dataclasses.dataclass(frozen=True)
class RecorrectResult:
    """What one re-correction pass produced."""

    archive: pathlib.Path
    generation: int
    n_sessions: int
    n_dropped: int          # sessions empty after frozen-vocab encoding
    oov_tokens: int
    flipped: int            # corrected labels differing from noisy input
    corrector_loss: float   # final corrector-head epoch loss
    detector_loss: float    # final detector-head epoch loss

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["archive"] = str(self.archive)
        return payload


def build_recent_dataset(
        sessions: list[StreamSession],
        model: CLFD) -> tuple[SessionDataset | None, int, int]:
    """Encode stream sessions against the model's frozen vocabulary.

    Returns ``(dataset, dropped, oov_tokens)``; ``dataset`` is None
    when nothing survives encoding.  Integer activities are taken as
    already-encoded ids; token strings go through ``encode_frozen`` so
    OOV tokens are dropped (and tallied) instead of masquerading as
    padding.
    """
    vocab = model.vectorizer.vocab
    dropped = 0
    oov_tokens = 0
    encoded: list[Session] = []
    for session in sessions:
        if session.activities and isinstance(session.activities[0], str):
            if vocab is None:
                raise ValueError(
                    "archive has no vocabulary; stream events must carry "
                    "integer activity ids")
            ids, oov = vocab.encode_frozen(session.activities)
            oov_tokens += oov
        else:
            ids = [int(a) for a in session.activities]
        if not ids:
            dropped += 1
            continue
        encoded.append(Session(
            activities=ids, label=int(session.label),
            noisy_label=int(session.noisy_label),
            session_id=session.session_id, user=session.entity))
    if not encoded:
        return None, dropped, oov_tokens
    return (SessionDataset(encoded, vocab, name="stream-recent"),
            dropped, oov_tokens)


def recorrect_model(model: CLFD, sessions: list[StreamSession],
                    rng: np.random.Generator, *,
                    generation: int,
                    archive_dir: str | os.PathLike,
                    run: TrainRun | None = None,
                    head_epochs: int | None = None) -> RecorrectResult:
    """Re-correct recent labels and fine-tune the detector head.

    ``model`` must be a full-precision CLFD with both corrector and
    detector (quantized v3 archives drop the corrector; the processor
    refuses re-correction for those upfront).  The refreshed model is
    saved to ``archive_dir / model-gen{generation}.npz``.
    """
    if model.label_corrector is None:
        raise ValueError("re-correction needs an archive with a corrector "
                         "(full-precision v2 archive)")
    if model.fraud_detector is None:
        raise ValueError("re-correction needs an archive with a detector")
    run = run or TrainRun()
    config = model.config
    epochs = (config.classifier_epochs if head_epochs is None
              else int(head_epochs))

    recent, dropped, oov_tokens = build_recent_dataset(sessions, model)
    if recent is None:
        raise ValueError("no stream sessions survive frozen-vocab encoding")

    corrector = model.label_corrector
    # The corrector and detector share the processor's checkpointed rng
    # for the fine-tune so resumed streams replay identically.
    corrector._rng = rng
    features = corrector._encode_dataset(recent)
    corrector_history = train_classifier_head(
        corrector.classifier, features, recent.noisy_labels(), rng,
        loss=config.classifier_loss, q=config.q, beta=config.mixup_beta,
        epochs=epochs, batch_size=config.batch_size, lr=config.lr,
        grad_clip=config.grad_clip, run=run, scope="recorrect-head")
    labels, confidences = corrector.correct(recent)
    flipped = int(np.sum(labels != recent.noisy_labels()))

    detector = model.fraud_detector
    detector._rng = rng
    det_features = detector.encode(recent)
    detector_history = train_classifier_head(
        detector.classifier, det_features, labels, rng,
        loss=config.classifier_loss, q=config.q, beta=config.mixup_beta,
        epochs=epochs, batch_size=config.batch_size, lr=config.lr,
        grad_clip=config.grad_clip, run=run, scope="recorrect-detector")
    detector._fit_centroids(det_features, labels)

    model.corrected_labels = labels
    model.confidences = confidences
    archive = save_clfd(
        model, pathlib.Path(archive_dir) / f"model-gen{generation}.npz")
    return RecorrectResult(
        archive=archive, generation=generation,
        n_sessions=len(recent), n_dropped=dropped,
        oov_tokens=oov_tokens, flipped=flipped,
        corrector_loss=(float(corrector_history[-1])
                        if corrector_history else 0.0),
        detector_loss=(float(detector_history[-1])
                       if detector_history else 0.0))
