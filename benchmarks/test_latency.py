"""Benchmark: §IV-B3 training-latency comparison.

The paper reports CLFD (and the other supervised-contrastive models,
Sel-CL and CTRR) training ≈4x longer than the non-contrastive
baselines.  Absolute seconds differ on a CPU NumPy substrate; the
relative factors are the reproduced quantity.
"""

from repro.experiments import paper_reference, run_latency


def test_training_latency(run_once, settings, report):
    latencies = run_once(lambda: run_latency(settings, verbose=True))

    non_contrastive = ["DivMix", "ULC", "Few-Shot", "CLDet", "DeepLog",
                       "LogBert"]
    base = min(latencies[m] for m in non_contrastive)
    report()
    report("Training latency (measured, reduced scale):")
    for model, seconds in sorted(latencies.items(), key=lambda kv: -kv[1]):
        report(f"  {model:10s} {seconds:8.2f}s  ({seconds / base:4.1f}x "
              "fastest non-contrastive)")
    report()
    report("Paper: CLFD full-scale latencies (V100) — "
          + ", ".join(f"{k}: {v:,.0f}s"
                      for k, v in paper_reference.LATENCY_SECONDS.items()))

    # Shape: CLFD must cost more than the cheapest non-contrastive model
    # (it trains two encoders + two heads).
    assert latencies["CLFD"] > base
