"""Benchmark: regenerate Table IV (ablations, uniform noise η=0.45)."""

import numpy as np

from repro.experiments import (
    format_ablation_table,
    paper_reference,
    run_table4,
)


def test_table4_ablation_uniform(run_once, settings, report):
    results = run_once(lambda: run_table4(settings, verbose=True))

    report()
    report(format_ablation_table(results,
                                "Table IV (measured, η=0.45, reduced scale)"))
    report()
    report("Paper F1 means for reference:")
    for variant, per_ds in paper_reference.TABLE4_F1.items():
        row = "  ".join(f"{ds}={f1:.1f}" for ds, f1 in per_ds.items())
        report(f"  {variant:20s} {row}")

    datasets = list(results["CLFD"])

    def mean_f1(variant):
        return np.mean([results[variant][d]["f1"].mean for d in datasets])

    full = mean_f1("CLFD")
    # Shape: the full framework must beat the majority of its ablations
    # (every ablation in the paper), demonstrating each component helps.
    weaker = [v for v in results if v != "CLFD" and mean_f1(v) < full]
    assert len(weaker) >= 4, (
        f"full CLFD (F1={full:.1f}) should beat most ablations; "
        f"beaten: {sorted(weaker)}"
    )
