"""Content-keyed on-disk cache of completed grid cells.

One JSON file per cell, named by the :func:`~repro.parallel.tasks.task_key`
content hash, so interrupted sweeps resume where they stopped and a
repeated table invocation (same configs, same seeds, same scale) skips
straight to aggregation.  Only *successful* runs are stored — failures
are always retried by the next sweep.

Writes are atomic (temp file + ``os.replace``), so a sweep killed
mid-write never leaves a truncated record; corrupt or unreadable files
are treated as misses and overwritten.  The same directory may be
shared by several hosts (NFS + a multi-host coordinator sweep):
records are self-contained and idempotent, so concurrent writers can
only race to produce identical bytes.  Orphaned ``*.tmp`` files — the
crash window between ``mkstemp`` and ``os.replace`` — are swept on
open and on :meth:`RunCache.clear`, age-gated so an in-flight writer
on another host is never clobbered.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

__all__ = ["RunCache", "DEFAULT_CACHE_DIR", "TMP_SWEEP_AGE_S"]

DEFAULT_CACHE_DIR = ".repro-cache"

# A writer holds its .tmp for milliseconds (json.dump + os.replace).
# Anything this much older is an orphan from a crashed process, not an
# in-flight write on a slow NFS peer.
TMP_SWEEP_AGE_S = 3600.0


class RunCache:
    """Directory of ``<key>.json`` run records."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR,
                 tmp_sweep_age_s: float = TMP_SWEEP_AGE_S):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.tmp_sweep_age_s = float(tmp_sweep_age_s)
        self.sweep_orphans()

    def path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the stored record, or None on miss/corruption."""
        try:
            with open(self.path(key)) as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def put(self, key: str, record: dict) -> None:
        """Atomically persist a record under ``key``."""
        payload = dict(record)
        payload.setdefault("key", key)
        payload.setdefault("created", time.time())
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        # Must agree with get(): a torn/corrupt record on disk is a
        # miss, not a hit — path.exists() alone would make the executor
        # skip the cell as "cached" and then aggregate a null result.
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def sweep_orphans(self, min_age_s: float | None = None) -> int:
        """Remove ``*.tmp`` leftovers older than ``min_age_s`` seconds.

        A ``put`` interrupted between ``mkstemp`` and ``os.replace``
        strands its temp file; under a shared multi-host cache dir
        those accumulate forever.  The age gate keeps concurrent
        in-flight writers on other hosts safe.  Returns the number of
        files removed.
        """
        if min_age_s is None:
            min_age_s = self.tmp_sweep_age_s
        cutoff = time.time() - min_age_s
        removed = 0
        for path in self.root.glob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                pass  # raced with another sweeper or an os.replace
        return removed

    def clear(self) -> int:
        """Delete every record (and all temp leftovers, regardless of
        age — clear() means the caller wants an empty directory);
        returns how many records were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.sweep_orphans(min_age_s=0.0)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunCache({str(self.root)!r}, {len(self)} records)"
