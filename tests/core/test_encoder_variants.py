"""Tests for the encoder variants wired into the CLFD core."""

import numpy as np
import pytest

from repro import CLFD
from repro.core import CLFDConfig, SessionEncoder
from repro.data import apply_uniform_noise, make_dataset
from tests.core.conftest import TINY


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.mark.parametrize("cell,expected_factor", [
    ("lstm", 1), ("gru", 1), ("bilstm", 2),
])
def test_encoder_cells_output_dims(cell, expected_factor, rng):
    encoder = SessionEncoder(8, 12, rng, cell=cell)
    assert encoder.output_dim == 12 * expected_factor
    z = encoder(rng.normal(size=(3, 5, 8)), lengths=np.array([5, 3, 1]))
    assert z.shape == (3, encoder.output_dim)


@pytest.mark.parametrize("cell", ["lstm", "gru", "bilstm"])
def test_attention_pooling_with_each_cell(cell, rng):
    encoder = SessionEncoder(8, 12, rng, cell=cell, pooling="attention")
    z = encoder(rng.normal(size=(2, 4, 8)), lengths=np.array([4, 2]))
    assert z.shape == (2, encoder.output_dim)
    (z ** 2).sum().backward()
    assert all(p.grad is not None for p in encoder.parameters())


def test_encoder_variant_validation(rng):
    with pytest.raises(ValueError):
        SessionEncoder(8, 12, rng, cell="transformer")
    with pytest.raises(ValueError):
        SessionEncoder(8, 12, rng, pooling="max")


def test_config_validates_variants():
    with pytest.raises(ValueError):
        CLFDConfig(encoder_cell="rnn")
    with pytest.raises(ValueError):
        CLFDConfig(pooling="sum")


@pytest.mark.parametrize("overrides", [
    {"encoder_cell": "gru"},
    {"encoder_cell": "bilstm"},
    {"pooling": "attention"},
])
def test_clfd_trains_with_variant(overrides):
    rng = np.random.default_rng(9)
    train, test = make_dataset("cert", rng, scale=0.02)
    apply_uniform_noise(train, eta=0.1, rng=rng)
    config = CLFDConfig(**{**TINY, **overrides})
    model = CLFD(config).fit(train, rng=np.random.default_rng(9))
    labels, scores = model.predict(test)
    assert labels.shape == (len(test),)
    assert np.isfinite(scores).all()


def test_variant_persistence_roundtrip(tmp_path):
    """Saving/loading preserves non-default encoder variants."""
    from repro.core import load_clfd, save_clfd

    rng = np.random.default_rng(10)
    train, test = make_dataset("cert", rng, scale=0.02)
    config = CLFDConfig(**{**TINY, "encoder_cell": "gru"})
    model = CLFD(config).fit(train, rng=np.random.default_rng(10))
    path = tmp_path / "gru.npz"
    save_clfd(model, path)
    restored = load_clfd(path)
    assert restored.config.encoder_cell == "gru"
    labels_a, _ = model.predict(test)
    labels_b, _ = restored.predict(test)
    np.testing.assert_array_equal(labels_a, labels_b)
