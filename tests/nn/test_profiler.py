"""Thread-safety and re-entrancy of the profiler hook installation.

Regression tests: the old ``profile()`` unconditionally cleared the
tensor hook on exit, so an inner context exiting silently disabled the
outer profiler, and two threads' contexts could strand or drop each
other's hooks.
"""

import threading

import numpy as np

from repro import nn
from repro.nn import tensor as _tensor


def _one_backward():
    x = nn.Tensor(np.ones((3, 3)), requires_grad=True)
    (x * 2.0).sum().backward()


def test_nested_profile_outer_keeps_recording():
    with nn.profile() as outer:
        with nn.profile() as inner:
            _one_backward()
        inner_nodes = inner.total_nodes
        assert inner_nodes > 0
        # The inner exit must not disable the outer profiler.
        _one_backward()
    assert outer.total_nodes > inner_nodes
    assert _tensor._PROFILE_HOOK is None


def test_nested_profilers_both_see_events():
    with nn.profile() as outer:
        with nn.profile() as inner:
            _one_backward()
    assert outer.total_nodes == inner.total_nodes > 0
    assert outer.total_backward_seconds > 0
    assert inner.total_backward_seconds > 0


def test_concurrent_profilers_from_threads():
    started = threading.Barrier(2)
    profilers = {}
    errors = []

    def worker(name):
        try:
            with nn.profile() as prof:
                started.wait(timeout=5)
                for _ in range(5):
                    _one_backward()
                profilers[name] = prof
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    # Both profilers recorded (each sees its own and the other thread's
    # events while both are live), and the hook is fully uninstalled.
    for prof in profilers.values():
        assert prof.total_nodes > 0
        assert prof.total_backward_seconds > 0
    assert _tensor._PROFILE_HOOK is None


def test_exception_inside_context_still_uninstalls():
    try:
        with nn.profile():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert _tensor._PROFILE_HOOK is None


def _stats_view(prof):
    return {name: (s.nodes, s.backward_calls, s.backward_seconds)
            for name, s in prof.ops.items()}


def test_nested_profilers_agree_exactly_on_fused_kernels():
    """Nested profilers must attribute each backward exactly once, to
    the same op name, with the same seconds — a fused-kernel node must
    never land under the fused name in one profiler and a wrapper name
    in the other, which would inflate ``total_backward_seconds``."""
    lstm = nn.LSTM(8, 8, np.random.default_rng(0), fused=True)
    x = nn.Tensor(np.random.default_rng(1).normal(size=(4, 6, 8)),
                  requires_grad=True)
    with nn.profile() as outer:
        with nn.profile() as inner:
            lstm(x)[0].sum().backward()
    assert _stats_view(inner) == _stats_view(outer)
    assert inner.total_backward_seconds == outer.total_backward_seconds
    # Each fused node's backward is one call under the fused op name.
    assert inner.ops["fused_lstm_sequence"].backward_calls > 0


def test_profile_sees_through_replayed_tapes():
    """A replayed compiled step must report the same per-op node counts
    and backward calls as the interpreted step — including nodes the
    tape pruned as dead (the interpreter records them at creation)."""
    lstm = nn.LSTM(8, 8, np.random.default_rng(0), fused=True)
    optimizer = nn.Adam(lstm.parameters(), lr=1e-3)
    data = np.random.default_rng(1).normal(size=(3, 4, 6, 8))

    def program(x):
        outputs, state = lstm(nn.Tensor(x))  # state is dead weight
        return outputs.sum()

    step = nn.StepProgram(lambda i: (data[i],), program)
    compiled = nn.compile_step(step)
    compiled.step_and_backward(0, optimizer)  # trace
    optimizer.step()

    with nn.profile() as replayed:
        compiled.step_and_backward(1, optimizer)
    optimizer.step()
    assert compiled.replays == 1 and not compiled.disabled

    with nn.profile() as interpreted:
        loss = step(1)
        optimizer.zero_grad()
        loss.backward()

    want = {name: (s.nodes, s.backward_calls)
            for name, s in interpreted.ops.items()}
    got = {name: (s.nodes, s.backward_calls)
           for name, s in replayed.ops.items()}
    assert got == want
