"""Gated Recurrent Unit layers — an alternative session encoder.

The paper standardises on LSTM encoders; a GRU at the same width is a
natural ablation (fewer parameters, similar capacity).  The interface
mirrors :class:`repro.nn.LSTM` including masked mean-pooling and the
``fused`` flag: the fused path runs each step as a single hand-derived
kernel (:mod:`repro.nn.fused`) and batches the gate and candidate input
projections of a whole layer into two GEMMs outside the recurrence.
"""

from __future__ import annotations

import numpy as np

from . import init
from .fused import fused_gru_sequence, fused_gru_step
from .module import Module, Parameter
from .tensor import Tensor, split, stack

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU cell with fused gate projections.

    Gate order in the fused reset/update weights is ``[reset, update]``;
    the candidate projection is kept separate because it sees the
    reset-scaled hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, fused: bool = True):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.fused = fused
        self.w_x = Parameter(init.xavier_uniform((input_size, 2 * hidden_size), rng))
        self.w_h = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(2)],
                axis=1,
            )
        )
        self.bias = Parameter(init.zeros(2 * hidden_size))
        self.w_xc = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hc = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.bias_c = Parameter(init.zeros(hidden_size))

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        """One step: returns the new hidden state."""
        if self.fused:
            return fused_gru_step(x, h_prev, self.w_x, self.w_h, self.bias,
                                  self.w_xc, self.w_hc, self.bias_c)
        gates = x @ self.w_x + h_prev @ self.w_h + self.bias
        gr, gz = split(gates, self.hidden_size, axis=1)
        r, z = gr.sigmoid(), gz.sigmoid()
        candidate = (x @ self.w_xc + (r * h_prev) @ self.w_hc + self.bias_c).tanh()
        return z * h_prev + (1.0 - z) * candidate

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size),
                               dtype=self.w_x.data.dtype))


class GRU(Module):
    """Multi-layer batch-first GRU with LSTM-compatible interface."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 2,
                 fused: bool = True):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.fused = fused
        self.cells = [
            GRUCell(input_size if layer == 0 else hidden_size, hidden_size,
                    rng, fused=fused)
            for layer in range(num_layers)
        ]

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Run the sequence; returns (outputs, final hidden state)."""
        if x.ndim != 3:
            raise ValueError(f"GRU expects (batch, time, features), got {x.shape}")
        if self.fused:
            return self._forward_fused(x)
        batch, time, _ = x.shape
        layer_input = [x[:, t, :] for t in range(time)]
        h = None
        for cell in self.cells:
            h = cell.initial_state(batch)
            outputs = []
            for step in layer_input:
                h = cell(step, h)
                outputs.append(h)
            layer_input = outputs
        return stack(layer_input, axis=1), h

    def _forward_fused(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Fused path: two input-projection GEMMs per layer, then the
        whole recurrence runs inside a single sequence kernel."""
        batch, _, _ = x.shape
        layer_input = x
        h = None
        for cell in self.cells:
            h0 = cell.initial_state(batch)
            layer_input, h = fused_gru_sequence(
                layer_input, h0, cell.w_x, cell.w_h, cell.bias,
                cell.w_xc, cell.w_hc, cell.bias_c)
        return layer_input, h

    def mean_pool(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        """Masked mean over the final layer's hidden states."""
        outputs, _ = self.forward(x)
        if lengths is None:
            return outputs.mean(axis=1)
        dtype = outputs.data.dtype
        lengths = np.asarray(lengths, dtype=dtype)
        batch, time, _ = outputs.shape
        mask = (np.arange(time)[None, :] < lengths[:, None]).astype(dtype)
        masked = outputs * Tensor(mask[:, :, None])
        return masked.sum(axis=1) / Tensor(np.maximum(lengths, 1.0)[:, None])
