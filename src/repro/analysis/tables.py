"""Publication-ready analysis over sweep output.

Turns a (possibly multi-host) sweep's :class:`~repro.parallel.RunCache`
into the artifacts the paper actually reports: cross-seed aggregation
(mean ± std per model × dataset × noise cell), paired significance
tests of a target model against every baseline (paired t and Wilcoxon
signed-rank, Holm-corrected across the baseline family), and rendering
as markdown or LaTeX.

The cache is the natural input: records are content-keyed and
self-describing (model, dataset, noise, seed, scale, measure, metrics),
so ``repro analyze`` works identically on a sweep that just finished,
on one resumed across interruptions, and on one computed by a dozen
hosts into a shared directory.  Per-seed values are kept — the
aggregated mean±std the table runners print is not enough for paired
tests, which need the seed-aligned vectors.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..parallel.cache import RunCache
from .stats import PairedTest, holm_correction, paired_t_test, \
    wilcoxon_signed_rank

__all__ = ["SweepCell", "SignificanceRow", "load_sweep_records",
           "cross_seed_table", "significance_report", "render_markdown",
           "render_latex", "render_significance_markdown",
           "render_significance_latex", "noise_label", "analyze_cache"]


def noise_label(noise: Sequence) -> str:
    """Same labels TaskSpec/the runners use, reconstructed from a
    cache record's serialised ``[kind, params]`` pair."""
    kind, params = noise[0], [float(p) for p in noise[1]]
    if kind == "uniform":
        return f"eta={params[0]}"
    if kind == "class-dependent":
        return f"eta10={params[0]},eta01={params[1]}"
    return "clean"


@dataclasses.dataclass
class SweepCell:
    """One (model, dataset, noise) cell's cross-seed aggregate."""

    model: str
    dataset: str
    noise: str
    seeds: list[int]
    values: list[float]  # metric value per seed, aligned with `seeds`

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def std(self) -> float:
        # ddof=0 matches MetricSummary / summarize_runs.
        return float(np.std(self.values)) if self.values else float("nan")

    def format(self, digits: int = 2) -> str:
        return f"{self.mean:.{digits}f}±{self.std:.{digits}f}"


@dataclasses.dataclass
class SignificanceRow:
    """Target vs one baseline: both paired tests, Holm-adjusted."""

    baseline: str
    t: PairedTest
    wilcoxon: PairedTest

    def significant(self, alpha: float = 0.05) -> bool:
        p = self.t.adjusted_pvalue
        return p is not None and not math.isnan(p) and p < alpha


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_sweep_records(cache: RunCache | str | os.PathLike,
                       measure: str = "test_metrics") -> list[dict]:
    """Read every valid record of ``measure`` kind from a run cache.

    Corrupt or torn records are skipped exactly as the executor skips
    them (they re-run on the next sweep, so they are not results yet).
    """
    if not isinstance(cache, RunCache):
        cache = RunCache(cache)
    records = []
    for path in sorted(cache.root.glob("*.json")):
        record = cache.get(path.stem)
        if record is None or not isinstance(record.get("metrics"), dict):
            continue
        if record.get("measure", "test_metrics") != measure:
            continue
        records.append(record)
    return records


def _grouped(records: Iterable[dict], metric: str
             ) -> dict[tuple[str, str, str], dict[int, float]]:
    """(model, dataset, noise) -> {seed: value}; conflicting duplicates
    (same cell, same seed, different value — two different configs
    sharing one cache dir under one display name) raise rather than
    silently averaging apples with oranges."""
    grouped: dict[tuple[str, str, str], dict[int, float]] = {}
    for record in records:
        metrics = record["metrics"]
        if metric not in metrics:
            continue
        value = metrics[metric]
        if value is None:
            value = float("nan")
        cell = (str(record.get("model", record.get("estimator", "?"))),
                str(record["dataset"]), noise_label(record["noise"]))
        seed = int(record["seed"])
        per_seed = grouped.setdefault(cell, {})
        if seed in per_seed:
            existing = per_seed[seed]
            same = (existing == value
                    or (math.isnan(existing) and math.isnan(float(value))))
            if not same:
                raise ValueError(
                    f"conflicting records for {cell} seed {seed}: "
                    f"{existing!r} vs {value!r} — this cache directory "
                    f"mixes sweeps with different configs under the same "
                    f"model name; analyze them separately")
        per_seed[seed] = float(value)
    return grouped


# ----------------------------------------------------------------------
# Aggregation + significance
# ----------------------------------------------------------------------
def cross_seed_table(records: Iterable[dict], metric: str = "f1",
                     ) -> list[SweepCell]:
    """Aggregate a metric over seeds for every (model, dataset, noise)."""
    cells = []
    for (model, dataset, noise), per_seed in sorted(
            _grouped(records, metric).items()):
        seeds = sorted(per_seed)
        cells.append(SweepCell(model=model, dataset=dataset, noise=noise,
                               seeds=seeds,
                               values=[per_seed[s] for s in seeds]))
    return cells


def significance_report(records: Iterable[dict], metric: str = "f1",
                        target: str = "CLFD") -> list[SignificanceRow]:
    """Paired tests of ``target`` against every other model.

    Pairs are matched on (dataset, noise, seed) — the axes the paper
    holds fixed when comparing models — pooled across datasets and
    noise levels so small per-cell seed counts still yield a usable n.
    Non-finite pairs (an undefined metric on either side) are dropped
    by the tests themselves.  Holm correction is applied per test
    family across the baselines.
    """
    records = list(records)
    grouped = _grouped(records, metric)
    target_values: dict[tuple[str, str, int], float] = {}
    for (model, dataset, noise), per_seed in grouped.items():
        if model == target:
            for seed, value in per_seed.items():
                target_values[(dataset, noise, seed)] = value
    if not target_values:
        raise ValueError(f"no records for target model {target!r}; "
                         f"models present: "
                         f"{sorted({m for m, _, _ in grouped})}")

    rows = []
    for baseline in sorted({model for model, _, _ in grouped
                            if model != target}):
        x, y = [], []
        for (model, dataset, noise), per_seed in grouped.items():
            if model != baseline:
                continue
            for seed, value in per_seed.items():
                t_value = target_values.get((dataset, noise, seed))
                if t_value is not None:
                    x.append(t_value)
                    y.append(value)
        if len(x) < 2:
            continue  # nothing to pair — different sweep axes
        rows.append(SignificanceRow(baseline=baseline,
                                    t=paired_t_test(x, y),
                                    wilcoxon=wilcoxon_signed_rank(x, y)))

    for family in ("t", "wilcoxon"):
        adjusted = holm_correction([getattr(r, family).pvalue
                                    for r in rows])
        for row, p in zip(rows, adjusted):
            setattr(row, family, getattr(row, family).adjusted(p))
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _table_axes(cells: Sequence[SweepCell]):
    models = list(dict.fromkeys(c.model for c in cells))
    datasets = sorted({c.dataset for c in cells})
    noises = list(dict.fromkeys(c.noise for c in cells))
    index = {(c.model, c.dataset, c.noise): c for c in cells}
    return models, datasets, noises, index


def _p_str(p: float | None) -> str:
    if p is None or math.isnan(p):
        return "—"
    if p < 1e-4:
        return f"{p:.1e}"
    return f"{p:.4f}"


def render_markdown(cells: Sequence[SweepCell], metric: str = "f1",
                    digits: int = 2) -> str:
    """Cross-seed table as GitHub markdown: model × noise rows,
    dataset columns, mean±std cells with the seed count."""
    models, datasets, noises, index = _table_axes(cells)
    lines = [f"| Model | Noise | " + " | ".join(
        f"{d} ({metric}, mean±std)" for d in datasets) + " |"]
    lines.append("|" + "---|" * (2 + len(datasets)))
    for model in models:
        for noise in noises:
            row = [model, noise]
            any_cell = False
            for dataset in datasets:
                cell = index.get((model, dataset, noise))
                if cell is None:
                    row.append("—")
                else:
                    row.append(f"{cell.format(digits)} (n={cell.n})")
                    any_cell = True
            if any_cell:
                lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_latex(cells: Sequence[SweepCell], metric: str = "f1",
                 digits: int = 2, caption: str | None = None,
                 label: str | None = None) -> str:
    """Cross-seed table as a LaTeX ``table`` with booktabs rules."""
    models, datasets, noises, index = _table_axes(cells)
    column_spec = "ll" + "c" * len(datasets)
    lines = ["\\begin{table}[t]", "\\centering"]
    if caption:  # caller may embed math — escape metric names upstream
        lines.append(f"\\caption{{{caption}}}")
    if label:
        lines.append(f"\\label{{{label}}}")
    lines += [f"\\begin{{tabular}}{{{column_spec}}}", "\\toprule"]
    header = ["Model", "Noise"] + [_latex_escape(f"{d} ({metric})")
                                   for d in datasets]
    lines.append(" & ".join(header) + " \\\\")
    lines.append("\\midrule")
    for model in models:
        for noise in noises:
            row = [_latex_escape(model), _latex_escape(noise)]
            any_cell = False
            for dataset in datasets:
                cell = index.get((model, dataset, noise))
                if cell is None:
                    row.append("---")
                else:
                    row.append(f"${cell.mean:.{digits}f} \\pm "
                               f"{cell.std:.{digits}f}$")
                    any_cell = True
            if any_cell:
                lines.append(" & ".join(row) + " \\\\")
    lines += ["\\bottomrule", "\\end{tabular}", "\\end{table}"]
    return "\n".join(lines)


def render_significance_markdown(rows: Sequence[SignificanceRow],
                                 target: str = "CLFD",
                                 alpha: float = 0.05) -> str:
    lines = [
        f"| {target} vs | n | Δmean | t | p (t) | p (t, Holm) "
        f"| W | p (W) | p (W, Holm) | sig. (α={alpha:g}) |",
        "|" + "---|" * 10,
    ]
    for row in rows:
        mark = "**yes**" if row.significant(alpha) else "no"
        lines.append(
            f"| {row.baseline} | {row.t.n} | {row.t.mean_difference:+.3f} "
            f"| {row.t.statistic:.3f} | {_p_str(row.t.pvalue)} "
            f"| {_p_str(row.t.adjusted_pvalue)} "
            f"| {row.wilcoxon.statistic:.1f} "
            f"| {_p_str(row.wilcoxon.pvalue)} "
            f"| {_p_str(row.wilcoxon.adjusted_pvalue)} | {mark} |")
    return "\n".join(lines)


def render_significance_latex(rows: Sequence[SignificanceRow],
                              target: str = "CLFD",
                              alpha: float = 0.05) -> str:
    lines = [
        "\\begin{table}[t]", "\\centering",
        f"\\caption{{Paired tests of {_latex_escape(target)} against "
        f"each baseline (Holm-corrected, $\\alpha={alpha:g}$).}}",
        "\\begin{tabular}{lrrrrrr}", "\\toprule",
        "Baseline & $n$ & $\\Delta$mean & $t$ & $p_t^{\\mathrm{Holm}}$ & "
        "$W$ & $p_W^{\\mathrm{Holm}}$ \\\\",
        "\\midrule",
    ]
    for row in rows:
        name = _latex_escape(row.baseline)
        if row.significant(alpha):
            name = f"\\textbf{{{name}}}"
        lines.append(
            f"{name} & {row.t.n} & ${row.t.mean_difference:+.3f}$ & "
            f"${row.t.statistic:.3f}$ & {_p_str(row.t.adjusted_pvalue)} & "
            f"${row.wilcoxon.statistic:.1f}$ & "
            f"{_p_str(row.wilcoxon.adjusted_pvalue)} \\\\")
    lines += ["\\bottomrule", "\\end{tabular}", "\\end{table}"]
    return "\n".join(lines)


def _latex_escape(text: str) -> str:
    for char in "&%$#_{}":
        text = text.replace(char, "\\" + char)
    return text


# ----------------------------------------------------------------------
# One-call entry point (what `repro analyze` drives)
# ----------------------------------------------------------------------
def analyze_cache(cache: RunCache | str | os.PathLike, metric: str = "f1",
                  target: str = "CLFD", fmt: str = "markdown",
                  alpha: float = 0.05, measure: str = "test_metrics",
                  ) -> str:
    """Aggregate + test + render a run-cache directory in one call."""
    records = load_sweep_records(cache, measure=measure)
    if not records:
        raise ValueError(f"no completed {measure!r} records in "
                         f"{cache!r} — run a sweep first")
    cells = cross_seed_table(records, metric=metric)
    sections = []
    models = {c.model for c in cells}
    try:
        rows = significance_report(records, metric=metric, target=target)
    except ValueError:
        rows = []  # single-model caches still get the aggregate table
    if fmt in ("markdown", "both"):
        sections.append(f"### Cross-seed aggregation ({metric})\n")
        sections.append(render_markdown(cells, metric=metric))
        if rows:
            sections.append(f"\n### Significance vs {target} "
                            f"({len(models) - 1} baselines)\n")
            sections.append(render_significance_markdown(
                rows, target=target, alpha=alpha))
    if fmt in ("latex", "both"):
        sections.append("\n% ---- LaTeX ----" if fmt == "both" else "")
        sections.append(render_latex(
            cells, metric=metric,
            caption=f"Cross-seed {_latex_escape(metric)} "
                    f"(mean $\\pm$ std).",
            label=f"tab:{metric}"))
        if rows:
            sections.append(render_significance_latex(
                rows, target=target, alpha=alpha))
    return "\n".join(s for s in sections if s)
