"""Kill-and-resume drills through the compiled training step.

Same contract as ``test_resume_clfd.py`` — interrupt at a snapshot,
resume in a fresh process, land bit-identical — but with the compile
flag on for both the interrupted and the resumed run, compared against
a clean *interpreted* fit.  This covers two compiled-specific hazards
at once: the resume path restores parameters via ``load_state_dict``,
which rebinds leaf payloads and must force a re-trace (a stale tape
would silently train the pre-restore weights), and bit-identity must
hold across the interrupted/compiled/interpreted triangle, not just
pairwise.
"""

import numpy as np
import pytest

from repro.core import CLFD, model_fingerprint
from repro.train import TrainingInterrupted, TrainRun

from tests.train.test_resume_clfd import CLFD_STOPS


def _fit_compiled_interrupted_then_resume(factory, tiny_data, tmp_path,
                                          stop_after, seed=5):
    journal = tmp_path / "journal.jsonl"
    run = TrainRun(tmp_path / "ckpt", journal, stop_after=stop_after,
                   compile=True)
    with pytest.raises(TrainingInterrupted):
        factory().fit(tiny_data[0], rng=np.random.default_rng(seed),
                      run=run)
    resumed = TrainRun(tmp_path / "ckpt", journal, resume=True,
                       compile=True)
    model = factory()
    model.fit(tiny_data[0], rng=np.random.default_rng(seed), run=resumed)
    return model


@pytest.fixture(scope="module")
def clean_interpreted(tiny_config, tiny_data):
    model = CLFD(tiny_config)
    model.fit(tiny_data[0], rng=np.random.default_rng(5))
    return model, model_fingerprint(model)


# The resume-test stop points plus a mid-classifier epoch snapshot, so
# every compiled phase gets interrupted-and-resumed at least once.
COMPILED_STOPS = CLFD_STOPS + ["corrector/head@3"]


@pytest.mark.parametrize("stop_after", COMPILED_STOPS)
def test_compiled_resume_bit_identical_to_interpreted(
        tiny_config, tiny_data, tmp_path, clean_interpreted, stop_after):
    clean_model, clean_print = clean_interpreted
    model = _fit_compiled_interrupted_then_resume(
        lambda: CLFD(tiny_config), tiny_data, tmp_path, stop_after)
    assert model_fingerprint(model) == clean_print
    np.testing.assert_array_equal(model.predict_proba(tiny_data[1]),
                                  clean_model.predict_proba(tiny_data[1]))
