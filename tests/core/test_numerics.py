"""compute_dtype / fused_rnn propagation from CLFDConfig into the models."""

import dataclasses

import numpy as np
import pytest

from repro.core import CLFDConfig, FraudDetector, LabelCorrector
from repro.core.encoder import SessionEncoder


@pytest.fixture()
def tiny32_config(tiny_config):
    return dataclasses.replace(tiny_config, compute_dtype="float32")


@pytest.mark.parametrize("maker", [LabelCorrector, FraudDetector])
def test_compute_dtype_reaches_parameters(maker, tiny32_config,
                                          tiny_vectorizer):
    model = maker(tiny32_config, tiny_vectorizer, np.random.default_rng(0))
    for p in model.encoder.parameters() + model.classifier.parameters():
        assert p.data.dtype == np.float32


def test_float32_encoder_accepts_float64_input(tiny32_config,
                                               tiny_vectorizer, tiny_data):
    train, _ = tiny_data
    lc = LabelCorrector(tiny32_config, tiny_vectorizer,
                        np.random.default_rng(0))
    x, lengths = tiny_vectorizer.transform(train, indices=np.arange(4))
    assert x.dtype == np.float64  # embeddings stay float64 on disk
    z = lc.encoder(x, lengths)
    assert z.data.dtype == np.float32


def test_fused_rnn_flag_selects_reference_path(tiny_config, tiny_vectorizer):
    cfg = dataclasses.replace(tiny_config, fused_rnn=False)
    fd = FraudDetector(cfg, tiny_vectorizer, np.random.default_rng(0))
    assert fd.encoder.rnn.fused is False
    fd_fused = FraudDetector(tiny_config, tiny_vectorizer,
                             np.random.default_rng(0))
    assert fd_fused.encoder.rnn.fused is True


def test_fused_and_reference_encoders_agree(tiny_config, tiny_vectorizer,
                                            tiny_data):
    train, _ = tiny_data
    x, lengths = tiny_vectorizer.transform(train, indices=np.arange(6))
    enc_f = SessionEncoder(tiny_config.embedding_dim, tiny_config.hidden_size,
                           np.random.default_rng(1), fused=True)
    enc_r = SessionEncoder(tiny_config.embedding_dim, tiny_config.hidden_size,
                           np.random.default_rng(1), fused=False)
    np.testing.assert_allclose(enc_f.encode_numpy(x, lengths),
                               enc_r.encode_numpy(x, lengths), atol=1e-10)
