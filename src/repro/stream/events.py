"""Event model, append-only event log, and synthetic drifting streams.

The streaming tier consumes an ordered sequence of :class:`Event`
records — one activity of one entity at one logical time.  Two sources
provide them:

* :class:`EventLog` — an append-only JSONL file on disk.  Offsets are
  line numbers, so ``read(start)`` replays the exact same events from
  any position; the whole streaming pipeline downstream is a pure
  function of the event sequence, which is what makes kill-and-resume
  bit-identical.
* :func:`synthesize_drifting_events` — a deterministic generator built
  on the benchmark archetypes (:mod:`repro.data.generators`) that
  interleaves concurrent sessions over a logical clock and, at a chosen
  point, shifts the world: the malicious archetype mixture changes
  (novel attack behaviour assembled from in-vocabulary tokens), the
  label-noise rate changes, or both.  This is the repo's stand-in for a
  live fraud stream whose attack patterns and annotation quality drift.

Events carry both the heuristic ``noisy_label`` (what an online
annotator would attach, and what re-correction trains on) and the
ground-truth ``label`` (evaluation only, never shown to the learner) —
the same contract as :class:`repro.data.sessions.Session`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..data.generators import DATASET_GENERATORS, Archetype
from ..data.sessions import MALICIOUS, NORMAL

__all__ = ["Event", "EventLog", "synthesize_drifting_events",
           "write_events", "NOVEL_ARCHETYPES", "DRIFT_MODES"]


@dataclasses.dataclass(frozen=True)
class Event:
    """One activity of one entity at one logical time.

    ``activity`` is a vocabulary token string or an integer activity id
    (the serving layer accepts both).  ``offset`` is the event's
    position in its log (assigned by :class:`EventLog`; ``-1`` for
    events that never touched a log).
    """

    time: float
    entity: str
    activity: str | int
    noisy_label: int = 0
    label: int = 0
    offset: int = -1

    def to_dict(self) -> dict:
        return {"time": self.time, "entity": self.entity,
                "activity": self.activity,
                "noisy_label": int(self.noisy_label),
                "label": int(self.label)}

    @classmethod
    def from_dict(cls, payload: dict, offset: int = -1) -> "Event":
        return cls(time=float(payload["time"]),
                   entity=str(payload["entity"]),
                   activity=payload["activity"],
                   noisy_label=int(payload.get("noisy_label", 0)),
                   label=int(payload.get("label", 0)),
                   offset=offset)


class EventLog:
    """Append-only JSONL event log with offset-addressed replay.

    One JSON object per line; the offset of an event is its line
    number.  Appends are flushed (same crash posture as the metric
    journal: a SIGKILLed process loses nothing already in the page
    cache), and readers skip a torn trailing line.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            self.path.touch()

    def append(self, event: Event) -> int:
        """Append one event; returns the offset it was written at."""
        offset = len(self)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(event.to_dict()) + "\n")
            fh.flush()
        return offset

    def extend(self, events: Iterable[Event]) -> int:
        """Append many events in one handle; returns the next offset."""
        offset = len(self)
        with open(self.path, "a") as fh:
            for event in events:
                fh.write(json.dumps(event.to_dict()) + "\n")
                offset += 1
            fh.flush()
        return offset

    def read(self, start: int = 0) -> Iterator[Event]:
        """Yield events from ``start`` onward, offsets attached."""
        with open(self.path) as fh:
            for offset, line in enumerate(fh):
                if offset < start:
                    continue
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write at crash time
                yield Event.from_dict(payload, offset=offset)

    def __iter__(self) -> Iterator[Event]:
        return self.read(0)

    def __len__(self) -> int:
        with open(self.path) as fh:
            return sum(1 for line in fh if line.strip())


# ----------------------------------------------------------------------
# Synthetic drifting streams
# ----------------------------------------------------------------------

DRIFT_MODES = ("none", "archetype", "noise", "archetype+noise")

# Post-drift malicious behaviour per dataset: a *novel* archetype the
# frozen model never trained on, assembled purely from in-vocabulary
# tokens so the shift is behavioural (new combinations), not lexical.
# Deliberately *stealthy*: each is dominated by tokens that occur in
# benign archetypes, so the frozen model tends to score these sessions
# as normal — the headroom online re-correction is supposed to
# recover.  Mirrors the paper's setting where new attack playbooks
# re-use ordinary primitive activities.
NOVEL_ARCHETYPES: dict[str, Archetype] = {
    # Document hoarder: daytime logon, sustained open/archive sweeps
    # over the intranet, internal mail — every token routine on its
    # own, anomalous only in combination and volume.
    "cert": Archetype(
        "stealth-hoarder", MALICIOUS,
        [(["logon_am", "logon_desk"], 1, 1),
         (["file_open_doc", "file_archive", "web_intranet"], 5, 9),
         (["email_send_int", "file_open_doc"], 2, 4),
         (["logoff"], 1, 1)]),
    # Sleeper promoter: reads like a copy editor, then saturates
    # articles with links (the tolerated promo tokens, at vandal rate).
    "umd-wikipedia": Archetype(
        "sleeper-promoter", MALICIOUS,
        [(["view_article", "view_talk"], 1, 2),
         (["add_link", "add_spam_link", "edit_article"], 4, 8),
         (["create_page", "add_category"], 1, 3)]),
    # Snapshot squatter: a normal boot followed by a snapshot/volume
    # exfiltration loop built from healthy-lifecycle tokens.
    "openstack": Archetype(
        "snapshot-squatter", MALICIOUS,
        [(["api_create", "sched_pick_host"], 2, 3),
         (["vm_spawn", "vm_boot"], 1, 2),
         (["snapshot_create", "volume_attach", "image_fetch"], 5, 9)]),
}


def synthesize_drifting_events(
        dataset: str = "cert", *,
        n_sessions: int = 400,
        drift_at: int | None = None,
        drift: str = "archetype+noise",
        eta: float = 0.1,
        eta_after: float = 0.3,
        malicious_rate: float = 0.1,
        malicious_rate_after: float | None = None,
        spacing: float = 3.0,
        step: float = 1.0,
        max_session_length: int = 16,
        rng: np.random.Generator | int = 0,
) -> list[Event]:
    """Deterministic drifting event stream over benchmark archetypes.

    Sessions ``0..n_sessions-1`` start at logical times ``i * spacing``
    with one event every ``step`` time units, so neighbouring sessions
    interleave on the wire; each session has its own entity id
    (``s00042``), which is what the gap-based windower keys on.

    Sessions at index ``>= drift_at`` (default: ``n_sessions // 2``;
    pass ``drift="none"`` for a stationary stream) are drawn from the
    shifted world:

    * ``"archetype"`` — malicious sessions come from the dataset's
      novel archetype (:data:`NOVEL_ARCHETYPES`) and the malicious rate
      rises to ``malicious_rate_after`` (default ``3 * malicious_rate``);
    * ``"noise"`` — the label-flip rate changes from ``eta`` to
      ``eta_after``;
    * ``"archetype+noise"`` — both.

    Returns the events sorted by ``(time, entity)`` — the canonical
    stream order.  Everything is a pure function of the arguments and
    the seed.
    """
    if drift not in DRIFT_MODES:
        raise ValueError(f"drift must be one of {DRIFT_MODES}")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    try:
        generator = DATASET_GENERATORS[dataset](
            max_session_length=max_session_length)
    except KeyError:
        raise KeyError(f"unknown dataset {dataset!r}; options: "
                       f"{sorted(DATASET_GENERATORS)}") from None
    if drift == "none":
        drift_at = n_sessions  # never reached
    elif drift_at is None:
        drift_at = n_sessions // 2
    if malicious_rate_after is None:
        malicious_rate_after = min(3.0 * malicious_rate, 0.5)
    novel = NOVEL_ARCHETYPES[dataset]
    vocab = generator.vocab

    events: list[Event] = []
    for i in range(n_sessions):
        drifted = i >= drift_at
        rate = malicious_rate_after if drifted and "archetype" in drift \
            else malicious_rate
        flip = eta_after if drifted and "noise" in drift else eta
        label = MALICIOUS if rng.random() < rate else NORMAL
        if label == MALICIOUS and drifted and "archetype" in drift:
            tokens = novel.sample(generator._token_pool, rng)
            tokens = tokens[:max_session_length]
        else:
            session = generator.sample_session(label, rng)
            tokens = vocab.decode(session.activities)
        noisy = 1 - label if rng.random() < flip else label
        entity = f"s{i:05d}"
        start = i * spacing
        for j, token in enumerate(tokens):
            events.append(Event(time=start + j * step, entity=entity,
                                activity=token, noisy_label=noisy,
                                label=label))
    events.sort(key=lambda e: (e.time, e.entity))
    return events


def write_events(path: str | os.PathLike,
                 events: Sequence[Event]) -> "EventLog":
    """Persist a synthesized stream as an :class:`EventLog`."""
    log = EventLog(path)
    log.extend(events)
    return log
