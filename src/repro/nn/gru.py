"""Gated Recurrent Unit layers — an alternative session encoder.

The paper standardises on LSTM encoders; a GRU at the same width is a
natural ablation (fewer parameters, similar capacity).  The interface
mirrors :class:`repro.nn.LSTM` including masked mean-pooling.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, stack

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU cell with fused gate projections.

    Gate order in the fused reset/update weights is ``[reset, update]``;
    the candidate projection is kept separate because it sees the
    reset-scaled hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(init.xavier_uniform((input_size, 2 * hidden_size), rng))
        self.w_h = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(2)],
                axis=1,
            )
        )
        self.bias = Parameter(np.zeros(2 * hidden_size))
        self.w_xc = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hc = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.bias_c = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        """One step: returns the new hidden state."""
        gates = x @ self.w_x + h_prev @ self.w_h + self.bias
        hs = self.hidden_size
        r = gates[:, 0 * hs:1 * hs].sigmoid()
        z = gates[:, 1 * hs:2 * hs].sigmoid()
        candidate = (x @ self.w_xc + (r * h_prev) @ self.w_hc + self.bias_c).tanh()
        return z * h_prev + (1.0 - z) * candidate

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class GRU(Module):
    """Multi-layer batch-first GRU with LSTM-compatible interface."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 2):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            for layer in range(num_layers)
        ]

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Run the sequence; returns (outputs, final hidden state)."""
        if x.ndim != 3:
            raise ValueError(f"GRU expects (batch, time, features), got {x.shape}")
        batch, time, _ = x.shape
        layer_input = [x[:, t, :] for t in range(time)]
        h = None
        for cell in self.cells:
            h = cell.initial_state(batch)
            outputs = []
            for step in layer_input:
                h = cell(step, h)
                outputs.append(h)
            layer_input = outputs
        return stack(layer_input, axis=1), h

    def mean_pool(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        """Masked mean over the final layer's hidden states."""
        outputs, _ = self.forward(x)
        if lengths is None:
            return outputs.mean(axis=1)
        lengths = np.asarray(lengths, dtype=np.float64)
        batch, time, _ = outputs.shape
        mask = (np.arange(time)[None, :] < lengths[:, None]).astype(np.float64)
        masked = outputs * Tensor(mask[:, :, None])
        return masked.sum(axis=1) / Tensor(np.maximum(lengths, 1.0)[:, None])
