"""CLDet baseline (Vinay et al. [3]).

Self-supervised SimCLR pre-training of an LSTM session encoder with the
session-reordering augmentation, followed by a classifier head trained
with plain (noise-sensitive) cross-entropy on the noisy labels.

This is exactly the framework CLFD's label corrector adapts — the
corrector's single change is swapping the cross-entropy head loss for
mixup-GCE — so the implementation reuses :class:`repro.core.LabelCorrector`
with ``classifier_loss="cce"``.
"""

from __future__ import annotations

import numpy as np

from ..core.config import CLFDConfig
from ..core.label_corrector import LabelCorrector
from ..data.sessions import SessionDataset
from ..train import TrainRun
from .base import BaselineConfig, BaselineModel

__all__ = ["CLDetModel"]


class CLDetModel(BaselineModel):
    """SimCLR pre-training + cross-entropy classifier (noise-agnostic)."""

    name = "CLDet"

    def __init__(self, config: BaselineConfig | None = None,
                 ssl_epochs: int = 4, classifier_epochs: int = 100):
        super().__init__(config)
        self.ssl_epochs = ssl_epochs
        self.classifier_epochs = classifier_epochs
        self._corrector: LabelCorrector | None = None

    def _fit(self, train: SessionDataset, rng: np.random.Generator,
             run: TrainRun) -> None:
        # Multi-stage loop; only the word2vec phase checkpoints here.
        del run
        config = self.config
        clfd_config = CLFDConfig(
            embedding_dim=config.embedding_dim,
            hidden_size=config.hidden_size,
            lstm_layers=config.lstm_layers,
            batch_size=config.batch_size,
            lr=config.lr,
            ssl_epochs=self.ssl_epochs,
            classifier_epochs=self.classifier_epochs,
            grad_clip=config.grad_clip,
            word2vec=config.word2vec,
            classifier_loss="cce",  # CLDet's original, noise-sensitive loss
        )
        self._corrector = LabelCorrector(clfd_config, self.vectorizer, rng)
        self._corrector.fit(train)

    def _predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        return self._corrector.predict(dataset)

    def _predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        return self._corrector.predict_proba(dataset)
