"""Transformer components used by the BERT-flavoured baselines.

The paper's Few-Shot [2] and LogBert [48] baselines are BERT-based; this
module provides a compact transformer encoder built on the autograd
substrate so those baselines can be reproduced without PyTorch.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .layers import Dropout, LayerNorm, Linear
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "MultiHeadAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "sinusoidal_positions",
]


def sinusoidal_positions(max_len: int, dim: int) -> np.ndarray:
    """Classic fixed sinusoidal positional encodings, shape (max_len, dim)."""
    positions = np.arange(max_len)[:, None].astype(np.float64)
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((max_len, dim))
    table[:, 0::2] = np.sin(positions * div)
    table[:, 1::2] = np.cos(positions * div[: table[:, 1::2].shape[1]])
    return table


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` parallel heads."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim={dim} not divisible by num_heads={num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, rng)
        self.w_k = Linear(dim, dim, rng)
        self.w_v = Linear(dim, dim, rng)
        self.w_o = Linear(dim, dim, rng)

    @staticmethod
    def mask_bias(mask: np.ndarray) -> np.ndarray:
        """Additive attention bias for a (batch, time) key-validity mask.

        Split out so a compiled step's ``prepare`` stage can build the
        bias once per batch and feed it through ``bias=`` as a plain
        input array — computing it inside ``forward`` would bake the
        trace batch's lengths into the tape.
        """
        return np.where(np.asarray(mask, dtype=bool),
                        0.0, -1e9)[:, None, None, :]

    def forward(self, x: Tensor, mask: np.ndarray | None = None,
                bias: np.ndarray | None = None) -> Tensor:
        """Self-attention over ``x`` of shape (batch, time, dim).

        ``mask`` is an optional (batch, time) array of 1/0 key-validity
        flags; masked keys receive -inf attention scores.  ``bias`` is
        the precomputed :meth:`mask_bias` equivalent — pass exactly one
        of the two.
        """
        batch, time, _ = x.shape
        q = self._split_heads(self.w_q(x), batch, time)
        k = self._split_heads(self.w_k(x), batch, time)
        v = self._split_heads(self.w_v(x), batch, time)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if bias is None and mask is not None:
            bias = self.mask_bias(mask)
        if bias is not None:
            scores = scores + Tensor(bias)
        attn = softmax(scores, axis=-1)
        context = attn @ v
        merged = context.transpose(0, 2, 1, 3).reshape(batch, time, self.dim)
        return self.w_o(merged)

    def _split_heads(self, x: Tensor, batch: int, time: int) -> Tensor:
        return x.reshape(batch, time, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer block: attention + GELU feed-forward."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.attn = MultiHeadAttention(dim, num_heads, rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ff1 = Linear(dim, ff_dim, rng)
        self.ff2 = Linear(ff_dim, dim, rng)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor, mask: np.ndarray | None = None,
                bias: np.ndarray | None = None) -> Tensor:
        attn_out = self.attn(self.norm1(x), mask=mask, bias=bias)
        if self.dropout is not None:
            attn_out = self.dropout(attn_out)
        x = x + attn_out
        ff_out = self.ff2(self.ff1(self.norm2(x)).gelu())
        if self.dropout is not None:
            ff_out = self.dropout(ff_out)
        return x + ff_out


class TransformerEncoder(Module):
    """Stack of encoder layers with fixed sinusoidal positions."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int, num_layers: int,
                 rng: np.random.Generator, max_len: int = 512,
                 dropout: float = 0.0):
        super().__init__()
        self.layers = [
            TransformerEncoderLayer(dim, num_heads, ff_dim, rng, dropout=dropout)
            for _ in range(num_layers)
        ]
        self.positions = sinusoidal_positions(max_len, dim)
        self.final_norm = LayerNorm(dim)

    def forward(self, x: Tensor, mask: np.ndarray | None = None,
                bias: np.ndarray | None = None) -> Tensor:
        _, time, _ = x.shape
        x = x + Tensor(self.positions[:time][None, :, :])
        for layer in self.layers:
            x = layer(x, mask=mask, bias=bias)
        return self.final_norm(x)

    def mean_pool(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        """Masked mean over time, mirroring LSTM.mean_pool."""
        batch, time, _ = x.shape
        if lengths is None:
            mask = np.ones((batch, time))
        else:
            lengths = np.asarray(lengths, dtype=np.float64)
            mask = (np.arange(time)[None, :] < lengths[:, None]).astype(np.float64)
        hidden = self.forward(x, mask=mask)
        masked = hidden * Tensor(mask[:, :, None])
        denom = Tensor(np.maximum(mask.sum(axis=1), 1.0)[:, None])
        return masked.sum(axis=1) / denom
