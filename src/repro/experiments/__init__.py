"""Experiment harness: one runner per paper table, plus latency."""

from . import paper_reference
from .report import (
    ablation_markdown,
    comparison_markdown,
    latency_markdown,
    table3_markdown,
)
from .runner import (
    ABLATIONS,
    NoiseSpec,
    SweepError,
    class_dependent_noise,
    estimator_registry,
    format_ablation_table,
    format_comparison_table,
    run_ablation,
    run_comparison,
    run_latency,
    run_single,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    uniform_noise,
)
from .sweeps import SweepPoint, format_sweep, sweep_config_field
from .settings import (
    CLASS_DEPENDENT_RATES,
    DATASETS,
    UNIFORM_ETAS,
    ExperimentSettings,
)

__all__ = [
    "ExperimentSettings", "DATASETS", "UNIFORM_ETAS", "CLASS_DEPENDENT_RATES",
    "NoiseSpec", "uniform_noise", "class_dependent_noise",
    "estimator_registry", "run_single", "run_comparison",
    "run_table1", "run_table2", "run_table3", "run_table4", "run_table5",
    "run_ablation", "run_latency", "ABLATIONS", "SweepError",
    "format_comparison_table", "format_ablation_table",
    "paper_reference",
    "comparison_markdown", "ablation_markdown", "table3_markdown",
    "latency_markdown",
    "SweepPoint", "sweep_config_field", "format_sweep",
]
