"""Compiled training must be bit-identical to interpreted training.

The compile flag is a pure performance knob: for every model that
trains through ``StepProgram`` steps — all four CLFD phases, both
co-teaching correctors, the baselines — flipping it must change
nothing observable except wall-clock and the ``compile-trace`` journal
events.  These tests fit each model twice (interpreted vs compiled)
from identical seeds and require SHA-256-equal parameters, equal
corrected labels, equal predictions, and equal deterministic journal
views.
"""

import numpy as np
import pytest

from repro.core import CLFD, CLFDConfig, CoTeachingCLFD, model_fingerprint
from repro.train import TrainRun, deterministic_entries, read_journal
from tests.train.conftest import TINY


def _fit_pair(factory, tiny_data, tmp_path, seed=5):
    """Fit the same model interpreted and compiled; return both plus
    the compiled run's journal path."""
    out = {}
    for mode, compile_flag in (("interp", False), ("compiled", True)):
        root = tmp_path / mode
        run = TrainRun(root / "ckpt", root / "journal.jsonl",
                       compile=compile_flag)
        model = factory()
        model.fit(tiny_data[0], rng=np.random.default_rng(seed), run=run)
        out[mode] = (model, root / "journal.jsonl")
    return out["interp"], out["compiled"]


@pytest.fixture(scope="module")
def clfd_pair(tiny_data, tmp_path_factory):
    return _fit_pair(lambda: CLFD(CLFDConfig(**TINY)), tiny_data,
                     tmp_path_factory.mktemp("clfd_compile"))


def test_clfd_compiled_params_bit_identical(clfd_pair):
    (interp, _), (compiled, _) = clfd_pair
    assert model_fingerprint(compiled) == model_fingerprint(interp)
    np.testing.assert_array_equal(compiled.corrected_labels,
                                  interp.corrected_labels)
    np.testing.assert_array_equal(compiled.confidences,
                                  interp.confidences)


def test_clfd_compiled_predictions_bit_identical(clfd_pair, tiny_data):
    (interp, _), (compiled, _) = clfd_pair
    np.testing.assert_array_equal(compiled.predict_proba(tiny_data[1]),
                                  interp.predict_proba(tiny_data[1]))


def test_clfd_compiled_journal_deterministic_view_matches(clfd_pair):
    (_, journal_i), (_, journal_c) = clfd_pair
    assert deterministic_entries(journal_c) == \
        deterministic_entries(journal_i)


def test_all_four_phases_actually_compiled(clfd_pair):
    """Every CLFD training phase must trace (once) and never fall back:
    a phase silently running interpreted would still pass bit-identity,
    so pin the journal events down."""
    (_, _), (_, journal_c) = clfd_pair
    events = [e for e in read_journal(journal_c) if "event" in e]
    traced = {e["phase"] for e in events if e["event"] == "compile-trace"}
    assert {"corrector/ssl", "corrector/head", "detector/supcon",
            "detector/head"} <= traced
    assert [e for e in events if e["event"] == "compile-fallback"] == []
    assert [e for e in events if e["event"] == "compile-unsupported"] == []


def test_co_teaching_compiled_bit_identical(tiny_data, tmp_path):
    (interp, _), (compiled, journal_c) = _fit_pair(
        lambda: CoTeachingCLFD(CLFDConfig(**TINY)), tiny_data, tmp_path)
    assert model_fingerprint(compiled) == model_fingerprint(interp)
    np.testing.assert_array_equal(compiled.predict_proba(tiny_data[1]),
                                  interp.predict_proba(tiny_data[1]))
    events = [e for e in read_journal(journal_c) if "event" in e]
    # Both correctors' SSL phases compiled, no fallbacks anywhere.
    traced = {e["phase"] for e in events if e["event"] == "compile-trace"}
    assert any(p.startswith("coteach") and p.endswith("ssl")
               for p in traced), traced
    assert [e for e in events if e["event"] == "compile-fallback"] == []
