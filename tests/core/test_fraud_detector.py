"""Tests for the fraud detector (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import FraudDetector


@pytest.fixture
def fitted(tiny_config, tiny_data, tiny_vectorizer):
    train, _ = tiny_data
    fd = FraudDetector(tiny_config, tiny_vectorizer, np.random.default_rng(0))
    # Supervise with ground truth to keep the fixture deterministic/easy.
    fd.fit(train, train.labels(), np.ones(len(train)))
    return fd


def test_requires_fit(tiny_config, tiny_data, tiny_vectorizer):
    train, _ = tiny_data
    fd = FraudDetector(tiny_config, tiny_vectorizer, np.random.default_rng(0))
    with pytest.raises(RuntimeError):
        fd.predict(train)
    with pytest.raises(RuntimeError):
        fd.encode(train)


def test_fit_validates_shapes(tiny_config, tiny_data, tiny_vectorizer):
    train, _ = tiny_data
    fd = FraudDetector(tiny_config, tiny_vectorizer, np.random.default_rng(0))
    with pytest.raises(ValueError):
        fd.fit(train, np.zeros(3), np.ones(len(train)))
    with pytest.raises(ValueError):
        fd.fit(train, train.labels(), np.ones(2))


def test_loss_histories_recorded(fitted, tiny_config):
    assert len(fitted.supcon_loss_history) == tiny_config.supcon_epochs
    assert len(fitted.classifier_loss_history) == tiny_config.classifier_epochs


def test_predict_contract(fitted, tiny_data):
    _, test = tiny_data
    labels, scores = fitted.predict(test)
    assert labels.shape == (len(test),)
    assert set(np.unique(labels)) <= {0, 1}
    assert ((scores >= 0) & (scores <= 1)).all()


def test_encode_shape(fitted, tiny_data, tiny_config):
    _, test = tiny_data
    z = fitted.encode(test)
    assert z.shape == (len(test), tiny_config.hidden_size)


def test_centroids_fitted(fitted, tiny_config):
    assert fitted.centroids is not None
    assert fitted.centroids.shape == (2, tiny_config.hidden_size)
    # The two class centroids must differ.
    assert not np.allclose(fitted.centroids[0], fitted.centroids[1])


def test_centroid_inference(tiny_config, tiny_data, tiny_vectorizer):
    from repro.core import CLFDConfig

    train, test = tiny_data
    config = CLFDConfig(**{**tiny_config.__dict__, "inference": "centroid"})
    fd = FraudDetector(config, tiny_vectorizer, np.random.default_rng(0))
    fd.fit(train, train.labels(), np.ones(len(train)))
    labels, scores = fd.predict(test)
    assert labels.shape == (len(test),)
    assert ((scores > 0) & (scores < 1)).all()  # sigmoid of distance gap


def test_detector_learns_with_clean_supervision(fitted, tiny_data):
    """Sanity: supervised by ground truth on separable data, the detector
    must do much better than chance on the test set."""
    _, test = tiny_data
    labels, scores = fitted.predict(test)
    accuracy = (labels == test.labels()).mean()
    assert accuracy >= 0.8


def test_supcon_separates_classes_in_embedding(fitted, tiny_data):
    """After sup-con pre-training, same-class test sessions are closer."""
    _, test = tiny_data
    z = fitted.encode(test)
    z = z / (np.linalg.norm(z, axis=1, keepdims=True) + 1e-12)
    sims = z @ z.T
    y = test.labels()
    same = sims[y[:, None] == y[None, :]].mean()
    diff = sims[y[:, None] != y[None, :]].mean()
    assert same > diff
