"""DeepLog baseline (Du et al. [16]).

DeepLog models normal behaviour as a next-log-key language model: an
LSTM is trained to predict the next activity id, using only sessions
the (noisy) labels mark as normal.  At inference, a session is anomalous
if too many of its transitions fall outside the model's top-k
predictions.  Noisy labels poison the "normal" training pool, which is
why DeepLog degrades in Tables I/II.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.sessions import NORMAL, SessionDataset, iter_batches
from ..train import TrainRun
from .base import BaselineConfig, BaselineModel

__all__ = ["DeepLogModel"]


class DeepLogModel(BaselineModel):
    """Next-key LSTM language model over activity ids."""

    name = "DeepLog"

    def __init__(self, config: BaselineConfig | None = None, top_k: int = 3,
                 threshold_quantile: float = 0.95):
        super().__init__(config)
        self.top_k = top_k
        # A session is malicious if its top-k miss fraction exceeds the
        # threshold calibrated at this quantile of the (noisily) normal
        # training sessions' scores — DeepLog's validation-set procedure.
        self.threshold_quantile = threshold_quantile
        self.miss_threshold: float | None = None
        self.embedding: nn.Embedding | None = None
        self.lstm: nn.LSTM | None = None
        self.out: nn.Linear | None = None

    def _fit(self, train: SessionDataset, rng: np.random.Generator,
             run: TrainRun) -> None:
        config = self.config
        vocab_size = len(train.vocab)
        self.embedding = nn.Embedding(vocab_size, config.embedding_dim, rng)
        self.lstm = nn.LSTM(config.embedding_dim, config.hidden_size, rng,
                            num_layers=config.lstm_layers)
        self.out = nn.Linear(config.hidden_size, vocab_size, rng)
        params = (self.embedding.parameters() + self.lstm.parameters()
                  + self.out.parameters())
        optimizer = nn.Adam(params, lr=config.lr)

        normal_idx = train.indices_with_noisy_label(NORMAL)
        normal = train[normal_idx]
        ids, lengths = normal.padded_ids(self.vectorizer.max_len)

        def batches(batch_rng: np.random.Generator):
            return iter_batches(normal, config.batch_size, batch_rng)

        step = nn.StepProgram(
            lambda batch: self._lm_prepare(ids[batch], lengths[batch]),
            self._lm_program)

        trainer = run.trainer(
            "lm",
            {"embedding": self.embedding, "lstm": self.lstm,
             "out": self.out},
            optimizer, grad_clip=config.grad_clip)
        trainer.fit(batches, step, epochs=config.epochs, rng=rng)

        # Calibrate the anomaly threshold on the training normal pool.
        train_scores = self._miss_fractions(normal)
        self.miss_threshold = float(
            np.quantile(train_scores, self.threshold_quantile)
        )

    def _lm_prepare(self, ids: np.ndarray, lengths: np.ndarray):
        """Impure half of the LM step: transition mask + gather indices.

        ``1/mask.sum()`` travels as a 0-d array input — as a Python
        scalar it would be baked into the compiled tape at trace time,
        silently mis-scaling every later batch's loss.
        """
        if ids.shape[1] < 2:
            return None
        inputs, targets = ids[:, :-1], ids[:, 1:]
        batch, steps = targets.shape
        rows = np.repeat(np.arange(batch), steps)
        cols = np.tile(np.arange(steps), batch)
        mask = (cols + 1 < lengths[rows]).astype(np.float64)
        total = mask.sum()
        if total == 0:
            return None
        inv_total = np.asarray(1.0 / total)
        return inputs, targets.ravel(), mask, inv_total

    def _lm_program(self, inputs: np.ndarray, flat_targets: np.ndarray,
                    mask: np.ndarray, inv_total: np.ndarray):
        """Pure half: mean next-key cross-entropy over valid transitions."""
        logits = self.out(self.lstm(self.embedding(inputs))[0])
        log_probs = nn.log_softmax(logits, axis=-1)
        batch, steps = inputs.shape
        rows = np.repeat(np.arange(batch), steps)
        cols = np.tile(np.arange(steps), batch)
        picked = log_probs[rows, cols, flat_targets]
        return -(picked * nn.Tensor(mask)).sum() * nn.Tensor(inv_total)

    def _lm_loss(self, ids: np.ndarray, lengths: np.ndarray):
        """Interpreted LM loss (kept for tests and ad-hoc evaluation)."""
        arrays = self._lm_prepare(ids, lengths)
        if arrays is None:
            return None
        return self._lm_program(*arrays)

    def _miss_fractions(self, dataset: SessionDataset) -> np.ndarray:
        """Per-session fraction of transitions missing the top-k set."""
        ids, lengths = dataset.padded_ids(self.vectorizer.max_len)
        fractions = np.zeros(len(dataset))
        with nn.no_grad():
            for start in range(0, len(dataset), 256):
                rows = slice(start, min(start + 256, len(dataset)))
                batch_ids = ids[rows]
                logits = self.out(
                    self.lstm(self.embedding(batch_ids[:, :-1]))[0]
                ).data
                ranks = np.argsort(-logits, axis=-1)[:, :, : self.top_k]
                targets = batch_ids[:, 1:]
                hit = (ranks == targets[:, :, None]).any(axis=-1)
                steps = np.arange(targets.shape[1])[None, :]
                valid = steps + 1 < lengths[rows][:, None]
                counts = np.maximum(valid.sum(axis=1), 1)
                fractions[rows] = ((~hit) & valid).sum(axis=1) / counts
        return fractions

    def _predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        scores = self._miss_fractions(dataset)
        labels = (scores > self.miss_threshold).astype(np.int64)
        return labels, scores
