"""Decision-threshold utilities.

Score-based detectors (DeepLog/LogBert here; any production deployment
of CLFD's malicious score) need an operating point.  These helpers pick
one on a validation set and describe the trade-off curve.
"""

from __future__ import annotations

import warnings

import numpy as np

from .classification import (UndefinedMetricWarning, false_positive_rate,
                             precision_recall_f1)

__all__ = ["best_f1_threshold", "threshold_at_fpr", "operating_points"]


def _validate(y_true, scores) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1 or y_true.size == 0:
        raise ValueError("y_true and scores must be equal-length 1-D arrays")
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("labels must be binary (0/1)")
    return y_true, scores


def best_f1_threshold(y_true, scores) -> tuple[float, float]:
    """Return (threshold, F1%) maximising F1 over all score cut points.

    Predictions are ``score > threshold``; candidate thresholds are the
    distinct scores (plus one below the minimum, for "flag everything").
    """
    y_true, scores = _validate(y_true, scores)
    candidates = np.unique(scores)
    candidates = np.r_[candidates.min() - 1e-12, candidates]
    best_threshold, best_f1 = float(candidates[0]), -1.0
    with warnings.catch_warnings():
        # The topmost candidate predicts nothing positive, so its F1 is
        # legitimately undefined (NaN); during the sweep that is an
        # expected non-candidate, not something to warn about.  NaN
        # never wins the comparison below.
        warnings.simplefilter("ignore", UndefinedMetricWarning)
        for threshold in candidates:
            pred = (scores > threshold).astype(np.int64)
            _, _, f1 = precision_recall_f1(y_true, pred)
            if f1 > best_f1:
                best_threshold, best_f1 = float(threshold), f1
    return best_threshold, best_f1


def threshold_at_fpr(y_true, scores, max_fpr: float = 5.0) -> float:
    """Lowest threshold whose FPR stays within ``max_fpr`` percent.

    Security teams usually fix an alert budget (FPR) and take whatever
    recall that allows; this picks that operating point.
    """
    y_true, scores = _validate(y_true, scores)
    if not 0.0 <= max_fpr <= 100.0:
        raise ValueError("max_fpr is a percentage in [0, 100]")
    negatives = np.sort(scores[y_true == 0])[::-1]
    if negatives.size == 0:
        return float(scores.min() - 1e-12)
    # Number of negatives allowed above the threshold.
    allowed = int(np.floor(negatives.size * max_fpr / 100.0))
    if allowed >= negatives.size:
        return float(scores.min() - 1e-12)
    return float(negatives[allowed])


def operating_points(y_true, scores, thresholds=None) -> list[dict[str, float]]:
    """F1/FPR/recall at each threshold — the trade-off table."""
    y_true, scores = _validate(y_true, scores)
    if thresholds is None:
        thresholds = np.quantile(scores, np.linspace(0.05, 0.95, 10))
    rows = []
    for threshold in thresholds:
        pred = (scores > threshold).astype(np.int64)
        _, recall, f1 = precision_recall_f1(y_true, pred)
        rows.append({
            "threshold": float(threshold),
            "f1": f1,
            "recall": recall,
            "fpr": false_positive_rate(y_true, pred),
        })
    return rows
