"""Tests for label-noise injection, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    MALICIOUS,
    NORMAL,
    Session,
    SessionDataset,
    Vocabulary,
    apply_class_dependent_noise,
    apply_uniform_noise,
    empirical_noise_rates,
    invert_noisy_labels,
)


def _dataset(n_normal=200, n_malicious=100):
    vocab = Vocabulary(["a"])
    sessions = [Session([1], NORMAL) for _ in range(n_normal)]
    sessions += [Session([1], MALICIOUS) for _ in range(n_malicious)]
    return SessionDataset(sessions, vocab)


def test_uniform_noise_zero_is_identity():
    ds = _dataset()
    flips = apply_uniform_noise(ds, 0.0, np.random.default_rng(0))
    assert not flips.any()
    np.testing.assert_array_equal(ds.labels(), ds.noisy_labels())


def test_uniform_noise_rate_close_to_eta():
    ds = _dataset(2000, 1000)
    apply_uniform_noise(ds, 0.3, np.random.default_rng(0))
    rates = empirical_noise_rates(ds)
    assert rates["eta"] == pytest.approx(0.3, abs=0.03)


def test_uniform_noise_flips_ground_truth_kept():
    ds = _dataset()
    apply_uniform_noise(ds, 0.45, np.random.default_rng(1))
    assert (ds.labels() != ds.noisy_labels()).any()
    assert ds.class_counts() == (200, 100)  # ground truth untouched


def test_class_dependent_rates():
    ds = _dataset(4000, 2000)
    apply_class_dependent_noise(ds, eta_10=0.3, eta_01=0.45,
                                rng=np.random.default_rng(2))
    rates = empirical_noise_rates(ds)
    assert rates["eta_10"] == pytest.approx(0.3, abs=0.04)
    assert rates["eta_01"] == pytest.approx(0.45, abs=0.04)


def test_invert_labels_complements():
    ds = _dataset(50, 50)
    apply_uniform_noise(ds, 0.8, np.random.default_rng(3))
    before = ds.noisy_labels().copy()
    invert_noisy_labels(ds)
    np.testing.assert_array_equal(ds.noisy_labels(), 1 - before)


def test_inverting_high_noise_reduces_rate():
    """§IV-A2: for η>0.5, inverting labels brings the rate under 0.5."""
    ds = _dataset(500, 500)
    apply_uniform_noise(ds, 0.8, np.random.default_rng(4))
    invert_noisy_labels(ds)
    assert empirical_noise_rates(ds)["eta"] < 0.5


def test_rate_validation():
    ds = _dataset(10, 10)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        apply_uniform_noise(ds, -0.1, rng)
    with pytest.raises(ValueError):
        apply_class_dependent_noise(ds, 1.2, 0.1, rng)
    with pytest.raises(ValueError):
        apply_class_dependent_noise(ds, 0.1, -0.5, rng)


def test_noise_is_deterministic_per_seed():
    a, b = _dataset(), _dataset()
    apply_uniform_noise(a, 0.3, np.random.default_rng(9))
    apply_uniform_noise(b, 0.3, np.random.default_rng(9))
    np.testing.assert_array_equal(a.noisy_labels(), b.noisy_labels())


@settings(max_examples=25, deadline=None)
@given(eta=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(min_value=0, max_value=10_000))
def test_uniform_noise_flip_mask_consistent(eta, seed):
    """Property: the returned mask exactly describes label disagreement."""
    ds = _dataset(30, 20)
    flips = apply_uniform_noise(ds, eta, np.random.default_rng(seed))
    np.testing.assert_array_equal(flips, ds.labels() != ds.noisy_labels())


@settings(max_examples=25, deadline=None)
@given(eta10=st.floats(min_value=0.0, max_value=1.0),
       eta01=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(min_value=0, max_value=10_000))
def test_class_noise_only_flips_described_class(eta10, eta01, seed):
    """Property: with eta01=0 no normal flips; with eta10=0 no malicious."""
    ds = _dataset(30, 20)
    apply_class_dependent_noise(ds, eta10, 0.0, np.random.default_rng(seed))
    rates = empirical_noise_rates(ds)
    assert rates["eta_01"] == 0.0
    ds2 = _dataset(30, 20)
    apply_class_dependent_noise(ds2, 0.0, eta01, np.random.default_rng(seed))
    assert empirical_noise_rates(ds2)["eta_10"] == 0.0


def test_double_inversion_is_identity():
    ds = _dataset(20, 20)
    apply_uniform_noise(ds, 0.4, np.random.default_rng(5))
    before = ds.noisy_labels().copy()
    invert_noisy_labels(ds)
    invert_noisy_labels(ds)
    np.testing.assert_array_equal(ds.noisy_labels(), before)


def test_instance_dependent_noise_short_sessions_flip_more():
    """Default difficulty: short sessions are mislabeled more often."""
    from repro.data import apply_instance_dependent_noise

    vocab = Vocabulary(["a"])
    short = [Session([1] * 2, NORMAL) for _ in range(600)]
    long = [Session([1] * 20, NORMAL) for _ in range(600)]
    ds = SessionDataset(short + long, vocab)
    flips = apply_instance_dependent_noise(ds, 0.3,
                                           np.random.default_rng(0))
    short_rate = flips[:600].mean()
    long_rate = flips[600:].mean()
    assert short_rate > long_rate


def test_instance_dependent_noise_custom_difficulty():
    from repro.data import apply_instance_dependent_noise

    ds = _dataset(200, 100)
    flips = apply_instance_dependent_noise(
        ds, 0.5, np.random.default_rng(1),
        difficulty=lambda s: 2.0 if s.label == MALICIOUS else 0.0,
    )
    rates = empirical_noise_rates(ds)
    assert rates["eta_01"] == 0.0
    assert rates["eta_10"] > 0.8  # prob clipped to 1.0
    np.testing.assert_array_equal(flips, ds.labels() != ds.noisy_labels())


def test_instance_dependent_noise_validates_rate():
    from repro.data import apply_instance_dependent_noise

    with pytest.raises(ValueError):
        apply_instance_dependent_noise(_dataset(5, 5), 1.5,
                                       np.random.default_rng(0))
