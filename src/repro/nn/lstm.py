"""Long Short-Term Memory layers (batch-first, multi-layer).

The paper's session encoders are two-layer LSTMs whose final-layer hidden
states are averaged to produce a session representation; this module
implements the recurrent substrate for that.

Two execution paths are provided, selected by ``fused`` (default on):

* **fused** — the whole gate block and state update run as one NumPy
  kernel per step (:mod:`repro.nn.fused`) with a hand-derived backward,
  and each layer batches every timestep's input projection into a single
  ``(batch*time, 4*hidden)`` GEMM outside the recurrence.
* **reference** — the original composed-op path (now using
  :func:`~repro.nn.tensor.split` for the gate slices), kept as the
  gradcheck baseline for the fused kernels.
"""

from __future__ import annotations

import numpy as np

from . import init
from .fused import fused_lstm_sequence, fused_lstm_step
from .module import Module, Parameter
from .tensor import Tensor, get_default_dtype, split, stack

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM cell with fused gate projection.

    Gate order in the fused weight matrices is ``[input, forget, cell, output]``.
    The forget-gate bias is initialised to 1, the standard trick for
    gradient flow early in training.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, fused: bool = True):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.fused = fused
        self.w_x = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.w_h = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(4)],
                axis=1,
            )
        )
        bias = np.zeros(4 * hidden_size, dtype=get_default_dtype())
        bias[hidden_size: 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """One step: ``x`` is (batch, input_size); returns new (h, c)."""
        h_prev, c_prev = state
        if self.fused:
            return fused_lstm_step(x, h_prev, c_prev,
                                   self.w_x, self.w_h, self.bias)
        gates = x @ self.w_x + h_prev @ self.w_h + self.bias
        gi, gf, gg, go = split(gates, self.hidden_size, axis=1)
        i, f, g, o = gi.sigmoid(), gf.sigmoid(), gg.tanh(), go.sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size),
                         dtype=self.w_x.data.dtype)
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Multi-layer batch-first LSTM.

    Parameters
    ----------
    input_size: size of each input vector.
    hidden_size: size of the hidden state (same for all layers, matching
        the paper's "two hidden layers with the same dimensions").
    num_layers: number of stacked LSTM layers.
    fused: use the fused per-step kernels plus batched input projections.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, num_layers: int = 2,
                 fused: bool = True):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.fused = fused
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size,
                     rng, fused=fused)
            for layer in range(num_layers)
        ]

    def forward(self, x: Tensor) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Run the full sequence.

        ``x`` is (batch, time, input_size). Returns ``(outputs, (h_n, c_n))``
        where ``outputs`` is (batch, time, hidden_size) from the last layer
        and ``h_n``/``c_n`` are the final states of the last layer.
        """
        if x.ndim != 3:
            raise ValueError(f"LSTM expects (batch, time, features), got {x.shape}")
        if self.fused:
            return self._forward_fused(x)
        batch, time, _ = x.shape
        layer_input = [x[:, t, :] for t in range(time)]
        h = c = None
        for cell in self.cells:
            h, c = cell.initial_state(batch)
            outputs = []
            for step in layer_input:
                h, c = cell(step, (h, c))
                outputs.append(h)
            layer_input = outputs
        return stack(layer_input, axis=1), (h, c)

    def _forward_fused(self, x: Tensor) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Fused path: one input-projection GEMM per layer, then the whole
        recurrence (forward and backward) runs inside a single sequence
        kernel — a handful of graph nodes per layer instead of ~15 per
        timestep."""
        batch, _, _ = x.shape
        layer_input = x
        h = c = None
        for cell in self.cells:
            h0, c0 = cell.initial_state(batch)
            layer_input, h, c = fused_lstm_sequence(
                layer_input, h0, c0, cell.w_x, cell.w_h, cell.bias)
        return layer_input, (h, c)

    def mean_pool(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        """Encode sessions by averaging final-layer hidden states over time.

        ``lengths`` marks the true (unpadded) length of each sequence; when
        provided, padding positions are excluded from the average.
        """
        outputs, _ = self.forward(x)
        if lengths is None:
            return outputs.mean(axis=1)
        dtype = outputs.data.dtype
        lengths = np.asarray(lengths, dtype=dtype)
        batch, time, _ = outputs.shape
        mask = (np.arange(time)[None, :] < lengths[:, None]).astype(dtype)
        masked = outputs * Tensor(mask[:, :, None])
        return masked.sum(axis=1) / Tensor(np.maximum(lengths, 1.0)[:, None])
