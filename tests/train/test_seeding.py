"""Tests for repro.train.seeding: global seeding + exact RNG capture."""

import random

import numpy as np
import pytest

from repro.data import make_dataset
from repro.train import (
    capture_rng_state,
    generator_state,
    restore_rng_state,
    seed_everything,
    set_generator_state,
)


def test_seed_everything_matches_default_rng():
    """Migration contract: same stream as ad-hoc default_rng(seed)."""
    rng = seed_everything(123)
    expected = np.random.default_rng(123)
    assert np.array_equal(rng.random(16), expected.random(16))


def test_seed_everything_seeds_global_rngs():
    seed_everything(7)
    a_py, a_np = random.random(), np.random.random(4)
    seed_everything(7)
    assert random.random() == a_py
    assert np.array_equal(np.random.random(4), a_np)


def test_seed_everything_accepts_large_seeds():
    # The legacy numpy seed is 32-bit; seed_everything must not choke
    # on a 64-bit seed.
    rng = seed_everything(2 ** 40 + 17)
    assert isinstance(rng, np.random.Generator)


def test_generator_state_roundtrip_is_exact():
    rng = np.random.default_rng(5)
    rng.random(7)  # advance mid-stream
    state = generator_state(rng)
    ahead = rng.random(32)
    set_generator_state(rng, state)
    assert np.array_equal(rng.random(32), ahead)


def test_generator_state_is_json_serialisable():
    import json

    state = generator_state(np.random.default_rng(3))
    rebuilt = json.loads(json.dumps(state))
    rng = np.random.default_rng(0)
    set_generator_state(rng, rebuilt)
    expected = np.random.default_rng(3)
    assert np.array_equal(rng.random(8), expected.random(8))


def test_capture_restore_covers_all_rngs():
    import json

    seed_everything(99)
    extra = np.random.default_rng(4)
    extra.random(3)
    state = json.loads(json.dumps(capture_rng_state(extra)))
    ahead = (random.random(), np.random.random(5), extra.random(5))

    random.seed(0)
    np.random.seed(0)
    extra.random(100)
    restore_rng_state(state, extra)
    assert random.random() == ahead[0]
    assert np.array_equal(np.random.random(5), ahead[1])
    assert np.array_equal(extra.random(5), ahead[2])


def test_restore_rng_state_rejects_generator_mismatch():
    state = capture_rng_state(np.random.default_rng(0))
    with pytest.raises(ValueError, match="generator"):
        restore_rng_state(state)  # captured 1, passed 0


def test_make_dataset_accepts_int_seed():
    by_seed = make_dataset("cert", 42, scale=0.02)
    by_rng = make_dataset("cert", seed_everything(42), scale=0.02)
    for a, b in zip(by_seed, by_rng):
        assert [s.session_id for s in a] == [s.session_id for s in b]
        assert np.array_equal(a.labels(), b.labels())
