"""JSONL metric journal: one line per epoch, durable across crashes.

Every :class:`~repro.train.Trainer` epoch appends one JSON object to
the run's journal — loss, pre-clip gradient norm, learning rate,
wall-clock, and (optionally) the ``nn.profile`` op breakdown — and
every completed phase appends an event line.  The file is plain JSONL:
``repro tail`` renders it, tests diff it, and analyses load it with
two lines of stdlib code.

Determinism contract: a journal mixes *deterministic* fields (phase,
epoch, loss, grad_norm, lr, batches — bit-identical between an
uninterrupted run and a kill/resume run with the same seed) with
*timing* fields (``wall_s``, ``profile`` — machine- and run-specific).
:func:`deterministic_entries` projects out exactly the deterministic
part, which is what resume tests and the CI resume-smoke job compare.

Crash safety: lines are flushed after every write, a torn trailing
line (the process died mid-write) is ignored by readers, and opening a
journal with ``resume=True`` compacts the file down to its valid
prefix.  :meth:`MetricJournal.drop` removes entries a resumed run is
about to recompute, so re-run epochs never appear twice.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Callable, Iterable

__all__ = [
    "MetricJournal",
    "read_journal",
    "deterministic_entries",
    "format_entry",
]

# Fields guaranteed bit-identical between an interrupted-then-resumed
# run and an uninterrupted run with the same seed.
DETERMINISTIC_FIELDS = ("phase", "epoch", "loss", "grad_norm", "lr",
                        "batches")


class MetricJournal:
    """Append-only JSONL journal with crash-safe resume semantics."""

    def __init__(self, path: str | os.PathLike, resume: bool = False):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume:
            # Compact away a torn trailing line from a mid-write crash.
            entries = read_journal(self.path)
            self._rewrite(entries)
        else:
            self.path.write_text("")

    # ------------------------------------------------------------------
    def log(self, **record) -> dict:
        """Append one entry; returns the record as written."""
        # Flush (not fsync): a SIGKILLed *process* loses nothing once the
        # line is in the page cache, and per-epoch fsyncs would dominate
        # the fast classifier-head epochs.
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.flush()
        return record

    def log_epoch(self, phase: str, epoch: int, loss: float,
                  grad_norm: float, lr: float, batches: int,
                  wall_s: float, profile: dict | None = None) -> dict:
        """Append a training-epoch entry (deterministic fields first)."""
        record = {
            "phase": phase, "epoch": int(epoch), "loss": float(loss),
            "grad_norm": float(grad_norm), "lr": float(lr),
            "batches": int(batches), "wall_s": round(float(wall_s), 6),
        }
        if profile:
            record["profile"] = profile
        return self.log(**record)

    def log_event(self, event: str, phase: str, **extra) -> dict:
        """Append a lifecycle event (phase completion, resume, ...)."""
        return self.log(event=event, phase=phase, **extra)

    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        return read_journal(self.path)

    def drop(self, predicate: Callable[[dict], bool]) -> int:
        """Remove entries matching ``predicate``; returns removed count.

        Used on resume to discard epochs that will be recomputed (an
        epoch can be journaled but not yet checkpointed when the
        process dies between the two writes).
        """
        entries = self.entries()
        kept = [e for e in entries if not predicate(e)]
        removed = len(entries) - len(kept)
        if removed:
            self._rewrite(kept)
        return removed

    def _rewrite(self, entries: Iterable[dict]) -> None:
        tmp = self.path.with_name(f".{self.path.name}.tmp-{os.getpid()}")
        with open(tmp, "w") as fh:
            for entry in entries:
                fh.write(json.dumps(entry) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)


def read_journal(path: str | os.PathLike) -> list[dict]:
    """Parse a journal file, skipping torn/corrupt lines."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write at crash time
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def deterministic_entries(path: str | os.PathLike) -> list[dict]:
    """Epoch entries projected onto the deterministic fields only.

    This is the view two runs of the same seed must agree on exactly —
    the resume tests and the CI resume-smoke job diff it bit for bit.
    """
    return [
        {field: entry[field] for field in DETERMINISTIC_FIELDS
         if field in entry}
        for entry in read_journal(path)
        if "loss" in entry and "event" not in entry
    ]


def format_entry(entry: dict) -> str:
    """One human-readable line per journal entry (``repro tail``)."""
    if "event" in entry:
        extras = " ".join(f"{k}={v}" for k, v in entry.items()
                          if k not in ("event", "phase"))
        return f"[{entry.get('phase', '?'):24s}] {entry['event']} {extras}".rstrip()
    parts = [f"[{entry.get('phase', '?'):24s}]",
             f"epoch {entry.get('epoch', '?'):>4}"]
    for key, fmt in (("loss", "{:.6f}"), ("grad_norm", "{:.4f}"),
                     ("lr", "{:.5f}")):
        if key in entry:
            parts.append(f"{key}={fmt.format(entry[key])}")
    if "wall_s" in entry:
        parts.append(f"{entry['wall_s'] * 1000:.0f}ms")
    if "profile" in entry:
        top = sorted(entry["profile"].items(), key=lambda kv: -kv[1])[:3]
        parts.append("ops[" + " ".join(
            f"{name}={seconds * 1000:.1f}ms" for name, seconds in top) + "]")
    return " ".join(parts)


def _tail_lines(path: str | os.PathLike, n: int,
                phase: str | None = None) -> list[str]:
    """Last ``n`` formatted journal lines (optionally phase-filtered)."""
    entries = read_journal(path)
    if phase is not None:
        entries = [e for e in entries if e.get("phase") == phase]
    return [format_entry(e) for e in entries[-n:]]


def tail_journal(path: str | os.PathLike, n: int = 10,
                 phase: str | None = None, follow: bool = False,
                 poll_seconds: float = 0.5,
                 emit: Callable[[str], None] = print) -> None:
    """Print the journal tail; ``follow=True`` streams new entries."""
    for line in _tail_lines(path, n, phase):
        emit(line)
    if not follow:
        return
    seen = len(read_journal(path))
    while True:  # pragma: no cover - interactive loop
        time.sleep(poll_seconds)
        entries = read_journal(path)
        for entry in entries[seen:]:
            if phase is None or entry.get("phase") == phase:
                emit(format_entry(entry))
        seen = len(entries)
