"""Round-trip persistence: a reloaded archive predicts identically.

Covers the full model plus the ablated configurations the paper's
ablation table exercises (corrector-only, detector-only), the
suffix-less-path round-trip fixed alongside the serving work, and the
atomic-save guarantee.
"""

import numpy as np
import pytest

from repro import CLFD, CLFDConfig
from repro.core import load_clfd, save_clfd

from .conftest import TINY


def _fit(tiny_data, **overrides):
    train, _ = tiny_data
    config = CLFDConfig(**{**TINY, **overrides})
    return CLFD(config).fit(train, rng=np.random.default_rng(3))


@pytest.fixture(scope="module")
def fitted(tiny_data):
    return _fit(tiny_data)


def _assert_same_predictions(model, restored, test):
    labels, scores = model.predict(test)
    labels2, scores2 = restored.predict(test)
    np.testing.assert_array_equal(labels, labels2)
    np.testing.assert_allclose(scores, scores2, rtol=0, atol=0)
    np.testing.assert_allclose(model.predict_proba(test),
                               restored.predict_proba(test),
                               rtol=0, atol=0)


def test_roundtrip_full_model(fitted, tiny_data, tmp_path):
    _, test = tiny_data
    restored = load_clfd(save_clfd(fitted, tmp_path / "full.npz"))
    _assert_same_predictions(fitted, restored, test)
    assert restored.config == fitted.config
    assert restored.vectorizer.max_len == fitted.vectorizer.max_len


@pytest.mark.parametrize("overrides", [
    {"use_label_corrector": False},
    {"use_fraud_detector": False},
], ids=["detector-only", "corrector-only"])
def test_roundtrip_ablated_configs(tiny_data, tmp_path, overrides):
    _, test = tiny_data
    model = _fit(tiny_data, **overrides)
    restored = load_clfd(save_clfd(model, tmp_path / "ablated.npz"))
    _assert_same_predictions(model, restored, test)


def test_roundtrip_preserves_vocab(fitted, tiny_data, tmp_path):
    train, _ = tiny_data
    restored = load_clfd(save_clfd(fitted, tmp_path / "vocab.npz"))
    assert restored.vectorizer.vocab is not None
    assert restored.vectorizer.vocab.tokens() == train.vocab.tokens()


def test_suffixless_path_roundtrip(fitted, tiny_data, tmp_path):
    """save(m, "model") / load("model") must agree on the real filename."""
    _, test = tiny_data
    written = save_clfd(fitted, tmp_path / "model")
    assert written.name == "model.npz"
    assert written.exists()
    restored = load_clfd(tmp_path / "model")
    _assert_same_predictions(fitted, restored, test)


def test_save_overwrites_atomically(fitted, tmp_path):
    """A second save replaces the archive and leaves no temp litter."""
    path = save_clfd(fitted, tmp_path / "model.npz")
    before = path.stat().st_size
    again = save_clfd(fitted, tmp_path / "model.npz")
    assert again == path
    assert path.stat().st_size == before
    leftovers = [p for p in tmp_path.iterdir() if p.name != "model.npz"]
    assert leftovers == []


def test_save_failure_leaves_target_untouched(fitted, tmp_path, monkeypatch):
    """If serialization dies mid-write, the published archive survives."""
    path = save_clfd(fitted, tmp_path / "model.npz")
    payload = path.read_bytes()

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(np.lib.format, "write_array", boom)
    with pytest.raises(OSError):
        save_clfd(fitted, tmp_path / "model.npz")
    assert path.read_bytes() == payload
    assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]


def test_all_readable_versions_load(fitted, tiny_data, tmp_path):
    """v1 (pre-vocabulary), v2 (current) and v3 (quantized) archives all
    load through ``load_clfd``."""
    import json

    from repro.quant import QuantizedCLFD, quantize_archive

    _, test = tiny_data
    batch = test[list(range(8))]
    v2_path = save_clfd(fitted, tmp_path / "v2.npz")

    # Rewrite the header as a version-1 archive (no vocabulary field).
    with np.load(v2_path) as archive:
        data = {key: archive[key] for key in archive.files}
    meta = json.loads(bytes(data["meta"]).decode())
    meta["format_version"] = 1
    del meta["vocab"]
    data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    v1_path = tmp_path / "v1.npz"
    np.savez(v1_path, **data)

    v3_path = quantize_archive(v2_path, tmp_path / "v3.npz")

    v1 = load_clfd(v1_path)
    assert v1.vectorizer.vocab is None
    _assert_same_predictions(fitted, v1, batch)

    _assert_same_predictions(fitted, load_clfd(v2_path), batch)

    v3 = load_clfd(v3_path)
    assert isinstance(v3, QuantizedCLFD)
    assert v3.precision == "int8"
    _, scores = fitted.predict(batch)
    _, qscores = v3.predict(batch)
    np.testing.assert_allclose(qscores, scores, atol=2e-2)


def test_quantized_roundtrip_is_deterministic(fitted, tiny_data, tmp_path):
    """quantize -> save -> load -> score is bit-stable across runs."""
    from repro.quant import quantize_archive

    _, test = tiny_data
    batch = test[list(range(8))]
    src = save_clfd(fitted, tmp_path / "src.npz")
    first = quantize_archive(src, tmp_path / "q1.npz")
    second = quantize_archive(src, tmp_path / "q2.npz")
    assert first.read_bytes() == second.read_bytes()
    _, a = load_clfd(first).predict(batch)
    _, b = load_clfd(second).predict(batch)
    np.testing.assert_array_equal(a, b)


def test_save_rejects_unfitted_model(tmp_path):
    with pytest.raises(ValueError):
        save_clfd(CLFD(), tmp_path / "nope.npz")


def test_loaded_model_serves_v2_tokens(fitted, tiny_data, tmp_path):
    """The archive vocabulary is enough to score raw token sessions."""
    from repro.serve import InferenceEngine, ServeConfig

    train, _ = tiny_data
    restored = load_clfd(save_clfd(fitted, tmp_path / "serve.npz"))
    tokens = train.vocab.decode(train.sessions[0].activities)
    config = ServeConfig(max_wait_ms=0, warmup=False)
    with InferenceEngine(restored, config) as engine:
        result = engine.score({"activities": tokens})
    assert result.oov_count == 0
    assert 0.0 <= result.score <= 1.0
