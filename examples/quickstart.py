"""Quickstart: train CLFD on a noisy insider-threat benchmark.

Generates a CERT-like session dataset, corrupts 30% of the training
labels, trains the full CLFD pipeline and prints test metrics next to
the label corrector's quality.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CLFD, CLFDConfig
from repro.data import apply_uniform_noise, empirical_noise_rates, make_dataset
from repro.metrics import evaluate_detector


def main():
    rng = np.random.default_rng(0)

    # 1. Build a train/test split shaped like the paper's CERT setup
    #    (extreme imbalance; scale=0.1 keeps the demo fast on a laptop).
    train, test = make_dataset("cert", rng, scale=0.1)
    normal, malicious = train.class_counts()
    print(f"train: {normal} normal / {malicious} malicious sessions")

    # 2. Simulate heuristic annotation: flip 30% of the training labels.
    apply_uniform_noise(train, eta=0.3, rng=rng)
    rates = empirical_noise_rates(train)
    print(f"injected noise: eta={rates['eta']:.2f}")

    # 3. Train the full CLFD framework (label corrector + fraud detector).
    model = CLFD(CLFDConfig.fast()).fit(train, rng=rng)

    # 4. How much did the label corrector clean up?
    quality = model.correction_quality(train)
    print(f"label corrector: TPR={quality['tpr']:.1f}% "
          f"TNR={quality['tnr']:.1f}%")

    # 5. Detect frauds in the held-out test set.
    labels, scores = model.predict(test)
    metrics = evaluate_detector(test.labels(), labels, scores)
    print(f"test: F1={metrics['f1']:.1f}% FPR={metrics['fpr']:.1f}% "
          f"AUC-ROC={metrics['auc_roc']:.1f}%")


if __name__ == "__main__":
    main()
