"""Label-noise processes from §III / §IV-A2 of the paper.

Two noise models are supported, matching the experimental setup:

* **uniform noise** — every ground-truth label flips with probability η;
* **class-dependent noise** — malicious labels flip with probability η₁₀
  (= P(ỹ=0 | y=1)) and normal labels flip with probability η₀₁
  (= P(ỹ=1 | y=0)).

Noise is applied to ``Session.noisy_label`` only; ground truth stays
untouched for evaluation.
"""

from __future__ import annotations

import numpy as np

from .sessions import MALICIOUS, NORMAL, SessionDataset

__all__ = [
    "apply_uniform_noise",
    "apply_class_dependent_noise",
    "apply_instance_dependent_noise",
    "invert_noisy_labels",
    "empirical_noise_rates",
]


def _validate_rate(rate: float, name: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {rate}")


def apply_uniform_noise(dataset: SessionDataset, eta: float,
                        rng: np.random.Generator) -> np.ndarray:
    """Flip each ground-truth label with probability ``eta``.

    Returns a boolean mask of the sessions that were flipped.
    The paper constrains η < 0.5 in experiments (§IV-A2) but the function
    accepts the full range so that :func:`invert_noisy_labels` can be
    exercised for η > 0.5.
    """
    _validate_rate(eta, "eta")
    flips = rng.random(len(dataset)) < eta
    noisy = dataset.labels().copy()
    noisy[flips] = 1 - noisy[flips]
    dataset.set_noisy_labels(noisy)
    return flips


def apply_class_dependent_noise(dataset: SessionDataset, eta_10: float,
                                eta_01: float,
                                rng: np.random.Generator) -> np.ndarray:
    """Flip malicious labels w.p. ``eta_10`` and normal ones w.p. ``eta_01``."""
    _validate_rate(eta_10, "eta_10")
    _validate_rate(eta_01, "eta_01")
    truth = dataset.labels()
    draws = rng.random(len(dataset))
    flips = np.where(truth == MALICIOUS, draws < eta_10, draws < eta_01)
    noisy = truth.copy()
    noisy[flips] = 1 - noisy[flips]
    dataset.set_noisy_labels(noisy)
    return flips


def apply_instance_dependent_noise(dataset: SessionDataset, base_rate: float,
                                   rng: np.random.Generator,
                                   difficulty=None) -> np.ndarray:
    """Flip labels with a per-session probability (future-work setting).

    Real heuristic annotators err most on *ambiguous* sessions, not
    uniformly: a velocity rule misses slow attackers and false-alarms on
    unusual-but-benign users.  Each session's flip probability is
    ``base_rate * difficulty(session)``, clipped to [0, 1].

    ``difficulty`` maps a :class:`~repro.data.sessions.Session` to a
    non-negative multiplier; the default uses session length as a proxy
    (short sessions give heuristics little evidence): difficulty is
    highest for the shortest sessions and decays toward 0.5 for long
    ones.

    Returns the boolean flip mask.
    """
    _validate_rate(base_rate, "base_rate")
    if difficulty is None:
        max_len = max(len(s) for s in dataset.sessions) or 1

        def difficulty(session):
            return 1.5 - len(session) / max_len  # in [0.5, 1.5)

    probs = np.clip(
        [base_rate * float(difficulty(s)) for s in dataset.sessions],
        0.0, 1.0,
    )
    flips = rng.random(len(dataset)) < probs
    noisy = dataset.labels().copy()
    noisy[flips] = 1 - noisy[flips]
    dataset.set_noisy_labels(noisy)
    return flips


def invert_noisy_labels(dataset: SessionDataset) -> None:
    """Invert every noisy label.

    §IV-A2: when the estimated noise rate exceeds 0.5, inverting the
    labels brings the effective rate back under 0.5.
    """
    dataset.set_noisy_labels(1 - dataset.noisy_labels())


def empirical_noise_rates(dataset: SessionDataset) -> dict[str, float]:
    """Measure realised noise rates against ground truth.

    Returns ``eta`` (overall flip fraction), ``eta_10`` and ``eta_01``.
    Useful for verifying a noise injection and for tests.
    """
    truth = dataset.labels()
    noisy = dataset.noisy_labels()
    flipped = truth != noisy
    malicious = truth == MALICIOUS
    normal = truth == NORMAL
    return {
        "eta": float(flipped.mean()) if len(dataset) else 0.0,
        "eta_10": float(flipped[malicious].mean()) if malicious.any() else 0.0,
        "eta_01": float(flipped[normal].mean()) if normal.any() else 0.0,
    }
