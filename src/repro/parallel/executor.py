"""Fault-isolating grid executor: process pool + run cache + progress.

:class:`GridExecutor` runs a list of :class:`~repro.parallel.tasks.TaskSpec`
cells and returns one :class:`CellResult` per spec, in input order.

* ``workers=1`` (the default, and what the test suite uses) executes
  in-process — the sequential path is the degenerate case of the same
  code, not a separate implementation.
* ``workers>1`` fans cells out over a ``ProcessPoolExecutor``.  Results
  are bit-identical to sequential execution because every cell derives
  all randomness from its own spec (see :mod:`repro.parallel.worker`).
* A :class:`~repro.parallel.cache.RunCache` (optional) is consulted
  before any work is scheduled and updated after every success, so
  interrupted sweeps resume and repeated invocations skip straight
  through.
* Failures never kill the sweep: a raising cell is retried up to
  ``retries`` extra times, then recorded as a structured failure
  (type/message/traceback/attempts) in its result slot.  A worker that
  dies outright (segfault, ``os._exit``) breaks the pool; the executor
  rebuilds it and re-runs each in-flight "suspect" cell in an isolated
  single-worker pool — a cell that crashes its private pool is
  definitively the culprit and consumes its own retry budget, while
  innocent cells that merely shared the broken pool complete unharmed.
* ``coordinate="host:port"`` runs the sweep through the multi-host
  work-stealing tier instead of a process pool: a
  :class:`~repro.parallel.coordinator.Coordinator` leader hands out
  content keys over TCP, ``workers`` local worker processes join
  immediately, and workers on any other host can steal cells with
  ``repro join host:port``.  Completed records land in the shared
  :class:`RunCache`, so a multi-host sweep is bit-identical to — and
  resumable as — a single-host one.
"""

from __future__ import annotations

import dataclasses
import queue as queue_mod
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from .cache import RunCache
from .coordinator import DEFAULT_LEASE_TTL
from .tasks import TaskSpec, task_key
from .worker import execute_task

__all__ = ["CellResult", "GridExecutor", "SweepError",
           "format_timing_summary"]


@dataclasses.dataclass
class CellResult:
    """Outcome of one grid cell."""

    spec: TaskSpec
    key: str
    metrics: dict[str, float] | None = None
    error: dict | None = None
    seconds: float = 0.0
    cached: bool = False
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.metrics is not None

    def metrics_preview(self) -> list[tuple[str, float]]:
        """Up to three headline metrics for progress lines."""
        metrics = self.metrics or {}
        order = [k for k in ("f1", "tpr", "tnr") if k in metrics]
        order += [k for k in metrics if k not in order]
        return [(k, metrics[k]) for k in order[:3]]


class SweepError(RuntimeError):
    """Raised by runners when cells remain failed after a full sweep.

    The sweep itself completed — every other cell ran (and was cached),
    so a re-run only recomputes the failed cells.  ``failures`` holds
    the failed :class:`CellResult` records.
    """

    def __init__(self, failures: Sequence[CellResult]):
        self.failures = list(failures)
        details = "; ".join(
            f"{r.spec.describe()}: {r.error['type']}: {r.error['message']}"
            for r in self.failures[:5])
        more = f" (+{len(self.failures) - 5} more)" \
            if len(self.failures) > 5 else ""
        super().__init__(
            f"{len(self.failures)} grid cell(s) failed after retries: "
            f"{details}{more}")


def _failure_record(exc: BaseException, attempts: int) -> dict:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__)),
        "attempts": attempts,
    }


class _Progress:
    """Live per-cell lines with elapsed/ETA, plus a final summary.

    ``workers`` may be an ``int`` (fixed pool width) or a zero-argument
    callable returning the *live* worker count — under multi-host
    execution the divisor is the coordinator's current lease-holder
    count, not the local pool width, or the ETA is off by the number of
    remote hosts.
    """

    def __init__(self, total: int, workers: int | Callable[[], int],
                 emit: Callable[[str], None]):
        self.total = total
        self.workers = workers
        self.emit = emit
        self.done = 0
        self.cached = 0
        self.start = time.perf_counter()
        self._compute_seconds: list[float] = []

    def worker_count(self) -> int:
        workers = self.workers
        if callable(workers):
            workers = workers()
        return max(1, int(workers))

    def update(self, result: CellResult) -> None:
        self.done += 1
        if result.cached:
            self.cached += 1
        elif result.ok:
            self._compute_seconds.append(result.seconds)
        prefix = f"[{self.done:>{len(str(self.total))}d}/{self.total}] "
        cell = f"{result.spec.describe():44s}"
        if result.cached:
            body = "cached"
        elif result.ok:
            shown = ", ".join(f"{k}={v:.1f}"
                              for k, v in result.metrics_preview())
            body = f"{shown}  {result.seconds:.1f}s"
        else:
            body = (f"FAILED after {result.attempts} attempt(s): "
                    f"{result.error['type']}: {result.error['message']}")
        self.emit(prefix + cell + body + self._eta())

    def finish(self) -> None:
        """Summarize the all-cached fast path.

        When every cell resumes from the run cache there are no compute
        samples, so no per-cell line ever carried an elapsed/ETA suffix;
        still report the total elapsed instead of ending silently.
        """
        if self.total and self.cached == self.total:
            elapsed = time.perf_counter() - self.start
            self.emit(f"all {self.total} cell(s) cached  "
                      f"(elapsed {_hms(elapsed)})")

    def _eta(self) -> str:
        remaining = self.total - self.done
        if remaining <= 0 or not self._compute_seconds:
            return ""
        per_cell = sum(self._compute_seconds) / len(self._compute_seconds)
        eta = per_cell * remaining / self.worker_count()
        elapsed = time.perf_counter() - self.start
        return f"  (elapsed {_hms(elapsed)}, eta {_hms(eta)})"


def _hms(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{seconds % 3600 // 60:02d}m"


class GridExecutor:
    """Executes a grid of task specs; see module docstring."""

    def __init__(self, workers: int = 1,
                 cache: RunCache | str | None = None,
                 retries: int = 1,
                 progress: bool | Callable[[str], None] = False,
                 checkpoint_dir: str | None = None,
                 coordinate: str | bool | None = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL):
        if workers < (0 if coordinate else 1):
            raise ValueError("workers must be >= 1 (>= 0 when coordinating "
                             "— a leader may serve remote workers only)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.cache = RunCache(cache) if isinstance(cache, str) else cache
        self.retries = retries
        # Per-cell resumable checkpoints (repro.train): a retried cell
        # resumes from its last phase/epoch snapshot under
        # <checkpoint_dir>/<task_key>/ instead of restarting at epoch 0.
        self.checkpoint_dir = checkpoint_dir
        # Multi-host mode: a listen address ("host:port", ":port", or
        # True for an ephemeral localhost port).  The leader hands out
        # content keys; `workers` local processes join immediately and
        # remote hosts join with `repro join host:port`.
        self.coordinate = coordinate
        self.lease_ttl = lease_ttl
        self.coordinator = None  # live Coordinator while run() executes
        self.coordinator_address: tuple[str, int] | None = None
        if progress is True:
            self._emit = lambda line: print(line, flush=True)
        elif callable(progress):
            self._emit = progress
        else:
            self._emit = None
        self.last_wall_seconds = 0.0

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[TaskSpec]) -> list[CellResult]:
        """Execute every spec; returns results in input order."""
        specs = list(specs)
        start = time.perf_counter()
        progress = _Progress(len(specs), self.workers, self._emit) \
            if self._emit else None
        results: list[CellResult | None] = [None] * len(specs)

        todo: list[int] = []
        for i, spec in enumerate(specs):
            key = task_key(spec)
            record = self.cache.get(key) if self.cache is not None else None
            if record is not None and isinstance(record.get("metrics"), dict):
                results[i] = CellResult(
                    spec=spec, key=key, metrics=record["metrics"],
                    seconds=float(record.get("seconds", 0.0)), cached=True)
                if progress:
                    progress.update(results[i])
            else:
                todo.append(i)

        if todo:
            if self.coordinate:
                self._run_coordinated(specs, todo, results, progress)
            elif self.workers == 1:
                self._run_sequential(specs, todo, results, progress)
            else:
                self._run_pool(specs, todo, results, progress)

        if progress:
            progress.finish()
        self.last_wall_seconds = time.perf_counter() - start
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _finish(self, results, progress, i, result: CellResult) -> None:
        results[i] = result
        if result.ok and not result.cached and self.cache is not None:
            spec = result.spec
            self.cache.put(result.key, {
                "model": spec.model, "estimator": spec.estimator,
                "dataset": spec.dataset,
                "noise": [spec.noise_kind, list(spec.noise_params)],
                "seed": spec.seed, "scale": spec.scale,
                "measure": spec.measure,
                "metrics": result.metrics, "seconds": result.seconds,
            })
        if progress:
            progress.update(result)

    def _run_sequential(self, specs, todo, results, progress) -> None:
        for i in todo:
            spec, key = specs[i], task_key(specs[i])
            attempt = 0
            while True:
                try:
                    payload = execute_task(spec, attempt,
                                           self.checkpoint_dir)
                except Exception as exc:
                    attempt += 1
                    if attempt > self.retries:
                        self._finish(results, progress, i, CellResult(
                            spec=spec, key=key,
                            error=_failure_record(exc, attempt),
                            attempts=attempt))
                        break
                else:
                    self._finish(results, progress, i, CellResult(
                        spec=spec, key=key, metrics=payload["metrics"],
                        seconds=payload["seconds"], attempts=attempt + 1))
                    break

    def _run_pool(self, specs, todo, results, progress) -> None:
        pool = ProcessPoolExecutor(max_workers=self.workers)
        # future -> (spec index, attempt, owning pool).  The owning pool
        # matters on breakage: futures of an already-replaced pool still
        # surface BrokenProcessPool later, and must not tear down the
        # healthy replacement.
        pending: dict = {}
        try:
            for i in todo:
                pending[pool.submit(execute_task, specs[i], 0,
                                    self.checkpoint_dir)] = (i, 0, pool)
            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                suspects: list[tuple[int, int]] = []
                for future in done:
                    i, attempt, owner = pending.pop(future)
                    spec, key = specs[i], task_key(specs[i])
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        # A worker died outright.  The pool cannot say
                        # which cell killed it, so every in-flight cell
                        # becomes a suspect and is re-run in isolation
                        # below — without being charged an attempt, so
                        # a crashing cell never exhausts the retry
                        # budget of innocent cells sharing its pool.
                        if owner is pool:
                            pool.shutdown(wait=False)
                            pool = ProcessPoolExecutor(
                                max_workers=self.workers)
                        suspects.append((i, attempt))
                    except Exception as exc:
                        attempt += 1
                        if attempt > self.retries:
                            self._finish(results, progress, i, CellResult(
                                spec=spec, key=key,
                                error=_failure_record(exc, attempt),
                                attempts=attempt))
                        else:
                            pending[pool.submit(execute_task, spec, attempt,
                                                self.checkpoint_dir)
                                    ] = (i, attempt, pool)
                    else:
                        self._finish(results, progress, i, CellResult(
                            spec=spec, key=key, metrics=payload["metrics"],
                            seconds=payload["seconds"], attempts=attempt + 1))
                for i, attempt in suspects:
                    self._finish(results, progress, i,
                                 self._run_isolated(specs[i], attempt))
        finally:
            pool.shutdown(wait=True)

    def _run_isolated(self, spec: TaskSpec, attempt: int) -> CellResult:
        """Re-run a pool-breakage suspect in its own single-worker pool.

        A cell that crashes its private pool is definitively the
        culprit: it is charged the attempt and retried (still isolated)
        until the retry budget runs out.  Innocent victims simply
        complete here and rejoin the results.
        """
        key = task_key(spec)
        while True:
            solo = ProcessPoolExecutor(max_workers=1)
            try:
                payload = solo.submit(execute_task, spec, attempt,
                                      self.checkpoint_dir).result()
            except Exception as exc:
                attempt += 1
                if attempt > self.retries:
                    return CellResult(spec=spec, key=key,
                                      error=_failure_record(exc, attempt),
                                      attempts=attempt)
            else:
                return CellResult(spec=spec, key=key,
                                  metrics=payload["metrics"],
                                  seconds=payload["seconds"],
                                  attempts=attempt + 1)
            finally:
                solo.shutdown(wait=False)

    # ------------------------------------------------------------------
    def _run_coordinated(self, specs, todo, results, progress) -> None:
        """Drive the todo cells through the work-stealing coordinator.

        The leader owns the (shared) RunCache: every completion event
        funnels through :meth:`_finish`, so a coordinated sweep writes
        exactly the records a sequential one writes.  Local workers
        that die are respawned while work remains (bounded by a spawn
        budget so a cell that crashes every host it touches cannot
        respawn forever — the coordinator's re-queue cap quarantines it
        first).
        """
        from .coordinator import Coordinator
        from .gridworker import spawn_local_workers

        coordinator = Coordinator({i: specs[i] for i in todo},
                                  retries=self.retries,
                                  lease_ttl=self.lease_ttl)
        host, port = coordinator.start(
            None if self.coordinate is True else self.coordinate)
        self.coordinator = coordinator
        self.coordinator_address = (host, port)
        if progress:
            # ETA divisor = live lease holders across *all* hosts.
            progress.workers = \
                lambda: coordinator.active_workers() or self.workers or 1
        if self._emit:
            self._emit(f"coordinator listening on {host}:{port} "
                       f"({len(todo)} cell(s), {self.workers} local "
                       f"worker(s); join with: repro join {host}:{port})")
        connect = ("127.0.0.1" if host in ("0.0.0.0", "::") else host, port)
        procs = spawn_local_workers(connect, self.workers,
                                    self.checkpoint_dir)
        spawned = len(procs)
        spawn_budget = self.workers * (1 + coordinator.max_requeues)
        remaining = set(todo)
        try:
            while remaining:
                try:
                    event = coordinator.events.get(timeout=0.25)
                except queue_mod.Empty:
                    procs, spawned = self._maintain_local_workers(
                        coordinator, procs, spawned, spawn_budget, connect)
                    continue
                kind, index = event[0], event[1]
                spec, key = specs[index], task_key(specs[index])
                if kind == "complete":
                    payload, attempts = event[2], event[3]
                    self._finish(results, progress, index, CellResult(
                        spec=spec, key=key, metrics=payload["metrics"],
                        seconds=payload["seconds"], attempts=attempts))
                else:
                    error = event[2]
                    self._finish(results, progress, index, CellResult(
                        spec=spec, key=key, error=error,
                        attempts=int(error.get("attempts", 1))))
                remaining.discard(index)
        finally:
            coordinator.stop()
            self.coordinator = None
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.join(timeout=5.0)

    def _maintain_local_workers(self, coordinator, procs, spawned,
                                spawn_budget, connect):
        """Respawn dead local workers while cells remain outstanding."""
        from .gridworker import spawn_local_workers

        alive = [p for p in procs if p.is_alive()]
        dead = len(procs) - len(alive)
        if dead and coordinator.outstanding() > 0 and spawned < spawn_budget:
            replacements = spawn_local_workers(
                connect, min(dead, spawn_budget - spawned),
                self.checkpoint_dir)
            alive.extend(replacements)
            spawned += len(replacements)
            return alive, spawned
        if (self.workers and not alive and spawned >= spawn_budget
                and coordinator.active_workers() == 0):
            # Nobody left to execute: queued cells would wait forever.
            coordinator.fail_queued(
                f"local worker spawn budget ({spawn_budget}) exhausted "
                f"and no remote worker holds a lease")
        return (alive if dead else procs), spawned


def format_timing_summary(results: Sequence[CellResult],
                          wall_seconds: float | None = None) -> str:
    """Per-sweep timing report: totals, cache hits, slowest cells."""
    results = list(results)
    computed = [r for r in results if r.ok and not r.cached]
    cached = [r for r in results if r.cached]
    failed = [r for r in results if not r.ok]
    compute_seconds = sum(r.seconds for r in computed)
    lines = [f"{len(results)} cells: {len(computed)} computed, "
             f"{len(cached)} cached, {len(failed)} failed"]
    if wall_seconds is not None:
        lines.append(f"wall time {_hms(wall_seconds)}, compute time "
                     f"{_hms(compute_seconds)}"
                     + (f" ({compute_seconds / wall_seconds:.1f}x "
                        f"parallel efficiency)" if wall_seconds > 0 else ""))
    if computed:
        mean = compute_seconds / len(computed)
        lines.append(f"mean cell time {mean:.2f}s")
        slowest = sorted(computed, key=lambda r: -r.seconds)[:3]
        for r in slowest:
            lines.append(f"  slowest: {r.spec.describe()}  {r.seconds:.2f}s")
    for r in failed:
        lines.append(f"  failed: {r.spec.describe()}  "
                     f"{r.error['type']}: {r.error['message']}")
    return "\n".join(lines)
