"""Low-precision inference kernels: int8 weights, float16 embeddings.

Post-training quantization for the serving tier (see :mod:`repro.quant`)
needs exactly three primitives, and — because a session's score must not
depend on *which* consumer ran the math — each primitive has exactly one
numerical definition here, shared by every caller:

* :func:`quant_matmul_np` / :func:`quant_matmul` — the fused
  dequantize-on-the-fly GEMM ``(x @ q) * scale (+ bias)`` over an int8
  weight with per-output-channel float scales.  The scale is applied
  *after* the matmul (it commutes onto output columns), so the hot loop
  multiplies against the int8 matrix cast once per call instead of
  materialising a scaled copy per step.
* :func:`dequantize_np` / :func:`dequantize` — expand ``(int8 q, scale)``
  back to a float matrix (used once per forward for recurrent weights,
  whose reset-gated products do not commute with per-column scales).
* :func:`fp16_embed_np` / :func:`fp16_embed` — row-scaled float16
  embedding lookup: tables store unit-magnitude float16 rows plus one
  float32 scale per row (vocabulary compression for large generators).

The ``*_np`` forms are the inference hot path (plain NumPy, no graph);
the Tensor forms wrap the same arithmetic as autograd ops so the fuzz
registry (:mod:`repro.nn.debug.fuzz`) and graph lint can exercise them —
gradients flow into the float inputs (activations, scales, bias); the
int8/float16 payloads are constants by construction.

Quantization itself (:func:`quantize_symmetric`,
:func:`quantize_fp16_rows`) is deterministic: scale = maxabs/127 per
channel with round-half-even, so the same float archive always produces
bit-identical quantized arrays.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "INT8_LEVELS",
    "quantize_symmetric", "dequantize_np", "quant_matmul_np",
    "quantize_fp16_rows", "fp16_embed_np",
    "quant_matmul", "dequantize", "fp16_embed",
]

#: Symmetric int8 uses the balanced range [-127, 127]; -128 is unused so
#: that negation never saturates asymmetrically.
INT8_LEVELS = 127


# ----------------------------------------------------------------------
# Quantizers (NumPy, deterministic)
# ----------------------------------------------------------------------
def quantize_symmetric(w: np.ndarray, *,
                       channel_axis: int = 1
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Per-channel symmetric int8 quantization of a weight matrix.

    ``channel_axis`` names the *output-channel* axis (column axis 1 for
    the ``(in, out)`` weights used throughout this repository); one
    float32 scale is kept per output channel.  All-zero channels get
    scale 1.0 so dequantization never divides by zero.  Deterministic:
    ``np.rint`` (round-half-even) over ``w / scale``.
    """
    w = np.asarray(w)
    if w.ndim != 2:
        raise ValueError(f"quantize_symmetric expects a matrix, got "
                         f"shape {w.shape}")
    reduce_axis = 0 if channel_axis in (1, -1) else 1
    maxabs = np.abs(w).max(axis=reduce_axis)
    scales = np.where(maxabs > 0.0, maxabs / INT8_LEVELS, 1.0)
    scales = scales.astype(np.float32)
    # Divide in float64 regardless of input dtype so the rounding
    # decision is identical for float32 and float64 sources.
    ratio = w.astype(np.float64) / scales.astype(np.float64)[
        np.newaxis, :] if channel_axis in (1, -1) else (
        w.astype(np.float64) / scales.astype(np.float64)[:, np.newaxis])
    q = np.clip(np.rint(ratio), -INT8_LEVELS, INT8_LEVELS).astype(np.int8)
    return q, scales


def dequantize_np(q: np.ndarray, scales: np.ndarray,
                  dtype=np.float32) -> np.ndarray:
    """Expand int8 weights back to float: ``q * scale`` per column."""
    return q.astype(dtype) * np.asarray(scales, dtype=dtype)


def quant_matmul_np(x: np.ndarray, q: np.ndarray, scales: np.ndarray,
                    bias: np.ndarray | None = None) -> np.ndarray:
    """Fused int8 GEMM: ``(x @ q) * scale (+ bias)`` in ``x``'s dtype.

    The one numerical definition of the quantized projection — the
    serving runtime, the Tensor op and every test call this, because
    ``(x @ q) * s`` and ``x @ (q * s)`` differ in ULPs and a score must
    be a function of the session alone.
    """
    out = (x @ q.astype(x.dtype)) * np.asarray(scales, dtype=x.dtype)
    if bias is not None:
        out += np.asarray(bias, dtype=x.dtype)
    return out


def quantize_fp16_rows(table: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Row-scaled float16 compression of an embedding table.

    Each row is normalised by its max magnitude and stored as float16
    (full mantissa use regardless of the row's dynamic range) plus one
    float32 scale.  All-zero rows get scale 1.0.
    """
    table = np.asarray(table)
    if table.ndim != 2:
        raise ValueError(f"quantize_fp16_rows expects a matrix, got "
                         f"shape {table.shape}")
    maxabs = np.abs(table).max(axis=1)
    scales = np.where(maxabs > 0.0, maxabs, 1.0).astype(np.float32)
    packed = (table.astype(np.float64)
              / scales.astype(np.float64)[:, None]).astype(np.float16)
    return packed, scales


def fp16_embed_np(ids: np.ndarray, table: np.ndarray, scales: np.ndarray,
                  dtype=np.float32) -> np.ndarray:
    """Row-scaled float16 lookup: ``table[ids] * scales[ids]``."""
    ids = np.asarray(ids, dtype=np.int64)
    rows = table[ids].astype(dtype)
    return rows * np.asarray(scales, dtype=dtype)[ids][..., None]


# ----------------------------------------------------------------------
# Autograd ops (fuzz / lint surface; same arithmetic as the *_np forms)
# ----------------------------------------------------------------------
def _as_tensor(value, dtype) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


def quant_matmul(x: Tensor, q: np.ndarray, scales,
                 bias=None) -> Tensor:
    """Tensor form of :func:`quant_matmul_np`.

    ``x`` (and optionally ``scales`` / ``bias``) are Tensors; ``q`` is a
    constant int8 matrix.  Gradients: ``dx = (g * s) @ qᵀ``,
    ``ds = Σ_rows g * (x @ q)``, ``db = Σ_rows g``.
    """
    if not isinstance(x, Tensor):
        x = Tensor(np.asarray(x))
    q = np.asarray(q)
    if q.dtype != np.int8:
        raise TypeError(f"quant_matmul weight must be int8, got {q.dtype}")
    scales = _as_tensor(scales, x.data.dtype)
    parents = [x, scales]
    q_f = q.astype(x.data.dtype)
    base = x.data @ q_f
    out_data = base * scales.data.astype(x.data.dtype, copy=False)
    if bias is not None:
        bias = _as_tensor(bias, x.data.dtype)
        parents.append(bias)
        out_data = out_data + bias.data.astype(x.data.dtype, copy=False)

    def backward():
        g = out.grad
        if x.requires_grad:
            x._accumulate((g * scales.data.astype(g.dtype, copy=False))
                          @ q_f.T)
        if scales.requires_grad:
            gs = (g * base).reshape(-1, base.shape[-1]).sum(axis=0)
            scales._accumulate(gs.astype(scales.data.dtype, copy=False))
        if bias is not None and bias.requires_grad:
            gb = g.reshape(-1, g.shape[-1]).sum(axis=0)
            bias._accumulate(gb.astype(bias.data.dtype, copy=False))

    def recompute():
        np.matmul(x.data, q_f, out=base)
        np.multiply(base, scales.data.astype(x.data.dtype, copy=False),
                    out=out_data)
        if bias is not None:
            np.add(out_data, bias.data.astype(x.data.dtype, copy=False),
                   out=out_data)

    out = Tensor._make(out_data, parents, backward, recompute,
                       "quant_matmul")
    return out


def dequantize(q: np.ndarray, scales) -> Tensor:
    """Tensor form of :func:`dequantize_np`: ``q * scales`` per column.

    ``q`` is a constant int8 matrix; the float ``scales`` carry the
    gradient (``ds = Σ_rows g * q``).
    """
    q = np.asarray(q)
    if q.dtype != np.int8:
        raise TypeError(f"dequantize weight must be int8, got {q.dtype}")
    if not isinstance(scales, Tensor):
        scales = Tensor(np.asarray(scales))
    q_f = q.astype(scales.data.dtype)
    out_data = q_f * scales.data

    def backward():
        if scales.requires_grad:
            gs = (out.grad * q_f).sum(axis=0)
            scales._accumulate(gs.astype(scales.data.dtype, copy=False))

    def recompute():
        np.multiply(q_f, scales.data, out=out_data)

    out = Tensor._make(out_data, (scales,), backward, recompute,
                       "dequantize")
    return out


def fp16_embed(ids: np.ndarray, table: np.ndarray, scales) -> Tensor:
    """Tensor form of :func:`fp16_embed_np`.

    ``table`` is a constant float16 matrix; the per-row float ``scales``
    carry the gradient (scatter-add over looked-up rows).
    """
    table = np.asarray(table)
    if table.dtype != np.float16:
        raise TypeError(f"fp16_embed table must be float16, got "
                        f"{table.dtype}")
    if not isinstance(scales, Tensor):
        scales = Tensor(np.asarray(scales))
    ids = np.asarray(ids, dtype=np.int64)
    dtype = scales.data.dtype
    rows = table[ids].astype(dtype)
    out_data = rows * scales.data[ids][..., None]

    def backward():
        if scales.requires_grad:
            gs = np.zeros_like(scales.data)
            contrib = (out.grad * rows).sum(axis=-1)
            np.add.at(gs, ids, contrib.astype(scales.data.dtype,
                                              copy=False))
            scales._accumulate(gs)

    def recompute():
        np.multiply(rows, scales.data[ids][..., None], out=out_data)

    out = Tensor._make(out_data, (scales,), backward, recompute,
                       "fp16_embed")
    return out
