"""Parallel experiment execution: process pool + run cache + progress.

The experiment grid (model x dataset x noise x seed) is embarrassingly
parallel once each cell is self-describing; this package turns every
cell into a :class:`TaskSpec`, executes grids through
:class:`GridExecutor` (``workers=1`` is the sequential degenerate case)
and memoizes finished cells in an on-disk :class:`RunCache` so sweeps
resume after interruption.  See DESIGN.md §9 for the cache-key format,
determinism guarantees, and failure semantics.
"""

from .cache import DEFAULT_CACHE_DIR, RunCache
from .coordinator import (
    DEFAULT_LEASE_TTL,
    Coordinator,
    CoordinatorClient,
    parse_address,
)
from .executor import (
    CellResult,
    GridExecutor,
    SweepError,
    format_timing_summary,
)
from .gridworker import run_worker, spawn_local_workers
from .tasks import CACHE_FORMAT, TaskSpec, task_key
from .worker import build_estimator, execute_task

__all__ = [
    "TaskSpec", "task_key", "CACHE_FORMAT",
    "RunCache", "DEFAULT_CACHE_DIR",
    "GridExecutor", "CellResult", "SweepError", "format_timing_summary",
    "Coordinator", "CoordinatorClient", "parse_address",
    "DEFAULT_LEASE_TTL", "run_worker", "spawn_local_workers",
    "execute_task", "build_estimator",
]
