"""The stream processor: windower → engine → drift monitor → re-correction.

:class:`StreamProcessor` owns one end-to-end streaming deployment:

* events come in (from an :class:`~repro.stream.events.EventLog` or any
  ordered iterable), the :class:`~repro.stream.window.SessionWindower`
  closes sessions and emits windows;
* every window's sessions are scored through the existing
  :class:`~repro.serve.InferenceEngine` (micro-batching, quantized
  archives, rolling reload — nothing is re-implemented here);
* per-window score/embedding/OOV statistics feed the
  :class:`~repro.stream.drift.DriftMonitor`; every window is journaled
  through the :class:`~repro.train.MetricJournal` with deterministic
  fields only (no wall clock), and exported as ``stream_*`` gauges on
  the engine's ``/v1/metrics``;
* on alarm (or on a period) the last K windows go through
  :func:`~repro.stream.recorrect.recorrect_model`; the refreshed
  archive is hot-swapped into the engine via the rolling ``reload``
  (no dropped scores) and the monitor re-arms against the new model.

Crash posture: after every handled window the processor writes an
atomic JSON checkpoint (windower + monitor + rng state, next event
offset, current archive, scored records).  A processor constructed
with ``resume=True`` picks up from the checkpoint and produces
bit-identical windows, scores, journal entries and alarms to an
uninterrupted run — the streaming analogue of the trainer's
kill-and-resume guarantee (asserted in ``tests/stream/``).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib

import numpy as np

from ..core import CLFD
from ..core.persistence import load_clfd
from ..serve.config import ServeConfig
from ..serve.engine import InferenceEngine
from ..train import MetricJournal, TrainRun
from ..train.seeding import generator_state, set_generator_state
from .drift import DriftMonitor, DriftReading
from .events import Event
from .recorrect import recorrect_model
from .window import SessionWindower, StreamSession, Window

__all__ = ["StreamConfig", "StreamProcessor", "compare_with_frozen"]


@dataclasses.dataclass(frozen=True)
class StreamConfig:
    """Knobs for one streaming deployment (windowing + drift + policy)."""

    window_size: float = 20.0
    session_gap: float = 4.0
    slide: float | None = None
    max_session_len: int | None = None
    # Drift monitor
    reference_windows: int = 3
    ks_threshold: float = 0.45
    ph_delta: float = 0.05
    ph_threshold: float = 0.5
    centroid_threshold: float = 0.5
    oov_threshold: float = 0.10
    label_z_threshold: float = 3.0
    min_sessions: int = 8
    # Re-correction policy
    recorrect_windows: int = 6
    recorrect_on_alarm: bool = True
    recorrect_every: int | None = None
    max_recorrections: int | None = None
    head_epochs: int | None = None
    score_timeout_s: float = 60.0

    def replace(self, **changes) -> "StreamConfig":
        return dataclasses.replace(self, **changes)


class StreamProcessor:
    """Online scoring + drift detection + re-correction over one engine.

    Parameters
    ----------
    archive: the CLFD archive to serve initially; also the frozen
        baseline :func:`compare_with_frozen` evaluates against.
    workdir: state directory — ``checkpoint.json``, ``journal.jsonl``,
        ``archives/`` (re-corrected generations), ``train/``
        (fine-tune checkpoints).
    config / serve_config: streaming and serving knobs.  The serving
        config is forced to ``include_embeddings=True`` — the centroid
        drift statistic needs the embeddings the engine already
        computes.
    engine: pass an existing engine to share it with e.g. a
        :class:`~repro.serve.ServingServer`; by default the processor
        builds its own from the archive.
    seed: seed for the processor's generator (re-correction batching);
        checkpointed, so resumed runs consume the same draws.
    resume: load ``workdir/checkpoint.json`` and continue from it.
    """

    def __init__(self, archive: str | os.PathLike,
                 workdir: str | os.PathLike, *,
                 config: StreamConfig | None = None,
                 serve_config: ServeConfig | None = None,
                 engine: InferenceEngine | None = None,
                 seed: int = 0, resume: bool = False):
        self.config = config or StreamConfig()
        self.workdir = pathlib.Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        (self.workdir / "archives").mkdir(exist_ok=True)
        self.initial_archive = pathlib.Path(archive)
        self._checkpoint_path = self.workdir / "checkpoint.json"

        c = self.config
        self._windower = SessionWindower(
            c.window_size, c.session_gap, slide=c.slide,
            max_session_len=c.max_session_len)
        self._monitor = DriftMonitor(
            reference_windows=c.reference_windows,
            ks_threshold=c.ks_threshold, ph_delta=c.ph_delta,
            ph_threshold=c.ph_threshold,
            centroid_threshold=c.centroid_threshold,
            oov_threshold=c.oov_threshold,
            label_z_threshold=c.label_z_threshold,
            min_sessions=c.min_sessions)
        self._rng = np.random.default_rng(seed)
        self._next_offset = 0
        self._windows_processed = 0
        self._model_generation = 0
        self._recorrections = 0
        self._archive = self.initial_archive
        self._recent: list[list[dict]] = []
        self._records: list[dict] = []

        resumed = resume and self._checkpoint_path.exists()
        if resumed:
            self._load_checkpoint()
        self.journal = MetricJournal(self.workdir / "journal.jsonl",
                                     resume=resumed)

        self.serve_config = (serve_config or ServeConfig()).replace(
            include_embeddings=True)
        if engine is not None:
            self.engine = engine
            self._owns_engine = False
        else:
            # Start the serving generation at the checkpointed model
            # generation so resumed streams stamp results identically
            # to an uninterrupted run (one rolling reload per
            # re-correction).
            self.engine = InferenceEngine.from_archive(
                self._archive, self.serve_config,
                generation=self._model_generation)
            self._owns_engine = True
        self._export_gauges(drift_score=0.0)

    # ------------------------------------------------------------------
    @property
    def windows_processed(self) -> int:
        return self._windows_processed

    @property
    def model_generation(self) -> int:
        """Re-correction generation (0 = the initial archive)."""
        return self._model_generation

    @property
    def recorrections(self) -> int:
        return self._recorrections

    @property
    def current_archive(self) -> pathlib.Path:
        return self._archive

    @property
    def next_offset(self) -> int:
        """Event-log offset the next :meth:`process_events` resumes at."""
        return self._next_offset

    @property
    def records(self) -> list[dict]:
        """Per-session scoring records, in stream order.

        Each record carries the window index, session identity, raw
        activities, ground-truth/noisy labels, the served score and
        prediction, and both the serving generation and the
        re-correction generation that produced it.
        """
        return list(self._records)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def process_events(self, events, *,
                       max_windows: int | None = None) -> list[dict]:
        """Feed ordered events through; returns per-window summaries.

        ``events`` is any iterable of :class:`Event` (an
        ``EventLog.read(processor.next_offset)`` iterator resumes
        exactly where the checkpoint left off).  With ``max_windows``
        the call returns after that many windows — the resulting
        checkpoint is a valid kill point.
        """
        summaries: list[dict] = []
        for event in events:
            windows = self._windower.process(event)
            if event.offset >= 0:
                self._next_offset = event.offset + 1
            for window in windows:
                summaries.append(self._handle_window(window))
            if windows:
                self._save_checkpoint()
                if (max_windows is not None
                        and len(summaries) >= max_windows):
                    return summaries
        return summaries

    def finish(self) -> list[dict]:
        """Flush the windower at end of stream; handles trailing windows."""
        summaries = [self._handle_window(w) for w in self._windower.flush()]
        self._save_checkpoint()
        return summaries

    def run_log(self, log, *, max_windows: int | None = None,
                flush: bool = True) -> list[dict]:
        """Convenience: process an :class:`EventLog` from the checkpoint."""
        summaries = self.process_events(log.read(self._next_offset),
                                        max_windows=max_windows)
        if flush and (max_windows is None or len(summaries) < max_windows):
            summaries.extend(self.finish())
        return summaries

    def close(self) -> None:
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "StreamProcessor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One window
    # ------------------------------------------------------------------
    def _handle_window(self, window: Window) -> dict:
        payloads = [{"activities": list(s.activities),
                     "session_id": s.session_id}
                    for s in window.sessions]
        results = (self.engine.score_many(
            payloads, timeout=self.config.score_timeout_s)
            if payloads else [])

        scores = np.asarray([r.score for r in results], dtype=np.float64)
        finite = np.isfinite(scores)
        embeddings = [r.embedding for r in results
                      if r.embedding is not None]
        embedding_arr = (np.asarray(embeddings, dtype=np.float64)
                         if embeddings else None)
        total_tokens = sum(len(s.activities) for s in window.sessions)
        oov_tokens = sum(r.oov_count for r in results)
        oov_rate = oov_tokens / total_tokens if total_tokens else 0.0
        noisy_rate = (float(np.mean([s.noisy_label
                                     for s in window.sessions]))
                      if window.sessions else None)

        reading = self._monitor.observe(
            window.index, scores[finite], embedding_arr, oov_rate,
            noisy_rate=noisy_rate)

        for session, result in zip(window.sessions, results):
            self._records.append({
                "window": window.index,
                "session_id": session.session_id,
                "entity": session.entity,
                "activities": list(session.activities),
                "label": int(session.label),
                "noisy_label": int(session.noisy_label),
                "score": (float(result.score)
                          if np.isfinite(result.score) else None),
                "pred": int(result.label),
                "oov_count": int(result.oov_count),
                "serve_generation": result.generation,
                "model_generation": self._model_generation,
            })
        self._windows_processed += 1
        self._recent.append([s.to_dict() for s in window.sessions])
        del self._recent[:-self.config.recorrect_windows]

        self.journal.log(
            event="window", phase="stream", window=window.index,
            n_sessions=len(window.sessions), oov_rate=round(oov_rate, 6),
            ks=round(reading.ks, 6), ph=round(reading.ph, 6),
            centroid_dist=round(reading.centroid_dist, 6),
            label_z=round(reading.label_z, 6),
            drift_score=round(reading.drift_score, 6),
            alarm=reading.alarm, trigger=reading.trigger,
            generation=self._model_generation)

        recorrected = False
        if self._should_recorrect(reading):
            recorrected = self._recorrect() is not None
        self._export_gauges(drift_score=reading.drift_score)
        summary = {
            "window": window.index,
            "n_sessions": len(window.sessions),
            "oov_rate": oov_rate,
            "reading": reading,
            "alarm": reading.alarm,
            "recorrected": recorrected,
            "generation": self._model_generation,
        }
        return summary

    def _should_recorrect(self, reading: DriftReading) -> bool:
        c = self.config
        if (c.max_recorrections is not None
                and self._recorrections >= c.max_recorrections):
            return False
        if reading.alarm and c.recorrect_on_alarm:
            return True
        return bool(c.recorrect_every
                    and self._windows_processed % c.recorrect_every == 0)

    # ------------------------------------------------------------------
    # Re-correction + hot swap
    # ------------------------------------------------------------------
    def _recorrect(self):
        sessions = [StreamSession.from_dict(s)
                    for window in self._recent for s in window]
        if not sessions:
            return None
        # Re-train a fresh copy loaded from the current archive — never
        # the engine's live model, which is concurrently serving.
        model = load_clfd(self._archive)
        if not isinstance(model, CLFD) or model.label_corrector is None:
            # Quantized v3 archives drop the corrector: scoring works,
            # online re-correction is structurally unavailable.
            self.journal.log_event(
                "recorrect-skipped", "stream",
                reason="archive has no corrector (quantized?)")
            return None
        generation = self._model_generation + 1
        run = TrainRun(self.workdir / "train", journal=self.journal,
                       prefix=f"gen{generation}/")
        result = recorrect_model(
            model, sessions, self._rng, generation=generation,
            archive_dir=self.workdir / "archives", run=run,
            head_epochs=self.config.head_epochs)
        serve_generation = self.engine.reload(result.archive)
        self._archive = result.archive
        self._model_generation = generation
        self._recorrections += 1
        self._monitor.reset()
        self.journal.log_event(
            "recorrect", "stream", generation=generation,
            serve_generation=serve_generation,
            n_sessions=result.n_sessions, flipped=result.flipped,
            n_dropped=result.n_dropped, oov_tokens=result.oov_tokens,
            archive=result.archive.name)
        return result

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _export_gauges(self, *, drift_score: float) -> None:
        metrics = self.engine.metrics
        metrics.set_gauge("stream_windows_processed",
                          self._windows_processed)
        metrics.set_gauge("stream_drift_score", round(drift_score, 6))
        metrics.set_gauge("stream_alarms_total", self._monitor.alarms)
        metrics.set_gauge("stream_recorrect_generation",
                          self._model_generation)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _save_checkpoint(self) -> None:
        state = {
            "next_offset": self._next_offset,
            "windower": self._windower.state_dict(),
            "monitor": self._monitor.state_dict(),
            "rng": generator_state(self._rng),
            "windows_processed": self._windows_processed,
            "model_generation": self._model_generation,
            "recorrections": self._recorrections,
            "archive": str(self._archive),
            "recent": self._recent,
            "records": self._records,
        }
        tmp = self._checkpoint_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(state))
        os.replace(tmp, self._checkpoint_path)

    def _load_checkpoint(self) -> None:
        state = json.loads(self._checkpoint_path.read_text())
        self._next_offset = int(state["next_offset"])
        self._windower.load_state_dict(state["windower"])
        self._monitor.load_state_dict(state["monitor"])
        set_generator_state(self._rng, state["rng"])
        self._windows_processed = int(state["windows_processed"])
        self._model_generation = int(state["model_generation"])
        self._recorrections = int(state["recorrections"])
        self._archive = pathlib.Path(state["archive"])
        self._recent = [list(window) for window in state["recent"]]
        self._records = [dict(r) for r in state["records"]]


# ----------------------------------------------------------------------
# Evaluation helper
# ----------------------------------------------------------------------
def compare_with_frozen(records: list[dict],
                        frozen_archive: str | os.PathLike,
                        serve_config: ServeConfig | None = None,
                        *, min_generation: int = 1) -> dict:
    """Post-drift AUC of the live stream vs the frozen initial model.

    Takes the processor's :attr:`~StreamProcessor.records`, keeps the
    sessions scored at re-correction generation >= ``min_generation``
    (i.e. after the first hot swap), re-scores exactly those sessions
    with the *frozen* archive, and returns both AUCs.  This is the
    smoke-test oracle for "online re-correction helps": same sessions,
    same ground truth, only the model differs.
    """
    from ..metrics.classification import auc_roc

    post = [r for r in records
            if r["model_generation"] >= min_generation
            and r["score"] is not None]
    if not post:
        return {"n_sessions": 0, "live_auc": float("nan"),
                "frozen_auc": float("nan")}
    labels = np.asarray([r["label"] for r in post], dtype=np.int64)
    live = np.asarray([r["score"] for r in post], dtype=np.float64)
    config = (serve_config or ServeConfig()).replace(
        include_embeddings=False)
    with InferenceEngine.from_archive(frozen_archive, config) as engine:
        results = engine.score_many(
            [{"activities": r["activities"],
              "session_id": r["session_id"]} for r in post])
    frozen = np.asarray([r.score for r in results], dtype=np.float64)
    return {
        "n_sessions": len(post),
        "live_auc": float(auc_roc(labels, live)),
        "frozen_auc": float(auc_roc(labels, frozen)),
    }
