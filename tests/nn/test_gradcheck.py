"""Finite-difference gradient checks for every differentiable building block."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import Tensor, check_gradients


def _rand(shape, seed, scale=0.5):
    return np.random.default_rng(seed).normal(scale=scale, size=shape)


@pytest.mark.parametrize("op", [
    lambda x: x.exp(),
    lambda x: x.tanh(),
    lambda x: x.sigmoid(),
    lambda x: x.relu(),
    lambda x: x.leaky_relu(0.1),
    lambda x: x.gelu(),
    lambda x: x * x,
    lambda x: (x + 1.0) * (x - 2.0),
])
def test_elementwise_ops_gradcheck(op):
    x = Tensor(_rand((3, 4), 0) + 0.1, requires_grad=True)
    check_gradients(lambda: op(x).sum(), [x])


def test_log_gradcheck_positive_domain():
    x = Tensor(np.abs(_rand((3, 3), 1)) + 0.5, requires_grad=True)
    check_gradients(lambda: x.log().sum(), [x])


def test_pow_gradcheck():
    x = Tensor(np.abs(_rand((4,), 2)) + 0.5, requires_grad=True)
    check_gradients(lambda: (x ** 0.7).sum(), [x])


def test_matmul_gradcheck_both_sides():
    a = Tensor(_rand((3, 4), 3), requires_grad=True)
    b = Tensor(_rand((4, 2), 4), requires_grad=True)
    check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b])


def test_matmul_batched_by_vector_gradcheck():
    """(B, T, D) @ (D,) — the attention-pooling score pattern."""
    a = Tensor(_rand((2, 3, 4), 30), requires_grad=True)
    v = Tensor(_rand((4,), 31), requires_grad=True)
    check_gradients(lambda: ((a @ v) ** 2).sum(), [a, v])


def test_matmul_matrix_by_vector_gradcheck():
    a = Tensor(_rand((3, 4), 32), requires_grad=True)
    v = Tensor(_rand((4,), 33), requires_grad=True)
    check_gradients(lambda: ((a @ v) ** 2).sum(), [a, v])


def test_batched_matmul_gradcheck():
    a = Tensor(_rand((2, 3, 4), 5), requires_grad=True)
    b = Tensor(_rand((2, 4, 3), 6), requires_grad=True)
    check_gradients(lambda: ((a @ b).tanh()).sum(), [a, b])


def test_softmax_gradcheck():
    x = Tensor(_rand((4, 5), 7), requires_grad=True)
    weights = Tensor(_rand((4, 5), 8))
    check_gradients(lambda: (nn.softmax(x) * weights).sum(), [x])


def test_log_softmax_gradcheck():
    x = Tensor(_rand((3, 4), 9), requires_grad=True)
    check_gradients(lambda: (nn.log_softmax(x) ** 2).sum(), [x])


def test_cross_entropy_gradcheck():
    logits = Tensor(_rand((5, 2), 10), requires_grad=True)
    labels = np.array([0, 1, 1, 0, 1])
    check_gradients(lambda: nn.cross_entropy(logits, labels), [logits])


def test_l2_normalize_gradcheck():
    x = Tensor(_rand((3, 6), 11) + 0.2, requires_grad=True)
    target = Tensor(_rand((3, 6), 12))
    check_gradients(lambda: ((nn.l2_normalize(x) - target) ** 2).sum(), [x])


def test_cosine_similarity_matrix_gradcheck():
    a = Tensor(_rand((4, 5), 13) + 0.1, requires_grad=True)
    check_gradients(lambda: nn.cosine_similarity_matrix(a).sum(), [a])


def test_linear_layer_gradcheck():
    rng = np.random.default_rng(14)
    layer = nn.Linear(4, 3, rng)
    x = Tensor(_rand((2, 4), 15), requires_grad=True)
    check_gradients(lambda: (layer(x) ** 2).sum(),
                    [x, layer.weight, layer.bias])


def test_layernorm_gradcheck():
    layer = nn.LayerNorm(6)
    x = Tensor(_rand((3, 6), 16), requires_grad=True)
    target = Tensor(_rand((3, 6), 17))
    check_gradients(lambda: ((layer(x) - target) ** 2).sum(),
                    [x, layer.gamma, layer.beta])


def test_embedding_gradcheck():
    rng = np.random.default_rng(18)
    emb = nn.Embedding(7, 3, rng)
    ids = np.array([[0, 2, 2], [5, 1, 6]])
    check_gradients(lambda: (emb(ids) ** 2).sum(), [emb.weight])


@pytest.mark.parametrize("fused", [True, False])
def test_lstm_cell_gradcheck(fused):
    rng = np.random.default_rng(19)
    cell = nn.LSTMCell(3, 4, rng, fused=fused)
    x = Tensor(_rand((2, 3), 20), requires_grad=True)

    def fn():
        h, c = cell(x, cell.initial_state(2))
        return (h * h).sum() + (c * c).sum()

    check_gradients(fn, [x, cell.w_x, cell.w_h, cell.bias], atol=1e-4)


@pytest.mark.parametrize("fused", [True, False])
def test_lstm_sequence_gradcheck(fused):
    rng = np.random.default_rng(21)
    lstm = nn.LSTM(3, 4, rng, num_layers=2, fused=fused)
    x = Tensor(_rand((2, 5, 3), 22), requires_grad=True)
    params = [x] + lstm.parameters()
    check_gradients(lambda: (lstm.mean_pool(x) ** 2).sum(), params, atol=1e-4)


@pytest.mark.parametrize("fused", [True, False])
def test_gru_cell_gradcheck(fused):
    rng = np.random.default_rng(40)
    cell = nn.GRUCell(3, 4, rng, fused=fused)
    x = Tensor(_rand((2, 3), 41), requires_grad=True)
    h0 = Tensor(_rand((2, 4), 42), requires_grad=True)
    check_gradients(lambda: (cell(x, h0) ** 2).sum(),
                    [x, h0] + cell.parameters(), atol=1e-4)


def test_fused_lstm_sequence_kernel_gradcheck():
    """The whole-layer kernel against finite differences, including the
    final-state outputs (which exercise the two-output backward wiring)."""
    rng = np.random.default_rng(43)
    x = Tensor(rng.normal(scale=0.5, size=(2, 4, 3)), requires_grad=True)
    h0 = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
    c0 = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
    w_x = Tensor(rng.normal(scale=0.3, size=(3, 16)), requires_grad=True)
    w_h = Tensor(rng.normal(scale=0.3, size=(4, 16)), requires_grad=True)
    bias = Tensor(rng.normal(scale=0.3, size=(16,)), requires_grad=True)

    def fn():
        h_seq, h_t, c_t = nn.fused_lstm_sequence(x, h0, c0, w_x, w_h, bias)
        return (h_seq * h_seq).sum() + (h_t * 0.5).sum() + (c_t * 1.7).sum()

    check_gradients(fn, [x, h0, c0, w_x, w_h, bias], atol=1e-4)


def test_fused_gru_sequence_kernel_gradcheck():
    rng = np.random.default_rng(44)
    x = Tensor(rng.normal(scale=0.5, size=(2, 4, 3)), requires_grad=True)
    h0 = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
    w_x = Tensor(rng.normal(scale=0.3, size=(3, 8)), requires_grad=True)
    w_h = Tensor(rng.normal(scale=0.3, size=(4, 8)), requires_grad=True)
    bias = Tensor(rng.normal(scale=0.3, size=(8,)), requires_grad=True)
    w_xc = Tensor(rng.normal(scale=0.3, size=(3, 4)), requires_grad=True)
    w_hc = Tensor(rng.normal(scale=0.3, size=(4, 4)), requires_grad=True)
    bias_c = Tensor(rng.normal(scale=0.3, size=(4,)), requires_grad=True)

    def fn():
        h_seq, h_t = nn.fused_gru_sequence(x, h0, w_x, w_h, bias,
                                           w_xc, w_hc, bias_c)
        return (h_seq * h_seq).sum() + (h_t * 0.5).sum()

    check_gradients(fn, [x, h0, w_x, w_h, bias, w_xc, w_hc, bias_c], atol=1e-4)


def test_split_gradcheck():
    x = Tensor(_rand((3, 6), 45), requires_grad=True)

    def fn():
        a, b, c = nn.split(x, 2, axis=1)
        return (a * a).sum() + (b * 3.0).sum() + c.tanh().sum()

    check_gradients(fn, [x])


def test_fused_lstm_cell_gradcheck_float32():
    """float32 needs a larger step and looser tolerance: the finite
    difference itself only carries ~3 significant digits."""
    with nn.default_dtype(np.float32):
        rng = np.random.default_rng(46)
        cell = nn.LSTMCell(3, 4, rng, fused=True)
        x = Tensor(_rand((2, 3), 47), requires_grad=True, dtype=np.float32)

        def fn():
            h, c = cell(x, cell.initial_state(2))
            return ((h * h).sum() + (c * c).sum()).astype(np.float64)

        check_gradients(fn, [x, cell.w_x, cell.w_h, cell.bias],
                        eps=1e-2, atol=1e-1, rtol=1e-2)


def test_attention_gradcheck():
    rng = np.random.default_rng(23)
    attn = nn.MultiHeadAttention(4, 2, rng)
    x = Tensor(_rand((2, 3, 4), 24), requires_grad=True)
    check_gradients(lambda: (attn(x) ** 2).sum(), [x], atol=1e-4)


def test_transformer_layer_gradcheck():
    rng = np.random.default_rng(25)
    layer = nn.TransformerEncoderLayer(4, 2, 8, rng)
    x = Tensor(_rand((1, 3, 4), 26), requires_grad=True)
    check_gradients(lambda: (layer(x) ** 2).sum(), [x], atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=10_000))
def test_sum_of_products_gradcheck_property(rows, cols, seed):
    """Property: autograd matches finite differences on random bilinear maps."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    b = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    check_gradients(lambda: (a * b + a ** 2).sum(), [a, b])


# ----------------------------------------------------------------------
# Numerics hardening: per-dtype defaults, failure collection, and the
# l2_normalize zero-row regression.
# ----------------------------------------------------------------------
def test_l2_normalize_zero_row_has_finite_gradients():
    """Regression: ``sqrt(sum(x²)) + eps`` was finite forward but its
    backward divided by the bare ``sqrt(sum(x²))``, so an all-zero row
    produced NaN gradients.  The stabilizer now sits inside the root."""
    x = Tensor(np.array([[0.0, 0.0, 0.0], [3.0, 4.0, 0.0]]),
               requires_grad=True)
    out = nn.l2_normalize(x)
    assert np.isfinite(out.data).all()
    (out * out).sum().backward()
    assert np.isfinite(x.grad).all()


def test_l2_normalize_subnormal_row_has_finite_gradients():
    x = Tensor(np.array([[1e-310, -1e-310, 0.0]]), requires_grad=True)
    out = nn.l2_normalize(x)
    assert np.isfinite(out.data).all()
    out.sum().backward()
    assert np.isfinite(x.grad).all()


def test_l2_normalize_gradcheck_away_from_zero():
    x = Tensor(_rand((3, 4), 91), requires_grad=True)
    check_gradients(lambda: (nn.l2_normalize(x) ** 2).sum() * 0.5, [x])


def test_gradcheck_float32_defaults_avoid_spurious_failures():
    """float32 forward noise (~1e-7 relative) would swamp the float64
    step 1e-6; the per-dtype defaults pick a coarser step and looser
    tolerances, so a *correct* float32 op must pass with no explicit
    eps/atol/rtol arguments."""
    x = Tensor(_rand((3, 3), 92).astype(np.float32), requires_grad=True)
    check_gradients(lambda: (x ** 2).sum().astype(np.float64), [x])


def test_gradcheck_defaults_pick_loosest_dtype():
    from repro.nn.gradcheck import _DTYPE_DEFAULTS, _defaults_for

    f32 = Tensor(np.ones(2, dtype=np.float32))
    f64 = Tensor(np.ones(2, dtype=np.float64))
    assert _defaults_for([f64]) == _DTYPE_DEFAULTS[np.dtype(np.float64)]
    assert _defaults_for([f32]) == _DTYPE_DEFAULTS[np.dtype(np.float32)]
    # Mixed inputs take the float32 (loosest) settings.
    assert _defaults_for([f64, f32]) == _DTYPE_DEFAULTS[np.dtype(np.float32)]


def test_gradcheck_collects_all_failures_when_not_raising():
    from repro.nn.gradcheck import GradcheckFailure

    x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)

    def fn():
        def backward():
            # Wrong for every entry: claims 3x instead of 2x.
            x._accumulate(out.grad * 3.0 * x.data)

        out = Tensor._make(x.data ** 2, (x,), backward)
        return out.sum()

    failures = check_gradients(fn, [x], raise_on_first=False)
    assert len(failures) == 3
    assert all(isinstance(f, GradcheckFailure) for f in failures)
    assert {f.flat_index for f in failures} == {0, 1, 2}
    assert all("analytic" in str(f) for f in failures)
    # The default mode still raises.
    with pytest.raises(AssertionError, match="gradient mismatch"):
        check_gradients(fn, [x])
