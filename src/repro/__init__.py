"""CLFD: Contrastive Learning for Fraud Detection from Noisy Labels.

A from-scratch reproduction of the ICDE 2024 paper by Vinay M.S.,
Shuhan Yuan and Xintao Wu — including the NumPy neural-network substrate
(:mod:`repro.nn`), synthetic session benchmarks (:mod:`repro.data`), the
CLFD framework (:mod:`repro.core`), eight baselines
(:mod:`repro.baselines`) and the experiment harness
(:mod:`repro.experiments`).

Quickstart::

    import numpy as np
    from repro import CLFD, CLFDConfig
    from repro.data import make_dataset, apply_uniform_noise

    rng = np.random.default_rng(0)
    train, test = make_dataset("cert", rng, scale=0.05)
    apply_uniform_noise(train, eta=0.3, rng=rng)
    model = CLFD(CLFDConfig.fast()).fit(train, rng=rng)
    labels, scores = model.predict(test)
"""

from .core import CLFD, CLFDConfig, FraudDetector, LabelCorrector

__version__ = "1.0.0"

__all__ = ["CLFD", "CLFDConfig", "LabelCorrector", "FraudDetector",
           "__version__"]
