"""Markdown report generation for experiment results.

Turns the nested dicts produced by the :mod:`repro.experiments.runner`
functions into GitHub-flavoured markdown tables, with the paper's
reported numbers inlined for side-by-side comparison — the format used
by EXPERIMENTS.md.
"""

from __future__ import annotations

from . import paper_reference
from ..metrics import MetricSummary

__all__ = [
    "comparison_markdown",
    "ablation_markdown",
    "table3_markdown",
    "latency_markdown",
]


def _cell(summary: MetricSummary) -> str:
    return f"{summary.mean:.1f}±{summary.std:.1f}"


def comparison_markdown(results: dict, paper_f1: dict | None = None,
                        title: str = "") -> str:
    """Render run_comparison output; optionally include paper F1 means.

    ``paper_f1[model][dataset]`` may be a float or an ``{eta: f1}`` dict
    (Table I form); in the latter case the eta is parsed from the noise
    label.
    """
    lines = []
    if title:
        lines += [f"### {title}", ""]
    datasets = list(next(iter(results.values())))
    noise_labels = list(next(iter(results[next(iter(results))].values())))
    for noise_label in noise_labels:
        lines.append(f"**{noise_label}**")
        lines.append("")
        header = "| Model | " + " | ".join(
            f"{d} F1 | {d} FPR | {d} AUC" for d in datasets
        )
        if paper_f1:
            header += " | paper F1 (" + "/".join(datasets) + ") |"
        else:
            header += " |"
        lines.append(header)
        lines.append("|" + "---|" * (header.count("|") - 1))
        for model, per_dataset in results.items():
            row = f"| {model} | " + " | ".join(
                f"{_cell(per_dataset[d][noise_label]['f1'])} | "
                f"{_cell(per_dataset[d][noise_label]['fpr'])} | "
                f"{_cell(per_dataset[d][noise_label]['auc_roc'])}"
                for d in datasets
            )
            if paper_f1 and model in paper_f1:
                refs = []
                for dataset in datasets:
                    ref = paper_f1[model].get(dataset)
                    if isinstance(ref, dict):
                        eta = float(noise_label.split("=")[-1])
                        ref = ref.get(eta)
                    refs.append("—" if ref is None else f"{ref:.1f}")
                row += " | " + "/".join(refs) + " |"
            else:
                row += " |"
            lines.append(row)
        lines.append("")
    return "\n".join(lines)


def ablation_markdown(results: dict, paper_f1: dict | None = None,
                      title: str = "") -> str:
    """Render run_ablation output next to paper F1 means."""
    lines = []
    if title:
        lines += [f"### {title}", ""]
    datasets = list(next(iter(results.values())))
    header = "| Variant | " + " | ".join(f"{d} F1" for d in datasets)
    if paper_f1:
        header += " | paper F1 (" + "/".join(datasets) + ") |"
    else:
        header += " |"
    lines.append(header)
    lines.append("|" + "---|" * (header.count("|") - 1))
    for variant, per_dataset in results.items():
        row = f"| {variant} | " + " | ".join(
            _cell(per_dataset[d]["f1"]) for d in datasets
        )
        if paper_f1 and variant in paper_f1:
            row += " | " + "/".join(
                f"{paper_f1[variant][d]:.1f}" for d in datasets
            ) + " |"
        else:
            row += " |"
        lines.append(row)
    lines.append("")
    return "\n".join(lines)


def table3_markdown(results: dict, title: str = "") -> str:
    """Render run_table3 output next to the paper's Table III."""
    lines = []
    if title:
        lines += [f"### {title}", ""]
    lines.append("| Dataset | Noise | TPR | TNR | paper TPR | paper TNR |")
    lines.append("|---|---|---|---|---|---|")
    for dataset, per_noise in results.items():
        for noise_label, cell in per_noise.items():
            kind = "uniform" if noise_label.startswith("eta=") \
                else "class-dependent"
            paper_tpr, paper_tnr = paper_reference.TABLE3[dataset][kind]
            lines.append(
                f"| {dataset} | {noise_label} | {_cell(cell['tpr'])} | "
                f"{_cell(cell['tnr'])} | {paper_tpr:.1f} | {paper_tnr:.1f} |"
            )
    lines.append("")
    return "\n".join(lines)


def latency_markdown(latencies: dict[str, float], title: str = "") -> str:
    """Render run_latency output with relative factors."""
    lines = []
    if title:
        lines += [f"### {title}", ""]
    base = min(latencies.values())
    lines.append("| Model | seconds | x fastest |")
    lines.append("|---|---|---|")
    for model, seconds in sorted(latencies.items(), key=lambda kv: -kv[1]):
        lines.append(f"| {model} | {seconds:.1f} | {seconds / base:.1f}x |")
    lines.append("")
    return "\n".join(lines)
