"""Tests for the label corrector (SimCLR pre-training + mixup-GCE head)."""

import numpy as np
import pytest

from repro.core import LabelCorrector
from repro.data import empirical_noise_rates


@pytest.fixture
def corrector(tiny_config, tiny_data, tiny_vectorizer):
    train, _ = tiny_data
    lc = LabelCorrector(tiny_config, tiny_vectorizer,
                        np.random.default_rng(0))
    lc.fit(train)
    return lc


def test_requires_fit_before_use(tiny_config, tiny_data, tiny_vectorizer):
    train, _ = tiny_data
    lc = LabelCorrector(tiny_config, tiny_vectorizer,
                        np.random.default_rng(0))
    with pytest.raises(RuntimeError):
        lc.correct(train)
    with pytest.raises(RuntimeError):
        lc.predict(train)


def test_fit_records_loss_histories(corrector, tiny_config):
    assert len(corrector.ssl_loss_history) == tiny_config.ssl_epochs
    assert len(corrector.classifier_loss_history) == tiny_config.classifier_epochs
    assert all(np.isfinite(v) for v in corrector.ssl_loss_history)


def test_correct_output_contract(corrector, tiny_data):
    train, _ = tiny_data
    labels, confidences = corrector.correct(train)
    assert labels.shape == (len(train),)
    assert set(np.unique(labels)) <= {0, 1}
    # Confidences are max softmax outputs: in [0.5, 1] for two classes.
    assert (confidences >= 0.5 - 1e-9).all()
    assert (confidences <= 1.0 + 1e-9).all()


def test_predict_scores_are_probabilities(corrector, tiny_data):
    _, test = tiny_data
    labels, scores = corrector.predict(test)
    assert labels.shape == (len(test),)
    assert ((scores >= 0) & (scores <= 1)).all()


def test_correct_is_deterministic(corrector, tiny_data):
    train, _ = tiny_data
    labels_a, conf_a = corrector.correct(train)
    labels_b, conf_b = corrector.correct(train)
    np.testing.assert_array_equal(labels_a, labels_b)
    np.testing.assert_allclose(conf_a, conf_b)


def test_corrector_reduces_noise_on_easy_problem(tiny_config, tiny_vectorizer):
    """With 20% noise on separable data, corrected labels must beat noisy
    labels in agreement with ground truth."""
    import numpy as np

    from repro.data import apply_uniform_noise, make_dataset

    rng = np.random.default_rng(11)
    train, _ = make_dataset("cert", rng, scale=0.02)
    apply_uniform_noise(train, eta=0.2, rng=rng)

    from repro.core import CLFDConfig
    from repro.data import SessionVectorizer

    config = CLFDConfig.fast(classifier_epochs=60)
    vec = SessionVectorizer.fit(train, config.word2vec,
                                rng=np.random.default_rng(5))
    lc = LabelCorrector(config, vec, np.random.default_rng(0)).fit(train)
    corrected, _ = lc.correct(train)
    truth = train.labels()
    noisy_agreement = (train.noisy_labels() == truth).mean()
    corrected_agreement = (corrected == truth).mean()
    assert corrected_agreement > noisy_agreement
