"""repro.serve: micro-batched inference serving for trained CLFD models.

The deployment story the paper gestures at ("the FCNN head is shipped
to an inference service") made concrete:

* :class:`InferenceEngine` — warm-loads a persisted archive and scores
  raw sessions with request micro-batching;
* :class:`MicroBatcher` — coalesces concurrent single-session requests
  into padded batches (bounded queue = backpressure);
* :class:`ServingServer` / :func:`run_server` — stdlib HTTP front end
  (``/score``, ``/healthz``, ``/metrics``), started from the CLI with
  ``python -m repro serve --model model.npz``;
* :mod:`~repro.serve.schemas` — request validation with structured,
  client-visible errors.
"""

from .batcher import MicroBatcher, QueueFullError
from .engine import InferenceEngine
from .metrics import ServingMetrics
from .schemas import (
    RawSession,
    RequestError,
    ScoreResult,
    parse_score_request,
    parse_session,
)
from .server import ServingServer, run_server

__all__ = [
    "InferenceEngine", "MicroBatcher", "QueueFullError", "ServingMetrics",
    "ServingServer", "run_server",
    "RawSession", "RequestError", "ScoreResult",
    "parse_session", "parse_score_request",
]
