"""Trace-once / replay compilation of training steps.

The interpreted autograd path rebuilds the whole graph — one Python
closure pair and one output allocation per primitive — on every batch.
For the small models in this reproduction that dispatch overhead, not
the FLOPs, dominates the training step.  This package removes it:

* :class:`~repro.nn.compile.tracer.Tracer` records one execution of a
  *pure* step program into a linearized tape (creation order is already
  a topological order);
* the optimizer passes in :mod:`~repro.nn.compile.passes` prune dead
  nodes, elide view ops, eliminate common subexpressions and fuse runs
  of elementwise recomputes into single closures;
* :class:`~repro.nn.compile.executor.CompiledStep` replays the tape:
  refresh the input buffers, run the fused forward closures (every
  output written in place into the buffers captured at trace time — the
  tape *is* the arena), then run the recorded backward schedule with
  exactly the interpreted ``Tensor.backward()`` semantics.

Replay is bit-identical to the interpreted path by construction: the
backward closures are the very closures the trace created, run in the
same DFS order ``Tensor.backward()`` would use, and every forward
recompute is validated bitwise against the traced forward before a tape
is accepted.  Anything the tracer cannot prove replayable raises
:class:`TraceError`, which callers (the Trainer) turn into a fallback
to the interpreted path.
"""

from .executor import CompiledStep, StepProgram, compile_step
from .tracer import TraceError

__all__ = ["CompiledStep", "StepProgram", "compile_step", "TraceError"]
