"""Behavioural tests for baseline-specific mechanisms."""

import numpy as np
import pytest

from repro.baselines import (
    BaselineConfig,
    DeepLogModel,
    DivMixModel,
    LogBertModel,
    SelCLModel,
    ULCModel,
    fit_two_component_gmm,
    knn_correct_labels,
)
from repro.data import Word2VecConfig, make_dataset


# ----------------------------------------------------------------------
# DivideMix's GMM loss split
# ----------------------------------------------------------------------
def test_gmm_separates_bimodal_losses():
    rng = np.random.default_rng(0)
    low = rng.normal(0.1, 0.03, size=200)
    high = rng.normal(2.0, 0.3, size=100)
    values = np.r_[low, high]
    clean_prob, _ = fit_two_component_gmm(values)
    assert clean_prob[:200].mean() > 0.9
    assert clean_prob[200:].mean() < 0.1


def test_gmm_constant_input_is_uniform():
    clean_prob, _ = fit_two_component_gmm(np.full(10, 0.5))
    np.testing.assert_allclose(clean_prob, 0.5)


def test_gmm_probabilities_valid():
    rng = np.random.default_rng(1)
    clean_prob, _ = fit_two_component_gmm(rng.exponential(size=50))
    assert ((clean_prob >= 0) & (clean_prob <= 1)).all()


# ----------------------------------------------------------------------
# Sel-CL's kNN correction
# ----------------------------------------------------------------------
def test_knn_correction_fixes_isolated_flips():
    """A flipped label inside a tight cluster is corrected by its
    neighbours."""
    rng = np.random.default_rng(2)
    a = rng.normal(loc=(5.0, 0.0), scale=0.1, size=(20, 2))
    b = rng.normal(loc=(-5.0, 0.0), scale=0.1, size=(20, 2))
    features = np.vstack([a, b])
    labels = np.array([0] * 20 + [1] * 20)
    noisy = labels.copy()
    noisy[3] = 1  # one flip inside cluster a
    corrected = knn_correct_labels(features, noisy, k=5)
    assert corrected[3] == 0


def test_knn_correction_majority_wipes_minority_when_mixed():
    """With interleaved classes, kNN votes drift to the majority — the
    session-diversity failure mode the paper describes."""
    rng = np.random.default_rng(3)
    features = rng.normal(size=(50, 2))  # no cluster structure
    labels = np.array([1] * 5 + [0] * 45)
    corrected = knn_correct_labels(features, labels, k=10)
    assert corrected.sum() < 5  # minority labels mostly erased


def test_knn_handles_small_k():
    features = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
    labels = np.array([0, 0, 1])
    corrected = knn_correct_labels(features, labels, k=10)  # k > n-1
    assert corrected.shape == (3,)


# ----------------------------------------------------------------------
# DeepLog / LogBert anomaly scoring
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def lm_setup():
    rng = np.random.default_rng(4)
    train, test = make_dataset("openstack", rng, scale=0.02)
    config = BaselineConfig(embedding_dim=12, hidden_size=16, epochs=3,
                            batch_size=32,
                            word2vec=Word2VecConfig(dim=12, epochs=1))
    return train, test, config


def test_deeplog_threshold_calibrated(lm_setup):
    train, test, config = lm_setup
    model = DeepLogModel(config)
    model.fit(train, rng=np.random.default_rng(0))
    assert model.miss_threshold is not None
    assert 0.0 <= model.miss_threshold <= 1.0


def test_deeplog_scores_malicious_higher(lm_setup):
    """On clean labels, malicious sessions must get higher miss scores."""
    train, test, config = lm_setup
    model = DeepLogModel(config)
    model.fit(train, rng=np.random.default_rng(0))
    _, scores = model.predict(test)
    y = test.labels()
    assert scores[y == 1].mean() > scores[y == 0].mean()


def test_deeplog_predictions_reproducible(lm_setup):
    train, test, config = lm_setup
    model = DeepLogModel(config)
    model.fit(train, rng=np.random.default_rng(0))
    labels_a, scores_a = model.predict(test)
    labels_b, scores_b = model.predict(test)
    np.testing.assert_array_equal(labels_a, labels_b)
    np.testing.assert_allclose(scores_a, scores_b)


def test_logbert_mask_respects_lengths(lm_setup):
    train, _, config = lm_setup
    model = LogBertModel(config)
    model.vectorizer = None  # not needed for _mask
    model.mask_id = 99
    ids = np.array([[1, 2, 3, 0, 0]])
    lengths = np.array([3])
    rng = np.random.default_rng(5)
    for _ in range(10):
        masked, mask = model._mask(ids, lengths, rng)
        assert not mask[0, 3:].any()        # padding never masked
        assert mask[0, :3].any()            # at least one real position
        assert (masked[0, ~mask[0]] == ids[0, ~mask[0]]).all()


def test_logbert_end_to_end(lm_setup):
    train, test, config = lm_setup
    model = LogBertModel(config)
    model.fit(train, rng=np.random.default_rng(0))
    labels, scores = model.predict(test)
    assert model.miss_threshold is not None
    assert np.isfinite(scores).all()


# ----------------------------------------------------------------------
# ULC / DivMix internals
# ----------------------------------------------------------------------
def test_ulc_records_corrected_labels(noisy_split, small_config):
    train, _ = noisy_split
    model = ULCModel(small_config, warmup_epochs=1)
    model.fit(train, rng=np.random.default_rng(0))
    assert model.corrected_labels is not None
    assert model.corrected_labels.shape == (len(train),)


def test_divmix_trains_two_networks(noisy_split, small_config):
    train, _ = noisy_split
    model = DivMixModel(small_config, warmup_epochs=1)
    model.fit(train, rng=np.random.default_rng(0))
    assert len(model.nets) == 2
    # The two co-teaching networks must not be identical.
    a = model.nets[0].state_dict()
    b = model.nets[1].state_dict()
    assert any(not np.allclose(a[k], b[k]) for k in a)


def test_selcl_confident_selection(noisy_split, small_config):
    train, _ = noisy_split
    model = SelCLModel(small_config, ssl_epochs=1, supcon_epochs=1,
                       classifier_epochs=5)
    model.fit(train, rng=np.random.default_rng(0))
    assert model.confident_mask is not None
    assert model.confident_mask.dtype == bool
    assert model.corrected_labels.shape == (len(train),)
