"""The micro-batched inference engine.

:class:`InferenceEngine` owns a warm-loaded CLFD model and a
:class:`~repro.serve.batcher.MicroBatcher`.  Callers (HTTP handler
threads, or library users) submit one raw session at a time; the
batcher coalesces them and the engine scores each batch with a single
padded forward pass through the standard
:meth:`CLFD.predict(..., return_embeddings=...) <repro.core.CLFD.predict>`
path — the engine never touches encoder internals.

The model + its encoding tables live in an immutable ``_ModelRuntime``
bound to the batcher that scores with it, so a **rolling reload**
(:meth:`InferenceEngine.reload_model`) can build and warm the next
generation, flip new submissions over atomically, and drain the old
batcher — no dropped requests and no batch ever mixes generations.
Every :class:`ScoreResult` is tagged with the generation that scored it.

Degradation policy (per ISSUE motivation: deployment-time scoring is
where detectors fail in practice):

* malformed payloads raise a structured
  :class:`~repro.serve.schemas.RequestError` at *submit* time, before
  they can poison a batch;
* unseen activity tokens and out-of-range activity ids degrade to the
  padding embedding (≈ zero vector) and are reported per session as
  ``oov_count`` instead of failing the request;
* a full queue raises ``RequestError(queue_full, status=429)`` —
  backpressure, not unbounded buffering — and a per-tenant token bucket
  (:class:`~repro.serve.ratelimit.TenantRateLimiter`, enabled through
  :class:`ServeConfig`) throttles noisy tenants before they reach it.
"""

from __future__ import annotations

import dataclasses
import functools
import os
import threading
from concurrent.futures import Future
from typing import Any, Iterable

import numpy as np

from ..core.clfd import CLFD
from ..data.sessions import Session, SessionDataset
from ..data.vocab import Vocabulary
from ..nn.profiler import Profiler
from .batcher import MicroBatcher, QueueFullError
from .config import ServeConfig, resolve_config
from .metrics import ServingMetrics
from .ratelimit import TenantRateLimiter
from .schemas import RawSession, RequestError, ScoreResult, parse_session

__all__ = ["InferenceEngine"]


@dataclasses.dataclass(frozen=True)
class _Encoded:
    """A session after vocabulary encoding, ready to batch."""

    ids: tuple[int, ...]
    session_id: str
    oov_count: int


_WARMUP = _Encoded(ids=(0,), session_id="warmup", oov_count=0)


class _ModelRuntime:
    """One model generation: the model, its encoding tables, its tag.

    A batcher is bound to exactly one runtime (via ``partial``), which
    is what makes reloads batch-atomic: an old batcher can only ever
    score with the generation it was created for.
    """

    def __init__(self, model: CLFD, generation: int):
        if model.vectorizer is None:
            raise ValueError("InferenceEngine requires a fitted CLFD")
        self.model = model
        self.generation = int(generation)
        self.vectorizer = model.vectorizer
        self.vocab = self.vectorizer.vocab
        self.vocab_size = self.vectorizer.model.vocab_size
        self.dataset_vocab = self.vocab or Vocabulary()

    def encode(self, raw: RawSession) -> _Encoded:
        """Map tokens/ids into embedding rows, with OOV degradation."""
        pad = self.dataset_vocab.pad_id
        ids: list[int] = []
        oov = 0
        for activity in raw.activities:
            if isinstance(activity, int):
                if 0 <= activity < self.vocab_size:
                    ids.append(int(activity))
                else:
                    ids.append(pad)
                    oov += 1
            else:
                if self.vocab is None:
                    raise RequestError(
                        "tokens_unsupported",
                        "this model archive carries no vocabulary "
                        "(format v1); send integer activity ids",
                    )
                if activity in self.vocab:
                    ids.append(self.vocab[activity])
                else:
                    ids.append(pad)
                    oov += 1
        # The model pads/truncates at max_len anyway; trim early so a
        # long session does not inflate the batch buffers.
        ids = ids[: self.vectorizer.max_len]
        return _Encoded(ids=tuple(ids), session_id=raw.session_id,
                        oov_count=oov)


class InferenceEngine:
    """Scores raw sessions against a fitted CLFD with micro-batching.

    Parameters
    ----------
    model: a *fitted* CLFD (typically from
        :func:`repro.core.load_clfd`).
    config: a :class:`ServeConfig`; legacy keyword arguments
        (``max_batch=...`` etc.) still work through a deprecation shim.
    metrics / rate_limiter: injectable collaborators (a cluster worker
        keeps one metrics object across reloads; tests inject a
        fake-clock limiter).
    generation / worker_id: tags stamped onto every result — the model
        generation this engine starts at, and the cluster shard id
        (``None`` outside a cluster).
    """

    def __init__(self, model: CLFD, config: ServeConfig | None = None, *,
                 metrics: ServingMetrics | None = None,
                 rate_limiter: TenantRateLimiter | None = None,
                 generation: int = 0, worker_id: int | None = None,
                 **legacy):
        self.config = resolve_config(config, legacy, "InferenceEngine")
        self.metrics = metrics or ServingMetrics()
        self.profiler = Profiler()
        self.worker_id = worker_id
        self._limiter = (rate_limiter if rate_limiter is not None
                         else TenantRateLimiter.from_config(self.config))
        self._closed = False
        # Guards reload/close against each other; submissions read
        # self._active once and never hold the lock.
        self._admin_lock = threading.Lock()
        runtime = _ModelRuntime(model, generation)
        if self.config.warmup:
            self._score_batch(runtime, [_WARMUP])
        self._active: tuple[_ModelRuntime, MicroBatcher] = (
            runtime, self._make_batcher(runtime))

    @classmethod
    def from_archive(cls, path: str | os.PathLike,
                     config: ServeConfig | None = None,
                     **kwargs) -> "InferenceEngine":
        """Warm-load a persisted archive (see :func:`repro.core.load_clfd`).

        ``config.precision`` routes the load through the low-precision
        runtime (quantizing a full-precision archive on the fly).
        """
        from ..core.persistence import load_clfd

        precision = config.precision if isinstance(config, ServeConfig) \
            else None
        return cls(load_clfd(path, precision=precision), config, **kwargs)

    def _make_batcher(self, runtime: _ModelRuntime) -> MicroBatcher:
        return MicroBatcher(
            functools.partial(self._score_batch, runtime),
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            max_queue=self.config.max_queue,
            on_batch=self.metrics.record_batch,
        )

    # ------------------------------------------------------------------
    # Introspection (the live generation's view)
    # ------------------------------------------------------------------
    @property
    def model(self) -> CLFD:
        return self._active[0].model

    @property
    def vectorizer(self):
        return self._active[0].vectorizer

    @property
    def generation(self) -> int:
        return self._active[0].generation

    @property
    def include_embeddings(self) -> bool:
        return self.config.include_embeddings

    @property
    def precision(self) -> str:
        """The active numeric path: a quantized runtime's stored
        precision, else the full-precision model's compute dtype."""
        model = self._active[0].model
        return (getattr(model, "precision", None)
                or model.config.compute_dtype)

    @property
    def queue_depth(self) -> int:
        return self._active[1].pending

    # ------------------------------------------------------------------
    # Public scoring API
    # ------------------------------------------------------------------
    def submit(self, payload: Any, *,
               tenant: str | None = None) -> "Future[ScoreResult]":
        """Validate + encode ``payload`` and enqueue it for scoring.

        Raises :class:`RequestError` for malformed payloads, when the
        queue is full (429), when the tenant is throttled (429), or
        once shutdown has begun (503); otherwise returns a future
        resolving to the session's :class:`ScoreResult`.
        """
        raw = payload if isinstance(payload, RawSession) \
            else parse_session(payload)
        if self._limiter is not None:
            self._limiter.check(tenant)
        # Two attempts: a rolling reload may close the batcher we read
        # between encode and enqueue — re-read the flipped generation
        # (its vocabulary may differ, so re-encode too) and retry.
        for _ in range(2):
            runtime, batcher = self._active
            encoded = runtime.encode(raw)
            try:
                return batcher.submit(encoded)
            except QueueFullError as exc:
                raise RequestError("queue_full", str(exc),
                                   status=429) from None
            except RuntimeError:
                if self._closed:
                    break
        raise RequestError("shutting_down",
                           "engine is shutting down", status=503)

    def score(self, payload: Any, timeout: float | None = 30.0, *,
              tenant: str | None = None) -> ScoreResult:
        """Synchronous single-session scoring (submit + wait)."""
        return self.submit(payload, tenant=tenant).result(timeout=timeout)

    def score_many(self, payloads: Iterable[Any],
                   timeout: float | None = 30.0, *,
                   tenant: str | None = None) -> list[ScoreResult]:
        """Score several sessions, preserving order.

        All payloads are validated and enqueued before the first wait,
        so they can share micro-batches.
        """
        futures = [self.submit(p, tenant=tenant) for p in payloads]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reload_model(self, model: CLFD, generation: int | None = None) -> int:
        """Rolling reload: warm the new model, flip, drain the old.

        The next generation is fully constructed (and warmed, when
        ``config.warmup``) *before* any request is routed to it; the
        previous batcher then drains every already-enqueued request
        against the model that accepted it.  Returns the new generation.
        """
        with self._admin_lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            old_runtime, old_batcher = self._active
            gen = (int(generation) if generation is not None
                   else old_runtime.generation + 1)
            runtime = _ModelRuntime(model, gen)
            if self.config.warmup:
                self._score_batch(runtime, [_WARMUP])
            self._active = (runtime, self._make_batcher(runtime))
        old_batcher.close(timeout=self.config.drain_timeout_s)
        return gen

    def reload(self, path: str | os.PathLike,
               generation: int | None = None) -> int:
        """Rolling reload from a persisted archive path (at the
        engine's configured precision, so a reload can never silently
        change the numeric path)."""
        from ..core.persistence import load_clfd

        return self.reload_model(
            load_clfd(path, precision=self.config.precision), generation)

    def close(self) -> None:
        """Drain and stop: every in-flight future resolves first."""
        with self._admin_lock:
            if self._closed:
                return
            self._closed = True
            _, batcher = self._active
        batcher.close(timeout=self.config.drain_timeout_s)

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {"status": "ok", "queue_depth": self.queue_depth,
                "generation": self.generation}

    def metrics_snapshot(self) -> dict:
        """The JSON ``/v1/metrics`` view for this engine."""
        snap = self.metrics.snapshot(self.profiler.regions)
        snap["generation"] = self.generation
        snap["queue_depth"] = self.queue_depth
        snap["precision"] = self.precision
        if self._limiter is not None:
            snap["rate_limiter"] = self._limiter.snapshot()
        return snap

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition for this engine."""
        return self.metrics.render_prometheus(
            self.profiler.regions,
            gauges={"generation": self.generation,
                    "queue_depth": self.queue_depth},
            precision=self.precision)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _score_batch(self, runtime: _ModelRuntime,
                     items: list[_Encoded]) -> list[ScoreResult]:
        """One padded forward pass for a coalesced micro-batch.

        The batch is padded to exactly ``config.max_batch`` rows with
        throwaway pad sessions before the forward pass.  BLAS picks
        different GEMM kernels for different row counts, and the
        summation orders differ, so the *same* session scores
        ULP-differently at batch sizes 1, 2–3 and 4+ — a session's
        score would otherwise depend on how many requests happened to
        coalesce with it.  Fixing the row count makes every score a
        function of the session alone, which is what keeps
        differently-coalesced engines (cluster shards vs a single
        process) bit-identical.
        """
        rows = items + [_WARMUP] * (self.config.max_batch - len(items))
        dataset = SessionDataset(
            [Session(activities=list(item.ids), label=0,
                     session_id=item.session_id) for item in rows],
            runtime.dataset_vocab, name="serve-batch",
        )
        with self.profiler.timer("batch_forward"):
            if self.config.include_embeddings:
                labels, scores, embeddings = runtime.model.predict(
                    dataset, return_embeddings=True)
            else:
                labels, scores = runtime.model.predict(dataset)
                embeddings = None
        results = []
        for row, item in enumerate(items):
            score = float(scores[row])
            warnings: tuple[str, ...] = ()
            if not np.isfinite(score):
                # Don't let a numerically-broken model masquerade as a
                # confident verdict: flag the session so clients can
                # route it to review instead of trusting label/score.
                warnings = ("score is not finite; the model produced a "
                            "non-finite probability for this session",)
            results.append(ScoreResult(
                session_id=item.session_id,
                label=int(labels[row]),
                score=score,
                probs=(1.0 - score, score),
                oov_count=item.oov_count,
                embedding=(tuple(np.asarray(embeddings[row], dtype=float))
                           if embeddings is not None else None),
                warnings=warnings,
                generation=runtime.generation,
                worker=self.worker_id,
            ))
        return results
