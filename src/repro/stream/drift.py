"""Concept-drift detection over per-window streaming statistics.

:class:`DriftMonitor` watches three signals per emitted window, each a
cheap scalar/vector summary of what the serving tier already computes:

* the **score distribution** — fraud probabilities of the window's
  sessions, compared against a frozen reference window with a
  two-sample Kolmogorov–Smirnov statistic *and* a two-sided
  Page–Hinkley (cumulative-sum) test on the window means;
* the **embedding centroid** — mean embedding of the window's sessions,
  as relative distance from the reference centroid (covers drift that
  moves representations without moving calibrated scores);
* the **novel-token rate** — per-window ``oov_rate`` from the serving
  layer's OOV counts (covers lexical drift: activities the frozen
  vocabulary has never seen);
* the **annotation prevalence** — the window's noisy-positive rate as
  a binomial z-deviation from the reference rate.  This is the only
  signal that can see *label-noise-rate* drift: flipping more labels
  changes nothing about the sessions the model scores, but it directly
  moves the observed positive rate.

The first ``reference_windows`` windows freeze the reference; after
that each window yields a :class:`DriftReading` whose ``drift_score``
is the worst statistic normalised by its threshold (``>= 1`` ⇒ alarm).
Page–Hinkley keeps per-direction cumulative sums so slow monotone
shifts accumulate; KS fires on distribution-shape changes a mean test
misses.  Everything is numpy + stdlib — no scipy — and the monitor
state round-trips through :meth:`state_dict` as JSON, so a resumed
stream reproduces the exact same alarm sequence.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["ks_statistic", "DriftReading", "DriftMonitor"]


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic, ``sup |F_a - F_b|``.

    Plain numpy (no scipy in the container): evaluate both empirical
    CDFs on the pooled sample via ``searchsorted``.
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        return 0.0
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


@dataclasses.dataclass(frozen=True)
class DriftReading:
    """Per-window drift verdict with the statistics behind it."""

    window: int
    n_sessions: int
    reference_frozen: bool
    ks: float
    ph: float
    centroid_dist: float
    oov_delta: float
    label_z: float
    drift_score: float
    alarm: bool
    trigger: str  # which statistic crossed, "" when no alarm

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class DriftMonitor:
    """Two-sided drift alarm against a frozen reference window.

    Parameters
    ----------
    reference_windows: number of initial windows pooled into the frozen
        reference (scores, centroid, oov rate).
    ks_threshold: alarm when the KS statistic vs the reference scores
        exceeds this.
    ph_delta / ph_threshold: Page–Hinkley slack and alarm level for the
        two-sided cumulative deviation of window means from the
        reference mean, in score units.
    centroid_threshold: alarm on relative centroid displacement
        ``|c_w - c_ref| / (|c_ref| + eps)``.
    oov_threshold: alarm on absolute increase of the window OOV rate
        over the reference OOV rate.
    label_z_threshold: alarm when the window noisy-positive rate
        deviates from the reference rate by this many binomial
        standard errors (two-sided).
    min_sessions: windows smaller than this are journaled but never
        alarm (KS on 3 sessions is noise).
    """

    def __init__(self, *, reference_windows: int = 3,
                 ks_threshold: float = 0.45,
                 ph_delta: float = 0.05, ph_threshold: float = 0.5,
                 centroid_threshold: float = 0.5,
                 oov_threshold: float = 0.10,
                 label_z_threshold: float = 3.0,
                 min_sessions: int = 8):
        if reference_windows < 1:
            raise ValueError("reference_windows must be >= 1")
        self.reference_windows = int(reference_windows)
        self.ks_threshold = float(ks_threshold)
        self.ph_delta = float(ph_delta)
        self.ph_threshold = float(ph_threshold)
        self.centroid_threshold = float(centroid_threshold)
        self.oov_threshold = float(oov_threshold)
        self.label_z_threshold = float(label_z_threshold)
        self.min_sessions = int(min_sessions)
        self._ref_scores: list[list[float]] = []
        self._ref_centroids: list[list[float]] = []
        self._ref_oov: list[float] = []
        self._ref_label: list[tuple[float, int]] = []
        self._frozen = False
        self._ref_score_arr: list[float] = []
        self._ref_mean = 0.0
        self._ref_centroid: list[float] | None = None
        self._ref_oov_rate = 0.0
        self._ref_label_rate = 0.0
        self._ph_pos = 0.0
        self._ph_neg = 0.0
        self._windows_observed = 0
        self._alarms = 0

    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """True once the reference window set is complete."""
        return self._frozen

    @property
    def alarms(self) -> int:
        return self._alarms

    @property
    def windows_observed(self) -> int:
        return self._windows_observed

    # ------------------------------------------------------------------
    def observe(self, window_index: int, scores: np.ndarray,
                embeddings: np.ndarray | None = None,
                oov_rate: float = 0.0,
                noisy_rate: float | None = None) -> DriftReading:
        """Fold one window's statistics in; returns the drift verdict.

        ``scores`` are the window's per-session fraud probabilities,
        ``embeddings`` an optional ``(n, d)`` matrix of session
        embeddings, ``oov_rate`` the fraction of out-of-vocabulary
        tokens among the window's tokens, and ``noisy_rate`` the
        fraction of sessions the stream annotated positive (None when
        the stream carries no labels).
        """
        scores = np.asarray(scores, dtype=np.float64).ravel()
        centroid = None
        if embeddings is not None and len(embeddings):
            centroid = np.asarray(embeddings,
                                  dtype=np.float64).mean(axis=0)
        self._windows_observed += 1

        if not self._frozen:
            self._ref_scores.append([float(s) for s in scores])
            if centroid is not None:
                self._ref_centroids.append([float(c) for c in centroid])
            self._ref_oov.append(float(oov_rate))
            if noisy_rate is not None:
                self._ref_label.append((float(noisy_rate),
                                        int(scores.size)))
            if len(self._ref_scores) >= self.reference_windows:
                self._freeze()
            return DriftReading(
                window=window_index, n_sessions=int(scores.size),
                reference_frozen=self._frozen, ks=0.0, ph=0.0,
                centroid_dist=0.0, oov_delta=0.0, label_z=0.0,
                drift_score=0.0, alarm=False, trigger="")

        ref = np.asarray(self._ref_score_arr, dtype=np.float64)
        ks = ks_statistic(ref, scores) if scores.size else 0.0

        if scores.size:
            deviation = float(scores.mean()) - self._ref_mean
            self._ph_pos = max(0.0,
                               self._ph_pos + deviation - self.ph_delta)
            self._ph_neg = max(0.0,
                               self._ph_neg - deviation - self.ph_delta)
        ph = max(self._ph_pos, self._ph_neg)

        centroid_dist = 0.0
        if centroid is not None and self._ref_centroid is not None:
            ref_c = np.asarray(self._ref_centroid, dtype=np.float64)
            centroid_dist = float(np.linalg.norm(centroid - ref_c)
                                  / (np.linalg.norm(ref_c) + 1e-12))

        oov_delta = max(0.0, float(oov_rate) - self._ref_oov_rate)

        label_z = 0.0
        if noisy_rate is not None and self._ref_label and scores.size:
            p = self._ref_label_rate
            se = np.sqrt(max(p * (1.0 - p), 1e-4) / scores.size)
            label_z = float(abs(float(noisy_rate) - p) / se)

        ratios = {
            "ks": ks / self.ks_threshold,
            "ph": ph / self.ph_threshold,
            "centroid": centroid_dist / self.centroid_threshold,
            "oov": oov_delta / self.oov_threshold,
            "label": label_z / self.label_z_threshold,
        }
        trigger = max(ratios, key=lambda k: ratios[k])
        drift_score = ratios[trigger]
        alarm = (drift_score >= 1.0
                 and scores.size >= self.min_sessions)
        if alarm:
            self._alarms += 1
        return DriftReading(
            window=window_index, n_sessions=int(scores.size),
            reference_frozen=True, ks=ks, ph=ph,
            centroid_dist=centroid_dist, oov_delta=oov_delta,
            label_z=label_z, drift_score=float(drift_score), alarm=alarm,
            trigger=trigger if alarm else "")

    def reset(self) -> None:
        """Re-arm after re-correction: next windows rebuild the reference.

        The model just changed, so the old score reference describes a
        model that no longer serves; keeping it would re-alarm forever.
        """
        self._ref_scores = []
        self._ref_centroids = []
        self._ref_oov = []
        self._ref_label = []
        self._frozen = False
        self._ref_score_arr = []
        self._ref_mean = 0.0
        self._ref_centroid = None
        self._ref_oov_rate = 0.0
        self._ref_label_rate = 0.0
        self._ph_pos = 0.0
        self._ph_neg = 0.0

    # ------------------------------------------------------------------
    def _freeze(self) -> None:
        pooled = [s for window in self._ref_scores for s in window]
        self._ref_score_arr = pooled
        self._ref_mean = float(np.mean(pooled)) if pooled else 0.0
        if self._ref_centroids:
            self._ref_centroid = [
                float(v) for v in np.mean(
                    np.asarray(self._ref_centroids, dtype=np.float64),
                    axis=0)]
        self._ref_oov_rate = (float(np.mean(self._ref_oov))
                              if self._ref_oov else 0.0)
        if self._ref_label:
            total = sum(n for _, n in self._ref_label)
            self._ref_label_rate = (
                sum(rate * n for rate, n in self._ref_label)
                / max(total, 1))
        self._frozen = True

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete JSON-serialisable snapshot of the monitor state."""
        return {
            "ref_scores": [list(w) for w in self._ref_scores],
            "ref_centroids": [list(c) for c in self._ref_centroids],
            "ref_oov": list(self._ref_oov),
            "ref_label": [list(pair) for pair in self._ref_label],
            "frozen": self._frozen,
            "ref_score_arr": list(self._ref_score_arr),
            "ref_mean": self._ref_mean,
            "ref_centroid": (None if self._ref_centroid is None
                             else list(self._ref_centroid)),
            "ref_oov_rate": self._ref_oov_rate,
            "ref_label_rate": self._ref_label_rate,
            "ph_pos": self._ph_pos,
            "ph_neg": self._ph_neg,
            "windows_observed": self._windows_observed,
            "alarms": self._alarms,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self._ref_scores = [list(w) for w in state["ref_scores"]]
        self._ref_centroids = [list(c) for c in state["ref_centroids"]]
        self._ref_oov = list(state["ref_oov"])
        self._ref_label = [(float(r), int(n))
                           for r, n in state["ref_label"]]
        self._frozen = bool(state["frozen"])
        self._ref_score_arr = list(state["ref_score_arr"])
        self._ref_mean = float(state["ref_mean"])
        ref_centroid = state["ref_centroid"]
        self._ref_centroid = (None if ref_centroid is None
                              else list(ref_centroid))
        self._ref_oov_rate = float(state["ref_oov_rate"])
        self._ref_label_rate = float(state["ref_label_rate"])
        self._ph_pos = float(state["ph_pos"])
        self._ph_neg = float(state["ph_neg"])
        self._windows_observed = int(state["windows_observed"])
        self._alarms = int(state["alarms"])
