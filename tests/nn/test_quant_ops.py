"""Quantized inference kernels: numerics, autograd surface, fuzz + lint.

The three primitives behind the low-precision serving path each have one
numerical definition in :mod:`repro.nn.quant` shared by the NumPy hot
path and the Tensor (autograd) form; these tests pin that equivalence,
the quantizers' determinism and error bounds, and the debug-tooling
coverage (fuzz registry + graph lint) the numerics-smoke CI relies on.
"""

import numpy as np
import pytest

from repro.nn.debug.fuzz import OP_REGISTRY, covered_graph_ops, fuzz_all
from repro.nn.debug.lint import lint_graph
from repro.nn.quant import (INT8_LEVELS, dequantize, dequantize_np,
                            fp16_embed, fp16_embed_np, quant_matmul,
                            quant_matmul_np, quantize_fp16_rows,
                            quantize_symmetric)
from repro.nn.tensor import Tensor

QUANT_OPS = ("quant_matmul", "dequantize", "fp16_embed")


# ----------------------------------------------------------------------
# Quantizers
# ----------------------------------------------------------------------
def test_quantize_symmetric_round_trip_error_bound():
    rng = np.random.default_rng(0)
    w = rng.normal(size=(64, 48))
    q, scales = quantize_symmetric(w)
    assert q.dtype == np.int8
    assert scales.dtype == np.float32
    assert scales.shape == (48,)
    assert np.abs(q).max() <= INT8_LEVELS
    # Symmetric rounding error is at most half a step per channel.
    err = np.abs(dequantize_np(q, scales, dtype=np.float64) - w)
    assert (err <= scales[None, :] * 0.5 + 1e-12).all()


def test_quantize_symmetric_zero_channel_gets_unit_scale():
    w = np.zeros((4, 3))
    w[:, 1] = [1.0, -2.0, 0.5, 0.0]
    q, scales = quantize_symmetric(w)
    assert scales[0] == 1.0 and scales[2] == 1.0
    assert (q[:, 0] == 0).all() and (q[:, 2] == 0).all()
    np.testing.assert_allclose(scales[1], 2.0 / INT8_LEVELS)


def test_quantize_symmetric_deterministic_across_source_dtypes():
    rng = np.random.default_rng(1)
    w64 = rng.normal(size=(16, 8))
    q64, s64 = quantize_symmetric(w64)
    q64b, s64b = quantize_symmetric(w64.copy())
    np.testing.assert_array_equal(q64, q64b)
    np.testing.assert_array_equal(s64, s64b)


def test_quantize_symmetric_rejects_non_matrix():
    with pytest.raises(ValueError):
        quantize_symmetric(np.zeros(5))


def test_quantize_fp16_rows_round_trip():
    rng = np.random.default_rng(2)
    # Rows spanning wildly different dynamic ranges.
    table = rng.normal(size=(10, 6)) * (10.0 ** rng.integers(-3, 4, 10))[:, None]
    packed, scales = quantize_fp16_rows(table)
    assert packed.dtype == np.float16
    assert scales.dtype == np.float32
    # Row-wise scaling keeps relative error at float16 resolution even
    # for large-magnitude rows.
    restored = fp16_embed_np(np.arange(10), packed, scales, dtype=np.float64)
    np.testing.assert_allclose(restored, table, rtol=1e-3, atol=0)


def test_quantize_fp16_rows_zero_row_unit_scale():
    table = np.zeros((3, 4))
    table[1] = [1.0, -1.0, 0.5, 0.25]
    packed, scales = quantize_fp16_rows(table)
    assert scales[0] == 1.0 and scales[2] == 1.0
    assert (packed[0] == 0).all()


def test_quantize_fp16_rows_rejects_non_matrix():
    with pytest.raises(ValueError):
        quantize_fp16_rows(np.zeros(4))


# ----------------------------------------------------------------------
# NumPy kernels
# ----------------------------------------------------------------------
def test_quant_matmul_np_matches_reference_and_dtype():
    rng = np.random.default_rng(3)
    w = rng.normal(size=(8, 5))
    q, s = quantize_symmetric(w)
    x = rng.normal(size=(4, 8)).astype(np.float32)
    bias = rng.normal(size=5).astype(np.float32)
    out = quant_matmul_np(x, q, s, bias)
    assert out.dtype == np.float32
    expected = (x @ q.astype(np.float32)) * s.astype(np.float32) + bias
    np.testing.assert_array_equal(out, expected)
    # And it approximates the float GEMM within the quantization error.
    np.testing.assert_allclose(out, x @ w.astype(np.float32) + bias,
                               atol=float(np.abs(x).sum(axis=1).max()
                                          * s.max()))


def test_fp16_embed_np_lookup():
    rng = np.random.default_rng(4)
    table, scales = quantize_fp16_rows(rng.normal(size=(7, 3)))
    ids = np.array([[0, 3, 3], [6, 1, 0]])
    out = fp16_embed_np(ids, table, scales)
    assert out.shape == (2, 3, 3)
    assert out.dtype == np.float32
    np.testing.assert_array_equal(
        out[0, 1], table[3].astype(np.float32) * scales[3])


# ----------------------------------------------------------------------
# Tensor (autograd) forms
# ----------------------------------------------------------------------
def test_tensor_forms_match_np_kernels_bitwise():
    rng = np.random.default_rng(5)
    w = rng.normal(size=(6, 4))
    q, s = quantize_symmetric(w)
    x = rng.normal(size=(3, 6)).astype(np.float32)
    bias = rng.normal(size=4).astype(np.float32)
    out = quant_matmul(Tensor(x), q, s, bias)
    np.testing.assert_array_equal(out.data, quant_matmul_np(x, q, s, bias))
    np.testing.assert_array_equal(dequantize(q, s).data,
                                  dequantize_np(q, s))
    table, ts = quantize_fp16_rows(rng.normal(size=(5, 4)))
    ids = np.array([1, 1, 4])
    np.testing.assert_array_equal(fp16_embed(ids, table, ts).data,
                                  fp16_embed_np(ids, table, ts))


def test_tensor_forms_reject_wrong_payload_dtypes():
    x = Tensor(np.ones((2, 3), dtype=np.float32))
    with pytest.raises(TypeError):
        quant_matmul(x, np.ones((3, 2), dtype=np.float32), np.ones(2))
    with pytest.raises(TypeError):
        dequantize(np.ones((3, 2)), np.ones(2))
    with pytest.raises(TypeError):
        fp16_embed(np.array([0]), np.ones((2, 2), dtype=np.float32),
                   np.ones(2))


def test_quant_matmul_gradients_flow_to_float_leaves():
    rng = np.random.default_rng(6)
    q, s = quantize_symmetric(rng.normal(size=(4, 3)))
    x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
    scales = Tensor(np.asarray(s, dtype=np.float64), requires_grad=True)
    bias = Tensor(rng.normal(size=3), requires_grad=True)
    out = quant_matmul(x, q, scales, bias)
    out.sum().backward()
    qf = q.astype(np.float64)
    np.testing.assert_allclose(x.grad, np.ones((2, 3)) * s @ qf.T)
    np.testing.assert_allclose(scales.grad, (x.data @ qf).sum(axis=0))
    np.testing.assert_allclose(bias.grad, np.full(3, 2.0))


def test_fp16_embed_gradient_scatters_over_duplicate_ids():
    rng = np.random.default_rng(7)
    table, s = quantize_fp16_rows(rng.normal(size=(5, 3)))
    scales = Tensor(np.asarray(s, dtype=np.float64), requires_grad=True)
    ids = np.array([2, 2, 0])
    out = fp16_embed(ids, table, scales)
    out.sum().backward()
    rows = table.astype(np.float64)
    expected = np.zeros(5)
    expected[2] = 2.0 * rows[2].sum()
    expected[0] = rows[0].sum()
    np.testing.assert_allclose(scales.grad, expected)


# ----------------------------------------------------------------------
# Debug-tooling coverage (fuzz registry + graph lint)
# ----------------------------------------------------------------------
def test_quant_ops_are_registered_for_fuzzing():
    for name in QUANT_OPS:
        assert name in OP_REGISTRY
        assert name in OP_REGISTRY[name].covers
    assert set(QUANT_OPS) <= covered_graph_ops()


def test_fuzz_sweep_passes_for_quant_ops():
    report = fuzz_all(seed=0, ops=list(QUANT_OPS))
    assert report.ok, report.summary()
    assert report.trials > 0


def test_lint_accepts_quant_graph():
    """A graph built from the quantized ops must pass the unfuzzed-op
    check — the guarantee that numerics-smoke CI covers them."""
    rng = np.random.default_rng(8)
    q, s = quantize_symmetric(rng.normal(size=(4, 3)))
    x = Tensor(rng.normal(size=(2, 4)).astype(np.float32),
               requires_grad=True)
    table, ts = quantize_fp16_rows(rng.normal(size=(5, 4)))
    total = (quant_matmul(x, q, s.astype(np.float32)).sum()
             + dequantize(q, s).sum()
             + fp16_embed(np.array([0, 1, 1]), table, ts).sum())
    issues = lint_graph(total, parameters=[x])
    assert [i for i in issues if i.check == "unfuzzed-op"] == []
