"""Incremental session assembly: events -> closed sessions -> windows.

:class:`SessionWindower` turns an ordered event stream into
:class:`Window`\\ s of closed :class:`StreamSession`\\ s:

* events of one entity accumulate into an *open* session;
* a session **closes** when its entity goes silent for ``session_gap``
  time units (close time = last event + gap), or immediately when it
  reaches ``max_session_len`` events;
* closed sessions land in tumbling windows of ``window_size`` time
  units keyed by *close* time (pass ``slide`` for overlapping sliding
  windows); a window is **emitted** once the stream watermark passes
  its end, at which point no still-open session can close into it.

Determinism contract: the emitted windows are a pure function of the
event sequence.  Sessions inside a window are ordered by
``(close_time, entity)`` — no dict-iteration or arrival-jitter order —
and :meth:`state_dict` / :meth:`load_state_dict` capture the complete
windower state as a JSON-serialisable dict, so replaying a log from a
mid-stream checkpoint produces bit-identical windows to a replay from
offset 0 (asserted by ``tests/stream/test_window.py``).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable

from .events import Event

__all__ = ["StreamSession", "Window", "SessionWindower"]


@dataclasses.dataclass(frozen=True)
class StreamSession:
    """One closed session: what the windower hands to scoring.

    ``activities`` are the raw event activities (tokens or ids) in
    arrival order; encoding against a model vocabulary happens
    downstream.  ``label`` is ground truth (evaluation only),
    ``noisy_label`` the stream annotation re-correction trains on.
    """

    session_id: str
    entity: str
    activities: tuple
    noisy_label: int
    label: int
    first_time: float
    last_time: float
    close_time: float
    start_offset: int
    end_offset: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamSession":
        payload = dict(payload)
        payload["activities"] = tuple(payload["activities"])
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class Window:
    """One emitted window: ``sessions`` closed in ``[start, end)``."""

    index: int
    start: float
    end: float
    sessions: tuple[StreamSession, ...]

    def __len__(self) -> int:
        return len(self.sessions)


class SessionWindower:
    """Gap-closed sessions over tumbling (or sliding) windows.

    Parameters
    ----------
    window_size: window length in stream time units.
    session_gap: silence after which an entity's open session closes.
    slide: window stride; defaults to ``window_size`` (tumbling).  A
        smaller stride yields overlapping windows — one closed session
        then belongs to every window covering its close time.
    max_session_len: hard cap on events per session; a session hitting
        it closes immediately (close time = its last event time).
    """

    def __init__(self, window_size: float, session_gap: float,
                 slide: float | None = None,
                 max_session_len: int | None = None):
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if session_gap <= 0:
            raise ValueError("session_gap must be positive")
        slide = window_size if slide is None else slide
        if not 0 < slide <= window_size:
            raise ValueError("slide must be in (0, window_size]")
        if max_session_len is not None and max_session_len < 1:
            raise ValueError("max_session_len must be >= 1")
        self.window_size = float(window_size)
        self.session_gap = float(session_gap)
        self.slide = float(slide)
        self.max_session_len = max_session_len
        # Mutable stream state — everything below is captured by
        # state_dict() and must stay JSON-serialisable.
        self._open: dict[str, dict] = {}
        self._pending: dict[int, list[dict]] = {}
        self._session_counts: dict[str, int] = {}
        self._watermark = -math.inf
        self._next_emit = 0
        self._events_seen = 0

    # ------------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """Largest event time processed so far."""
        return self._watermark

    @property
    def open_sessions(self) -> int:
        return len(self._open)

    @property
    def events_seen(self) -> int:
        return self._events_seen

    # ------------------------------------------------------------------
    def process(self, event: Event) -> list[Window]:
        """Consume one event; returns any windows it finalised."""
        t = float(event.time)
        if t < self._watermark:
            raise ValueError(
                f"events must be time-ordered: got t={t} after "
                f"watermark {self._watermark}")
        self._watermark = t
        self._close_due(t)
        windows = self._emit_ready(t)

        state = self._open.get(event.entity)
        if state is None:
            count = self._session_counts.get(event.entity, 0)
            self._session_counts[event.entity] = count + 1
            state = {
                "session_id": f"{event.entity}/{count}",
                "entity": event.entity,
                "activities": [],
                "noisy_label": int(event.noisy_label),
                "label": int(event.label),
                "first_time": t,
                "last_time": t,
                "start_offset": int(event.offset),
                "end_offset": int(event.offset),
            }
            self._open[event.entity] = state
        state["activities"].append(event.activity)
        state["last_time"] = t
        state["end_offset"] = int(event.offset)
        self._events_seen += 1
        if (self.max_session_len is not None
                and len(state["activities"]) >= self.max_session_len):
            del self._open[event.entity]
            self._bucket(state, close_time=t)
        return windows

    def flush(self) -> list[Window]:
        """End of stream: close every open session, emit every window."""
        close_at = self._watermark + self.session_gap
        for entity in sorted(self._open):
            self._bucket(self._open.pop(entity), close_time=close_at)
        windows = []
        for index in sorted(self._pending):
            if index >= self._next_emit:
                windows.append(self._build_window(index))
        for window in windows:
            self._pending.pop(window.index, None)
        if windows:
            self._next_emit = windows[-1].index + 1
        return windows

    def run(self, events: Iterable[Event]) -> Iterable[Window]:
        """Generator: stream events through, yielding windows in order."""
        for event in events:
            yield from self.process(event)
        yield from self.flush()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _close_due(self, t: float) -> None:
        """Close every session silent for >= gap at watermark ``t``."""
        due = [entity for entity, state in self._open.items()
               if state["last_time"] + self.session_gap <= t]
        for entity in due:
            state = self._open.pop(entity)
            self._bucket(state,
                         close_time=state["last_time"] + self.session_gap)

    def _bucket(self, state: dict, close_time: float) -> None:
        """Assign a closed session to every window covering its close."""
        session = dict(state)
        session["close_time"] = float(close_time)
        session["activities"] = list(session["activities"])
        k_max = math.floor(close_time / self.slide)
        k_min = math.floor((close_time - self.window_size)
                           / self.slide) + 1
        for index in range(max(k_min, 0), k_max + 1):
            start = index * self.slide
            if start <= close_time < start + self.window_size:
                self._pending.setdefault(index, []).append(session)

    def _emit_ready(self, t: float) -> list[Window]:
        """Emit every window whose end the watermark has passed."""
        windows = []
        while self._next_emit * self.slide + self.window_size <= t:
            windows.append(self._build_window(self._next_emit))
            self._pending.pop(self._next_emit, None)
            self._next_emit += 1
        return windows

    def _build_window(self, index: int) -> Window:
        sessions = self._pending.get(index, [])
        sessions = sorted(sessions,
                          key=lambda s: (s["close_time"], s["entity"],
                                         s["session_id"]))
        start = index * self.slide
        return Window(
            index=index, start=start, end=start + self.window_size,
            sessions=tuple(StreamSession.from_dict(s) for s in sessions),
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete JSON-serialisable snapshot of the stream state."""
        return {
            "open": [dict(state, activities=list(state["activities"]))
                     for state in self._open.values()],
            "pending": {str(index): [dict(s) for s in sessions]
                        for index, sessions in self._pending.items()},
            "session_counts": dict(self._session_counts),
            "watermark": (None if math.isinf(self._watermark)
                          else self._watermark),
            "next_emit": self._next_emit,
            "events_seen": self._events_seen,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self._open = {entry["entity"]: dict(entry,
                                            activities=list(
                                                entry["activities"]))
                      for entry in state["open"]}
        self._pending = {int(index): [dict(s) for s in sessions]
                         for index, sessions in state["pending"].items()}
        self._session_counts = {str(k): int(v) for k, v in
                                state["session_counts"].items()}
        watermark = state["watermark"]
        self._watermark = -math.inf if watermark is None else float(watermark)
        self._next_emit = int(state["next_emit"])
        self._events_seen = int(state["events_seen"])
