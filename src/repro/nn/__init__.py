"""NumPy neural-network substrate: autograd tensors, layers, optimizers.

This subpackage replaces PyTorch for the CLFD reproduction.  It provides
everything the paper's models need: a reverse-mode autograd
:class:`~repro.nn.tensor.Tensor`, LSTM and transformer encoders, linear /
embedding / normalisation layers, and the Adam optimizer.
"""

from .attention import (
    MultiHeadAttention,
    TransformerEncoder,
    TransformerEncoderLayer,
    sinusoidal_positions,
)
from .gradcheck import GradcheckFailure, check_gradients, numeric_gradient
from .functional import (
    cosine_similarity_matrix,
    cross_entropy,
    l2_normalize,
    log_softmax,
    nll_loss,
    one_hot,
    softmax,
)
from .layers import (
    GELU,
    Dropout,
    Embedding,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .bilstm import AttentionPooling, BiLSTM
from .fused import (
    fused_gru_sequence,
    fused_gru_step,
    fused_gru_step_preproj,
    fused_lstm_sequence,
    fused_lstm_step,
    fused_lstm_step_preproj,
)
from .gru import GRU, GRUCell
from .lstm import LSTM, LSTMCell
from .module import LoadReport, Module, Parameter
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .profiler import OpStats, Profiler, profile
from .schedulers import (
    CosineAnnealingLR,
    EarlyStopping,
    LinearDecayLR,
    LRScheduler,
    StepLR,
)
from .serialize import load_module, save_module
from .tensor import (
    Tensor,
    as_tensor,
    chunk,
    concat,
    default_dtype,
    detached,
    get_default_dtype,
    is_grad_enabled,
    maximum,
    minimum,
    no_grad,
    set_default_dtype,
    split,
    stack,
    where,
)
from .compile import CompiledStep, StepProgram, TraceError, compile_step

# Imported last: debug pulls in losses/augment lazily and leans on the
# modules above, so it must not participate in the import cycle.
from . import debug
from .debug import AnomalyError, detect_anomaly, is_anomaly_enabled

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "split", "chunk", "where",
    "maximum", "minimum", "detached", "no_grad", "is_grad_enabled",
    "set_default_dtype", "get_default_dtype", "default_dtype",
    "StepProgram", "CompiledStep", "compile_step", "TraceError",
    "fused_lstm_step", "fused_lstm_step_preproj", "fused_lstm_sequence",
    "fused_gru_step", "fused_gru_step_preproj", "fused_gru_sequence",
    "Profiler", "OpStats", "profile",
    "Module", "Parameter", "LoadReport",
    "Linear", "Embedding", "LayerNorm", "Dropout", "Sequential",
    "ReLU", "LeakyReLU", "Tanh", "GELU", "Sigmoid",
    "LSTM", "LSTMCell", "GRU", "GRUCell", "BiLSTM", "AttentionPooling",
    "LRScheduler", "StepLR", "CosineAnnealingLR", "LinearDecayLR",
    "EarlyStopping",
    "MultiHeadAttention", "TransformerEncoder", "TransformerEncoderLayer",
    "sinusoidal_positions",
    "softmax", "log_softmax", "cross_entropy", "nll_loss", "one_hot",
    "l2_normalize", "cosine_similarity_matrix",
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    "save_module", "load_module",
    "check_gradients", "numeric_gradient", "GradcheckFailure",
    "debug", "detect_anomaly", "AnomalyError", "is_anomaly_enabled",
]
