"""Save and load trained CLFD models.

A fitted :class:`~repro.core.CLFD` bundles four learned artifacts — the
word2vec embedding matrix, the corrector's encoder + head, and the
detector's encoder + head (plus its class centroids) — along with the
configuration needed to rebuild the module graph.  Everything is packed
into a single ``.npz`` archive so a trained detector can be shipped to
an inference service (see :mod:`repro.serve`) without the training data.

Format notes
------------
* Version 2 adds the activity vocabulary (token strings in id order) so
  a serving process can encode raw activity tokens; version-1 archives
  still load, with ``vectorizer.vocab`` left as ``None``.
* Version 3 is the **quantized** inference-only format written by
  :func:`repro.quant.quantize_archive`: int8/float16 payloads with
  float32 scale companions and a ``meta["quant"]`` kind table.
  :func:`build_clfd` (and therefore :func:`load_clfd` and the serving
  cluster) transparently builds the low-precision runtime
  (:class:`repro.quant.QuantizedCLFD`) for such archives; v1/v2
  archives keep building the full CLFD.  ``load_clfd(path,
  precision=...)`` quantizes a full-precision archive on the fly.
* :func:`save_clfd` is atomic — the archive is written to a temp file in
  the target directory and renamed into place — and always writes a
  ``.npz`` suffix (``np.savez`` appends one silently, which used to
  break the ``save_clfd(m, "model")`` / ``load_clfd("model")``
  round-trip).  Both functions resolve suffix-less paths the same way;
  ``save_clfd`` returns the path actually written.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib

import numpy as np

from ..data.pipeline import SessionVectorizer
from ..data.vocab import Vocabulary
from ..data.word2vec import SkipGramModel, Word2VecConfig
from ..nn.serialize import save_arrays
from .clfd import CLFD
from .config import CLFDConfig
from .fraud_detector import FraudDetector
from .label_corrector import LabelCorrector

__all__ = ["save_clfd", "load_clfd", "model_fingerprint", "read_archive",
           "build_clfd"]

_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2, 3)


def _flatten_state(prefix: str, state: dict[str, np.ndarray],
                   out: dict[str, np.ndarray]) -> None:
    for key, value in state.items():
        out[f"{prefix}/{key}"] = value


def _extract_state(prefix: str,
                   archive: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    cut = len(prefix) + 1
    return {key[cut:]: archive[key] for key in archive
            if key.startswith(prefix + "/")}


def _normalize_path(path: str | os.PathLike) -> pathlib.Path:
    """Append ``.npz`` unless the path already carries the suffix."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_clfd(model: CLFD, path: str | os.PathLike) -> pathlib.Path:
    """Serialise a fitted CLFD model; returns the ``.npz`` path written."""
    if model.vectorizer is None:
        raise ValueError("cannot save an unfitted CLFD model")
    payload: dict[str, np.ndarray] = {}

    config_dict = dataclasses.asdict(model.config)
    config_dict["word2vec"] = dataclasses.asdict(model.config.word2vec)
    vocab = model.vectorizer.vocab
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": config_dict,
        "max_len": model.vectorizer.max_len,
        "has_corrector": model.label_corrector is not None,
        "has_detector": model.fraud_detector is not None,
        # Token strings in id order (including the pad token) so the
        # serving layer can encode raw sessions; None when the
        # vectorizer was built without a vocabulary.
        "vocab": vocab.tokens() if vocab is not None else None,
    }
    payload["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    payload["word2vec/vectors"] = model.vectorizer.model.vectors

    if model.label_corrector is not None:
        _flatten_state("corrector/encoder",
                       model.label_corrector.encoder.state_dict(), payload)
        _flatten_state("corrector/classifier",
                       model.label_corrector.classifier.state_dict(), payload)
    if model.fraud_detector is not None:
        _flatten_state("detector/encoder",
                       model.fraud_detector.encoder.state_dict(), payload)
        _flatten_state("detector/classifier",
                       model.fraud_detector.classifier.state_dict(), payload)
        if model.fraud_detector.centroids is not None:
            payload["detector/centroids"] = model.fraud_detector.centroids

    # Atomic + deterministic: save_arrays writes to a temp file and
    # renames, with pinned zip metadata so identical models produce
    # bit-identical archive bytes.
    return save_arrays(_normalize_path(path), payload)


def model_fingerprint(model: CLFD) -> str:
    """SHA-256 over every learned array of a fitted model.

    Bit-identical parameters — the resumable-training acceptance
    criterion — reduce to equal fingerprints, which the CI resume-smoke
    job and the kill-and-resume tests diff as plain strings.
    """
    import hashlib

    if model.vectorizer is None:
        raise ValueError("cannot fingerprint an unfitted CLFD model")
    arrays: dict[str, np.ndarray] = {
        "word2vec/vectors": model.vectorizer.model.vectors,
    }
    corrector = getattr(model, "label_corrector", None) or getattr(
        model, "corrector", None)
    if corrector is not None:
        parts = getattr(corrector, "correctors", [corrector])
        for i, part in enumerate(parts):
            _flatten_state(f"corrector{i}/encoder",
                           part.encoder.state_dict(), arrays)
            _flatten_state(f"corrector{i}/classifier",
                           part.classifier.state_dict(), arrays)
    if model.fraud_detector is not None:
        _flatten_state("detector/encoder",
                       model.fraud_detector.encoder.state_dict(), arrays)
        _flatten_state("detector/classifier",
                       model.fraud_detector.classifier.state_dict(), arrays)
        if model.fraud_detector.centroids is not None:
            arrays["detector/centroids"] = model.fraud_detector.centroids
    digest = hashlib.sha256()
    for key in sorted(arrays):
        value = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def read_archive(
        path: str | os.PathLike) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a CLFD archive into ``(meta, arrays)`` without building it.

    ``meta`` is the decoded JSON header, ``arrays`` every learned array
    keyed as written by :func:`save_clfd` (the raw ``meta`` bytes are
    excluded).  This is the half of :func:`load_clfd` the serving
    cluster runs exactly once per archive — the arrays are then
    published into shared memory and every worker builds its model from
    views via :func:`build_clfd`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        path = _normalize_path(path)
    with np.load(path) as archive:
        data = {key: archive[key] for key in archive.files}
    meta = json.loads(bytes(data.pop("meta")).decode("utf-8"))
    if meta["format_version"] not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported CLFD archive version {meta['format_version']}"
        )
    return meta, data


def build_clfd(meta: dict, arrays: dict[str, np.ndarray], *,
               bind: bool = False):
    """Assemble a ready-to-predict model from ``read_archive`` output.

    Full-precision (v1/v2) archives build a :class:`CLFD`; quantized
    (v3) archives build the low-precision inference runtime
    (:class:`repro.quant.QuantizedCLFD`) — both speak the inference
    surface the serving tier consumes.

    With ``bind=True`` the model's parameters (and the embedding matrix
    and centroids) *are* the provided arrays rather than copies — the
    zero-copy path used by cluster workers whose arrays are read-only
    shared-memory views.  Callers passing ``bind=True`` must keep the
    arrays' backing memory alive for the model's lifetime.
    """
    if meta.get("quant") is not None:
        from ..quant.runtime import build_quantized

        return build_quantized(meta, arrays, bind=bind)
    config_dict = dict(meta["config"])
    config_dict["word2vec"] = Word2VecConfig(**config_dict["word2vec"])
    config = CLFDConfig(**config_dict)

    model = CLFD(config)
    vectors = arrays["word2vec/vectors"]
    if not bind:
        vectors = vectors.copy()
    tokens = meta.get("vocab")
    vocab = Vocabulary(tokens[1:]) if tokens else None
    model.vectorizer = SessionVectorizer(SkipGramModel(vectors),
                                         max_len=int(meta["max_len"]),
                                         vocab=vocab)

    # Module construction consumes RNG draws; the exact seed is
    # irrelevant because every parameter is overwritten from the archive.
    rng = np.random.default_rng(0)
    copy = not bind
    if meta["has_corrector"]:
        corrector = LabelCorrector(config, model.vectorizer, rng)
        corrector.encoder.load_state_dict(
            _extract_state("corrector/encoder", arrays), copy=copy)
        corrector.classifier.load_state_dict(
            _extract_state("corrector/classifier", arrays), copy=copy)
        corrector._fitted = True
        model.label_corrector = corrector
    if meta["has_detector"]:
        detector = FraudDetector(config, model.vectorizer, rng)
        detector.encoder.load_state_dict(
            _extract_state("detector/encoder", arrays), copy=copy)
        detector.classifier.load_state_dict(
            _extract_state("detector/classifier", arrays), copy=copy)
        if "detector/centroids" in arrays:
            centroids = arrays["detector/centroids"]
            detector.centroids = centroids if bind else centroids.copy()
        detector._fitted = True
        model.fraud_detector = detector
    model._fitted = True
    return model


def load_clfd(path: str | os.PathLike, *, precision: str | None = None):
    """Restore a model saved by :func:`save_clfd` (any readable version).

    Accepts the same suffix-less paths as :func:`save_clfd`.  The
    returned model is ready for ``predict``; training state (corrected
    labels, loss histories) is not persisted.

    ``precision`` (``"int8"`` / ``"float16"`` / ``"float32"``)
    quantizes a full-precision archive on the fly and returns the
    low-precision runtime — the path ``ServeConfig(precision=...)``
    rides through.  ``None`` serves the archive as persisted (quantized
    v3 archives come back quantized either way).
    """
    meta, arrays = read_archive(path)
    if precision is not None:
        from ..quant.quantize import apply_precision

        meta, arrays = apply_precision(meta, arrays, precision)
    return build_clfd(meta, arrays)
