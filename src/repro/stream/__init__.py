"""repro.stream — streaming ingestion, drift detection, re-correction.

The online tier over the batch pipeline: an append-only
:class:`EventLog` feeds the :class:`SessionWindower` (incremental
session assembly, tumbling/sliding windows keyed by session close),
closed windows are scored through the serving engine, the
:class:`DriftMonitor` raises a two-sided alarm against a frozen
reference window, and :func:`recorrect_model` refreshes the label
corrector + detector head on recent windows for a rolling hot swap.
:class:`StreamProcessor` composes the whole loop with atomic
checkpoints and bit-identical kill-and-resume replay.  See DESIGN.md
§15.
"""

from .drift import DriftMonitor, DriftReading, ks_statistic
from .events import (DRIFT_MODES, NOVEL_ARCHETYPES, Event, EventLog,
                     synthesize_drifting_events, write_events)
from .processor import StreamConfig, StreamProcessor, compare_with_frozen
from .recorrect import RecorrectResult, build_recent_dataset, recorrect_model
from .window import SessionWindower, StreamSession, Window

__all__ = [
    "Event", "EventLog", "synthesize_drifting_events", "write_events",
    "NOVEL_ARCHETYPES", "DRIFT_MODES",
    "SessionWindower", "StreamSession", "Window",
    "DriftMonitor", "DriftReading", "ks_statistic",
    "RecorrectResult", "build_recent_dataset", "recorrect_model",
    "StreamConfig", "StreamProcessor", "compare_with_frozen",
]
