"""Few-Shot insider threat detection baseline (Yuan et al. [2]).

The original uses a BERT sentence encoder with a classification head,
trained on the few labelled malicious sessions.  Following the paper's
adaptation rules (§IV-A3) and the PyTorch→NumPy substitution, the BERT
encoder is a compact transformer built on :mod:`repro.nn`.  The model is
*not* noise-aware: it trains with plain cross-entropy on the noisy
labels, which is exactly why it degrades at high noise rates in
Tables I/II.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.sessions import SessionDataset, iter_batches
from ..train import TrainRun
from .base import BaselineConfig, BaselineModel

__all__ = ["FewShotModel"]


class FewShotModel(BaselineModel):
    """Transformer (BERT-style) session classifier on noisy labels."""

    name = "Few-Shot"

    def __init__(self, config: BaselineConfig | None = None,
                 num_heads: int = 4, num_layers: int = 2):
        super().__init__(config)
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.encoder: nn.TransformerEncoder | None = None
        self.head = None

    def _fit(self, train: SessionDataset, rng: np.random.Generator,
             run: TrainRun) -> None:
        # Multi-stage loop; only the word2vec phase checkpoints here.
        del run
        config = self.config
        self.encoder = nn.TransformerEncoder(
            dim=config.embedding_dim, num_heads=self.num_heads,
            ff_dim=2 * config.embedding_dim, num_layers=self.num_layers,
            rng=rng, max_len=max(self.vectorizer.max_len, 8),
        )
        from ..core.encoder import SoftmaxClassifier

        self.head = SoftmaxClassifier(config.embedding_dim, rng)
        params = self.encoder.parameters() + self.head.parameters()
        optimizer = nn.Adam(params, lr=config.lr)
        labels = train.noisy_labels()
        for _ in range(config.epochs):
            for batch in iter_batches(train, config.batch_size, rng):
                if batch.size < 2:
                    continue
                x, lengths = self.vectorizer.transform(train, indices=batch)
                pooled = self.encoder.mean_pool(nn.Tensor(x), lengths)
                loss = nn.cross_entropy(self.head(pooled), labels[batch])
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, config.grad_clip)
                optimizer.step()

    def _predict(self, dataset: SessionDataset) -> tuple[np.ndarray, np.ndarray]:
        probs = self._predict_proba(dataset)
        return probs.argmax(axis=1), probs[:, 1]

    def _predict_proba(self, dataset: SessionDataset) -> np.ndarray:
        all_probs = []
        for batch in iter_batches(dataset, 256):
            x, lengths = self.vectorizer.transform(dataset, indices=batch)
            with nn.no_grad():
                pooled = self.encoder.mean_pool(nn.Tensor(x), lengths)
                all_probs.append(self.head.probs(pooled).data)
        return np.concatenate(all_probs, axis=0)
