"""Property-based tests of autograd algebraic identities.

Beyond finite-difference checks, the gradients of a correct autograd
engine satisfy exact algebraic identities (linearity, product rule,
chain rule, symmetry).  Hypothesis explores these over random shapes
and values.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import Tensor

shapes = st.tuples(st.integers(min_value=1, max_value=4),
                   st.integers(min_value=1, max_value=4))


def _grad_of(fn, x_data):
    x = Tensor(x_data, requires_grad=True)
    fn(x).backward()
    return x.grad


@settings(max_examples=30, deadline=None)
@given(shape=shapes, seed=st.integers(min_value=0, max_value=10_000),
       a=st.floats(min_value=-3, max_value=3),
       b=st.floats(min_value=-3, max_value=3))
def test_gradient_linearity(shape, seed, a, b):
    """grad(a·f + b·g) == a·grad(f) + b·grad(g)."""
    x_data = np.random.default_rng(seed).normal(size=shape)
    f = lambda x: (x ** 2).sum()
    g = lambda x: x.tanh().sum()
    combined = _grad_of(lambda x: f(x) * a + g(x) * b, x_data)
    expected = a * _grad_of(f, x_data) + b * _grad_of(g, x_data)
    np.testing.assert_allclose(combined, expected, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(shape=shapes, seed=st.integers(min_value=0, max_value=10_000))
def test_product_rule(shape, seed):
    """grad(f·g) == g·grad(f) + f·grad(g) for scalar f, g."""
    x_data = np.random.default_rng(seed).normal(size=shape)
    f = lambda x: (x ** 2).sum()
    g = lambda x: (x.sigmoid()).sum()

    x = Tensor(x_data, requires_grad=True)
    (f(x) * g(x)).backward()
    product_grad = x.grad

    f_val = float(f(Tensor(x_data)).data)
    g_val = float(g(Tensor(x_data)).data)
    expected = g_val * _grad_of(f, x_data) + f_val * _grad_of(g, x_data)
    np.testing.assert_allclose(product_grad, expected, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(shape=shapes, seed=st.integers(min_value=0, max_value=10_000))
def test_sum_gradient_is_ones(shape, seed):
    x_data = np.random.default_rng(seed).normal(size=shape)
    np.testing.assert_allclose(_grad_of(lambda x: x.sum(), x_data),
                               np.ones(shape))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=6),
       seed=st.integers(min_value=0, max_value=10_000))
def test_softmax_gradient_rows_sum_to_zero(n, seed):
    """Softmax outputs sum to 1, so any loss gradient through softmax
    has zero row-sum in logit space."""
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(3, n)), requires_grad=True)
    weights = Tensor(rng.normal(size=(3, n)))
    (nn.softmax(logits) * weights).sum().backward()
    np.testing.assert_allclose(logits.grad.sum(axis=1), 0.0, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=6),
       seed=st.integers(min_value=0, max_value=10_000))
def test_l2_normalize_gradient_orthogonal_to_output(n, seed):
    """d/dx ||x/|x|| moves on the sphere: grad ⟂ normalized vector when
    the downstream loss is linear in the output direction components."""
    rng = np.random.default_rng(seed)
    x_data = rng.normal(size=(1, n)) + 0.1
    direction = rng.normal(size=(1, n))
    x = Tensor(x_data, requires_grad=True)
    (nn.l2_normalize(x) * Tensor(direction)).sum().backward()
    unit = x_data / np.linalg.norm(x_data)
    # Radial movement cannot change the normalized output.
    assert abs(float((x.grad * unit).sum())) < 1e-8


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       rows=st.integers(min_value=1, max_value=4),
       inner=st.integers(min_value=1, max_value=4),
       cols=st.integers(min_value=1, max_value=4))
def test_matmul_trace_symmetry(seed, rows, inner, cols):
    """d/dA tr(ABᵀ·M) identities: grad of sum(A@B) wrt A is ones @ Bᵀ."""
    rng = np.random.default_rng(seed)
    a_data = rng.normal(size=(rows, inner))
    b_data = rng.normal(size=(inner, cols))
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a @ b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((rows, cols)) @ b_data.T)
    np.testing.assert_allclose(b.grad, a_data.T @ np.ones((rows, cols)))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), shape=shapes)
def test_detached_branch_receives_no_gradient(seed, shape):
    x_data = np.random.default_rng(seed).normal(size=shape)
    x = Tensor(x_data, requires_grad=True)
    (x.detach() * 3.0 + x).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones(shape))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       n=st.integers(min_value=2, max_value=8))
def test_layernorm_output_statistics(seed, n):
    """Property: LayerNorm(γ=1, β=0) output always has ~zero mean and
    ~unit variance per row, whatever the input."""
    rng = np.random.default_rng(seed)
    layer = nn.LayerNorm(n)
    x = Tensor(rng.normal(loc=rng.uniform(-5, 5),
                          scale=rng.uniform(0.5, 4), size=(3, n)))
    out = layer(x).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
    # ε in the denominator shrinks the variance to exactly v/(v+ε);
    # rows with tiny variance (possible at small n) shrink a lot.
    v = x.data.var(axis=-1)
    np.testing.assert_allclose(out.var(axis=-1), v / (v + layer.eps),
                               rtol=1e-6)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lstm_gradients_finite_on_extreme_inputs(seed):
    """Stability: huge inputs must not produce NaN/inf gradients."""
    rng = np.random.default_rng(seed)
    lstm = nn.LSTM(3, 4, rng, num_layers=1)
    x = Tensor(rng.normal(scale=100.0, size=(2, 5, 3)), requires_grad=True)
    (lstm.mean_pool(x) ** 2).sum().backward()
    assert np.isfinite(x.grad).all()
    assert all(np.isfinite(p.grad).all() for p in lstm.parameters())
