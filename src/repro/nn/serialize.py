"""Save/load model parameters as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import LoadReport, Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write the module's state dict to ``path`` (npz format)."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike,
                strict: bool = True) -> Module:
    """Restore a state dict previously written by :func:`save_module`.

    Strict by default: an archive whose keys do not exactly match the
    module's parameters raises :class:`KeyError` (and shape mismatches
    raise :class:`ValueError`) instead of partially loading.  Pass
    ``strict=False`` to load the intersection deliberately — e.g. when
    warm-starting a related architecture; the skipped keys are recorded
    on ``module.last_load_report``.
    """
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    report: LoadReport = module.load_state_dict(state, strict=strict)
    module.last_load_report = report
    return module
