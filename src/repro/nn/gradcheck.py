"""Numerical gradient checking for autograd correctness.

Used both by the test suite and as a debugging aid: compares analytic
gradients produced by :meth:`Tensor.backward` against central finite
differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(fn: Callable[[], Tensor], tensor: Tensor,
                     eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn().data)
        flat[i] = original - eps
        minus = float(fn().data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-5,
                    rtol: float = 1e-4) -> None:
    """Assert analytic gradients of scalar ``fn()`` match finite differences.

    Raises ``AssertionError`` with the offending tensor index and the max
    absolute deviation on mismatch.
    """
    for t in tensors:
        t.zero_grad()
    out = fn()
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    for idx, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None \
            else np.zeros_like(tensor.data)
        numeric = numeric_gradient(fn, tensor, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            deviation = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for tensor #{idx}: max|diff|={deviation:.3e}"
            )
