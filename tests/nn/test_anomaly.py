"""Anomaly detection: pinpointing NaN/inf to the op that made them."""

import numpy as np
import pytest

import repro.nn as nn
from repro.losses import sup_con_loss
from repro.nn import Tensor
from repro.nn.fused import fused_lstm_sequence
from repro.train import MetricJournal, TrainRun


def test_forward_anomaly_names_op_and_traceback():
    x = Tensor(np.array([1.0, 0.0, -1.0]), requires_grad=True)
    with nn.detect_anomaly():
        with pytest.raises(nn.AnomalyError) as info:
            x.log()  # log(0) = -inf, log(-1) = nan
    err = info.value
    assert err.op == "log"
    assert err.phase == "forward"
    # The creation traceback names this test file's call site.
    assert "test_anomaly.py" in err.where
    assert "non-finite output" in str(err)


def test_backward_anomaly_names_op():
    # sqrt(0) is finite forward but its gradient 1/(2*sqrt(0)) is inf.
    x = Tensor(np.array([4.0, 0.0]), requires_grad=True)
    with nn.detect_anomaly(), np.errstate(divide="ignore"):
        out = (x ** 0.5).sum()
        with pytest.raises(nn.AnomalyError) as info:
            out.backward()
    err = info.value
    assert err.phase == "backward"
    assert err.op == "__pow__"
    assert "non-finite gradient" in str(err)


def test_disabled_mode_is_silent():
    assert not nn.is_anomaly_enabled()
    x = Tensor(np.array([-1.0]), requires_grad=True)
    out = x.log()  # nan, but nobody is watching
    assert np.isnan(out.data).all()


def test_context_nests_and_restores():
    with nn.detect_anomaly():
        assert nn.is_anomaly_enabled()
        with nn.detect_anomaly():
            assert nn.is_anomaly_enabled()
        assert nn.is_anomaly_enabled()
    assert not nn.is_anomaly_enabled()


def test_anomaly_pinpoints_nan_in_clfd_style_step():
    """An injected NaN inside a contrastive training step is attributed
    to the first op that touches it, not to the loss value."""
    rng = np.random.default_rng(0)
    n, t, d, h = 6, 4, 5, 4
    x = Tensor(rng.normal(size=(n, t, d)))
    w_x = Tensor(rng.normal(scale=0.4, size=(d, 4 * h)), requires_grad=True)
    w_h = Tensor(rng.normal(scale=0.4, size=(h, 4 * h)), requires_grad=True)
    bias = Tensor(np.zeros(4 * h), requires_grad=True)
    w_proj = Tensor(rng.normal(scale=0.4, size=(h, 3)), requires_grad=True)
    # Poison one projection weight the way an overflowed update would.
    w_proj.data[0, 0] = np.nan
    labels = np.array([0, 1, 0, 1, 0, 1])

    with nn.detect_anomaly():
        _, h_last, _ = fused_lstm_sequence(x, Tensor(np.zeros((n, h))),
                                           Tensor(np.zeros((n, h))),
                                           w_x, w_h, bias)
        with pytest.raises(nn.AnomalyError) as info:
            z = nn.l2_normalize(h_last.matmul(w_proj))
            sup_con_loss(z, labels, temperature=0.5,
                         confidences=np.full(n, 0.9))
    err = info.value
    assert err.op == "matmul"  # first op through the poisoned weight
    assert err.phase == "forward"
    assert "matmul" in str(err)
    assert "test_anomaly.py" in err.where


def test_trainer_journals_anomaly_event(tmp_path):
    """Trainer(detect_anomaly=True) raises AnomalyError and journals it."""
    rng = np.random.default_rng(0)
    model = nn.Linear(3, 1, rng)
    model.weight.data[0, 0] = np.inf  # corrupt a parameter pre-training
    optimizer = nn.SGD(model.parameters(), lr=0.1)
    x = rng.normal(size=(8, 3))

    journal_path = tmp_path / "journal.jsonl"
    run = TrainRun(journal=journal_path, detect_anomaly=True)
    trainer = run.trainer("fit", model, optimizer)
    assert trainer.detect_anomaly

    def batches(batch_rng):
        yield np.arange(8)

    def step(idx):
        return (model(nn.as_tensor(x[idx])) ** 2).mean()

    with pytest.raises(nn.AnomalyError):
        trainer.fit(batches, step, epochs=1, rng=np.random.default_rng(1))

    events = [e for e in MetricJournal(journal_path, resume=True).entries()
              if e.get("event") == "anomaly"]
    assert len(events) == 1
    assert events[0]["op"] == "matmul"
    assert events[0]["anomaly_phase"] == "forward"


def test_trainer_without_flag_does_not_intercept():
    rng = np.random.default_rng(0)
    model = nn.Linear(3, 1, rng)
    model.weight.data[0, 0] = np.nan
    optimizer = nn.SGD(model.parameters(), lr=0.1)
    x = rng.normal(size=(4, 3))
    trainer = TrainRun().trainer("fit", model, optimizer)

    def batches(batch_rng):
        yield np.arange(4)

    def step(idx):
        return (model(nn.as_tensor(x[idx])) ** 2).mean()

    # Without anomaly mode the NaN silently propagates to the loss.
    history = trainer.fit(batches, step, epochs=1,
                          rng=np.random.default_rng(1))
    assert np.isnan(history[0])
